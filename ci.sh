#!/usr/bin/env bash
# Tier-1 gate, runnable locally and in CI. The whole workspace must
# format cleanly, lint cleanly, and build + test with NO network access
# (the workspace has zero external dependencies by design — see
# DESIGN.md §3).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== native kernel tier: C compiler detection"
# The tiered kernel plane lowers straight-line bodies to C and compiles
# them with the system compiler (DESIGN.md §15). Without one, every
# kernel stays on the typed-register VM — pin the tier explicitly so the
# whole gate runs (and passes) on a compiler-less machine.
if command -v cc >/dev/null 2>&1 || command -v gcc >/dev/null 2>&1 \
    || command -v clang >/dev/null 2>&1; then
  echo "-- C compiler present: native tier armed where the parity probe passes"
else
  echo "-- no C compiler: pinning HPC_KERNEL_TIER=vm (VM fallback everywhere)"
  export HPC_KERNEL_TIER=vm
fi

echo "== tier-1: build + test (offline)"
cargo build --release --offline
cargo test -q --offline

echo "== tier-1 tests again with metrics recording on"
HPC_METRICS=1 cargo test -q --offline

echo "== kernel plane again with the native tier pinned off"
# The VM fallback must stay a first-class execution path, not a
# degraded one: the full kernel-plane suite (parity, chaos, recover)
# re-runs with every kernel forced onto the typed-register VM.
HPC_KERNEL_TIER=vm cargo test -q --offline --test kernel_plane

echo "== chaos pass: seeded fault sweep"
# Every fault decision is a pure function of HPC_FAULT_SEED, so each
# sweep value replays a distinct — but exactly reproducible — schedule.
for seed in 42 1009 777216; do
  echo "-- HPC_FAULT_SEED=$seed"
  HPC_FAULT_SEED=$seed cargo test -q --offline --test failure_modes
  HPC_FAULT_SEED=$seed cargo test -q --offline --test kernel_plane
  HPC_FAULT_SEED=$seed cargo test -q --offline --test props zerocopy
  HPC_FAULT_SEED=$seed cargo test -q --offline --test serve_plane
  HPC_FAULT_SEED=$seed cargo test -q --offline --test observability zerocopy_region
done

echo "== E19 autotune gate (Auto vs fixed collectives, alloc counting)"
# Asserts Auto is within 5% of the best fixed algorithm at every swept
# (ranks, payload) point and that steady-state CG iterations allocate
# nothing; the metrics registry is emitted as the last stdout line.
cargo run --release --offline -p bench --bin e19_autotune -- --metrics-json \
  | tail -n 1 > BENCH_e19.json
test -s BENCH_e19.json

echo "== E20 kernel-plane gate (jit identity, >=2x vs unfused, wire contract)"
# Asserts the jitted Expr path is bitwise-equal to the interpreter on 1e6
# lanes, >= 2x faster than unfused evaluation, and that warm invokes are
# one sub-100-byte control message per worker.
cargo run --release --offline -p bench --bin e20_jit_kernels -- --metrics-json \
  | tail -n 1 > BENCH_e20.json
test -s BENCH_e20.json

echo "== E21 profiling smoke gate (critical path, stragglers, flow trace)"
# Runs the causal-tracing pipeline end to end: a seeded delay fault on one
# rank of a 16-rank CG must be named as the dominant straggler with the
# delay attributed to blocked/wait; the flow-annotated Chrome trace must
# validate under the repo's own JSON parser; enabled-tracing overhead on
# the E19-style CG loop must stay within 5% (all asserted in the binary).
cargo run --release --offline -p bench --bin e21_critpath -- --metrics-json \
  | tail -n 1 > BENCH_e21.json
test -s BENCH_e21.json

echo "== E22 zero-copy gate (region >= 5x encode on 8 MiB, bitwise parity)"
# Asserts the region arm moves 8 MiB point-to-point payloads at >= 5x the
# encode arm's measured bandwidth and beats it on >= 1 MiB-per-peer plan
# exchanges, with bitwise-identical results and bitwise-identical modeled
# makespans on both fixtures (all asserted in the binary).
cargo run --release --offline -p bench --bin e22_zerocopy -- --metrics-json \
  | tail -n 1 > BENCH_e22.json
test -s BENCH_e22.json

echo "== E23 serving-plane gate (open-loop overload + chaos, bitwise parity)"
# Sweeps pool size x {clean, chaos} with thousands of sessions and a 2x
# overload burst: no admitted job may fail (each completes bitwise-equal
# to the fault-free oracle, is shed with a typed error, or expires at its
# deadline), injected worker kills must be absorbed, every per-config
# ledger must reconcile exactly, and overload must surface as counted
# refusals/shedding (all asserted in the binary).
cargo run --release --offline -p bench --bin e23_serve -- --metrics-json \
  | tail -n 1 > BENCH_e23.json
test -s BENCH_e23.json

echo "== E24 whole-program gate (fusion/CSE/DSE/merged moves, bitwise parity)"
# Asserts a traced multi-statement stencil and a CG-like program run
# bitwise-identical to statement-at-a-time evaluation (clean and under
# seeded chaos) with strictly fewer kernel launches and strictly fewer
# ODIN ctrl/data messages, >= 1 merged redistribute and >= 1 CSE hit on
# the stencil (all asserted in the binary).
cargo run --release --offline -p bench --bin e24_program -- --metrics-json \
  | tail -n 1 > BENCH_e24.json
test -s BENCH_e24.json

echo "== E25 native-tier gate (cc codegen, parity probe, >=10x vs interpreter)"
# Asserts the native, VM, and RPN tiers are bitwise-identical on the E20
# 1e6-lane identity (arrays and fused reductions), that a fused
# multi-output stencil group matches across tiers, that no parity probe
# failed, and — when a C compiler is present — that the native tier is
# >= 10x over the boxed interpreter; prints the compile-cost break-even
# curve (all asserted in the binary).
cargo run --release --offline -p bench --bin e25_native -- --metrics-json \
  | tail -n 1 > BENCH_e25.json
test -s BENCH_e25.json

echo "== bench artifacts parse and carry their gate fields"
cargo run --release --offline -p bench --bin bench_check

echo "== public API listing is current"
cargo run --release --offline -p bench --bin api_listing -- --check

echo "== cargo doc (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline

echo "== ci.sh: all green"
