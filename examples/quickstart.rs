//! Quickstart: the paper's framework in one file.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the three systems: ODIN distributed arrays (global + local
//! modes), the Trilinos-analog solver stack through the bridge, and a
//! Seamless-compiled kernel.

use hpc_framework::prelude::*;
use hpc_framework::seamless;

fn main() {
    // ---- start the framework: 4 workers (the paper's "8-core desktop"
    // prototyping story; move to a cluster by raising the knob) ----------
    let session = Session::new(4);
    let ctx = session.odin();

    // ---- ODIN global mode: NumPy-like whole-array expressions ----------
    println!("== ODIN global mode ==");
    let x = ctx.linspace(0.0, std::f64::consts::TAU, 1_000);
    let y = x.sin();
    println!("sum(sin(x)) over [0, 2pi]  = {:+.3e} (≈ 0)", y.sum());

    // the paper's finite-difference one-liner: dy = y[1:] - y[:-1]
    let dy = &y.slice1(1, None, 1) - &y.slice1(0, Some(-1), 1);
    let dx = std::f64::consts::TAU / 999.0;
    let max_err = {
        let dydx = &dy / dx;
        let cos = x.slice1(0, Some(-1), 1).cos();
        (&dydx - &cos).abs().max()
    };
    println!("max |d(sin)/dx - cos|      = {max_err:.3e} (first-order FD)");

    // lazy expressions lower to one JIT kernel, registered once and run
    // in a single fused pass per eval (loop fusion + tiny invokes)
    let h = (Expr::leaf(&x).pow(2.0) + Expr::leaf(&y).pow(2.0))
        .sqrt()
        .eval();
    println!("hypot via fused expression = {:.4} (mean)", h.mean());

    // ---- Seamless: compile pyish kernels and run them on the pool ------
    println!("\n== Seamless JIT ==");
    // element-wise kernel through the kernel plane: bytecode ships to
    // every worker once, each map is a tens-of-bytes control message
    let wave = ctx
        .compile_kernel("def wave(v):\n    return sin(v) * exp(-v * 0.5)\n", "wave")
        .expect("kernel compiles");
    let w = wave.map(&[&x]);
    println!("max of sin(x)*exp(-x/2) via JIT kernel = {:.4}", w.max());

    // segment-level kernel (the @odin.local + @jit composition)
    let src = "
def smooth(a):
    for i in range(1, len(a) - 1):
        a[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1]
";
    let kernel = compile_kernel(src, "smooth", &[Type::ArrF]).expect("kernel compiles");
    let noisy = ctx.random(&[1_000], 42);
    let before = noisy.to_vec();
    apply_kernel(ctx, &noisy, &kernel).expect("segment kernel applies");
    let after = noisy.to_vec();
    let rough = |v: &[f64]| -> f64 {
        v.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
    };
    println!(
        "roughness before/after pyish smoothing: {:.4} -> {:.4}",
        rough(&before),
        rough(&after)
    );

    // the header-driven FFI (§IV-C)
    let libm = seamless::CModule::load_system("m").expect("math library");
    let v = libm
        .call("atan2", &[Value::Float(1.0), Value::Float(2.0)])
        .unwrap();
    println!("libm.atan2(1, 2) via discovered signature = {v:?}");

    // ---- PyTrilinos analog: solve a distributed system with an ODIN
    // array as the right-hand side (the §III-E bridge) --------------------
    println!("\n== Solver bridge ==");
    let n = 10_000;
    let b = ctx.ones(&[n], DType::F64);
    let (solution, report) = solve_with_odin_rhs(
        ctx,
        &b,
        move |g| {
            let mut row = vec![(g, 2.0)];
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        },
        SolveMethod::CgAmg,
        Default::default(),
    );
    println!(
        "CG+AMG on 1-D Laplace (n={n}): {} iterations, residual {:.2e}, converged={}",
        report.iterations, report.final_residual, report.converged
    );
    println!(
        "solution midpoint u[n/2] = {:.1} (exact: n²/8 + n/4 ≈ {:.1})",
        solution.to_vec()[n / 2],
        (n * n) as f64 / 8.0 + n as f64 / 4.0,
    );

    let st = ctx.stats();
    println!(
        "\ncontrol traffic: {} messages, mean {:.1} bytes (the paper's 'tens of bytes')",
        st.ctrl_msgs,
        st.mean_ctrl_bytes()
    );
}
