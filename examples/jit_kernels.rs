//! Seamless tour (§IV): interpreter vs JIT, disassembly, FFI, the
//! reverse embedding, and the distributed kernel plane (kernels mapped
//! over ODIN arrays).
//!
//! ```bash
//! cargo run --release --example jit_kernels
//! ```

use std::time::Instant;

use hpc_framework::prelude::*;
use hpc_framework::seamless::{self, CModule, Interpreter};

const SUM_SRC: &str = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn main() {
    // ---- §IV-A: the paper's @jit sum example ---------------------------
    let n = 1_000_000usize;
    let data: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.125).collect();
    let expect: f64 = data.iter().sum();

    let interp = Interpreter::new(SUM_SRC).expect("parses");
    let (iv, t_interp) = time(|| {
        interp
            .call("sum", vec![Value::ArrF(data.clone())])
            .unwrap()
            .ret
    });

    let kernel = seamless::jit(SUM_SRC, "sum", &[Type::ArrF]).expect("compiles");
    let (jv, t_jit) = time(|| kernel.call(vec![Value::ArrF(data.clone())]).unwrap().ret);

    let (nv, t_native) = time(|| data.iter().sum::<f64>());

    println!("sum of {n} floats:");
    println!("  boxed interpreter : {:8.1} ms -> {iv:?}", t_interp * 1e3);
    println!("  typed-VM JIT      : {:8.1} ms -> {jv:?}", t_jit * 1e3);
    println!("  native Rust       : {:8.1} ms -> {nv:.1}", t_native * 1e3);
    println!(
        "  JIT speedup over the interpreter: {:.1}x",
        t_interp / t_jit
    );
    assert_eq!(iv, jv);
    assert_eq!(jv, Value::Float(expect));

    // ---- what "compiled" means here: the typed bytecode ----------------
    println!("\ndisassembly of sum(ArrF):\n{}", kernel.disassemble());

    // ---- §IV-C: header-driven FFI --------------------------------------
    println!("== CModule (math.h discovery) ==");
    let libm = CModule::load_system("m").unwrap();
    println!(
        "discovered {} signatures; atan2: {:?}",
        libm.signatures().len(),
        libm.signature("atan2").unwrap()
    );
    let v = libm
        .call("pow", &[Value::Float(2.0), Value::Float(10.0)])
        .unwrap();
    println!("libm.pow(2, 10) = {v:?}");

    // pyish source calling libm directly through discovered signatures
    let wave_src = "
def wave(x: float):
    return pow(sin(x), 2.0) + atan2(x, 1.0)
";
    let wk = seamless::compile_with_externs(wave_src, "wave", &[Type::Float], &libm).unwrap();
    let out = wk.call(vec![Value::Float(1.25)]).unwrap();
    println!(
        "pyish calling libm: wave(1.25) = {:?} (pow/sin/atan2 resolved via the header)",
        out.ret
    );

    // ---- §IV-D: pyish as an algorithm-specification language -----------
    // A host program (this Rust code, the paper's C++) consumes an
    // algorithm that was specified in pyish, through a plain function.
    println!("\n== reverse embedding ==");
    let newton_src = "
def newton_sqrt(x: float):
    g = x
    for i in range(30):
        g = 0.5 * (g + x / g)
    return g
";
    let k: CompiledKernel =
        seamless::compile_kernel(newton_src, "newton_sqrt", &[Type::Float]).unwrap();
    let f = k.as_f64_fn();
    for x in [2.0, 9.0, 1e6] {
        let approx = f(x).unwrap();
        println!(
            "newton_sqrt({x}) = {approx:.12} (|err| = {:.1e})",
            (approx - x.sqrt()).abs()
        );
        assert!((approx - x.sqrt()).abs() < 1e-9);
    }

    // ---- the distributed kernel plane: Seamless × ODIN -----------------
    // The same bytecode ships to every worker exactly once
    // (RegisterKernel); every map afterwards is a tens-of-bytes control
    // message, executed unboxed over each worker's segment.
    println!("\n== distributed kernel plane ==");
    let ctx = OdinContext::with_workers(4);
    // The KernelSpec builder picks the compute dtype and execution tier;
    // Tier::Auto arms the probed native C monomorphization when a system
    // C compiler is present and falls back to the typed-register VM
    // otherwise (`ctx.compile_kernel(src, name)` is shorthand for the
    // defaults: f64, Auto).
    let decay = ctx
        .kernel(
            "def decay(v, t):\n    return v * exp(-t) + hypot(v, t) * 0.01\n",
            "decay",
        )
        .dtype(DType::F64)
        .tier(Tier::Auto)
        .build()
        .unwrap();
    println!(
        "decay kernel armed on tier {:?} (dtype {:?})",
        decay.tier(),
        decay.dtype()
    );
    let v = ctx.linspace(0.0, 4.0, 100_000);
    let t = ctx.linspace(0.0, 1.0, 100_000);
    let _warm = decay.map(&[&v, &t]);
    ctx.reset_stats();
    let mapped = decay.map(&[&v, &t]);
    let st = ctx.stats();
    println!(
        "decay.map over {} elements on {} workers: {:.0} bytes of control traffic per worker",
        v.len(),
        ctx.n_workers(),
        st.ctrl_bytes as f64 / st.ctrl_msgs as f64
    );
    // fused map+reduce: fold to a scalar in the same pass
    let total = decay.map_reduce(&[&v, &t], ReduceKind::Sum);
    assert_eq!(total.to_bits(), mapped.sum().to_bits());
    println!("fused map_reduce sum = {total:.4} (bitwise-identical to map().sum())");

    // dtype-generic kernels: the same source monomorphizes per dtype.
    // An I64 build computes in integers end to end (no f64 round-trip).
    let sq1 = ctx
        .kernel("def sq1(v):\n    return v * v + 1\n", "sq1")
        .dtype(DType::I64)
        .build()
        .unwrap();
    let idx = ctx.arange(8);
    let sq = sq1.map(&[&idx]);
    println!(
        "i64 monomorphization (tier {:?}): sq1(arange(8)) = {:?}",
        sq1.tier(),
        sq.to_vec_i64()
    );
    assert_eq!(
        sq.to_vec_i64(),
        (0..8).map(|g| g * g + 1).collect::<Vec<i64>>()
    );

    // lazy expressions ride the same plane: Expr::eval lowers to
    // bytecode, registers once, and reuses the kernel across evals
    let e = (Expr::leaf(&v) * 2.0 + 1.0).sqrt().eval();
    println!("expr plane result mean = {:.4}", e.mean());
}
