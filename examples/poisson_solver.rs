//! 2-D Poisson with the full solver stack (PyTrilinos analog).
//!
//! ```bash
//! cargo run --release --example poisson_solver
//! ```
//!
//! Solves the manufactured 2-D Poisson problem at several sizes with
//! CG under different preconditioners (Ifpack/ML roles), reports
//! iterations, measured time, and the modeled cluster makespan from the
//! LogGP virtual clock — the experiment E9/E10 story as a runnable demo.

use hpc_framework::galeri::poisson2d_manufactured;
use hpc_framework::prelude::*;
use hpc_framework::solvers::{IluPrecond, SsorPrecond};

fn main() {
    let cfg = KrylovConfig {
        rtol: 1e-8,
        max_iter: 5000,
        ..Default::default()
    };
    println!("2-D Poisson, manufactured solution u = sin(pi x) sin(pi y)");
    println!(
        "{:>8} {:>6} {:>12} {:>7} {:>12} {:>14} {:>12}",
        "n", "ranks", "precond", "iters", "rel.err", "measured", "modeled"
    );
    for grid in [24usize, 48] {
        let n = grid * grid;
        for ranks in [1usize, 2, 4] {
            for precond in ["none", "jacobi", "ssor", "ilu0", "amg"] {
                let cfg2 = cfg;
                let report = Universe::run_report(UniverseConfig::default(), ranks, |comm| {
                    let prob = poisson2d_manufactured(comm, grid, grid);
                    let mut x = DistVector::zeros(prob.a.domain_map().clone());
                    let m: Box<dyn Preconditioner<f64>> = match precond {
                        "none" => Box::new(IdentityPrecond),
                        "jacobi" => Box::new(JacobiPrecond::new(&prob.a)),
                        "ssor" => Box::new(SsorPrecond::new(&prob.a, 1.2)),
                        "ilu0" => Box::new(IluPrecond::new(&prob.a)),
                        _ => Box::new(AmgPreconditioner::new(comm, &prob.a, Default::default())),
                    };
                    let t0 = std::time::Instant::now();
                    let st = cg(comm, &prob.a, &prob.b, &mut x, m.as_ref(), &cfg2);
                    let wall = t0.elapsed().as_secs_f64();
                    let mut e = x.clone();
                    e.axpy(-1.0, &prob.x_exact);
                    let rel = e.norm2(comm) / prob.x_exact.norm2(comm);
                    (st.iterations, rel, wall, st.converged)
                });
                let (iters, rel, wall, ok) = report.results[0];
                assert!(ok, "{precond} did not converge at n={n}");
                println!(
                    "{:>8} {:>6} {:>12} {:>7} {:>12.2e} {:>12.1}ms {:>10.2}ms",
                    n,
                    ranks,
                    precond,
                    iters,
                    rel,
                    wall * 1e3,
                    report.makespan_s * 1e3,
                );
            }
        }
        println!();
    }
    println!("Note: 'modeled' is the LogGP virtual-clock makespan (cluster-shaped");
    println!("costs); 'measured' is wall time on this shared-memory host.");
}
