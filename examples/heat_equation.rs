//! 1-D heat equation with ODIN distributed slicing (§III-G).
//!
//! ```bash
//! cargo run --release --example heat_equation
//! ```
//!
//! Explicit Euler for `u_t = α·u_xx` on the unit interval written two
//! ways — exactly the E5 comparison:
//!
//! 1. **global mode**: `u[1:-1] += r * (u[2:] - 2 u[1:-1] + u[:-2])`,
//!    one line per step, halo communication handled by ODIN;
//! 2. **local mode**: hand-written per-worker stencil with explicit
//!    neighbor exchange (the "equivalent MPI code" of the paper).
//!
//! Both must agree to rounding, and both are checked against the analytic
//! decay of the fundamental sine mode.

use std::f64::consts::PI;

use hpc_framework::prelude::*;

const N: usize = 512; // interior points
const STEPS: usize = 200;
const R: f64 = 0.25; // α·dt/dx² (stable: ≤ 0.5)

/// One step in global mode: whole-array slicing expressions.
fn step_global<'c>(u: &DistArray<'c>) -> DistArray<'c> {
    let left = u.slice1(0, Some(-2), 1);
    let mid = u.slice1(1, Some(-1), 1);
    let right = u.slice1(2, None, 1);
    // u_new_interior = mid + r (right - 2 mid + left)
    let lap = &(&right - &(&mid * 2.0)) + &left;
    let interior = &mid + &(&lap * R);
    // reassemble with the Dirichlet boundary zeros
    let n = u.len();
    let zeros_edge = u.ctx().zeros(&[1], hpc_framework::odin::DType::F64);
    // build u_new by scattering: easiest global-mode form is a fresh
    // array from the fetched pieces — but staying distributed, we write
    // the interior into a zero array through a local function.
    let out = u.ctx().zeros(&[n], hpc_framework::odin::DType::F64);
    drop(zeros_edge);
    // copy interior (global indices 1..n-1) from the interior array
    // using redistribution-free local mode
    let interior_block = interior; // same Block layout
    out.ctx().run_spmd(&[&out, &interior_block], |scope, args| {
        let (out_id, int_id) = (args[0], args[1]);
        // interior value for global index g (1..n-1) is interior[g-1]
        let out_map = scope.axis_map(out_id);
        let int_map = scope.axis_map(int_id);
        // Fetch the interior values this worker needs: they live at
        // interior-global-id = out_gid - 1, usually on the same worker but
        // possibly a neighbor. Use the dmap gather plan.
        let needed: Vec<usize> = (0..out_map.my_count())
            .map(|l| out_map.local_to_global(l))
            .filter(|&g| g >= 1 && g + 1 < out_map.n_global())
            .map(|g| g - 1)
            .collect();
        let dir = hpc_framework::dmap::Directory::build(scope.comm, &int_map);
        let plan = hpc_framework::dmap::CommPlan::gather(scope.comm, &int_map, &dir, &needed);
        let src: Vec<f64> = scope.local(int_id).as_f64().to_vec();
        let vals = plan.execute_to_vec(scope.comm, &src);
        let out_buf = scope.local_mut(out_id).as_f64_mut();
        let mut vi = 0;
        for (l, slot) in out_buf.iter_mut().enumerate().take(out_map.my_count()) {
            let g = out_map.local_to_global(l);
            if g >= 1 && g + 1 < out_map.n_global() {
                *slot = vals[vi];
                vi += 1;
            }
        }
    });
    out
}

/// The hand-written local-mode equivalent: per-worker stencil with
/// explicit boundary exchange, one registered function reused every step.
fn run_local(ctx: &OdinContext, u0: &[f64], steps: usize) -> Vec<f64> {
    let u = ctx.from_vec(u0, hpc_framework::odin::Dist::Block);
    for _ in 0..steps {
        ctx.run_spmd(&[&u], |scope, args| {
            let id = args[0];
            let (left_ghost, right_ghost) = scope.exchange_boundary_1d(id);
            let map = scope.axis_map(id);
            let n = map.n_global();
            let mine: Vec<f64> = scope.local(id).as_f64().to_vec();
            let mut next = mine.clone();
            for l in 0..mine.len() {
                let g = map.local_to_global(l);
                if g == 0 || g + 1 == n {
                    continue; // Dirichlet boundary
                }
                let um = if l == 0 {
                    left_ghost.expect("interior point needs a left neighbor")
                } else {
                    mine[l - 1]
                };
                let up = if l + 1 == mine.len() {
                    right_ghost.expect("interior point needs a right neighbor")
                } else {
                    mine[l + 1]
                };
                next[l] = mine[l] + R * (up - 2.0 * mine[l] + um);
            }
            scope.overwrite_f64(id, next);
        });
    }
    u.to_vec()
}

fn main() {
    let ctx = OdinContext::with_workers(4);
    let n_total = N + 2; // including boundary points
    let dx = 1.0 / (n_total as f64 - 1.0);

    // initial condition: fundamental sine mode (clean analytic decay)
    let u0: Vec<f64> = (0..n_total).map(|i| (PI * i as f64 * dx).sin()).collect();

    // ---- global mode ----
    let mut u = ctx.from_vec(&u0, hpc_framework::odin::Dist::Block);
    let t0 = std::time::Instant::now();
    for _ in 0..STEPS {
        u = step_global(&u);
    }
    let global_time = t0.elapsed();
    let u_global = u.to_vec();

    // ---- local (hand-written halo) mode ----
    let t0 = std::time::Instant::now();
    let u_local = run_local(&ctx, &u0, STEPS);
    let local_time = t0.elapsed();

    // ---- agreement & physics ----
    let max_diff = u_global
        .iter()
        .zip(&u_local)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    // discrete decay factor per step: 1 - 4R sin²(π dx / 2)
    let decay = (1.0 - 4.0 * R * (PI * dx / 2.0).sin().powi(2)).powi(STEPS as i32);
    let mid = n_total / 2;
    println!("1-D heat equation, n={n_total}, {STEPS} steps, r={R}");
    println!("  global-mode slicing : {global_time:?}");
    println!("  local-mode stencil  : {local_time:?}");
    println!("  max |global-local|  : {max_diff:.3e}");
    println!(
        "  u(mid) = {:.6} vs analytic decay {:.6}",
        u_global[mid],
        u0[mid] * decay
    );
    assert!(max_diff < 1e-12, "modes disagree");
    assert!((u_global[mid] - u0[mid] * decay).abs() < 1e-9);
    println!("  OK: one-line global expressions match hand-written halo code");
}
