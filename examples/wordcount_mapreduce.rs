//! Distributed tabular data + map-reduce (§III-I).
//!
//! ```bash
//! cargo run --release --example wordcount_mapreduce
//! ```
//!
//! Builds a synthetic access-log table, then runs the two §III-I shapes:
//! a word-count map-reduce and a SQL-ish group-by aggregation, with the
//! shuffle happening directly between workers.

use hpc_framework::prelude::*;

fn main() {
    let ctx = OdinContext::with_workers(4);

    // synthetic access log: (city, path, bytes)
    let cities = ["austin", "nyc", "sf", "boston", "denver"];
    let paths = ["/", "/docs", "/api", "/api", "/download"];
    let schema = Schema::new(&[
        ("city", FieldType::Str),
        ("path", FieldType::Str),
        ("bytes", FieldType::I64),
    ]);
    let records: Vec<Record> = (0..50_000usize)
        .map(|i| {
            // deterministic pseudo-random mixing
            let h = i
                .wrapping_mul(2654435761usize)
                .wrapping_add(0x9e3779b9usize);
            Record(vec![
                FieldValue::Str(cities[h % cities.len()].to_string()),
                FieldValue::Str(paths[(h >> 8) % paths.len()].to_string()),
                FieldValue::I64(((h >> 16) % 1500) as i64 + 100),
            ])
        })
        .collect();
    let total_records = records.len();
    let table = ctx.table_from_records(schema, records);
    println!(
        "loaded {total_records} records over {} workers",
        ctx.n_workers()
    );

    // ---- filter + group-by (SQL: SELECT city, SUM(bytes) WHERE path='/api') ----
    let api = table.filter(|r| r.0[1].as_str() == "/api");
    let api_count = api.len();
    let traffic = api.group_by_sum("city", "bytes");
    println!("\n/api requests: {api_count}");
    println!("{:>10} {:>14}", "city", "api bytes");
    for (city, bytes) in &traffic {
        println!("{city:>10} {bytes:>14.0}");
    }

    // ---- classic word-count over the path column ----
    let counts = table.map_reduce(
        |rec| {
            rec.0[1]
                .as_str()
                .split('/')
                .filter(|s| !s.is_empty())
                .map(|w| (w.to_string(), 1.0))
                .collect()
        },
        |a, b| a + b,
    );
    println!("\npath segment counts:");
    for (seg, n) in &counts {
        println!("{seg:>10} {n:>10.0}");
    }

    // sanity: totals must match the record count exactly
    let api_from_counts = counts
        .iter()
        .find(|(k, _)| k == "api")
        .map(|(_, v)| *v)
        .unwrap_or(0.0);
    assert_eq!(api_from_counts as usize, api_count);
    let sum_cities: f64 = traffic.iter().map(|(_, v)| v).sum();
    assert!(sum_cities > 0.0);
    println!("\nOK: shuffle totals consistent across workers");
}
