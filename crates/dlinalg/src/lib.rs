//! # dlinalg — distributed linear algebra (Tpetra analog)
//!
//! Distributed vectors, multivectors and compressed-sparse-row matrices
//! over the [`dmap`] distribution machinery, generic over a [`Scalar`] type
//! the way Tpetra is templated on `Scalar` (paper §II-C): `f32`, `f64` and
//! [`Complex64`] all work, the latter covering the Komplex package's role.
//!
//! Sparse matrix–vector products perform the halo (ghost) exchange through
//! a precomputed [`dmap::CommPlan`], exactly the Import-based pattern
//! Tpetra uses.

pub mod csr;
pub mod io;
pub mod multivector;
pub mod scalar;
pub mod vector;

pub use csr::CsrMatrix;
pub use multivector::DistMultiVector;
pub use scalar::{Complex64, RealScalar, Scalar};
pub use vector::DistVector;
