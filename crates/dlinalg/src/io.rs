//! Matrix/vector file IO in MatrixMarket-style coordinate format
//! (the EpetraExt I/O role from the paper's Table I).
//!
//! Writing gathers to rank 0; reading parses on rank 0 and scatters via
//! [`CsrMatrix::from_triplets`], so files round-trip across any rank count.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use comm::Comm;
use dmap::DistMap;

use crate::csr::CsrMatrix;
use crate::scalar::{RealScalar, Scalar};
use crate::vector::DistVector;

/// Write a distributed matrix to `path` in coordinate format (1-based
/// indices, `%%MatrixMarket matrix coordinate real general` header).
/// Collective; rank 0 does the writing.
pub fn write_matrix_market<S, P>(comm: &Comm, a: &CsrMatrix<S>, path: P) -> std::io::Result<()>
where
    S: Scalar<Real = f64>,
    P: AsRef<Path>,
{
    let rows = a.gather_to_root(comm);
    if comm.rank() != 0 {
        return Ok(());
    }
    let rows = rows.unwrap();
    let (m, n) = a.shape();
    let nnz: usize = rows.iter().map(|r| r.len()).sum();
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{m} {n} {nnz}")?;
    for (i, row) in rows.iter().enumerate() {
        for &(j, v) in row {
            writeln!(w, "{} {} {:.17e}", i + 1, j + 1, v.re().to_f64())?;
        }
    }
    w.flush()
}

/// Read a coordinate-format matrix from `path` into block row/domain maps.
/// Collective; rank 0 parses and entries are scattered to their owners.
pub fn read_matrix_market<P: AsRef<Path>>(comm: &Comm, path: P) -> std::io::Result<CsrMatrix<f64>> {
    type Parsed = (usize, usize, Vec<(usize, usize, f64)>);
    let parsed: Option<Parsed> = if comm.rank() == 0 {
        let f = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(f);
        let mut dims: Option<(usize, usize)> = None;
        let mut triplets = Vec::new();
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            let mut parts = line.split_whitespace();
            if dims.is_none() {
                let m: usize = parts.next().unwrap().parse().expect("rows");
                let n: usize = parts.next().unwrap().parse().expect("cols");
                let _nnz: usize = parts.next().unwrap().parse().expect("nnz");
                dims = Some((m, n));
            } else {
                let i: usize = parts.next().unwrap().parse().expect("i");
                let j: usize = parts.next().unwrap().parse().expect("j");
                let v: f64 = parts.next().unwrap().parse().expect("v");
                triplets.push((i - 1, j - 1, v));
            }
        }
        let (m, n) = dims.expect("missing size line");
        Some((m, n, triplets))
    } else {
        None
    };
    // Broadcast dimensions, then scatter triplets through from_triplets.
    let dims: (usize, usize) = comm.bcast(0, parsed.as_ref().map(|&(m, n, _)| (m, n)));
    let row_map = DistMap::block(dims.0, comm.size(), comm.rank());
    let domain_map = DistMap::block(dims.1, comm.size(), comm.rank());
    let triplets = parsed.map(|(_, _, t)| t).unwrap_or_default();
    Ok(CsrMatrix::from_triplets(
        comm, row_map, domain_map, triplets,
    ))
}

/// Write a distributed vector as one value per line (dense array format).
pub fn write_vector<S, P>(comm: &Comm, v: &DistVector<S>, path: P) -> std::io::Result<()>
where
    S: Scalar<Real = f64>,
    P: AsRef<Path>,
{
    let full = v.gather_global(comm);
    if comm.rank() != 0 {
        return Ok(());
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "%%MatrixMarket matrix array real general")?;
    writeln!(w, "{} 1", full.len())?;
    for x in full {
        writeln!(w, "{:.17e}", x.re().to_f64())?;
    }
    w.flush()
}

/// Read a dense-array vector written by [`write_vector`] onto a block map.
pub fn read_vector<P: AsRef<Path>>(comm: &Comm, path: P) -> std::io::Result<DistVector<f64>> {
    let parsed: Option<Vec<f64>> = if comm.rank() == 0 {
        let f = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(f);
        let mut vals = Vec::new();
        let mut seen_size = false;
        for line in reader.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('%') {
                continue;
            }
            if !seen_size {
                seen_size = true;
                continue;
            }
            vals.push(line.parse::<f64>().expect("value"));
        }
        Some(vals)
    } else {
        None
    };
    let full: Vec<f64> = comm.bcast(0, parsed);
    let map = DistMap::block(full.len(), comm.size(), comm.rank());
    Ok(DistVector::from_fn(map, |g| full[g]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dlinalg_io_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn matrix_roundtrip_across_rank_counts() {
        let path = tmp("mat.mtx");
        // write with 3 ranks
        {
            let path = path.clone();
            Universe::run(3, move |comm| {
                let n = 8;
                let rm = DistMap::block(n, comm.size(), comm.rank());
                let a = CsrMatrix::from_row_fn(comm, rm.clone(), rm, |g| {
                    let mut row = vec![(g, 2.0 + g as f64)];
                    if g + 1 < n {
                        row.push((g + 1, -1.0));
                    }
                    row
                });
                write_matrix_market(comm, &a, &path).unwrap();
            });
        }
        // read with 2 ranks and verify by matvec
        {
            let path = path.clone();
            Universe::run(2, move |comm| {
                let a = read_matrix_market(comm, &path).unwrap();
                assert_eq!(a.shape(), (8, 8));
                assert_eq!(a.nnz_global(comm), 8 + 7);
                let x = DistVector::constant(a.domain_map().clone(), 1.0);
                let y = a.matvec(comm, &x).gather_global(comm);
                for (g, &v) in y.iter().enumerate() {
                    let expect = (2.0 + g as f64) + if g + 1 < 8 { -1.0 } else { 0.0 };
                    assert!((v - expect).abs() < 1e-12);
                }
            });
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn vector_roundtrip() {
        let path = tmp("vec.mtx");
        {
            let path = path.clone();
            Universe::run(2, move |comm| {
                let map = DistMap::block(5, comm.size(), comm.rank());
                let v = DistVector::from_fn(map, |g| g as f64 * 0.25 - 1.0);
                write_vector(comm, &v, &path).unwrap();
            });
        }
        {
            let path = path.clone();
            Universe::run(3, move |comm| {
                let v = read_vector(comm, &path).unwrap();
                assert_eq!(v.n_global(), 5);
                let full = v.gather_global(comm);
                for (g, &x) in full.iter().enumerate() {
                    assert!((x - (g as f64 * 0.25 - 1.0)).abs() < 1e-15);
                }
            });
        }
        let _ = std::fs::remove_file(path);
    }
}
