//! Scalar abstraction: the `Scalar` template parameter of Tpetra.
//!
//! The paper (§II-C) highlights that second-generation Trilinos templates
//! vectors on arbitrary scalar types ("whether real, complex, integer, or
//! potentially more exotic"); this module provides the same degree of
//! genericity, including a self-contained [`Complex64`] type that stands in
//! for the Komplex package.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use comm::{CommError, Cursor, Wire};

/// Field scalar usable in distributed vectors and matrices.
pub trait Scalar:
    Copy
    + PartialEq
    + Debug
    + Send
    + Sync
    + 'static
    + Wire
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
{
    /// The associated real type (`Self` for real scalars).
    type Real: RealScalar;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Inject a real double (lossy for `f32`).
    fn from_f64(x: f64) -> Self;
    /// Complex conjugate (identity for reals).
    fn conj(self) -> Self;
    /// Modulus |x|.
    fn abs(self) -> Self::Real;
    /// Squared modulus |x|².
    fn abs_sq(self) -> Self::Real;
    /// Real part.
    fn re(self) -> Self::Real;
    /// Lift a real value into this scalar type.
    fn from_real(r: Self::Real) -> Self;
}

/// Real scalars additionally order and take square roots, which norms need.
pub trait RealScalar: Scalar<Real = Self> + PartialOrd {
    /// Square root.
    fn sqrt(self) -> Self;
    /// Convert to `f64` for reporting.
    fn to_f64(self) -> f64;
}

macro_rules! real_scalar {
    ($t:ty) => {
        impl Scalar for $t {
            type Real = $t;
            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            fn conj(self) -> Self {
                self
            }
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            fn abs_sq(self) -> Self {
                self * self
            }
            fn re(self) -> Self {
                self
            }
            fn from_real(r: Self) -> Self {
                r
            }
        }
        impl RealScalar for $t {
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            fn to_f64(self) -> f64 {
                self as f64
            }
        }
    };
}

real_scalar!(f32);
real_scalar!(f64);

/// A double-precision complex number. Implemented here (rather than pulled
/// from a crate) so the workspace stays within the approved offline
/// dependency set; covers the role of Trilinos' Komplex package.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };
}

impl Add for Complex64 {
    type Output = Self;
    fn add(self, o: Self) -> Self {
        Complex64::new(self.re + o.re, self.im + o.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    fn sub(self, o: Self) -> Self {
        Complex64::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    fn mul(self, o: Self) -> Self {
        Complex64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    fn div(self, o: Self) -> Self {
        // Smith's algorithm for numerical robustness.
        if o.re.abs() >= o.im.abs() {
            let r = o.im / o.re;
            let d = o.re + o.im * r;
            Complex64::new((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = o.re / o.im;
            let d = o.re * r + o.im;
            Complex64::new((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, o: Self) {
        *self = *self + o;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, o: Self) {
        *self = *self - o;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, o: Self) {
        *self = *self * o;
    }
}

impl Wire for Complex64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.re.encode(buf);
        self.im.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(Complex64::new(f64::decode(cur)?, f64::decode(cur)?))
    }
}

impl Scalar for Complex64 {
    type Real = f64;
    fn zero() -> Self {
        Complex64::new(0.0, 0.0)
    }
    fn one() -> Self {
        Complex64::new(1.0, 0.0)
    }
    fn from_f64(x: f64) -> Self {
        Complex64::new(x, 0.0)
    }
    fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }
    fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }
    fn abs_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
    fn re(self) -> f64 {
        self.re
    }
    fn from_real(r: f64) -> Self {
        Complex64::new(r, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_scalar_basics() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(2.0f64.conj(), 2.0);
        assert_eq!((-3.0f64).abs(), 3.0);
        assert_eq!(3.0f64.abs_sq(), 9.0);
        assert_eq!(<f32 as Scalar>::from_f64(1.5), 1.5f32);
        assert_eq!(RealScalar::sqrt(9.0f64), 3.0);
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        assert_eq!(a + b, Complex64::new(4.0, 1.0));
        assert_eq!(a - b, Complex64::new(-2.0, 3.0));
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
        assert_eq!(-a, Complex64::new(-1.0, -2.0));
        // (a * b) / b == a
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < 1e-14);
        assert!((q.im - a.im).abs() < 1e-14);
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn complex_division_is_robust_to_extreme_magnitudes() {
        let a = Complex64::new(1e200, 1e200);
        let b = Complex64::new(2e200, 0.0);
        let q = a / b;
        assert!((q.re - 0.5).abs() < 1e-14);
        assert!((q.im - 0.5).abs() < 1e-14);
        // Divisor dominated by its imaginary part.
        let q2 = Complex64::new(0.0, 1.0) / Complex64::new(1e-30, 1e5);
        assert!(q2.re.is_finite() && q2.im.is_finite());
    }

    #[test]
    fn complex_conj_abs() {
        let a = Complex64::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.abs_sq(), 25.0);
        assert_eq!(a.re(), 3.0);
        assert_eq!(Complex64::from_real(2.0), Complex64::new(2.0, 0.0));
    }

    #[test]
    fn complex_wire_roundtrip() {
        let a = Complex64::new(-1.25, 7.5);
        let bytes = comm::encode_to_vec(&a);
        assert_eq!(bytes.len(), 16);
        let back: Complex64 = comm::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn compound_assignment() {
        let mut a = Complex64::new(1.0, 1.0);
        a += Complex64::new(1.0, 0.0);
        a -= Complex64::new(0.0, 1.0);
        a *= Complex64::new(2.0, 0.0);
        assert_eq!(a, Complex64::new(4.0, 0.0));
    }
}
