//! Distributed compressed-sparse-row matrices (Tpetra `CrsMatrix` analog).
//!
//! Rows are distributed by a *row map*; the input vector of `y = A·x` is
//! distributed by a *domain map*. A precomputed [`CommPlan`] gathers the
//! needed `x` entries — owned and ghost alike — into a contiguous
//! workspace before each local SpMV, which is exactly Tpetra's
//! Import-based halo exchange.

use std::cell::RefCell;
use std::collections::HashMap;

use comm::Comm;
use dmap::{cached_gather, CommPlan, Directory, DistMap};

use crate::scalar::Scalar;
use crate::vector::DistVector;

/// A distributed sparse matrix in CSR layout.
#[derive(Debug, Clone)]
pub struct CsrMatrix<S: Scalar> {
    row_map: DistMap,
    domain_map: DistMap,
    /// matrix-local column id → global column id
    col_gids: Vec<usize>,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    vals: Vec<S>,
    plan: CommPlan,
    /// Local rows permuted interior-first: `row_order[..n_interior]` are
    /// rows whose every column is satisfied locally (computable while the
    /// halo exchange is in flight), the rest touch ghost entries.
    row_order: Vec<usize>,
    n_interior: usize,
    /// Nonzeros in interior rows (for split flop accounting).
    interior_nnz: usize,
    /// Halo workspace reused across matvecs: sized to `plan.n_target()`
    /// on first use and fully overwritten by every plan execution, so
    /// steady-state matvecs allocate nothing here.
    scratch: RefCell<Vec<S>>,
}

impl<S: Scalar> CsrMatrix<S> {
    /// Build from a per-row generator: `row_fn(global_row)` returns the
    /// `(global_col, value)` entries of that row. Collective.
    pub fn from_row_fn(
        comm: &Comm,
        row_map: DistMap,
        domain_map: DistMap,
        row_fn: impl Fn(usize) -> Vec<(usize, S)>,
    ) -> Self {
        let rows: Vec<Vec<(usize, S)>> = row_map.my_gids().into_iter().map(row_fn).collect();
        Self::from_local_rows(comm, row_map, domain_map, rows)
    }

    /// Build from already-local rows: `rows[l]` holds the
    /// `(global_col, value)` entries of local row `l`. Collective.
    pub fn from_local_rows(
        comm: &Comm,
        row_map: DistMap,
        domain_map: DistMap,
        rows: Vec<Vec<(usize, S)>>,
    ) -> Self {
        assert_eq!(
            rows.len(),
            row_map.my_count(),
            "one entry-list per local row"
        );
        // Compress global column ids.
        let mut sorted_cols: Vec<usize> = rows
            .iter()
            .flat_map(|r| r.iter().map(|&(c, _)| c))
            .collect();
        sorted_cols.sort_unstable();
        sorted_cols.dedup();
        let col_of: HashMap<usize, usize> = sorted_cols
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l))
            .collect();
        let nnz: usize = rows.iter().map(|r| r.len()).sum();
        let mut rowptr = Vec::with_capacity(rows.len() + 1);
        let mut colidx = Vec::with_capacity(nnz);
        let mut vals = Vec::with_capacity(nnz);
        rowptr.push(0);
        for row in &rows {
            for &(c, v) in row {
                assert!(
                    c < domain_map.n_global(),
                    "column {c} out of domain size {}",
                    domain_map.n_global()
                );
                colidx.push(col_of[&c]);
                vals.push(v);
            }
            rowptr.push(colidx.len());
        }
        let plan = cached_gather(comm, &domain_map, &sorted_cols);
        // Partition rows for the overlapped SpMV: a row is *interior* when
        // every column it references is filled by the plan's local-copy
        // phase, so it can be computed before the halo arrives.
        let local_pos = plan.locally_satisfied();
        let n_rows = rowptr.len() - 1;
        let mut row_order = Vec::with_capacity(n_rows);
        let mut boundary = Vec::new();
        let mut interior_nnz = 0;
        for i in 0..n_rows {
            let cols = &colidx[rowptr[i]..rowptr[i + 1]];
            if cols.iter().all(|&c| local_pos[c]) {
                row_order.push(i);
                interior_nnz += cols.len();
            } else {
                boundary.push(i);
            }
        }
        let n_interior = row_order.len();
        row_order.extend(boundary);
        CsrMatrix {
            row_map,
            domain_map,
            col_gids: sorted_cols,
            rowptr,
            colidx,
            vals,
            plan,
            row_order,
            n_interior,
            interior_nnz,
            scratch: RefCell::new(Vec::new()),
        }
    }

    /// Build from triplets that may live on any rank; entries are routed to
    /// the row's owner and duplicates are *summed* (finite-element assembly
    /// semantics — the Export/Add pattern). Collective.
    pub fn from_triplets(
        comm: &Comm,
        row_map: DistMap,
        domain_map: DistMap,
        triplets: Vec<(usize, usize, S)>,
    ) -> Self {
        let p = comm.size();
        let dir = Directory::build(comm, &row_map);
        let owners = dir.owners_of(comm, &triplets.iter().map(|t| t.0).collect::<Vec<_>>());
        let mut outgoing: Vec<Vec<(usize, usize, S)>> = (0..p).map(|_| Vec::new()).collect();
        for (t, owner) in triplets.into_iter().zip(owners) {
            outgoing[owner].push(t);
        }
        let incoming = comm.alltoallv(outgoing);
        // Accumulate into per-local-row maps, summing duplicates.
        let mut rows: Vec<HashMap<usize, S>> =
            (0..row_map.my_count()).map(|_| HashMap::new()).collect();
        for batch in incoming {
            for (gr, gc, v) in batch {
                let l = row_map
                    .global_to_local(gr)
                    .expect("triplet routed to wrong owner");
                *rows[l].entry(gc).or_insert_with(S::zero) += v;
            }
        }
        let rows: Vec<Vec<(usize, S)>> = rows
            .into_iter()
            .map(|m| {
                let mut r: Vec<(usize, S)> = m.into_iter().collect();
                r.sort_unstable_by_key(|&(c, _)| c);
                r
            })
            .collect();
        Self::from_local_rows(comm, row_map, domain_map, rows)
    }

    /// Row distribution.
    pub fn row_map(&self) -> &DistMap {
        &self.row_map
    }

    /// Domain (input-vector) distribution.
    pub fn domain_map(&self) -> &DistMap {
        &self.domain_map
    }

    /// Global matrix shape `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.row_map.n_global(), self.domain_map.n_global())
    }

    /// Local nonzero count.
    pub fn nnz_local(&self) -> usize {
        self.vals.len()
    }

    /// Global nonzero count. Collective.
    pub fn nnz_global(&self, comm: &Comm) -> usize {
        comm.allreduce(&self.nnz_local(), comm::ReduceOp::sum())
    }

    /// Number of ghost (off-rank) columns this rank references.
    pub fn n_ghost_cols(&self) -> usize {
        self.col_gids
            .iter()
            .filter(|&&g| self.domain_map.global_to_local(g).is_none())
            .count()
    }

    /// Iterate one local row as `(global_col, value)` pairs.
    pub fn row_entries(&self, local_row: usize) -> impl Iterator<Item = (usize, S)> + '_ {
        let lo = self.rowptr[local_row];
        let hi = self.rowptr[local_row + 1];
        self.colidx[lo..hi]
            .iter()
            .zip(&self.vals[lo..hi])
            .map(move |(&lc, &v)| (self.col_gids[lc], v))
    }

    /// Global column ids referenced locally, in matrix-local column order.
    pub fn col_gids(&self) -> &[usize] {
        &self.col_gids
    }

    /// Local column index of entry `k` of local row `i` (for callers that
    /// iterate the raw CSR structure alongside [`Self::halo_gather`]).
    pub fn entry_local_col(&self, k: usize) -> usize {
        self.colidx[k]
    }

    /// Raw CSR row pointer array.
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// Raw CSR values.
    pub fn values(&self) -> &[S] {
        &self.vals
    }

    /// Gather any per-domain-point data into matrix-local column order
    /// using this matrix's halo-exchange plan: `out[lc]` is the value at
    /// global point `col_gids()[lc]`. Collective. This is how multigrid
    /// transfers aggregate ids and how ODIN local kernels see ghost data.
    pub fn halo_gather<T: comm::Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        local: &[T],
        fill: T,
    ) -> Vec<T> {
        assert_eq!(local.len(), self.domain_map.my_count());
        let mut out = vec![fill; self.plan.n_target()];
        self.plan.execute(comm, local, &mut out);
        out
    }

    /// `y = A·x`. Collective; accounts `2·nnz` modeled flops plus the halo
    /// exchange's modeled communication.
    pub fn matvec(&self, comm: &Comm, x: &DistVector<S>) -> DistVector<S> {
        let mut y = DistVector::zeros(self.row_map.clone());
        self.matvec_into(comm, x, &mut y);
        y
    }

    /// `y = A·x` into an existing vector (no allocation of `y`).
    ///
    /// Overlapped: posts the halo exchange, computes interior rows (those
    /// referencing only locally-owned columns) while the ghost entries are
    /// in flight, then waits and computes the boundary rows. Per-row
    /// arithmetic is identical to [`Self::matvec_into_blocking`], so the
    /// result is bitwise the same; only the modeled timeline differs.
    pub fn matvec_into(&self, comm: &Comm, x: &DistVector<S>, y: &mut DistVector<S>) {
        debug_assert!(
            x.map().same_as(&self.domain_map),
            "x must use the domain map"
        );
        debug_assert!(y.map().same_as(&self.row_map), "y must use the row map");
        // Reuse the halo workspace: every position read below is freshly
        // written by the plan's local-copy or scatter phase, so values
        // surviving from a previous matvec are never observed.
        let mut ws = self.scratch.borrow_mut();
        ws.resize(self.plan.n_target(), S::zero());
        let inflight = self.plan.execute_start(comm, x.local(), &mut ws);
        let yl = y.local_mut();
        for &i in &self.row_order[..self.n_interior] {
            yl[i] = self.row_dot(i, &ws);
        }
        comm.advance_compute(2.0 * self.interior_nnz as f64);
        self.plan.execute_finish(comm, inflight, &mut ws);
        for &i in &self.row_order[self.n_interior..] {
            yl[i] = self.row_dot(i, &ws);
        }
        comm.advance_compute(2.0 * (self.vals.len() - self.interior_nnz) as f64);
    }

    /// Blocking-reference `y = A·x`: completes the whole halo exchange
    /// before touching a row. Baseline for the overlap experiments and
    /// property tests.
    pub fn matvec_into_blocking(&self, comm: &Comm, x: &DistVector<S>, y: &mut DistVector<S>) {
        debug_assert!(
            x.map().same_as(&self.domain_map),
            "x must use the domain map"
        );
        debug_assert!(y.map().same_as(&self.row_map), "y must use the row map");
        let mut ws = self.scratch.borrow_mut();
        ws.resize(self.plan.n_target(), S::zero());
        self.plan.execute_blocking(comm, x.local(), &mut ws);
        let yl = y.local_mut();
        for (i, yi) in yl.iter_mut().enumerate() {
            *yi = self.row_dot(i, &ws);
        }
        comm.advance_compute(2.0 * self.vals.len() as f64);
    }

    /// Blocking-reference convenience wrapper around
    /// [`Self::matvec_into_blocking`].
    pub fn matvec_blocking(&self, comm: &Comm, x: &DistVector<S>) -> DistVector<S> {
        let mut y = DistVector::zeros(self.row_map.clone());
        self.matvec_into_blocking(comm, x, &mut y);
        y
    }

    #[inline]
    fn row_dot(&self, i: usize, ws: &[S]) -> S {
        let mut acc = S::zero();
        for k in self.rowptr[i]..self.rowptr[i + 1] {
            acc += self.vals[k] * ws[self.colidx[k]];
        }
        acc
    }

    /// Interior rows (local row ids): every referenced column is owned
    /// locally, so they compute while the halo exchange is in flight.
    pub fn interior_rows(&self) -> &[usize] {
        &self.row_order[..self.n_interior]
    }

    /// Boundary rows (local row ids): reference at least one ghost column
    /// and must wait for the halo exchange.
    pub fn boundary_rows(&self) -> &[usize] {
        &self.row_order[self.n_interior..]
    }

    /// Extract the diagonal (requires a square matrix with matching row and
    /// domain global sizes).
    pub fn diagonal(&self) -> DistVector<S> {
        assert_eq!(self.shape().0, self.shape().1, "diagonal needs square");
        let mut d = DistVector::zeros(self.row_map.clone());
        let dl = d.local_mut();
        for (i, di) in dl.iter_mut().enumerate() {
            let g = self.row_map.local_to_global(i);
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                if self.col_gids[self.colidx[k]] == g {
                    *di += self.vals[k];
                }
            }
        }
        d
    }

    /// The *local square block*: entries whose column is owned by this rank
    /// under the domain map, re-indexed to domain-local column ids. This is
    /// the submatrix block preconditioners (block Jacobi, local ILU, SSOR)
    /// operate on. Returns `(rowptr, cols, vals)`.
    pub fn local_square_block(&self) -> (Vec<usize>, Vec<usize>, Vec<S>) {
        let mut rowptr = Vec::with_capacity(self.rowptr.len());
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        rowptr.push(0);
        for i in 0..self.rowptr.len() - 1 {
            for k in self.rowptr[i]..self.rowptr[i + 1] {
                let g = self.col_gids[self.colidx[k]];
                if let Some(dl) = self.domain_map.global_to_local(g) {
                    cols.push(dl);
                    vals.push(self.vals[k]);
                }
            }
            rowptr.push(cols.len());
        }
        (rowptr, cols, vals)
    }

    /// Transpose (EpetraExt's sparse-transpose role). Collective: entries
    /// are routed to the owner of their column, which owns the transposed
    /// row. The result has row map = this domain map and vice versa.
    pub fn transpose(&self, comm: &Comm) -> CsrMatrix<S> {
        let mut triplets = Vec::with_capacity(self.vals.len());
        for i in 0..self.rowptr.len() - 1 {
            let gr = self.row_map.local_to_global(i);
            for (gc, v) in self.row_entries(i) {
                triplets.push((gc, gr, v));
            }
        }
        CsrMatrix::from_triplets(
            comm,
            self.domain_map.clone(),
            self.row_map.clone(),
            triplets,
        )
    }

    /// Gather the whole matrix to rank 0 in global row order (the pattern
    /// the Amesos direct-solver interface uses). Rank 0 gets
    /// `Some(rows)` with `rows[g]` = entries of global row `g`; others get
    /// `None`. Collective.
    pub fn gather_to_root(&self, comm: &Comm) -> Option<Vec<Vec<(usize, S)>>> {
        let my_rows: Vec<(usize, Vec<(usize, S)>)> = (0..self.row_map.my_count())
            .map(|l| {
                (
                    self.row_map.local_to_global(l),
                    self.row_entries(l).collect(),
                )
            })
            .collect();
        let gathered = comm.gather(0, &my_rows);
        gathered.map(|pieces| {
            let mut rows: Vec<Vec<(usize, S)>> =
                (0..self.row_map.n_global()).map(|_| Vec::new()).collect();
            for piece in pieces {
                for (g, entries) in piece {
                    rows[g] = entries;
                }
            }
            rows
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    /// 1-D Laplacian stencil [-1, 2, -1].
    fn laplace_row(n: usize) -> impl Fn(usize) -> Vec<(usize, f64)> {
        move |g| {
            let mut row = Vec::with_capacity(3);
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        }
    }

    fn build_laplace(comm: &Comm, n: usize) -> CsrMatrix<f64> {
        let rm = DistMap::block(n, comm.size(), comm.rank());
        let dm = rm.clone();
        CsrMatrix::from_row_fn(comm, rm, dm, laplace_row(n))
    }

    #[test]
    fn matvec_matches_serial() {
        for p in [1, 2, 3, 4] {
            let out = Universe::run(p, |comm| {
                let n = 10;
                let a = build_laplace(comm, n);
                let x = DistVector::from_fn(a.domain_map().clone(), |g| g as f64);
                let y = a.matvec(comm, &x);
                y.gather_global(comm)
            });
            // serial reference: y[i] = -x[i-1] + 2x[i] - x[i+1]
            let n = 10;
            let xs: Vec<f64> = (0..n).map(|g| g as f64).collect();
            let expect: Vec<f64> = (0..n)
                .map(|i| {
                    let mut v = 2.0 * xs[i];
                    if i > 0 {
                        v -= xs[i - 1];
                    }
                    if i + 1 < n {
                        v -= xs[i + 1];
                    }
                    v
                })
                .collect();
            for got in &out {
                assert_eq!(got, &expect, "p={p}");
            }
        }
    }

    #[test]
    fn diagonal_extraction() {
        Universe::run(3, |comm| {
            let a = build_laplace(comm, 8);
            let d = a.diagonal();
            assert!(d.local().iter().all(|&v| v == 2.0));
        });
    }

    #[test]
    fn nnz_and_ghosts() {
        Universe::run(2, |comm| {
            let n = 10;
            let a = build_laplace(comm, n);
            assert_eq!(a.nnz_global(comm), 3 * n - 2);
            // interior boundary rows reference exactly one ghost column
            assert_eq!(a.n_ghost_cols(), 1);
        });
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        Universe::run(2, |comm| {
            let n = 4;
            let rm = DistMap::block(n, comm.size(), comm.rank());
            let dm = rm.clone();
            // both ranks contribute 0.5 to every diagonal entry
            let triplets: Vec<(usize, usize, f64)> = (0..n).map(|g| (g, g, 0.5)).collect();
            let a = CsrMatrix::from_triplets(comm, rm, dm, triplets);
            let d = a.diagonal();
            assert!(d.local().iter().all(|&v| v == 1.0));
        });
    }

    #[test]
    fn transpose_of_asymmetric_matrix() {
        Universe::run(2, |comm| {
            let n = 6;
            let rm = DistMap::block(n, comm.size(), comm.rank());
            let dm = rm.clone();
            // upper bidiagonal: A[i][i] = 1, A[i][i+1] = i+1
            let a = CsrMatrix::from_row_fn(comm, rm, dm, |g| {
                let mut row = vec![(g, 1.0)];
                if g + 1 < n {
                    row.push((g + 1, (g + 1) as f64));
                }
                row
            });
            let at = a.transpose(comm);
            let x = DistVector::from_fn(at.domain_map().clone(), |g| g as f64);
            let y = at.matvec(comm, &x).gather_global(comm);
            // Aᵀ row i: entry (i,1) and (i-1→ from A[i-1][i] = i) at col i-1
            let xs: Vec<f64> = (0..n).map(|g| g as f64).collect();
            let expect: Vec<f64> = (0..n)
                .map(|i| {
                    let mut v = xs[i];
                    if i > 0 {
                        v += i as f64 * xs[i - 1];
                    }
                    v
                })
                .collect();
            assert_eq!(y, expect);
        });
    }

    #[test]
    fn transpose_twice_is_identity() {
        Universe::run(3, |comm| {
            let a = build_laplace(comm, 9);
            let att = a.transpose(comm).transpose(comm);
            let x = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64).sin());
            let y1 = a.matvec(comm, &x).gather_global(comm);
            let y2 = att.matvec(comm, &x).gather_global(comm);
            for (u, v) in y1.iter().zip(y2.iter()) {
                assert!((u - v).abs() < 1e-14);
            }
        });
    }

    #[test]
    fn local_square_block_drops_ghosts() {
        Universe::run(2, |comm| {
            let a = build_laplace(comm, 10);
            let (rowptr, cols, vals) = a.local_square_block();
            let nlocal = a.row_map().my_count();
            assert_eq!(rowptr.len(), nlocal + 1);
            assert!(cols.iter().all(|&c| c < nlocal));
            // one ghost coupling dropped per rank (interior boundary)
            assert_eq!(vals.len(), a.nnz_local() - 1);
        });
    }

    #[test]
    fn gather_to_root_reassembles() {
        Universe::run(3, |comm| {
            let n = 7;
            let a = build_laplace(comm, n);
            let rows = a.gather_to_root(comm);
            if comm.rank() == 0 {
                let rows = rows.unwrap();
                assert_eq!(rows.len(), n);
                assert_eq!(rows[0], vec![(0, 2.0), (1, -1.0)]);
                assert_eq!(rows[3], vec![(2, -1.0), (3, 2.0), (4, -1.0)]);
            } else {
                assert!(rows.is_none());
            }
        });
    }

    #[test]
    fn overlapped_matvec_matches_blocking_bitwise() {
        for p in [1, 2, 3, 4] {
            let out = Universe::run(p, |comm| {
                let n = 24;
                let a = build_laplace(comm, n);
                let x = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64 * 0.7).sin());
                let y_over = a.matvec(comm, &x).gather_global(comm);
                let y_block = a.matvec_blocking(comm, &x).gather_global(comm);
                (y_over, y_block)
            });
            for (y_over, y_block) in out {
                let ob: Vec<u64> = y_over.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u64> = y_block.iter().map(|v| v.to_bits()).collect();
                assert_eq!(ob, bb, "p={p}");
            }
        }
    }

    #[test]
    fn interior_boundary_partition_invariants() {
        Universe::run(3, |comm| {
            let a = build_laplace(comm, 17);
            let n_local = a.row_map().my_count();
            let mut seen = vec![false; n_local];
            for &i in a.interior_rows().iter().chain(a.boundary_rows()) {
                assert!(!seen[i], "row {i} appears twice in the partition");
                seen[i] = true;
            }
            assert!(seen.iter().all(|&s| s), "partition must cover every row");
            // Interior rows reference only locally-owned columns;
            // boundary rows reference at least one ghost.
            for &i in a.interior_rows() {
                for (gc, _) in a.row_entries(i) {
                    assert!(a.domain_map().global_to_local(gc).is_some());
                }
            }
            for &i in a.boundary_rows() {
                assert!(a
                    .row_entries(i)
                    .any(|(gc, _)| a.domain_map().global_to_local(gc).is_none()));
            }
            // With the 3-point stencil, each rank has at most 2 boundary rows.
            assert!(a.boundary_rows().len() <= 2);
        });
    }

    #[test]
    fn rectangular_matvec() {
        Universe::run(2, |comm| {
            // 4x6 matrix: A[i][j] = 1 if j == i or j == i+2
            let rm = DistMap::block(4, comm.size(), comm.rank());
            let dm = DistMap::block(6, comm.size(), comm.rank());
            let a = CsrMatrix::from_row_fn(comm, rm, dm.clone(), |g| vec![(g, 1.0), (g + 2, 1.0)]);
            let x = DistVector::from_fn(dm, |g| g as f64);
            let y = a.matvec(comm, &x).gather_global(comm);
            assert_eq!(y, vec![2.0, 4.0, 6.0, 8.0]);
        });
    }
}
