//! Distributed vectors (Tpetra `Vector` analog).

use comm::{Comm, ReduceOp};
use dmap::{cached_import, DistMap};

use crate::scalar::{RealScalar, Scalar};

/// A vector distributed over the ranks of a communicator according to a
/// [`DistMap`]. Each rank holds only its local entries; global operations
/// (dot products, norms) take the communicator explicitly, mirroring the
/// SPMD execution model.
#[derive(Debug, Clone)]
pub struct DistVector<S: Scalar> {
    map: DistMap,
    data: Vec<S>,
}

impl<S: Scalar> DistVector<S> {
    /// All-zeros vector over `map`.
    pub fn zeros(map: DistMap) -> Self {
        let n = map.my_count();
        DistVector {
            map,
            data: vec![S::zero(); n],
        }
    }

    /// Constant vector over `map`.
    pub fn constant(map: DistMap, value: S) -> Self {
        let n = map.my_count();
        DistVector {
            map,
            data: vec![value; n],
        }
    }

    /// Build from a function of the *global* index — the distributed
    /// equivalent of `np.fromfunction`.
    pub fn from_fn(map: DistMap, f: impl Fn(usize) -> S) -> Self {
        let data = (0..map.my_count())
            .map(|l| f(map.local_to_global(l)))
            .collect();
        DistVector { map, data }
    }

    /// Adopt pre-laid-out local data (must match the map's local count).
    pub fn from_local(map: DistMap, data: Vec<S>) -> Self {
        assert_eq!(data.len(), map.my_count(), "local data length mismatch");
        DistVector { map, data }
    }

    /// The distribution map.
    pub fn map(&self) -> &DistMap {
        &self.map
    }

    /// Local entries (in local-index order).
    pub fn local(&self) -> &[S] {
        &self.data
    }

    /// Mutable local entries.
    pub fn local_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// Consume into the local buffer.
    pub fn into_local(self) -> Vec<S> {
        self.data
    }

    /// Global length.
    pub fn n_global(&self) -> usize {
        self.map.n_global()
    }

    /// Set every entry to `value`.
    pub fn fill(&mut self, value: S) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// `self ← alpha * self`.
    pub fn scale(&mut self, alpha: S) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// `self ← self + alpha * x` (BLAS axpy).
    pub fn axpy(&mut self, alpha: S, x: &DistVector<S>) {
        debug_assert!(self.map.same_as(&x.map), "axpy maps must match");
        for (y, &xv) in self.data.iter_mut().zip(x.data.iter()) {
            *y += alpha * xv;
        }
    }

    /// `self ← alpha * x + beta * self` (Tpetra `update`).
    pub fn update(&mut self, alpha: S, x: &DistVector<S>, beta: S) {
        debug_assert!(self.map.same_as(&x.map), "update maps must match");
        for (y, &xv) in self.data.iter_mut().zip(x.data.iter()) {
            *y = alpha * xv + beta * *y;
        }
    }

    /// Elementwise product `self ← self ∘ x`.
    pub fn pointwise_mul(&mut self, x: &DistVector<S>) {
        debug_assert!(self.map.same_as(&x.map));
        for (y, &xv) in self.data.iter_mut().zip(x.data.iter()) {
            *y *= xv;
        }
    }

    /// Conjugated dot product `⟨self, other⟩ = Σ conj(selfᵢ)·otherᵢ`.
    /// Collective; accounts `2n` modeled flops on this rank.
    pub fn dot(&self, other: &DistVector<S>, comm: &Comm) -> S {
        debug_assert!(self.map.same_as(&other.map), "dot maps must match");
        let mut acc = S::zero();
        for (&a, &b) in self.data.iter().zip(other.data.iter()) {
            acc += a.conj() * b;
        }
        comm.advance_compute(2.0 * self.data.len() as f64);
        comm.allreduce(&acc, |x: &S, y: &S| *x + *y)
    }

    /// Euclidean norm. Collective.
    pub fn norm2(&self, comm: &Comm) -> S::Real {
        let mut acc = S::Real::zero();
        for &a in &self.data {
            acc += a.abs_sq();
        }
        comm.advance_compute(2.0 * self.data.len() as f64);
        let total = comm.allreduce(&acc, |x: &S::Real, y: &S::Real| *x + *y);
        total.sqrt()
    }

    /// 1-norm (sum of moduli). Collective.
    pub fn norm1(&self, comm: &Comm) -> S::Real {
        let mut acc = S::Real::zero();
        for &a in &self.data {
            acc += a.abs();
        }
        comm.advance_compute(self.data.len() as f64);
        comm.allreduce(&acc, |x: &S::Real, y: &S::Real| *x + *y)
    }

    /// ∞-norm (max modulus). Collective.
    pub fn norm_inf(&self, comm: &Comm) -> S::Real {
        let mut acc = S::Real::zero();
        for &a in &self.data {
            let m = a.abs();
            if m > acc {
                acc = m;
            }
        }
        comm.advance_compute(self.data.len() as f64);
        comm.allreduce(&acc, ReduceOp::max())
    }

    /// Sum of entries. Collective.
    pub fn sum(&self, comm: &Comm) -> S {
        let mut acc = S::zero();
        for &a in &self.data {
            acc += a;
        }
        comm.advance_compute(self.data.len() as f64);
        comm.allreduce(&acc, |x: &S, y: &S| *x + *y)
    }

    /// Redistribute into `new_map` (same global size). Collective. The
    /// underlying import plan is memoized (see `dmap::plan_cache`), so
    /// repeated redistributions between the same pair of maps skip plan
    /// construction entirely.
    pub fn redistribute(&self, comm: &Comm, new_map: DistMap) -> DistVector<S> {
        let plan = cached_import(comm, &self.map, &new_map);
        let mut out = vec![S::zero(); new_map.my_count()];
        plan.execute(comm, &self.data, &mut out);
        DistVector {
            map: new_map,
            data: out,
        }
    }

    /// Gather the whole vector (in global order) onto every rank.
    /// Collective; intended for small vectors and tests.
    pub fn gather_global(&self, comm: &Comm) -> Vec<S> {
        let pieces: Vec<(Vec<usize>, Vec<S>)> =
            comm.allgather(&(self.map.my_gids(), self.data.clone()));
        let mut out = vec![S::zero(); self.map.n_global()];
        for (gids, vals) in pieces {
            for (g, v) in gids.into_iter().zip(vals) {
                out[g] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    fn block_vec(comm: &Comm, n: usize, f: impl Fn(usize) -> f64) -> DistVector<f64> {
        let map = DistMap::block(n, comm.size(), comm.rank());
        DistVector::from_fn(map, f)
    }

    #[test]
    fn dot_matches_serial() {
        let out = Universe::run(3, |comm| {
            let x = block_vec(comm, 10, |g| g as f64);
            let y = block_vec(comm, 10, |_| 2.0);
            x.dot(&y, comm)
        });
        let expect: f64 = (0..10).map(|g| g as f64 * 2.0).sum();
        for v in out {
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn norms_match_serial() {
        let out = Universe::run(4, |comm| {
            let x = block_vec(comm, 9, |g| if g == 4 { -10.0 } else { 1.0 });
            (x.norm1(comm), x.norm2(comm), x.norm_inf(comm))
        });
        for (n1, n2, ninf) in out {
            assert!((n1 - 18.0).abs() < 1e-12);
            assert!((n2 - (8.0f64 + 100.0).sqrt()).abs() < 1e-12);
            assert_eq!(ninf, 10.0);
        }
    }

    #[test]
    fn axpy_update_scale() {
        Universe::run(2, |comm| {
            let mut y = block_vec(comm, 6, |g| g as f64);
            let x = block_vec(comm, 6, |_| 1.0);
            y.axpy(2.0, &x); // y = g + 2
            y.update(3.0, &x, 0.5); // y = 3 + (g+2)/2
            y.scale(2.0); // y = 6 + g + 2 = g + 8
            for (l, &v) in y.local().iter().enumerate() {
                let g = y.map().local_to_global(l);
                assert_eq!(v, g as f64 + 8.0);
            }
        });
    }

    #[test]
    fn complex_dot_conjugates() {
        use crate::scalar::Complex64;
        let out = Universe::run(2, |comm| {
            let map = DistMap::block(4, comm.size(), comm.rank());
            let x = DistVector::from_fn(map.clone(), |_| Complex64::new(0.0, 1.0));
            let y = DistVector::from_fn(map, |_| Complex64::new(0.0, 1.0));
            x.dot(&y, comm)
        });
        // ⟨i, i⟩ = conj(i)·i summed over 4 entries = 4
        for v in out {
            assert_eq!(v, crate::scalar::Complex64::new(4.0, 0.0));
        }
    }

    #[test]
    fn redistribute_preserves_values() {
        Universe::run(3, |comm| {
            let x = block_vec(comm, 13, |g| g as f64 * 1.5);
            let cyc = DistMap::cyclic(13, comm.size(), comm.rank());
            let y = x.redistribute(comm, cyc);
            for (l, &v) in y.local().iter().enumerate() {
                let g = y.map().local_to_global(l);
                assert_eq!(v, g as f64 * 1.5);
            }
        });
    }

    #[test]
    fn gather_global_reassembles() {
        Universe::run(4, |comm| {
            let x = block_vec(comm, 7, |g| (g * g) as f64);
            let full = x.gather_global(comm);
            let expect: Vec<f64> = (0..7).map(|g| (g * g) as f64).collect();
            assert_eq!(full, expect);
        });
    }

    #[test]
    fn pointwise_and_sum() {
        let out = Universe::run(2, |comm| {
            let mut x = block_vec(comm, 5, |g| g as f64 + 1.0);
            let y = block_vec(comm, 5, |_| 2.0);
            x.pointwise_mul(&y);
            x.sum(comm)
        });
        // 2*(1+2+3+4+5) = 30
        for v in out {
            assert_eq!(v, 30.0);
        }
    }

    #[test]
    fn fill_and_constant() {
        Universe::run(2, |comm| {
            let map = DistMap::block(6, comm.size(), comm.rank());
            let mut v = DistVector::constant(map, 7.0);
            assert!(v.local().iter().all(|&x| x == 7.0));
            v.fill(0.0);
            assert!(v.local().iter().all(|&x| x == 0.0));
        });
    }
}
