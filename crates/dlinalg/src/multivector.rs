//! Distributed multivectors: a bundle of vectors sharing one map
//! (Tpetra `MultiVector` analog), stored column-major locally.
//!
//! Eigensolvers (Lanczos, subspace methods) and block Krylov methods work
//! on multivectors; the per-pair dot products of one collective call are
//! what make them communication-efficient.

use comm::Comm;
use dmap::DistMap;

use crate::scalar::{RealScalar, Scalar};
use crate::vector::DistVector;

/// `ncols` vectors over a shared [`DistMap`], column-major local storage.
#[derive(Debug, Clone)]
pub struct DistMultiVector<S: Scalar> {
    map: DistMap,
    ncols: usize,
    /// column-major: entry (local row `i`, col `j`) at `j * nlocal + i`
    data: Vec<S>,
}

impl<S: Scalar> DistMultiVector<S> {
    /// All-zeros multivector.
    pub fn zeros(map: DistMap, ncols: usize) -> Self {
        let n = map.my_count();
        DistMultiVector {
            map,
            ncols,
            data: vec![S::zero(); n * ncols],
        }
    }

    /// Build from a function of `(global_row, col)`.
    pub fn from_fn(map: DistMap, ncols: usize, f: impl Fn(usize, usize) -> S) -> Self {
        let n = map.my_count();
        let mut data = Vec::with_capacity(n * ncols);
        for j in 0..ncols {
            for i in 0..n {
                data.push(f(map.local_to_global(i), j));
            }
        }
        DistMultiVector { map, ncols, data }
    }

    /// The distribution map.
    pub fn map(&self) -> &DistMap {
        &self.map
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Local rows.
    pub fn nlocal(&self) -> usize {
        self.map.my_count()
    }

    /// Borrow column `j`'s local entries.
    pub fn col(&self, j: usize) -> &[S] {
        let n = self.nlocal();
        &self.data[j * n..(j + 1) * n]
    }

    /// Mutably borrow column `j`'s local entries.
    pub fn col_mut(&mut self, j: usize) -> &mut [S] {
        let n = self.nlocal();
        &mut self.data[j * n..(j + 1) * n]
    }

    /// Copy column `j` out as a [`DistVector`].
    pub fn extract(&self, j: usize) -> DistVector<S> {
        DistVector::from_local(self.map.clone(), self.col(j).to_vec())
    }

    /// Overwrite column `j` from a vector on the same map.
    pub fn set_col(&mut self, j: usize, v: &DistVector<S>) {
        debug_assert!(self.map.same_as(v.map()));
        self.col_mut(j).copy_from_slice(v.local());
    }

    /// All pairwise dots `⟨col_i(self), col_j(other)⟩` as a row-major
    /// `ncols × other.ncols` matrix, in **one** collective reduction.
    pub fn dot_all(&self, other: &DistMultiVector<S>, comm: &Comm) -> Vec<S> {
        debug_assert!(self.map.same_as(&other.map));
        let (a, b) = (self.ncols, other.ncols);
        let n = self.nlocal();
        let mut local = vec![S::zero(); a * b];
        for i in 0..a {
            let ci = self.col(i);
            for j in 0..b {
                let cj = other.col(j);
                let mut acc = S::zero();
                for k in 0..n {
                    acc += ci[k].conj() * cj[k];
                }
                local[i * b + j] = acc;
            }
        }
        comm.advance_compute(2.0 * (a * b * n) as f64);
        comm.allreduce(&local, |x: &Vec<S>, y: &Vec<S>| {
            x.iter().zip(y.iter()).map(|(u, v)| *u + *v).collect()
        })
    }

    /// Column 2-norms. Collective (one reduction).
    pub fn norms2(&self, comm: &Comm) -> Vec<S::Real> {
        let n = self.nlocal();
        let mut local = vec![S::Real::zero(); self.ncols];
        for (j, lj) in local.iter_mut().enumerate() {
            let c = self.col(j);
            let mut acc = S::Real::zero();
            for v in &c[..n] {
                acc += v.abs_sq();
            }
            *lj = acc;
        }
        comm.advance_compute(2.0 * (self.ncols * n) as f64);
        let sums = comm.allreduce(&local, |x: &Vec<S::Real>, y: &Vec<S::Real>| {
            x.iter().zip(y.iter()).map(|(u, v)| *u + *v).collect()
        });
        sums.into_iter().map(|s| s.sqrt()).collect()
    }

    /// `self ← self · B` where `B` is a replicated `ncols × k` row-major
    /// matrix: the block operation behind subspace rotations.
    pub fn times_matrix(&self, b: &[S], k: usize) -> DistMultiVector<S> {
        assert_eq!(b.len(), self.ncols * k, "B must be ncols × k");
        let n = self.nlocal();
        let mut out = DistMultiVector::zeros(self.map.clone(), k);
        for jout in 0..k {
            let dst_ptr = jout * n;
            for jin in 0..self.ncols {
                let w = b[jin * k + jout];
                let src = jin * n;
                for i in 0..n {
                    let v = self.data[src + i];
                    out.data[dst_ptr + i] += v * w;
                }
            }
        }
        out
    }

    /// Modified Gram–Schmidt orthonormalization of the columns, in place.
    /// Returns the diagonal norms encountered (small values signal rank
    /// deficiency). Collective.
    pub fn orthonormalize(&mut self, comm: &Comm) -> Vec<S::Real> {
        let mut norms = Vec::with_capacity(self.ncols);
        for j in 0..self.ncols {
            // orthogonalize col j against previous columns
            for i in 0..j {
                let (ci, cj) = (self.extract(i), self.extract(j));
                let proj = ci.dot(&cj, comm);
                let n = self.nlocal();
                for k in 0..n {
                    let v = self.data[i * n + k];
                    self.data[j * n + k] -= proj * v;
                }
            }
            let cj = self.extract(j);
            let nrm = cj.norm2(comm);
            norms.push(nrm);
            if nrm.to_f64() > 0.0 {
                let inv = S::from_real(nrm);
                let n = self.nlocal();
                for k in 0..n {
                    let v = self.data[j * n + k];
                    self.data[j * n + k] = v / inv;
                }
            }
        }
        norms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn dot_all_matches_serial() {
        let out = Universe::run(3, |comm| {
            let map = DistMap::block(12, comm.size(), comm.rank());
            let a = DistMultiVector::from_fn(map.clone(), 2, |g, j| (g + j) as f64);
            let b = DistMultiVector::from_fn(map, 2, |g, j| if j == 0 { 1.0 } else { g as f64 });
            a.dot_all(&b, comm)
        });
        // serial check
        let g: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let a0: Vec<f64> = g.clone();
        let a1: Vec<f64> = g.iter().map(|x| x + 1.0).collect();
        let b0 = vec![1.0; 12];
        let b1 = g.clone();
        let dot = |x: &[f64], y: &[f64]| -> f64 { x.iter().zip(y).map(|(a, b)| a * b).sum() };
        let expect = vec![dot(&a0, &b0), dot(&a0, &b1), dot(&a1, &b0), dot(&a1, &b1)];
        for got in out {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn norms2_per_column() {
        let out: Vec<Vec<f64>> = Universe::run(2, |comm| {
            let map = DistMap::block(4, comm.size(), comm.rank());
            let mv: DistMultiVector<f64> =
                DistMultiVector::from_fn(map, 2, |_, j| if j == 0 { 1.0 } else { 2.0 });
            mv.norms2(comm)
        });
        for norms in out {
            assert!((norms[0] - 2.0).abs() < 1e-14);
            assert!((norms[1] - 4.0).abs() < 1e-14);
        }
    }

    #[test]
    fn times_matrix_rotates_columns() {
        Universe::run(2, |comm| {
            let map = DistMap::block(6, comm.size(), comm.rank());
            let mv = DistMultiVector::from_fn(map, 2, |g, j| if j == 0 { g as f64 } else { 1.0 });
            // B swaps and scales the two columns: k = 2
            let b = vec![0.0, 2.0, 3.0, 0.0]; // row-major 2x2
            let out = mv.times_matrix(&b, 2);
            // out col0 = 3 * ones, out col1 = 2 * g
            for i in 0..out.nlocal() {
                let g = out.map().local_to_global(i);
                assert_eq!(out.col(0)[i], 3.0);
                assert_eq!(out.col(1)[i], 2.0 * g as f64);
            }
        });
    }

    #[test]
    fn orthonormalize_produces_orthonormal_columns() {
        Universe::run(3, |comm| {
            let map = DistMap::block(9, comm.size(), comm.rank());
            let mut mv =
                DistMultiVector::from_fn(map, 3, |g, j| ((g * (j + 1)) as f64 * 0.7).sin() + 0.1);
            mv.orthonormalize(comm);
            let gram = mv.dot_all(&mv, comm);
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(
                        (gram[i * 3 + j] - expect).abs() < 1e-10,
                        "gram[{i}][{j}] = {}",
                        gram[i * 3 + j]
                    );
                }
            }
        });
    }

    #[test]
    fn extract_set_col_roundtrip() {
        Universe::run(2, |comm| {
            let map = DistMap::block(5, comm.size(), comm.rank());
            let mut mv = DistMultiVector::zeros(map.clone(), 2);
            let v = DistVector::from_fn(map, |g| g as f64 * 2.0);
            mv.set_col(1, &v);
            let back = mv.extract(1);
            assert_eq!(back.local(), v.local());
            assert!(mv.extract(0).local().iter().all(|&x| x == 0.0));
        });
    }
}
