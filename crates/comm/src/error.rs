//! Error type shared by the whole substrate.

use std::fmt;

/// Errors raised by the message-passing substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A payload could not be decoded into the requested type.
    Decode(String),
    /// The peer's mailbox is gone (its thread panicked or exited early).
    Disconnected,
    /// A rank argument was outside `0..size`.
    InvalidRank { rank: usize, size: usize },
    /// A collective was called with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. mismatched scatter lengths).
    CollectiveMismatch(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Decode(msg) => write!(f, "decode error: {msg}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            CommError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            CommError::Decode("bad".into()).to_string(),
            "decode error: bad"
        );
        assert_eq!(CommError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(
            CommError::InvalidRank { rank: 9, size: 4 }.to_string(),
            "invalid rank 9 for communicator of size 4"
        );
        assert!(CommError::CollectiveMismatch("x".into())
            .to_string()
            .contains("x"));
    }
}
