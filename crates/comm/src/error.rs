//! Error type shared by the whole substrate.

use std::fmt;

/// Errors raised by the message-passing substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A payload could not be decoded into the requested type.
    Decode(String),
    /// The peer's mailbox is gone (its thread panicked or exited early).
    Disconnected,
    /// A rank argument was outside `0..size`.
    InvalidRank { rank: usize, size: usize },
    /// A collective was called with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. mismatched scatter lengths).
    CollectiveMismatch(String),
    /// A blocking receive or request wait exceeded its deadline. Carries
    /// enough to diagnose the hang: who was waiting (global rank), for
    /// whom (`None` = any source), on which tag, for how long, and a
    /// snapshot of the unmatched mailbox — distinguishing "nothing ever
    /// arrived" from "messages arrived but none matched".
    Stalled {
        /// Global rank that was blocked.
        rank: usize,
        /// Global rank it was waiting on, if a specific one.
        src: Option<usize>,
        /// Tag it was matching.
        tag: u32,
        /// Wall-clock milliseconds spent waiting before giving up.
        waited_ms: u64,
        /// Envelopes queued but unmatched when the wait gave up.
        queued: usize,
        /// Tags of the queued envelopes (capped at the first few).
        queued_tags: Vec<u32>,
        /// Reliable-delivery envelopes this rank had sent but not yet
        /// seen acked when the wait gave up — a nonzero count means the
        /// stall may be self-inflicted (the peer is waiting on a message
        /// this rank still owes a retransmit for). Always 0 in raw mode.
        retx_in_flight: usize,
        /// Sequence numbers of those unacked envelopes (capped at the
        /// first few).
        retx_seqs: Vec<u64>,
        /// Milliseconds until the earliest pending retransmit fires its
        /// next backoff retry (`Some(0)` = a retry is already overdue);
        /// `None` when nothing is in flight.
        retx_backoff_ms: Option<u64>,
    },
    /// A received payload failed checksum verification (injected
    /// bit-corruption surfaced in raw delivery mode).
    Corrupt {
        /// Global rank that detected the corruption (the receiver).
        rank: usize,
        /// Global rank the message came from.
        src: usize,
        /// Tag the message was sent with.
        tag: u32,
    },
    /// This rank was killed by the fault plan: it has exceeded its
    /// configured operation budget and every further comm call fails.
    Killed {
        /// Global rank that died.
        rank: usize,
        /// Operation count at which it died.
        after_ops: u64,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Decode(msg) => write!(f, "decode error: {msg}"),
            CommError::Disconnected => write!(f, "peer disconnected"),
            CommError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} for communicator of size {size}")
            }
            CommError::CollectiveMismatch(msg) => write!(f, "collective mismatch: {msg}"),
            CommError::Stalled {
                rank,
                src,
                tag,
                waited_ms,
                queued,
                queued_tags,
                retx_in_flight,
                retx_seqs,
                retx_backoff_ms,
            } => {
                write!(
                    f,
                    "rank {rank} stalled {waited_ms} ms waiting for tag {tag} from "
                )?;
                match src {
                    Some(s) => write!(f, "rank {s}")?,
                    None => write!(f, "any rank")?,
                }
                if *queued == 0 {
                    write!(f, "; mailbox empty")?;
                } else {
                    write!(f, "; {queued} unmatched queued, tags {queued_tags:?}")?;
                }
                if *retx_in_flight > 0 {
                    write!(
                        f,
                        "; {retx_in_flight} reliable sends unacked, seqs {retx_seqs:?}"
                    )?;
                    if let Some(ms) = retx_backoff_ms {
                        write!(f, ", next retransmit in {ms} ms")?;
                    }
                }
                Ok(())
            }
            CommError::Corrupt { rank, src, tag } => {
                write!(
                    f,
                    "rank {rank} received a corrupt payload (tag {tag} from rank {src})"
                )
            }
            CommError::Killed { rank, after_ops } => {
                write!(f, "rank {rank} was killed after {after_ops} comm ops")
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            CommError::Decode("bad".into()).to_string(),
            "decode error: bad"
        );
        assert_eq!(CommError::Disconnected.to_string(), "peer disconnected");
        assert_eq!(
            CommError::InvalidRank { rank: 9, size: 4 }.to_string(),
            "invalid rank 9 for communicator of size 4"
        );
        assert!(CommError::CollectiveMismatch("x".into())
            .to_string()
            .contains("x"));
        assert_eq!(
            CommError::Stalled {
                rank: 3,
                src: Some(1),
                tag: 7,
                waited_ms: 250,
                queued: 0,
                queued_tags: vec![],
                retx_in_flight: 0,
                retx_seqs: vec![],
                retx_backoff_ms: None,
            }
            .to_string(),
            "rank 3 stalled 250 ms waiting for tag 7 from rank 1; mailbox empty"
        );
        assert_eq!(
            CommError::Stalled {
                rank: 0,
                src: None,
                tag: 2,
                waited_ms: 10,
                queued: 2,
                queued_tags: vec![5, 9],
                retx_in_flight: 0,
                retx_seqs: vec![],
                retx_backoff_ms: None,
            }
            .to_string(),
            "rank 0 stalled 10 ms waiting for tag 2 from any rank; 2 unmatched queued, tags [5, 9]"
        );
        assert_eq!(
            CommError::Stalled {
                rank: 2,
                src: Some(0),
                tag: 4,
                waited_ms: 100,
                queued: 0,
                queued_tags: vec![],
                retx_in_flight: 2,
                retx_seqs: vec![11, 12],
                retx_backoff_ms: Some(3),
            }
            .to_string(),
            "rank 2 stalled 100 ms waiting for tag 4 from rank 0; mailbox empty; \
             2 reliable sends unacked, seqs [11, 12], next retransmit in 3 ms"
        );
        assert_eq!(
            CommError::Corrupt {
                rank: 1,
                src: 0,
                tag: 4
            }
            .to_string(),
            "rank 1 received a corrupt payload (tag 4 from rank 0)"
        );
        assert_eq!(
            CommError::Killed {
                rank: 2,
                after_ops: 40
            }
            .to_string(),
            "rank 2 was killed after 40 comm ops"
        );
    }
}
