//! Per-rank communication statistics.
//!
//! The paper (§III-J) calls out "instrumentation to help identify
//! performance bottlenecks associated with different communication
//! patterns" as a goal of the ODIN prototype; these counters are that
//! instrumentation, and experiments E2/E4/E12 read them directly.

/// Counters accumulated by one rank over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CommStats {
    /// Point-to-point messages sent (collectives count their constituent
    /// p2p messages).
    pub msgs_sent: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Point-to-point messages received.
    pub msgs_recv: u64,
    /// Payload bytes received.
    pub bytes_recv: u64,
    /// Wall-clock seconds spent blocked in `recv` (measured, not modeled).
    pub wall_recv_s: f64,
    /// Modeled seconds this rank's clock advanced due to communication.
    pub modeled_comm_s: f64,
    /// Modeled seconds this rank's clock advanced due to compute.
    pub modeled_compute_s: f64,
    /// Modeled communication seconds hidden behind compute: wire/flight
    /// time of nonblocking requests that elapsed while the rank's clock
    /// advanced between post and wait. Always 0 for purely blocking code.
    pub overlap_s: f64,
    /// Data envelopes this rank retransmitted (reliable delivery only).
    pub retransmits: u64,
    /// Fresh transmissions the fault plan dropped at this sender.
    pub faults_dropped: u64,
    /// Fresh transmissions the fault plan duplicated at this sender.
    pub faults_duplicated: u64,
    /// Fresh transmissions the fault plan delayed at this sender.
    pub faults_delayed: u64,
    /// Arrivals whose checksum failed verification at this receiver.
    pub corrupt_detected: u64,
    /// Duplicate arrivals suppressed by this receiver (reliable delivery).
    pub dup_suppressed: u64,
    /// Modeled seconds this rank's clock advanced retransmitting.
    pub retransmit_s: f64,
    /// Communication-plan cache hits on this rank (see `dmap`'s plan
    /// cache and the ODIN worker exchange-plan cache).
    pub plan_hits: u64,
    /// Communication-plan cache misses (a plan was built from scratch).
    pub plan_misses: u64,
    /// Wire buffers taken from this rank's pool instead of allocated.
    pub buffer_reuse: u64,
    /// Wire buffers the bounded pool refused to retain (pool full, or
    /// the buffer's capacity exceeded the per-entry cap after a large
    /// encode) — they are dropped instead of pinning the high-water mark.
    pub buffer_pool_evictions: u64,
    /// Messages this rank sent as zero-copy region handles instead of
    /// encoded wire bytes.
    pub zerocopy_msgs: u64,
    /// Encoded-equivalent bytes of those region sends (the same modeled
    /// size `bytes_sent` counts, so `bytes_sent − zerocopy_bytes` is the
    /// traffic that was actually serialized).
    pub zerocopy_bytes: u64,
    /// `Corrupt` faults that landed on a region send and were skipped:
    /// checksumming is wire-path-only, so a region has no byte image to
    /// flip (see the `payload` module docs). Never silently half-applied.
    pub corrupt_skipped_region: u64,
    /// Region arrivals whose FNV integrity digest was re-derived and
    /// verified at a typed receive (only counts when
    /// [`UniverseConfig::region_integrity`](crate::UniverseConfig) is on).
    pub region_integrity_checked: u64,
}

impl CommStats {
    /// Merge another rank's counters into this one (for whole-job totals).
    pub fn merge(&mut self, other: &CommStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.wall_recv_s += other.wall_recv_s;
        self.modeled_comm_s += other.modeled_comm_s;
        self.modeled_compute_s += other.modeled_compute_s;
        self.overlap_s += other.overlap_s;
        self.retransmits += other.retransmits;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_delayed += other.faults_delayed;
        self.corrupt_detected += other.corrupt_detected;
        self.dup_suppressed += other.dup_suppressed;
        self.retransmit_s += other.retransmit_s;
        self.plan_hits += other.plan_hits;
        self.plan_misses += other.plan_misses;
        self.buffer_reuse += other.buffer_reuse;
        self.buffer_pool_evictions += other.buffer_pool_evictions;
        self.zerocopy_msgs += other.zerocopy_msgs;
        self.zerocopy_bytes += other.zerocopy_bytes;
        self.corrupt_skipped_region += other.corrupt_skipped_region;
        self.region_integrity_checked += other.region_integrity_checked;
    }

    /// Mean payload size of sent messages, or 0.0 if none were sent.
    pub fn mean_sent_msg_bytes(&self) -> f64 {
        if self.msgs_sent == 0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.msgs_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = CommStats {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
            wall_recv_s: 0.5,
            modeled_comm_s: 0.25,
            modeled_compute_s: 1.0,
            overlap_s: 0.125,
            retransmits: 3,
            faults_dropped: 2,
            faults_duplicated: 1,
            faults_delayed: 4,
            corrupt_detected: 1,
            dup_suppressed: 1,
            retransmit_s: 0.0625,
            plan_hits: 5,
            plan_misses: 2,
            buffer_reuse: 7,
            buffer_pool_evictions: 3,
            zerocopy_msgs: 9,
            zerocopy_bytes: 900,
            corrupt_skipped_region: 2,
            region_integrity_checked: 5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.msgs_sent, 2);
        assert_eq!(a.bytes_sent, 20);
        assert_eq!(a.msgs_recv, 4);
        assert_eq!(a.bytes_recv, 40);
        assert!((a.wall_recv_s - 1.0).abs() < 1e-12);
        assert!((a.modeled_comm_s - 0.5).abs() < 1e-12);
        assert!((a.modeled_compute_s - 2.0).abs() < 1e-12);
        assert!((a.overlap_s - 0.25).abs() < 1e-12);
        assert_eq!(a.retransmits, 6);
        assert_eq!(a.faults_dropped, 4);
        assert_eq!(a.faults_duplicated, 2);
        assert_eq!(a.faults_delayed, 8);
        assert_eq!(a.corrupt_detected, 2);
        assert_eq!(a.dup_suppressed, 2);
        assert!((a.retransmit_s - 0.125).abs() < 1e-12);
        assert_eq!(a.plan_hits, 10);
        assert_eq!(a.plan_misses, 4);
        assert_eq!(a.buffer_reuse, 14);
        assert_eq!(a.buffer_pool_evictions, 6);
        assert_eq!(a.zerocopy_msgs, 18);
        assert_eq!(a.zerocopy_bytes, 1800);
        assert_eq!(a.corrupt_skipped_region, 4);
        assert_eq!(a.region_integrity_checked, 10);
    }

    #[test]
    fn mean_msg_size_handles_zero() {
        assert_eq!(CommStats::default().mean_sent_msg_bytes(), 0.0);
        let s = CommStats {
            msgs_sent: 4,
            bytes_sent: 100,
            ..Default::default()
        };
        assert_eq!(s.mean_sent_msg_bytes(), 25.0);
    }
}
