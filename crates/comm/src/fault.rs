//! Deterministic fault injection for the simulated universe.
//!
//! A [`FaultPlan`] is carried on [`UniverseConfig`](crate::UniverseConfig)
//! and consulted on every *fresh* message transmission. Each decision is a
//! pure function of `(seed, sender global rank, per-rank send index)` via
//! SplitMix64, so a given plan replays the exact same fault schedule on
//! every run — chaos tests are reproducible bit for bit.
//!
//! Injectable faults:
//!
//! * **drop** — the envelope is never placed in the destination mailbox;
//! * **duplicate** — the envelope is delivered twice;
//! * **delay** — the envelope's virtual departure time is inflated by
//!   [`FaultPlan::delay_s`] (extra LogGP latency; wall delivery is
//!   unchanged);
//! * **corrupt** — one payload bit is flipped after the checksum is
//!   computed, so the receiver detects it (typed
//!   [`CommError::Corrupt`](crate::CommError::Corrupt) in raw mode,
//!   silent retransmission in reliable mode);
//! * **kill** — after [`FaultPlan::kill_after_ops`] communication
//!   operations, every further comm call on the victim rank fails with
//!   [`CommError::Killed`](crate::CommError::Killed).
//!
//! Retransmissions and acks (see [`Delivery::Reliable`]) are exempt from
//! injection: only first transmissions roll the dice. This keeps the fault
//! schedule independent of wall-clock retry timing and gives the exact
//! accounting identity `retransmits == faults_dropped + corrupt_detected`
//! that the chaos property tests assert.

/// How envelopes travel from sender mailbox to receiver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Delivery {
    /// Direct delivery (the default): envelopes go straight into the
    /// destination mailbox. Injected drops lose messages for good.
    #[default]
    Raw,
    /// Reliable delivery: every data envelope carries a sequence number
    /// and is held by the sender until acked; unacked envelopes are
    /// retransmitted with exponential backoff, duplicates are suppressed
    /// by the receiver, and corrupt arrivals are discarded (forcing a
    /// retransmit) instead of surfacing an error.
    Reliable,
}

/// What the plan decided for one message transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    None,
    /// Never deliver.
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Deliver with inflated virtual departure time.
    Delay,
    /// Deliver with one payload bit flipped.
    Corrupt,
}

/// A seeded, deterministic fault schedule. `Default` injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message decision hash.
    pub seed: u64,
    /// Probability a fresh transmission is dropped.
    pub drop_p: f64,
    /// Probability a fresh transmission is duplicated.
    pub dup_p: f64,
    /// Probability a fresh transmission is delayed.
    pub delay_p: f64,
    /// Probability a fresh transmission is bit-corrupted.
    pub corrupt_p: f64,
    /// Extra virtual seconds added to a delayed message's departure.
    pub delay_s: f64,
    /// Restrict delay injection to one global rank's sends, if set. Other
    /// ranks' fault schedules are unchanged by this field (their decision
    /// bands are computed as if `delay_p` were 0), so a run differs from
    /// its fault-free twin only on the targeted rank — the property the
    /// straggler-attribution experiment (E21) relies on.
    pub delay_rank: Option<usize>,
    /// Global rank to kill, if any.
    pub kill_rank: Option<usize>,
    /// Communication-op count after which the victim rank dies.
    pub kill_after_ops: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            corrupt_p: 0.0,
            delay_s: 0.0,
            delay_rank: None,
            kill_rank: None,
            kill_after_ops: 0,
        }
    }

    /// A plan with uniform message-fault probabilities and a seed.
    pub fn messages(seed: u64, drop_p: f64, dup_p: f64, delay_p: f64, corrupt_p: f64) -> Self {
        FaultPlan {
            seed,
            drop_p,
            dup_p,
            delay_p,
            corrupt_p,
            delay_s: 5.0e-6,
            ..FaultPlan::none()
        }
    }

    /// Does this plan inject any message fault or kill?
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || self.corrupt_p > 0.0
            || self.kill_rank.is_some()
    }

    /// Can this plan lose messages (requiring retransmission)?
    pub fn lossy(&self) -> bool {
        self.drop_p > 0.0 || self.corrupt_p > 0.0
    }

    /// Decide the fate of the `idx`-th fresh transmission by global rank
    /// `rank`. Pure and deterministic.
    pub fn action(&self, rank: usize, idx: u64) -> FaultAction {
        // Delay may be scoped to a single victim rank; everyone else
        // decides as if delay_p were zero (same hash, same other bands).
        let delay_p = match self.delay_rank {
            Some(victim) if victim != rank => 0.0,
            _ => self.delay_p,
        };
        if self.drop_p + self.dup_p + delay_p + self.corrupt_p <= 0.0 {
            return FaultAction::None;
        }
        let h = mix64(
            self.seed
                .wrapping_add((rank as u64).wrapping_mul(0x9e3779b97f4a7c15))
                .wrapping_add(idx.wrapping_mul(0xbf58476d1ce4e5b9)),
        );
        // 53-bit uniform in [0, 1).
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let mut edge = self.drop_p;
        if u < edge {
            return FaultAction::Drop;
        }
        edge += self.dup_p;
        if u < edge {
            return FaultAction::Duplicate;
        }
        edge += delay_p;
        if u < edge {
            return FaultAction::Delay;
        }
        edge += self.corrupt_p;
        if u < edge {
            return FaultAction::Corrupt;
        }
        FaultAction::None
    }

    /// Is global rank `rank` dead once it has performed `ops` comm ops?
    pub fn kills(&self, rank: usize, ops: u64) -> bool {
        self.kill_rank == Some(rank) && ops >= self.kill_after_ops
    }
}

/// SplitMix64 finalizer (same mixer as `obs::SplitMix64`).
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// FNV-1a over the payload. Cheap, deterministic, and plenty to catch the
/// single-bit flips the fault plane injects.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        for i in 0..1000 {
            assert_eq!(plan.action(3, i), FaultAction::None);
        }
        assert!(!plan.kills(0, u64::MAX));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::messages(42, 0.1, 0.1, 0.1, 0.1);
        let b = FaultPlan::messages(43, 0.1, 0.1, 0.1, 0.1);
        let run = |p: &FaultPlan| (0..200).map(|i| p.action(1, i)).collect::<Vec<_>>();
        assert_eq!(run(&a), run(&a));
        assert_ne!(run(&a), run(&b));
    }

    #[test]
    fn rates_roughly_match_probabilities() {
        let plan = FaultPlan::messages(7, 0.25, 0.0, 0.0, 0.0);
        let n = 10_000;
        let drops = (0..n)
            .filter(|&i| plan.action(0, i) == FaultAction::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn delay_rank_scopes_delay_to_the_victim() {
        let plan = FaultPlan {
            delay_rank: Some(5),
            ..FaultPlan::messages(9, 0.0, 0.0, 1.0, 0.0)
        };
        for i in 0..100 {
            assert_eq!(plan.action(5, i), FaultAction::Delay);
            assert_eq!(plan.action(4, i), FaultAction::None);
            assert_eq!(plan.action(6, i), FaultAction::None);
        }
    }

    #[test]
    fn kill_threshold_is_inclusive() {
        let plan = FaultPlan {
            kill_rank: Some(2),
            kill_after_ops: 10,
            ..FaultPlan::none()
        };
        assert!(!plan.kills(2, 9));
        assert!(plan.kills(2, 10));
        assert!(!plan.kills(1, 100));
    }

    #[test]
    fn checksum_detects_bit_flip() {
        let mut v = vec![1u8, 2, 3, 4, 5];
        let c = checksum(&v);
        v[2] ^= 0x10;
        assert_ne!(c, checksum(&v));
    }
}
