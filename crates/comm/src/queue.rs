//! Bounded multi-producer/multi-consumer queue with typed backpressure.
//!
//! The std mpsc channels the substrate is built on are *unbounded*: a
//! producer that outruns its consumer grows the mailbox without limit.
//! That is fine for SPMD ranks (the LogGP clock keeps them in rough
//! lockstep), but a serving front end multiplexing many tenants onto a
//! few worker pools needs the opposite property — a queue that **refuses**
//! work when full, so overload surfaces as a typed error at the admission
//! edge instead of unbounded memory growth in the middle.
//!
//! [`Bounded`] is that primitive: a `Mutex<VecDeque>` + two condvars,
//! shared by `Arc`. Producers choose their backpressure behavior per call
//! — [`Bounded::try_push`] (fail fast), [`Bounded::push_timeout`] (block
//! briefly, then fail) — and every refusal is counted, never silent.
//! Consumers symmetrically pick [`Bounded::try_pop`],
//! [`Bounded::pop_timeout`] or the blocking [`Bounded::pop`]. Closing the
//! queue wakes everyone; items already queued drain normally.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was refused. The item is handed back in both cases so the
/// caller can shed it with accounting (or retry elsewhere) — a refused
/// push never consumes the value.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity (and stayed there for the whole timeout,
    /// for [`Bounded::push_timeout`]). This is backpressure, not failure.
    Full(T),
    /// The queue was closed; no further work is accepted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recover the item that was refused.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(v) | PushError::Closed(v) => v,
        }
    }
}

/// Why a pop returned no item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopError {
    /// Nothing queued right now (only from [`Bounded::try_pop`]).
    Empty,
    /// Nothing arrived within the timeout.
    TimedOut,
    /// The queue is closed *and* drained; no item will ever arrive.
    Closed,
}

/// Running totals for one queue (monotonic; read with [`Bounded::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted.
    pub pushed: u64,
    /// Items handed to consumers.
    pub popped: u64,
    /// Pushes refused because the queue was full — the backpressure
    /// signal, counted so shed work is never silently dropped.
    pub rejected_full: u64,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded MPMC queue. Share it with `Arc`; every method takes `&self`.
pub struct Bounded<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a bounded queue needs capacity for one item");
        Bounded {
            cap,
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.min(1024)),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// Capacity fixed at construction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Items queued right now.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Has [`Bounded::close`] been called?
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Snapshot the running totals.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    /// Enqueue without blocking; a full queue refuses immediately.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        self.push_deadline(item, None)
    }

    /// Enqueue, blocking up to `timeout` for space. The bounded wait is
    /// what propagates backpressure upstream without parking a producer
    /// forever on a wedged consumer.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        self.push_deadline(item, Some(timeout))
    }

    fn push_deadline(&self, item: T, timeout: Option<Duration>) -> Result<(), PushError<T>> {
        let t0 = Instant::now();
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushError::Closed(item));
            }
            if inner.items.len() < self.cap {
                inner.items.push_back(item);
                inner.stats.pushed += 1;
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            let remaining = match timeout {
                None => {
                    inner.stats.rejected_full += 1;
                    return Err(PushError::Full(item));
                }
                Some(limit) => match limit.checked_sub(t0.elapsed()) {
                    Some(rem) if !rem.is_zero() => rem,
                    _ => {
                        inner.stats.rejected_full += 1;
                        return Err(PushError::Full(item));
                    }
                },
            };
            inner = self
                .not_full
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Result<T, PopError> {
        let mut inner = self.lock();
        match inner.items.pop_front() {
            Some(item) => {
                inner.stats.popped += 1;
                drop(inner);
                self.not_full.notify_one();
                Ok(item)
            }
            None if inner.closed => Err(PopError::Closed),
            None => Err(PopError::Empty),
        }
    }

    /// Dequeue, blocking up to `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<T, PopError> {
        let t0 = Instant::now();
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.popped += 1;
                drop(inner);
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(PopError::Closed);
            }
            let remaining = match timeout.checked_sub(t0.elapsed()) {
                Some(rem) if !rem.is_zero() => rem,
                _ => return Err(PopError::TimedOut),
            };
            inner = self
                .not_empty
                .wait_timeout(inner, remaining)
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Dequeue, blocking until an item arrives or the queue is closed
    /// *and* drained.
    pub fn pop(&self) -> Result<T, PopError> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.popped += 1;
                drop(inner);
                self.not_full.notify_one();
                return Ok(item);
            }
            if inner.closed {
                return Err(PopError::Closed);
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Remove the queued item maximizing `key` (ties broken toward the
    /// back, i.e. the newest arrival). This is the shedding hook: a
    /// scheduler drops the lowest-priority queued job by keying on
    /// inverted priority. Returns `None` when empty.
    pub fn take_max_by_key<K: Ord>(&self, key: impl Fn(&T) -> K) -> Option<T> {
        let mut inner = self.lock();
        let idx = inner
            .items
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| key(a).cmp(&key(b)).then(ia.cmp(ib)))
            .map(|(i, _)| i)?;
        let item = inner.items.remove(idx);
        if item.is_some() {
            inner.stats.popped += 1;
            drop(inner);
            self.not_full.notify_one();
        }
        item
    }

    /// Close the queue: further pushes fail with [`PushError::Closed`],
    /// queued items drain, and every blocked producer/consumer wakes.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // Poison-tolerant: a panicking peer must not wedge the plane.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_refuses_when_full_and_counts() {
        let q = Bounded::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        let st = q.stats();
        assert_eq!((st.pushed, st.rejected_full), (2, 1));
        assert_eq!(q.try_pop(), Ok(1));
        q.try_push(3).unwrap();
        assert_eq!(q.try_pop(), Ok(2));
        assert_eq!(q.try_pop(), Ok(3));
        assert_eq!(q.try_pop(), Err(PopError::Empty));
    }

    #[test]
    fn push_timeout_blocks_until_space_frees() {
        let q = Arc::new(Bounded::new(1));
        q.try_push(10u32).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            // Frees the slot after a short delay.
            std::thread::sleep(Duration::from_millis(20));
            q2.pop().unwrap()
        });
        q.push_timeout(11, Duration::from_secs(5)).unwrap();
        assert_eq!(h.join().unwrap(), 10);
        assert_eq!(q.pop().unwrap(), 11);
    }

    #[test]
    fn push_timeout_gives_up_and_returns_the_item() {
        let q = Bounded::new(1);
        q.try_push(1).unwrap();
        let err = q.push_timeout(2, Duration::from_millis(10)).unwrap_err();
        assert_eq!(err.into_inner(), 2);
        assert_eq!(q.stats().rejected_full, 1);
    }

    #[test]
    fn close_wakes_blocked_consumers_and_drains() {
        let q = Arc::new(Bounded::new(4));
        q.try_push(7u8).unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || {
            let first = q2.pop();
            let second = q2.pop();
            (first, second)
        });
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        let (first, second) = h.join().unwrap();
        assert_eq!(first, Ok(7));
        assert_eq!(second, Err(PopError::Closed));
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
    }

    #[test]
    fn pop_timeout_times_out_cleanly() {
        let q: Bounded<u8> = Bounded::new(1);
        assert_eq!(
            q.pop_timeout(Duration::from_millis(5)),
            Err(PopError::TimedOut)
        );
    }

    #[test]
    fn take_max_by_key_sheds_the_chosen_item() {
        let q = Bounded::new(4);
        for v in [3i64, 9, 1, 9] {
            q.try_push(v).unwrap();
        }
        // Max value, newest arrival on tie: the second 9 (index 3).
        assert_eq!(q.take_max_by_key(|&v| v), Some(9));
        assert_eq!(q.len(), 3);
        // Shed the *lowest* by inverting the key.
        assert_eq!(q.take_max_by_key(|&v| std::cmp::Reverse(v)), Some(1));
        assert_eq!(q.try_pop(), Ok(3));
        assert_eq!(q.try_pop(), Ok(9));
        assert!(q.take_max_by_key(|&v| v).is_none());
    }

    #[test]
    fn mpmc_under_contention_delivers_everything_once() {
        let q = Arc::new(Bounded::new(8));
        let total = 4 * 250;
        let mut producers = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let v = p * 1000 + i;
                    q.push_timeout(v, Duration::from_secs(10)).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total);
        let st = q.stats();
        assert_eq!(st.pushed, total as u64);
        assert_eq!(st.popped, total as u64);
    }
}
