//! Reliable delivery over the (fault-injected) unreliable channel.
//!
//! When [`Delivery::Reliable`] is
//! selected, every fresh data envelope carries a per-`(sender, receiver)`
//! sequence number and is held by the sender until the receiver
//! acknowledges it. The machinery is deliberately classical:
//!
//! * **acks** — the receiver acks every data arrival at intake, before tag
//!   matching, so even messages parked in the pending queue are
//!   acknowledged promptly;
//! * **retransmit** — unacked envelopes are re-sent with exponential
//!   backoff. Blocking waits poll on a short tick while the rank has
//!   unacked sends, so a blocked sender still drives its own
//!   retransmissions; [`Comm::quiesce`](crate::comm::Comm) runs the same
//!   pump at the end of a rank's program;
//! * **dup suppression** — the receiver remembers delivered sequence
//!   numbers per source and discards repeats (injected duplicates and
//!   spurious retransmits alike);
//! * **corruption** — an arrival failing checksum verification is
//!   discarded *without* an ack, which turns bit-corruption into a drop
//!   the retransmit path already heals. Checksums cover the wire-bytes
//!   arm only: zero-copy region payloads never serialize, cannot
//!   bit-corrupt in-process, and arrive with checksum 0 (a `Corrupt`
//!   fault on a region send is skipped and counted in
//!   [`CommStats::corrupt_skipped_region`](crate::CommStats)).
//!
//! Retransmissions and acks are exempt from fault injection (see
//! [`fault`]), so one retransmission always heals one lost
//! message and the counters obey
//! `retransmits == faults_dropped + corrupt_detected` whenever every sent
//! message is eventually consumed. Retransmissions are charged to the
//! virtual clock like fresh sends (`o + bytes·G`, tracked in
//! [`CommStats::retransmit_s`](crate::CommStats::retransmit_s)); acks cost
//! the acking rank a posting overhead `o`.

use std::time::{Duration, Instant};

use crate::comm::{Comm, EnvKind, Envelope};
use crate::error::CommError;
use crate::fault::{self, Delivery, FaultAction};
use crate::payload::Payload;

/// Initial retransmit timeout. Must comfortably exceed a same-machine
/// mailbox round trip so healthy traffic is never retransmitted.
const RTO: Duration = Duration::from_millis(5);
/// Exponential backoff cap.
const RTO_MAX: Duration = Duration::from_millis(80);
/// Poll tick for blocking waits while unacked sends are outstanding.
pub(crate) const RETX_TICK: Duration = Duration::from_millis(1);
/// Default bound on [`Comm::quiesce`] when no stall timeout is set.
const QUIESCE_LIMIT: Duration = Duration::from_secs(5);

/// A sent-but-unacked envelope, kept for retransmission. For region
/// payloads the retained copy is an `Arc` clone — free, and it is why a
/// receiver may find the region handle shared until the ack lands.
pub(crate) struct Retx {
    pub(crate) gdest: usize,
    pub(crate) ctx: u64,
    pub(crate) src: usize,
    pub(crate) tag: u32,
    pub(crate) seq: u64,
    pub(crate) payload: Payload,
    pub(crate) checksum: u64,
    pub(crate) next_retry: Instant,
    pub(crate) backoff: Duration,
    /// Causal flow id of the original transmission; retransmitted copies
    /// carry the same id so the activity graph can match whichever copy
    /// actually delivered.
    pub(crate) flow: u64,
}

impl Comm {
    pub(crate) fn reliable(&self) -> bool {
        self.state.delivery == Delivery::Reliable
    }

    /// Charge one operation against the fault plan's kill budget. Called
    /// internally by every post; public so higher layers (the ODIN worker
    /// loop) can charge command execution against the same budget. Once
    /// the threshold is crossed the rank is dead: every further call
    /// returns [`CommError::Killed`].
    pub fn fault_tick(&self) -> Result<(), CommError> {
        let st = &self.state;
        if st.killed.get() {
            return Err(self.killed_error());
        }
        if st.fault.kill_rank != Some(st.world_rank) {
            return Ok(());
        }
        let ops = st.op_count.get() + 1;
        st.op_count.set(ops);
        if st.fault.kills(st.world_rank, ops) {
            st.killed.set(true);
            return Err(self.killed_error());
        }
        Ok(())
    }

    /// Has the fault plan killed this rank?
    pub fn is_killed(&self) -> bool {
        self.state.killed.get()
    }

    fn killed_error(&self) -> CommError {
        CommError::Killed {
            rank: self.state.world_rank,
            after_ops: self.state.fault.kill_after_ops,
        }
    }

    /// Transmit a fresh data envelope: roll the fault plan's dice,
    /// register the message for retransmission in reliable mode, and
    /// place it (or not) in the destination mailbox. Returns the actual
    /// departure time stamped on the envelope — `depart` plus any
    /// injected delay — so the caller's send span can attribute the
    /// delay to the sender instead of mistaking it for wire latency.
    pub(crate) fn transmit_fresh(
        &self,
        dest_local: usize,
        tag: u32,
        mut depart: f64,
        payload: Payload,
        flow: u64,
    ) -> Result<f64, CommError> {
        let st = &self.state;
        let gdest = self.group[dest_local];
        let reliable = self.reliable();
        let active = st.fault.is_active();
        // Checksumming is wire-path-only: a region handle never
        // serializes, so there is no byte image to protect (or corrupt).
        let cks = match &payload {
            Payload::Bytes(bytes) if active || reliable => fault::checksum(bytes),
            _ => 0,
        };
        let seq = if reliable {
            let mut next = st.next_seq.borrow_mut();
            next[gdest] += 1;
            next[gdest]
        } else {
            0
        };
        let action = if active {
            let idx = st.send_count.get();
            st.send_count.set(idx + 1);
            st.fault.action(st.world_rank, idx)
        } else {
            FaultAction::None
        };
        if action == FaultAction::Delay {
            depart += st.fault.delay_s;
            st.stats.borrow_mut().faults_delayed += 1;
        }
        if reliable {
            st.unacked.borrow_mut().push(Retx {
                gdest,
                ctx: self.ctx,
                src: self.rank(),
                tag,
                seq,
                payload: payload.clone(),
                checksum: cks,
                next_retry: Instant::now() + RTO,
                backoff: RTO,
                flow,
            });
        }
        let mut env = Envelope {
            ctx: self.ctx,
            src: self.rank(),
            tag,
            depart,
            payload,
            gsrc: st.world_rank,
            seq,
            checksum: cks,
            kind: EnvKind::Data,
            corrupt: false,
            flow,
        };
        match action {
            FaultAction::Drop => {
                st.stats.borrow_mut().faults_dropped += 1;
                if obs::enabled() {
                    self.obs_fault_counter("comm.dropped");
                }
                // Never enqueued; reliable mode heals it by retransmit.
                Ok(depart)
            }
            FaultAction::Corrupt => {
                match &mut env.payload {
                    // Flip one payload bit after checksumming (or the
                    // checksum itself for empty payloads) so the
                    // receiver detects it.
                    Payload::Bytes(bytes) if bytes.is_empty() => env.checksum ^= 1,
                    Payload::Bytes(bytes) => {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0x10;
                    }
                    // A region handle has no wire image to flip: the
                    // fault is skipped outright — counted, never
                    // half-applied (see the `payload` module docs).
                    Payload::Region(_) => {
                        st.stats.borrow_mut().corrupt_skipped_region += 1;
                        if obs::enabled() {
                            self.obs_fault_counter("comm.corrupt_skipped_region");
                        }
                    }
                }
                self.senders[gdest]
                    .send(env)
                    .map_err(|_| CommError::Disconnected)?;
                Ok(depart)
            }
            FaultAction::Duplicate => {
                st.stats.borrow_mut().faults_duplicated += 1;
                let dup = env.clone();
                self.senders[gdest]
                    .send(env)
                    .map_err(|_| CommError::Disconnected)?;
                let _ = self.senders[gdest].send(dup);
                Ok(depart)
            }
            FaultAction::Delay | FaultAction::None => {
                self.senders[gdest]
                    .send(env)
                    .map_err(|_| CommError::Disconnected)?;
                Ok(depart)
            }
        }
    }

    /// Route one arrived envelope through the reliability layer. Returns
    /// the envelope if it should enter tag matching, `None` if it was
    /// consumed here (an ack, a suppressed duplicate, or a discarded
    /// corrupt arrival).
    pub(crate) fn intake(&self, mut env: Envelope) -> Option<Envelope> {
        let st = &self.state;
        if env.kind == EnvKind::Ack {
            st.unacked
                .borrow_mut()
                .retain(|r| !(r.gdest == env.gsrc && r.seq == env.seq));
            return None;
        }
        let verify = st.delivery == Delivery::Reliable || st.fault.is_active();
        // Verification is wire-path-only: region arrivals always pass
        // (they carry checksum 0 and cannot bit-corrupt in-process).
        let ok = match &env.payload {
            Payload::Bytes(bytes) if verify => fault::checksum(bytes) == env.checksum,
            _ => true,
        };
        if !ok {
            st.stats.borrow_mut().corrupt_detected += 1;
            if obs::enabled() {
                self.obs_fault_counter("comm.corrupt");
            }
        }
        if st.delivery == Delivery::Reliable {
            if !ok {
                // No ack: the sender retransmits an intact copy.
                return None;
            }
            self.send_ack(env.gsrc, env.seq);
            if !st.seen.borrow_mut()[env.gsrc].insert(env.seq) {
                st.stats.borrow_mut().dup_suppressed += 1;
                if obs::enabled() {
                    self.obs_fault_counter("comm.dup_suppressed");
                }
                return None;
            }
            Some(env)
        } else {
            // Raw mode: corruption surfaces as a typed error at delivery.
            env.corrupt = !ok;
            Some(env)
        }
    }

    /// Drain the OS mailbox into the pending queue without blocking.
    pub(crate) fn drain_mailbox(&self) {
        while let Ok(env) = self.state.rx.try_recv() {
            if let Some(env) = self.intake(env) {
                self.state.pending.borrow_mut().push(env);
            }
        }
    }

    fn send_ack(&self, gdest: usize, seq: u64) {
        let st = &self.state;
        let o = self.model.overhead_s;
        st.clock.set(st.clock.get() + o);
        st.stats.borrow_mut().modeled_comm_s += o;
        // Best effort: the original sender may already be gone.
        let _ = self.senders[gdest].send(Envelope {
            ctx: 0,
            src: 0,
            tag: 0,
            depart: st.clock.get(),
            payload: Payload::Bytes(Vec::new()),
            gsrc: st.world_rank,
            seq,
            checksum: 0,
            kind: EnvKind::Ack,
            corrupt: false,
            flow: 0,
        });
    }

    /// Retransmit every unacked envelope whose retry deadline has passed.
    /// No-op outside reliable mode.
    pub(crate) fn pump_retransmits(&self) {
        if !self.reliable() || self.state.unacked.borrow().is_empty() {
            return;
        }
        let st = &self.state;
        let now = Instant::now();
        let mut unacked = st.unacked.borrow_mut();
        for r in unacked.iter_mut() {
            if now < r.next_retry {
                continue;
            }
            let o = self.model.overhead_s;
            let wire = r.payload.wire_len() as f64 * self.model.seconds_per_byte;
            let clock = st.clock.get() + o;
            st.clock.set(clock);
            let depart = clock.max(st.nic_free.get()) + wire;
            st.nic_free.set(depart);
            {
                let mut s = st.stats.borrow_mut();
                s.retransmits += 1;
                s.modeled_comm_s += o;
                s.retransmit_s += o + wire;
            }
            if obs::enabled() {
                self.obs_fault_counter("comm.retransmits");
                // Retx event span: clock paid `o` from (clock − o, clock];
                // the copy reuses the original flow id so the graph can
                // attribute whichever copy delivered.
                use obs::flow::args;
                obs::span::span_start(clock - o).finish_meta(
                    "comm",
                    "retx",
                    clock,
                    &[
                        (args::POST_END, clock),
                        (args::DEPART, depart),
                        (args::WIRE, wire),
                    ],
                    obs::span::SpanMeta {
                        kind: obs::span::SpanKind::Retx,
                        flow_out: r.flow,
                        flow_in: 0,
                    },
                );
            }
            let _ = self.senders[r.gdest].send(Envelope {
                ctx: r.ctx,
                src: r.src,
                tag: r.tag,
                depart,
                payload: r.payload.clone(),
                gsrc: st.world_rank,
                seq: r.seq,
                checksum: r.checksum,
                kind: EnvKind::Data,
                corrupt: false,
                flow: r.flow,
            });
            r.backoff = (r.backoff * 2).min(RTO_MAX);
            r.next_retry = now + r.backoff;
        }
    }

    /// Cap for one blocking mailbox wait: while this rank has unacked
    /// sends it must wake periodically to drive retransmissions.
    pub(crate) fn block_tick(&self) -> Option<Duration> {
        if self.reliable() && !self.state.unacked.borrow().is_empty() {
            Some(RETX_TICK)
        } else {
            None
        }
    }

    /// Drive outstanding retransmissions to completion at the end of a
    /// rank's program, so a message dropped on its final sends still
    /// reaches a receiver blocked on it. Bounded by the stall timeout
    /// (or a 5 s default): if a peer exited without consuming a message,
    /// give up rather than hang.
    pub(crate) fn quiesce(&self) {
        if !self.reliable() {
            return;
        }
        let limit = self.state.stall_timeout.get().unwrap_or(QUIESCE_LIMIT);
        let t0 = Instant::now();
        while !self.state.unacked.borrow().is_empty() {
            if t0.elapsed() >= limit {
                return;
            }
            self.pump_retransmits();
            use std::sync::mpsc::RecvTimeoutError;
            match self.state.rx.recv_timeout(RETX_TICK) {
                Ok(env) => {
                    if let Some(env) = self.intake(env) {
                        self.state.pending.borrow_mut().push(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Registry mirror of the fault/reliability counters, labeled by
    /// global rank exactly like `comm.msgs_sent`.
    #[cold]
    pub(crate) fn obs_fault_counter(&self, name: &str) {
        let rank = self.state.world_rank.to_string();
        obs::global()
            .counter(&obs::registry::key(name, &[("rank", &rank)]))
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use crate::fault::{Delivery, FaultPlan};
    use crate::universe::{Universe, UniverseConfig};
    use crate::{CommError, Src};
    use std::time::Duration;

    fn chaos_cfg(plan: FaultPlan) -> UniverseConfig {
        UniverseConfig {
            fault: plan,
            delivery: Delivery::Reliable,
            stall_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        }
    }

    #[test]
    fn dropped_message_is_retransmitted() {
        // Every fresh transmission is dropped; retransmits are exempt.
        let plan = FaultPlan::messages(1, 1.0, 0.0, 0.0, 0.0);
        let report = Universe::run_report(chaos_cfg(plan), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &vec![1.0f64; 64]).unwrap();
            } else {
                let (v, _) = comm.recv::<Vec<f64>>(Src::Rank(0), 5).unwrap();
                assert_eq!(v.len(), 64);
            }
        });
        let total: u64 = report.stats.iter().map(|s| s.retransmits).sum();
        let dropped: u64 = report.stats.iter().map(|s| s.faults_dropped).sum();
        assert!(dropped >= 1);
        assert_eq!(total, dropped, "one retransmit heals one drop");
        assert!(report.stats.iter().map(|s| s.retransmit_s).sum::<f64>() > 0.0);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let plan = FaultPlan::messages(11, 0.0, 1.0, 0.0, 0.0);
        let report = Universe::run_report(chaos_cfg(plan), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &1u64).unwrap();
                comm.send(1, 2, &2u64).unwrap();
            } else {
                let (a, _) = comm.recv::<u64>(Src::Rank(0), 1).unwrap();
                let (b, _) = comm.recv::<u64>(Src::Rank(0), 2).unwrap();
                assert_eq!((a, b), (1, 2));
                // No third message may ever match either tag.
                assert!(comm
                    .recv_timeout::<u64>(Src::Any, 1, Duration::from_millis(20))
                    .is_err());
            }
        });
        assert_eq!(report.stats[0].faults_duplicated, 2);
        assert!(report.stats[1].dup_suppressed >= 1);
    }

    #[test]
    fn corrupt_arrival_heals_under_reliable_delivery() {
        let plan = FaultPlan::messages(3, 0.0, 0.0, 0.0, 1.0);
        let report = Universe::run_report(chaos_cfg(plan), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, &vec![7u8; 32]).unwrap();
            } else {
                let (v, _) = comm.recv::<Vec<u8>>(Src::Rank(0), 9).unwrap();
                assert_eq!(v, vec![7u8; 32]);
            }
        });
        // First copy corrupt and discarded; the retransmit is clean
        // (retransmits are exempt from injection).
        assert!(report.stats[1].corrupt_detected >= 1);
        assert!(report.stats[0].retransmits >= 1);
    }

    #[test]
    fn killed_rank_fails_sends_with_typed_error() {
        let plan = FaultPlan {
            kill_rank: Some(0),
            kill_after_ops: 3,
            ..FaultPlan::none()
        };
        let cfg = UniverseConfig {
            fault: plan,
            ..Default::default()
        };
        let report = Universe::run_report(cfg, 1, |comm| {
            comm.send(0, 1, &1u8).unwrap(); // op 1
            let second = comm.send(0, 2, &2u8); // op 2
            let third = comm.send(0, 3, &3u8); // op 3: dead
            assert!(second.is_ok());
            assert_eq!(
                third.unwrap_err(),
                CommError::Killed {
                    rank: 0,
                    after_ops: 3
                }
            );
            assert!(comm.is_killed());
            comm.recv::<u8>(Src::Rank(0), 1).unwrap_err()
        });
        assert_eq!(
            report.results[0],
            CommError::Killed {
                rank: 0,
                after_ops: 3
            }
        );
    }

    #[test]
    fn corrupt_fault_on_region_is_skipped_and_counted() {
        // Every fresh transmission draws Corrupt, but the payload rides
        // the region arm: the fault must be skipped outright (regions
        // have no wire image), counted, and the value delivered intact —
        // in both delivery modes.
        for delivery in [Delivery::Raw, Delivery::Reliable] {
            let cfg = UniverseConfig {
                fault: FaultPlan::messages(3, 0.0, 0.0, 0.0, 1.0),
                delivery,
                stall_timeout: Some(Duration::from_secs(10)),
                ..Default::default()
            }
            .with_zerocopy_threshold(1);
            let report = Universe::run_report(cfg, 2, |comm| {
                if comm.rank() == 0 {
                    comm.send_zc(1, 9, vec![7u64; 64]).unwrap();
                } else {
                    let (v, _) = comm.recv_zc::<Vec<u64>>(Src::Rank(0), 9).unwrap();
                    assert_eq!(v, vec![7u64; 64]);
                }
            });
            assert!(report.stats[0].corrupt_skipped_region >= 1, "{delivery:?}");
            assert_eq!(report.stats[1].corrupt_detected, 0, "{delivery:?}");
            // Nothing was lost, so nothing retransmits.
            assert_eq!(report.stats[0].retransmits, 0, "{delivery:?}");
        }
    }

    #[test]
    fn dropped_region_is_retransmitted_from_the_arc_copy() {
        let plan = FaultPlan::messages(1, 1.0, 0.0, 0.0, 0.0);
        let cfg = chaos_cfg(plan).with_zerocopy_threshold(1);
        let report = Universe::run_report(cfg, 2, |comm| {
            if comm.rank() == 0 {
                comm.send_zc(1, 5, vec![1.5f64; 2048]).unwrap();
            } else {
                let (v, _) = comm.recv_zc::<Vec<f64>>(Src::Rank(0), 5).unwrap();
                assert_eq!(v.len(), 2048);
                assert_eq!(v[0], 1.5);
            }
        });
        assert!(report.stats[0].faults_dropped >= 1);
        assert_eq!(
            report.stats.iter().map(|s| s.retransmits).sum::<u64>(),
            report.stats.iter().map(|s| s.faults_dropped).sum::<u64>(),
            "one retransmit heals one dropped region"
        );
        assert!(report.stats[0].zerocopy_msgs >= 1);
    }

    #[test]
    fn reliable_mode_is_transparent_without_faults() {
        let cfg = UniverseConfig {
            delivery: Delivery::Reliable,
            ..Default::default()
        };
        let report = Universe::run_report(cfg, 4, |comm| {
            let v = comm.rank() as u64 + 1;
            comm.allreduce(&v, crate::ReduceOp::sum())
        });
        assert_eq!(report.results, vec![10, 10, 10, 10]);
        for st in &report.stats {
            assert_eq!(st.retransmits, 0);
            assert_eq!(st.dup_suppressed, 0);
            assert_eq!(st.corrupt_detected, 0);
        }
    }
}
