//! Compact binary codec for message payloads.
//!
//! Everything sent between ranks implements [`Wire`]. The encoding is a
//! simple little-endian byte layout with length-prefixed containers — no
//! external serialization framework is needed, which keeps the hot path
//! allocation-light and makes message *sizes* (measured in experiment E2)
//! easy to reason about.

use crate::error::CommError;

/// Read cursor over a received byte buffer.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take exactly `n` bytes, advancing the cursor.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CommError> {
        if self.remaining() < n {
            return Err(CommError::Decode(format!(
                "need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

/// Types that can be encoded to / decoded from the wire format.
pub trait Wire: Sized {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);
    /// Decode one value, advancing the cursor.
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError>;
    /// Exact size of this value's encoding, in bytes, without producing
    /// it. The zero-copy send path uses this both to decide which arm a
    /// payload takes and to charge the LogGP clock the same modeled
    /// bytes a region transfer *would* have occupied on a real wire —
    /// so the invariant `wire_size() == encode-then-len` must hold for
    /// every implementation. The default materializes the encoding;
    /// in-tree implementations override it with O(1)-per-element sums.
    fn wire_size(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Encode a value into a fresh buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decode a value from a slice, requiring the slice to be fully consumed.
pub fn decode_from_slice<T: Wire>(bytes: &[u8]) -> Result<T, CommError> {
    let mut cur = Cursor::new(bytes);
    let v = T::decode(&mut cur)?;
    if cur.remaining() != 0 {
        return Err(CommError::Decode(format!(
            "{} trailing bytes after decode",
            cur.remaining()
        )));
    }
    Ok(v)
}

macro_rules! wire_le_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
                let n = std::mem::size_of::<$t>();
                let s = cur.take(n)?;
                let mut a = [0u8; std::mem::size_of::<$t>()];
                a.copy_from_slice(s);
                Ok(<$t>::from_le_bytes(a))
            }
            fn wire_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

wire_le_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Wire for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u64).encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(u64::decode(cur)? as usize)
    }
    fn wire_size(&self) -> usize {
        8
    }
}

impl Wire for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(u8::from(*self));
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CommError::Decode(format!("invalid bool byte {b}"))),
        }
    }
    fn wire_size(&self) -> usize {
        1
    }
}

impl Wire for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn decode(_cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(())
    }
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        buf.extend_from_slice(self.as_bytes());
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        let n = u64::decode(cur)? as usize;
        let s = cur.take(n)?;
        String::from_utf8(s.to_vec()).map_err(|e| CommError::Decode(e.to_string()))
    }
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.len() as u64).encode(buf);
        for item in self {
            item.encode(buf);
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        let n = u64::decode(cur)? as usize;
        // Guard against corrupt length prefixes: each element needs ≥1 byte
        // unless T is zero-sized (e.g. unit), which we cap separately.
        if std::mem::size_of::<T>() > 0 && n > cur.remaining().max(1) * 8 {
            return Err(CommError::Decode(format!("implausible vec length {n}")));
        }
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(T::decode(cur)?);
        }
        Ok(out)
    }
    fn wire_size(&self) -> usize {
        8 + self.iter().map(Wire::wire_size).sum::<usize>()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(cur)?)),
            b => Err(CommError::Decode(format!("invalid option byte {b}"))),
        }
    }
    fn wire_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Wire::wire_size)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok((A::decode(cur)?, B::decode(cur)?))
    }
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok((A::decode(cur)?, B::decode(cur)?, C::decode(cur)?))
    }
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
        self.3.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok((
            A::decode(cur)?,
            B::decode(cur)?,
            C::decode(cur)?,
            D::decode(cur)?,
        ))
    }
    fn wire_size(&self) -> usize {
        self.0.wire_size() + self.1.wire_size() + self.2.wire_size() + self.3.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(123456u32);
        roundtrip(u64::MAX);
        roundtrip(-1i8);
        roundtrip(i16::MIN);
        roundtrip(-123456i32);
        roundtrip(i64::MIN);
        roundtrip(std::f32::consts::PI);
        roundtrip(std::f64::consts::E);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
        roundtrip(());
    }

    #[test]
    fn nan_roundtrips_bitwise() {
        let bytes = encode_to_vec(&f64::NAN);
        let back: f64 = decode_from_slice(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("héllo wörld"));
        roundtrip(String::new());
        roundtrip(vec![1.0f64, -2.5, 3.25]);
        roundtrip(Vec::<i64>::new());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, 2.5f64));
        roundtrip((1u8, 2.5f64, String::from("x")));
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip(vec![vec![1i32, 2], vec![], vec![3]]);
        roundtrip(vec![Some(1.0f64), None]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert!(decode_from_slice::<u32>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode_to_vec(&7u64);
        assert!(decode_from_slice::<u64>(&bytes[..4]).is_err());
    }

    #[test]
    fn invalid_bool_and_option_bytes_rejected() {
        assert!(decode_from_slice::<bool>(&[7]).is_err());
        assert!(decode_from_slice::<Option<u8>>(&[9, 0]).is_err());
    }

    #[test]
    fn implausible_vec_length_rejected() {
        // Length prefix claims 2^60 elements with a 0-byte body.
        let bytes = encode_to_vec(&(1u64 << 60));
        assert!(decode_from_slice::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn string_invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        (2u64).encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert!(decode_from_slice::<String>(&bytes).is_err());
    }

    #[test]
    fn vec_f64_layout_is_8_bytes_per_element_plus_header() {
        let v = vec![0.0f64; 100];
        assert_eq!(encode_to_vec(&v).len(), 8 + 800);
    }

    /// The zero-copy invariant: `wire_size` must equal the materialized
    /// encoding's length for every implementation, since the LogGP clock
    /// charges region transfers by `wire_size` alone.
    #[test]
    fn wire_size_matches_encoded_length() {
        fn check<T: Wire>(v: T) {
            assert_eq!(v.wire_size(), encode_to_vec(&v).len());
        }
        check(0u8);
        check(u16::MAX);
        check(123456u32);
        check(u64::MAX);
        check(-1i8);
        check(i64::MIN);
        check(std::f32::consts::PI);
        check(std::f64::consts::E);
        check(true);
        check(usize::MAX);
        check(());
        check(String::from("héllo wörld"));
        check(String::new());
        check(vec![1.0f64; 1000]);
        check(Vec::<i64>::new());
        check(Some(42u32));
        check(Option::<u32>::None);
        check((1u8, 2.5f64));
        check((1u8, 2.5f64, String::from("x")));
        check((1u8, 2u16, 3u32, 4u64));
        check(vec![vec![1i32, 2], vec![], vec![3]]);
        check(vec![(vec![1usize, 2], Some(7.5f64))]);
    }
}
