//! Collective operations built from point-to-point messages.
//!
//! Each collective supports multiple algorithms selected by
//! [`CollectiveAlgo`]; because the virtual-time model charges every
//! constituent p2p message, the modeled cost of a collective reflects the
//! algorithm actually run. Experiment E12 ablates linear vs tree vs
//! recursive-doubling at simulated scales.
//!
//! Every collective invocation draws a fresh tag from a per-communicator
//! sequence counter, so concurrent collectives and user p2p traffic can
//! never match each other's messages. Collectives panic on substrate
//! failure (a peer thread died), mirroring MPI's default error handler.

use crate::comm::{Comm, Src, Tag, MAX_USER_TAG};
use crate::model::NetworkModel;
use crate::wire::Wire;

/// Algorithm family used by collectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveAlgo {
    /// Root-centric flat algorithms: O(P) messages through one rank.
    Linear,
    /// Binomial trees: O(log P) rounds.
    #[default]
    Tree,
    /// Recursive doubling / ring: O(log P) rounds, no root hotspot.
    RecursiveDoubling,
    /// Model-driven selection: each call picks the cheapest fixed
    /// algorithm for its (ranks, payload bytes) from the LogGP
    /// parameters. The choice is a pure function of values every rank
    /// computes identically, so ranks can never disagree on the wire
    /// pattern. Rooted ops (`bcast`/`scatter`) resolve payload-blind —
    /// only the root knows the payload; symmetric ops
    /// (`reduce`/`allreduce`/`allgather`) resolve payload-aware and
    /// therefore require the SPMD convention that every rank passes a
    /// same-sized value. Ablated in experiment E19.
    Auto,
}

/// Namespace of ready-made reduction operators.
///
/// ```
/// use comm::ReduceOp;
/// let op = ReduceOp::sum::<i64>();
/// assert_eq!(op(&2, &3), 5);
/// ```
pub struct ReduceOp;

impl ReduceOp {
    /// Elementwise addition.
    pub fn sum<T: Copy + std::ops::Add<Output = T>>() -> impl Fn(&T, &T) -> T + Copy {
        |a, b| *a + *b
    }

    /// Elementwise multiplication.
    pub fn prod<T: Copy + std::ops::Mul<Output = T>>() -> impl Fn(&T, &T) -> T + Copy {
        |a, b| *a * *b
    }

    /// Minimum (by `PartialOrd`; on NaN keeps the right operand).
    pub fn min<T: Copy + PartialOrd>() -> impl Fn(&T, &T) -> T + Copy {
        |a, b| if a < b { *a } else { *b }
    }

    /// Maximum (by `PartialOrd`; on NaN keeps the right operand).
    pub fn max<T: Copy + PartialOrd>() -> impl Fn(&T, &T) -> T + Copy {
        |a, b| if a > b { *a } else { *b }
    }

    /// Vector (elementwise) sum for `Vec<T>` payloads.
    pub fn vec_sum<T: Copy + std::ops::Add<Output = T>>(
    ) -> impl Fn(&Vec<T>, &Vec<T>) -> Vec<T> + Copy {
        |a, b| {
            assert_eq!(a.len(), b.len(), "vec_sum length mismatch");
            a.iter().zip(b.iter()).map(|(x, y)| *x + *y).collect()
        }
    }
}

impl CollectiveAlgo {
    /// Short name used in span labels and metrics: `linear`, `tree`,
    /// `rd`, or `auto`.
    pub fn label(self) -> &'static str {
        match self {
            CollectiveAlgo::Linear => "linear",
            CollectiveAlgo::Tree => "tree",
            CollectiveAlgo::RecursiveDoubling => "rd",
            CollectiveAlgo::Auto => "auto",
        }
    }
}

/// Collectives the autotuner distinguishes. The remaining collectives
/// (barrier, gather, scatter, alltoallv, scan, exscan) have a single wire
/// pattern, so `Auto` has nothing to decide for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CollOp {
    Bcast,
    Reduce,
    Allreduce,
    Allgather,
}

impl CollOp {
    fn name(self) -> &'static str {
        match self {
            CollOp::Bcast => "bcast",
            CollOp::Reduce => "reduce",
            CollOp::Allreduce => "allreduce",
            CollOp::Allgather => "allgather",
        }
    }
}

/// ⌈log₂ p⌉ as a float (0 for p ≤ 1).
fn ceil_log2(p: usize) -> f64 {
    p.max(1).next_power_of_two().trailing_zeros() as f64
}

/// Analytic LogGP makespan of `op` over `p` ranks with an `n`-byte
/// per-rank payload under `algo`. Mirrors the simulator's charging rules
/// — the sender pays `o + n·G` serialized on its NIC, the receiver pays
/// `L + o` past the departure — closely enough to *rank* the algorithms;
/// `e19_autotune` validates the ranking against measured makespans.
fn predict(op: CollOp, algo: CollectiveAlgo, p: usize, n: usize, m: &NetworkModel) -> f64 {
    let o = m.overhead_s;
    let l = m.latency_s;
    let ng = n as f64 * m.seconds_per_byte;
    // One store-and-forward hop: blocking send (o + n·G), then the
    // receiver's delivery rule (L + o) past the departure.
    let hop = 2.0 * o + ng + l;
    match (op, algo) {
        // Root serializes P−1 copies back-to-back; the last receiver
        // adds one flight + delivery.
        (CollOp::Bcast, CollectiveAlgo::Linear) => (p - 1) as f64 * (o + ng) + l + o,
        // Binomial critical path: the root's k-th send departs after k
        // serialized (o + n·G), its child's after k−1, … — the last leaf
        // sits below k(k+1)/2 sends and k flights. (Tree *reduce* has no
        // such serialization: every path node sends once, to its parent.)
        (CollOp::Bcast, _) => {
            let k = ceil_log2(p);
            k * (k + 1.0) / 2.0 * (o + ng) + k * (l + o)
        }
        // Leaves send concurrently (receiver NICs are not contended in
        // the model); the root then pays `o` per sequential delivery.
        (CollOp::Reduce, CollectiveAlgo::Linear) => o + ng + l + (p - 1) as f64 * o,
        (CollOp::Reduce, _) => ceil_log2(p) * hop,
        (CollOp::Allreduce, CollectiveAlgo::RecursiveDoubling) => {
            let p2 = prev_power_of_two(p);
            // Non-power-of-two sizes fold the extra ranks in and out.
            let fold = if p2 == p { 0.0 } else { 2.0 * hop };
            p2.trailing_zeros() as f64 * hop + fold
        }
        (CollOp::Allreduce, algo) => {
            predict(CollOp::Reduce, algo, p, n, m) + predict(CollOp::Bcast, algo, p, n, m)
        }
        // Ring: P−1 pipelined neighbor exchanges.
        (CollOp::Allgather, CollectiveAlgo::RecursiveDoubling) => (p - 1) as f64 * hop,
        (CollOp::Allgather, algo) => {
            // Gather is always root-linear; the rebroadcast carries all
            // P blocks.
            predict(CollOp::Reduce, CollectiveAlgo::Linear, p, n, m)
                + predict(CollOp::Bcast, algo, p, p * n, m)
        }
    }
}

/// Candidate algorithms per op. Bcast and reduce execute `Tree` and
/// `RecursiveDoubling` identically (one binomial-tree arm), so only
/// distinct wire patterns are scored.
fn candidates(op: CollOp) -> &'static [CollectiveAlgo] {
    match op {
        CollOp::Bcast | CollOp::Reduce => &[CollectiveAlgo::Linear, CollectiveAlgo::Tree],
        CollOp::Allreduce | CollOp::Allgather => &[
            CollectiveAlgo::Linear,
            CollectiveAlgo::Tree,
            CollectiveAlgo::RecursiveDoubling,
        ],
    }
}

/// Pick the cheapest algorithm for `op` and return it with its predicted
/// cost. The tie-break (strict `<` over a fixed candidate order) is
/// deterministic, so every rank resolves identically.
fn pick(op: CollOp, p: usize, n: usize, m: &NetworkModel) -> (CollectiveAlgo, f64) {
    let mut best = (CollectiveAlgo::Tree, f64::INFINITY);
    for &algo in candidates(op) {
        let cost = predict(op, algo, p, n, m);
        if cost < best.1 {
            best = (algo, cost);
        }
    }
    best
}

impl Comm {
    fn next_coll_tag(&self) -> Tag {
        let s = self.coll_seq.get();
        self.coll_seq.set(s.wrapping_add(1));
        MAX_USER_TAG + ((s as u32) & (MAX_USER_TAG - 1))
    }

    /// Allocate a tag from the same SPMD-ordered sequence the collectives
    /// use, for point-to-point exchanges that every rank nevertheless
    /// executes in the same order (communication-plan executions). Each
    /// execution gets a distinct tag, so back-to-back executions of
    /// identically-shaped plans can never cross-match — even when
    /// reliable delivery retransmits around a delayed message and
    /// per-sender arrival order is no longer FIFO.
    pub fn next_spmd_tag(&self) -> Tag {
        self.next_coll_tag()
    }

    /// Span start for a collective; `None` unless observability is on.
    fn coll_span(&self) -> Option<obs::span::SpanTimer> {
        if obs::enabled() {
            Some(obs::span::span_start(self.virtual_time()))
        } else {
            None
        }
    }

    /// Close a collective span, named `op(algo)`, e.g. `allreduce(tree)`.
    /// Composite collectives (linear/tree allreduce = reduce + bcast,
    /// exscan = scan + shift) nest their constituents' spans inside.
    /// `algo` is the algorithm actually run, so spans under `Auto` name
    /// the resolved choice.
    #[cold]
    fn coll_finish(&self, timer: obs::span::SpanTimer, op: &'static str, algo: CollectiveAlgo) {
        timer.finish(
            "comm",
            format!("{op}({})", algo.label()),
            self.virtual_time(),
            &[("ranks", self.size() as f64)],
        );
        obs::global()
            .counter(&obs::registry::key("comm.collectives", &[("op", op)]))
            .inc();
    }

    /// Resolve the configured algorithm for one collective call: fixed
    /// algorithms pass through untouched; `Auto` consults the LogGP
    /// model. `bytes` is the encoded payload size, or 0 for rooted
    /// collectives where non-root ranks cannot know it.
    fn resolve_algo(&self, op: CollOp, bytes: usize) -> CollectiveAlgo {
        match self.algo() {
            CollectiveAlgo::Auto => {
                let (algo, cost) = pick(op, self.size(), bytes, &self.model);
                if obs::enabled() {
                    self.obs_autotune(op, algo, cost);
                }
                algo
            }
            fixed => fixed,
        }
    }

    /// Record one autotune decision: which algorithm won, and the
    /// model's predicted makespan for it.
    #[cold]
    fn obs_autotune(&self, op: CollOp, algo: CollectiveAlgo, predicted_s: f64) {
        let g = obs::global();
        g.counter(&obs::registry::key(
            "comm.autotune.decision",
            &[("op", op.name()), ("algo", algo.label())],
        ))
        .inc();
        g.histogram(&obs::registry::key(
            "comm.autotune.predicted_ns",
            &[("op", op.name())],
        ))
        .record((predicted_s * 1e9) as u64);
    }

    /// Encoded size of `value`, measured through a pooled scratch buffer.
    /// Only the autotuner pays this; fixed algorithms never encode twice.
    fn payload_bytes<T: Wire>(&self, value: &T) -> usize {
        let mut buf = self.take_buf();
        value.encode(&mut buf);
        let n = buf.len();
        self.put_buf(buf);
        n
    }

    /// Payload size for resolving a symmetric (payload-aware) collective;
    /// 0 unless `Auto` is configured.
    fn auto_bytes<T: Wire>(&self, value: &T) -> usize {
        if self.algo() == CollectiveAlgo::Auto {
            self.payload_bytes(value)
        } else {
            0
        }
    }

    /// Block until every rank of the communicator has entered the barrier.
    /// Dissemination algorithm: ⌈log₂ P⌉ rounds.
    pub fn barrier(&self) {
        let timer = self.coll_span();
        self.barrier_impl();
        if let Some(t) = timer {
            self.coll_finish(t, "barrier", self.algo());
        }
    }

    fn barrier_impl(&self) {
        let size = self.size();
        if size == 1 {
            return;
        }
        let mut d = 1;
        while d < size {
            let tag = self.next_coll_tag();
            let to = (self.rank() + d) % size;
            let from = (self.rank() + size - d) % size;
            self.send(to, tag, &()).expect("barrier send");
            self.recv::<()>(Src::Rank(from), tag).expect("barrier recv");
            d <<= 1;
        }
    }

    /// Broadcast from `root`. The root passes `Some(value)`, everyone else
    /// `None`; all ranks return the value.
    pub fn bcast<T: Wire>(&self, root: usize, value: Option<T>) -> T {
        // Resolved payload-blind: only the root holds the payload, and
        // resolution must be identical on every rank.
        let algo = self.resolve_algo(CollOp::Bcast, 0);
        self.bcast_as(algo, root, value)
    }

    /// Run a bcast under an explicit algorithm. Composites pass their own
    /// resolved choice down so `Auto` decides once per user-visible call.
    fn bcast_as<T: Wire>(&self, algo: CollectiveAlgo, root: usize, value: Option<T>) -> T {
        let timer = self.coll_span();
        let out = self.bcast_impl(algo, root, value);
        if let Some(t) = timer {
            self.coll_finish(t, "bcast", algo);
        }
        out
    }

    fn bcast_impl<T: Wire>(&self, algo: CollectiveAlgo, root: usize, value: Option<T>) -> T {
        let size = self.size();
        if self.rank() == root {
            assert!(value.is_some(), "bcast root must supply a value");
        }
        if size == 1 {
            return value.expect("bcast root must supply a value");
        }
        let tag = self.next_coll_tag();
        match algo {
            CollectiveAlgo::Linear => {
                if self.rank() == root {
                    let v = value.unwrap();
                    for r in 0..size {
                        if r != root {
                            self.send(r, tag, &v).expect("bcast send");
                        }
                    }
                    v
                } else {
                    self.recv::<T>(Src::Rank(root), tag).expect("bcast recv").0
                }
            }
            CollectiveAlgo::Auto => unreachable!("Auto resolves before dispatch"),
            CollectiveAlgo::Tree | CollectiveAlgo::RecursiveDoubling => {
                // Binomial tree rooted at `root`.
                let rel = (self.rank() + size - root) % size;
                let v = if rel == 0 {
                    value.unwrap()
                } else {
                    let parent_rel = rel & (rel - 1); // clear lowest set bit
                    let parent = (parent_rel + root) % size;
                    self.recv::<T>(Src::Rank(parent), tag)
                        .expect("bcast recv")
                        .0
                };
                let lsb_bound = if rel == 0 {
                    size.next_power_of_two()
                } else {
                    rel & rel.wrapping_neg()
                };
                let mut k = 1;
                while k < lsb_bound {
                    let child_rel = rel + k;
                    if child_rel < size {
                        let child = (child_rel + root) % size;
                        self.send(child, tag, &v).expect("bcast send");
                    }
                    k <<= 1;
                }
                v
            }
        }
    }

    /// Reduce all ranks' values to `root` with `op`; only the root gets
    /// `Some(result)`. `op` must be associative.
    pub fn reduce<T, F>(&self, root: usize, value: &T, op: F) -> Option<T>
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let algo = self.resolve_algo(CollOp::Reduce, self.auto_bytes(value));
        self.reduce_as(algo, root, value, op)
    }

    /// Run a reduce under an explicit algorithm (see [`Comm::bcast_as`]).
    fn reduce_as<T, F>(&self, algo: CollectiveAlgo, root: usize, value: &T, op: F) -> Option<T>
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let timer = self.coll_span();
        let out = self.reduce_impl(algo, root, value, op);
        if let Some(t) = timer {
            self.coll_finish(t, "reduce", algo);
        }
        out
    }

    fn reduce_impl<T, F>(&self, algo: CollectiveAlgo, root: usize, value: &T, op: F) -> Option<T>
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let size = self.size();
        if size == 1 {
            return Some(value.clone());
        }
        let tag = self.next_coll_tag();
        match algo {
            CollectiveAlgo::Linear => {
                if self.rank() == root {
                    // Combine strictly in rank order for determinism.
                    let mut acc: Option<T> = None;
                    let mut inbox: Vec<Option<T>> = (0..size).map(|_| None).collect();
                    inbox[root] = Some(value.clone());
                    for (r, slot) in inbox.iter_mut().enumerate() {
                        if r != root {
                            let (v, _) = self.recv::<T>(Src::Rank(r), tag).expect("reduce recv");
                            *slot = Some(v);
                        }
                    }
                    for v in inbox.into_iter().flatten() {
                        acc = Some(match acc {
                            None => v,
                            Some(a) => op(&a, &v),
                        });
                    }
                    acc
                } else {
                    self.send(root, tag, value).expect("reduce send");
                    None
                }
            }
            CollectiveAlgo::Auto => unreachable!("Auto resolves before dispatch"),
            CollectiveAlgo::Tree | CollectiveAlgo::RecursiveDoubling => {
                // Binomial tree mirrored from bcast: leaves send first.
                let rel = (self.rank() + size - root) % size;
                let lsb_bound = if rel == 0 {
                    size.next_power_of_two()
                } else {
                    rel & rel.wrapping_neg()
                };
                let mut acc = value.clone();
                let mut k = 1;
                while k < lsb_bound {
                    let child_rel = rel + k;
                    if child_rel < size {
                        let child = (child_rel + root) % size;
                        let (v, _) = self.recv::<T>(Src::Rank(child), tag).expect("reduce recv");
                        acc = op(&acc, &v);
                    }
                    k <<= 1;
                }
                if rel == 0 {
                    Some(acc)
                } else {
                    let parent_rel = rel & (rel - 1);
                    let parent = (parent_rel + root) % size;
                    self.send(parent, tag, &acc).expect("reduce send");
                    None
                }
            }
        }
    }

    /// Reduce with `op` and give every rank the result.
    pub fn allreduce<T, F>(&self, value: &T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let algo = self.resolve_algo(CollOp::Allreduce, self.auto_bytes(value));
        let timer = self.coll_span();
        let out = self.allreduce_impl(algo, value, op);
        if let Some(t) = timer {
            self.coll_finish(t, "allreduce", algo);
        }
        out
    }

    fn allreduce_impl<T, F>(&self, algo: CollectiveAlgo, value: &T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let size = self.size();
        if size == 1 {
            return value.clone();
        }
        match algo {
            CollectiveAlgo::Auto => unreachable!("Auto resolves before dispatch"),
            CollectiveAlgo::Linear | CollectiveAlgo::Tree => {
                // The resolved algorithm is passed down so the composite
                // executes exactly one fixed algorithm end to end.
                let reduced = self.reduce_as(algo, 0, value, &op);
                self.bcast_as(algo, 0, reduced)
            }
            CollectiveAlgo::RecursiveDoubling => {
                // Allocate every tag up front, identically on every rank:
                // ranks folded away (≥ p2) skip the hypercube rounds but
                // must still advance the collective tag counter, or the
                // *next* collective deadlocks on mismatched tags.
                let tag = self.next_coll_tag();
                let rank = self.rank();
                let p2 = prev_power_of_two(size);
                let extra = size - p2;
                let mut round_tags = Vec::new();
                let mut m = 1;
                while m < p2 {
                    round_tags.push(self.next_coll_tag());
                    m <<= 1;
                }
                if rank >= p2 {
                    // Fold this rank onto its partner, then wait for result.
                    let sreq = self.isend(rank - p2, tag, value).expect("allreduce send");
                    let (v, _) = self
                        .recv::<T>(Src::Rank(rank - p2), tag)
                        .expect("allreduce recv");
                    self.wait(sreq).expect("allreduce send wait");
                    return v;
                }
                let mut acc = value.clone();
                if rank < extra {
                    let (v, _) = self
                        .recv::<T>(Src::Rank(rank + p2), tag)
                        .expect("allreduce recv");
                    acc = op(&acc, &v);
                }
                let mut mask = 1;
                let mut round = 0;
                while mask < p2 {
                    let round_tag = round_tags[round];
                    round += 1;
                    let partner = rank ^ mask;
                    // Post the outgoing block, receive the partner's, then
                    // settle the send: the outgoing serialization overlaps
                    // the wait for the incoming message.
                    let sreq = self
                        .isend(partner, round_tag, &acc)
                        .expect("allreduce send");
                    let rreq = self
                        .irecv(Src::Rank(partner), round_tag)
                        .expect("allreduce irecv");
                    let (theirs, _) = self.wait_recv::<T>(rreq).expect("allreduce recv");
                    self.wait(sreq).expect("allreduce send wait");
                    // Combine in rank order so all ranks compute the same
                    // bracketing even for merely-associative ops.
                    acc = if partner < rank {
                        op(&theirs, &acc)
                    } else {
                        op(&acc, &theirs)
                    };
                    mask <<= 1;
                }
                if rank < extra {
                    self.send(rank + p2, tag, &acc).expect("allreduce send");
                }
                acc
            }
        }
    }

    /// Gather every rank's value to `root`, in rank order.
    pub fn gather<T: Wire + Clone>(&self, root: usize, value: &T) -> Option<Vec<T>> {
        let timer = self.coll_span();
        let out = self.gather_impl(root, value);
        if let Some(t) = timer {
            self.coll_finish(t, "gather", self.algo());
        }
        out
    }

    fn gather_impl<T: Wire + Clone>(&self, root: usize, value: &T) -> Option<Vec<T>> {
        let size = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..size).map(|_| None).collect();
            out[root] = Some(value.clone());
            for (r, slot) in out.iter_mut().enumerate() {
                if r != root {
                    let (v, _) = self.recv::<T>(Src::Rank(r), tag).expect("gather recv");
                    *slot = Some(v);
                }
            }
            Some(out.into_iter().map(|v| v.unwrap()).collect())
        } else {
            self.send(root, tag, value).expect("gather send");
            None
        }
    }

    /// Gather every rank's value to every rank, in rank order.
    pub fn allgather<T: Wire + Clone>(&self, value: &T) -> Vec<T> {
        let algo = self.resolve_algo(CollOp::Allgather, self.auto_bytes(value));
        let timer = self.coll_span();
        let out = self.allgather_impl(algo, value);
        if let Some(t) = timer {
            self.coll_finish(t, "allgather", algo);
        }
        out
    }

    fn allgather_impl<T: Wire + Clone>(&self, algo: CollectiveAlgo, value: &T) -> Vec<T> {
        let size = self.size();
        if size == 1 {
            return vec![value.clone()];
        }
        match algo {
            CollectiveAlgo::Auto => unreachable!("Auto resolves before dispatch"),
            CollectiveAlgo::Linear | CollectiveAlgo::Tree => {
                let gathered = self.gather(0, value);
                self.bcast_as(algo, 0, gathered)
            }
            CollectiveAlgo::RecursiveDoubling => {
                // Ring algorithm: P-1 steps, each passing one block right.
                let rank = self.rank();
                let right = (rank + 1) % size;
                let left = (rank + size - 1) % size;
                let mut blocks: Vec<Option<T>> = (0..size).map(|_| None).collect();
                blocks[rank] = Some(value.clone());
                let mut carry = value.clone();
                for step in 0..size - 1 {
                    let tag = self.next_coll_tag();
                    // Request-layer ring step: the rightward send drains on
                    // the NIC while this rank waits on its left neighbor.
                    let sreq = self.isend(right, tag, &carry).expect("allgather send");
                    let rreq = self.irecv(Src::Rank(left), tag).expect("allgather irecv");
                    let (v, _) = self.wait_recv::<T>(rreq).expect("allgather recv");
                    self.wait(sreq).expect("allgather send wait");
                    let idx = (rank + size - step - 1) % size;
                    blocks[idx] = Some(v.clone());
                    carry = v;
                }
                blocks.into_iter().map(|v| v.unwrap()).collect()
            }
        }
    }

    /// Scatter one value per rank from `root` (root passes `Some(vec)` with
    /// exactly `size` entries); each rank returns its entry.
    pub fn scatter<T: Wire + Clone>(&self, root: usize, values: Option<Vec<T>>) -> T {
        let timer = self.coll_span();
        let out = self.scatter_impl(root, values);
        if let Some(t) = timer {
            self.coll_finish(t, "scatter", self.algo());
        }
        out
    }

    fn scatter_impl<T: Wire + Clone>(&self, root: usize, values: Option<Vec<T>>) -> T {
        let size = self.size();
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let values = values.expect("scatter root must supply values");
            assert_eq!(
                values.len(),
                size,
                "scatter requires exactly one value per rank"
            );
            let mut own = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    own = Some(v);
                } else {
                    self.send(r, tag, &v).expect("scatter send");
                }
            }
            own.unwrap()
        } else {
            self.recv::<T>(Src::Rank(root), tag)
                .expect("scatter recv")
                .0
        }
    }

    /// Personalized all-to-all: `outgoing[d]` is this rank's payload for
    /// rank `d`; returns `incoming[s]` = rank `s`'s payload for this rank.
    /// Pairwise-exchange schedule, `P-1` rounds plus a local move. Each
    /// per-peer payload is owned, so bulk exchanges ride the zero-copy
    /// region arm above the threshold (redistribution and triplet
    /// exchange are the heaviest alltoallv users).
    pub fn alltoallv<T>(&self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let timer = self.coll_span();
        let out = self.alltoallv_impl(outgoing);
        if let Some(t) = timer {
            self.coll_finish(t, "alltoallv", self.algo());
        }
        out
    }

    fn alltoallv_impl<T>(&self, mut outgoing: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let size = self.size();
        assert_eq!(
            outgoing.len(),
            size,
            "alltoallv requires one payload per destination"
        );
        let rank = self.rank();
        let mut incoming: Vec<Vec<T>> = (0..size).map(|_| Vec::new()).collect();
        incoming[rank] = std::mem::take(&mut outgoing[rank]);
        for shift in 1..size {
            let tag = self.next_coll_tag();
            let dest = (rank + shift) % size;
            let src = (rank + size - shift) % size;
            let sreq = self
                .isend_zc(dest, tag, std::mem::take(&mut outgoing[dest]))
                .expect("alltoall send");
            let (v, _) = self
                .recv_zc::<Vec<T>>(Src::Rank(src), tag)
                .expect("alltoall recv");
            self.wait(sreq).expect("alltoall send wait");
            incoming[src] = v;
        }
        incoming
    }

    /// Inclusive prefix reduction: rank `i` gets `op(v₀, …, vᵢ)`.
    /// Hillis–Steele: ⌈log₂ P⌉ rounds.
    pub fn scan<T, F>(&self, value: &T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let timer = self.coll_span();
        let out = self.scan_impl(value, op);
        if let Some(t) = timer {
            self.coll_finish(t, "scan", self.algo());
        }
        out
    }

    fn scan_impl<T, F>(&self, value: &T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let size = self.size();
        let rank = self.rank();
        let mut acc = value.clone();
        let mut d = 1;
        while d < size {
            let tag = self.next_coll_tag();
            if rank + d < size {
                self.send(rank + d, tag, &acc).expect("scan send");
            }
            if rank >= d {
                let (v, _) = self.recv::<T>(Src::Rank(rank - d), tag).expect("scan recv");
                acc = op(&v, &acc);
            }
            d <<= 1;
        }
        acc
    }

    /// Exclusive prefix reduction: rank `i` gets `op(v₀, …, vᵢ₋₁)`, rank 0
    /// gets `identity`.
    pub fn exscan<T, F>(&self, value: &T, identity: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let timer = self.coll_span();
        let out = self.exscan_impl(value, identity, op);
        if let Some(t) = timer {
            self.coll_finish(t, "exscan", self.algo());
        }
        out
    }

    fn exscan_impl<T, F>(&self, value: &T, identity: T, op: F) -> T
    where
        T: Wire + Clone,
        F: Fn(&T, &T) -> T,
    {
        let inclusive = self.scan(value, op);
        let size = self.size();
        let rank = self.rank();
        let tag = self.next_coll_tag();
        if rank + 1 < size {
            self.send(rank + 1, tag, &inclusive).expect("exscan send");
        }
        if rank == 0 {
            identity
        } else {
            self.recv::<T>(Src::Rank(rank - 1), tag)
                .expect("exscan recv")
                .0
        }
    }
}

fn prev_power_of_two(n: usize) -> usize {
    debug_assert!(n > 0);
    let npot = n.next_power_of_two();
    if npot == n {
        n
    } else {
        npot / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};

    fn all_algos() -> [CollectiveAlgo; 4] {
        [
            CollectiveAlgo::Linear,
            CollectiveAlgo::Tree,
            CollectiveAlgo::RecursiveDoubling,
            CollectiveAlgo::Auto,
        ]
    }

    fn run_with_algo<R, F>(size: usize, algo: CollectiveAlgo, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut crate::Comm) -> R + Send + Sync,
    {
        let cfg = UniverseConfig {
            algo,
            ..Default::default()
        };
        Universe::run_report(cfg, size, f).results
    }

    #[test]
    fn barrier_completes_for_various_sizes() {
        for size in [1, 2, 3, 5, 8] {
            Universe::run(size, |comm| comm.barrier());
        }
    }

    #[test]
    fn bcast_all_algos_all_roots() {
        for algo in all_algos() {
            for size in [1, 2, 3, 4, 7] {
                for root in 0..size {
                    let out = run_with_algo(size, algo, move |comm| {
                        let v = if comm.rank() == root {
                            Some(vec![root as u64, 99])
                        } else {
                            None
                        };
                        comm.bcast(root, v)
                    });
                    for v in out {
                        assert_eq!(v, vec![root as u64, 99], "algo {algo:?} size {size}");
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_sum_matches_formula() {
        for algo in all_algos() {
            for size in [1, 2, 3, 6, 9] {
                for root in [0, size - 1] {
                    let out = run_with_algo(size, algo, move |comm| {
                        comm.reduce(root, &(comm.rank() as i64 + 1), ReduceOp::sum())
                    });
                    let expect = (size * (size + 1) / 2) as i64;
                    for (r, v) in out.into_iter().enumerate() {
                        if r == root {
                            assert_eq!(v, Some(expect), "algo {algo:?} size {size}");
                        } else {
                            assert_eq!(v, None);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_min_max_all_algos() {
        for algo in all_algos() {
            for size in [1, 2, 5, 8] {
                let out = run_with_algo(size, algo, move |comm| {
                    let v = comm.rank() as f64 - 2.0;
                    (
                        comm.allreduce(&v, ReduceOp::min()),
                        comm.allreduce(&v, ReduceOp::max()),
                    )
                });
                for (mn, mx) in out {
                    assert_eq!(mn, -2.0);
                    assert_eq!(mx, size as f64 - 3.0);
                }
            }
        }
    }

    #[test]
    fn consecutive_collectives_stay_in_sync_non_power_of_two() {
        // Regression: recursive-doubling allreduce must consume the same
        // number of collective tags on every rank, or the next collective
        // deadlocks. Run several back-to-back on awkward sizes.
        for size in [3, 5, 6, 7] {
            let out = run_with_algo(size, CollectiveAlgo::RecursiveDoubling, move |comm| {
                let a = comm.allreduce(&(comm.rank() as i64), ReduceOp::min());
                let b = comm.allreduce(&(comm.rank() as i64), ReduceOp::max());
                let c = comm.allreduce(&1i64, ReduceOp::sum());
                comm.barrier();
                let d = comm.allgather(&comm.rank());
                (a, b, c, d.len())
            });
            for (a, b, c, d) in out {
                assert_eq!(a, 0);
                assert_eq!(b, size as i64 - 1);
                assert_eq!(c, size as i64);
                assert_eq!(d, size);
            }
        }
    }

    #[test]
    fn allreduce_non_power_of_two_recursive_doubling() {
        for size in [3, 5, 6, 7] {
            let out = run_with_algo(size, CollectiveAlgo::RecursiveDoubling, move |comm| {
                comm.allreduce(&(1u64 << comm.rank()), |a, b| a | b)
            });
            for v in out {
                assert_eq!(v, (1u64 << size) - 1, "size {size}");
            }
        }
    }

    #[test]
    fn gather_orders_by_rank() {
        let out = Universe::run(4, |comm| comm.gather(2, &(comm.rank() as u32 * 10)));
        assert_eq!(out[2], Some(vec![0, 10, 20, 30]));
        assert_eq!(out[0], None);
    }

    #[test]
    fn allgather_all_algos() {
        for algo in all_algos() {
            for size in [1, 2, 3, 5, 8] {
                let out = run_with_algo(size, algo, move |comm| {
                    comm.allgather(&format!("r{}", comm.rank()))
                });
                let expect: Vec<String> = (0..size).map(|r| format!("r{r}")).collect();
                for v in out {
                    assert_eq!(v, expect, "algo {algo:?} size {size}");
                }
            }
        }
    }

    #[test]
    fn scatter_delivers_per_rank_values() {
        let out = Universe::run(3, |comm| {
            let vals = if comm.rank() == 1 {
                Some(vec![vec![0i32], vec![1, 1], vec![2, 2, 2]])
            } else {
                None
            };
            comm.scatter(1, vals)
        });
        assert_eq!(out, vec![vec![0], vec![1, 1], vec![2, 2, 2]]);
    }

    #[test]
    fn alltoallv_transposes_payloads() {
        let size = 4;
        let out = Universe::run(size, move |comm| {
            let outgoing: Vec<Vec<u64>> = (0..size)
                .map(|d| vec![(comm.rank() * 100 + d) as u64])
                .collect();
            comm.alltoallv(outgoing)
        });
        for (r, incoming) in out.iter().enumerate() {
            for (s, payload) in incoming.iter().enumerate() {
                assert_eq!(payload, &vec![(s * 100 + r) as u64]);
            }
        }
    }

    #[test]
    fn scan_computes_inclusive_prefix() {
        for size in [1, 2, 3, 7, 8] {
            let out = Universe::run(size, |comm| {
                comm.scan(&((comm.rank() + 1) as i64), ReduceOp::sum())
            });
            for (r, v) in out.into_iter().enumerate() {
                assert_eq!(v, ((r + 1) * (r + 2) / 2) as i64, "size {size}");
            }
        }
    }

    #[test]
    fn exscan_computes_exclusive_prefix() {
        let out = Universe::run(5, |comm| {
            comm.exscan(&((comm.rank() + 1) as i64), 0, ReduceOp::sum())
        });
        assert_eq!(out, vec![0, 1, 3, 6, 10]);
    }

    #[test]
    fn scan_with_noncommutative_op_is_ordered() {
        // String concatenation is associative but not commutative.
        let out = Universe::run(4, |comm| {
            comm.scan(&comm.rank().to_string(), |a: &String, b: &String| {
                format!("{a}{b}")
            })
        });
        assert_eq!(out, vec!["0", "01", "012", "0123"]);
    }

    #[test]
    fn tree_beats_linear_in_the_right_regimes_modeled() {
        let time = |algo, ranks: usize, bytes: usize| {
            let cfg = UniverseConfig {
                algo,
                ..Default::default()
            };
            Universe::run_report(cfg, ranks, move |comm| {
                let v = if comm.rank() == 0 {
                    Some(vec![0u8; bytes])
                } else {
                    None
                };
                comm.bcast(0, v);
            })
            .makespan_s
        };
        // Bandwidth-bound: the root serializes P−1 copies in a linear
        // bcast; the binomial tree spreads the load.
        let linear = time(CollectiveAlgo::Linear, 16, 256 * 1024);
        let tree = time(CollectiveAlgo::Tree, 16, 256 * 1024);
        assert!(
            tree < linear,
            "256KiB: tree ({tree:.2e}s) should beat linear ({linear:.2e}s)"
        );
        // Overhead-bound at large P: P·o from the root vs log₂(P) rounds.
        let linear = time(CollectiveAlgo::Linear, 128, 8);
        let tree = time(CollectiveAlgo::Tree, 128, 8);
        assert!(
            tree < linear,
            "128 ranks: tree ({tree:.2e}s) should beat linear ({linear:.2e}s)"
        );
        // Small message, small P: linear legitimately wins (store-and-
        // forward hops each pay the full wire latency) — document the
        // crossover rather than pretending trees always win.
        let linear = time(CollectiveAlgo::Linear, 8, 8);
        let tree = time(CollectiveAlgo::Tree, 8, 8);
        assert!(linear <= tree, "8 ranks / 8 bytes: linear should win");
    }

    #[test]
    fn auto_picks_match_measured_regimes() {
        // The analytic model must reproduce the crossovers the simulator
        // measures in `tree_beats_linear_in_the_right_regimes_modeled`.
        let m = NetworkModel::default();
        // Payload-blind bcast: linear wins small P, tree wins large P.
        assert_eq!(pick(CollOp::Bcast, 8, 0, &m).0, CollectiveAlgo::Linear);
        assert_eq!(pick(CollOp::Bcast, 128, 0, &m).0, CollectiveAlgo::Tree);
        // Bandwidth-bound bcast: the root's serialized copies lose.
        assert_eq!(
            pick(CollOp::Bcast, 16, 256 * 1024, &m).0,
            CollectiveAlgo::Tree
        );
        // Recursive doubling owns large-payload allreduce (log₂ P rounds
        // of n bytes vs 2·log₂ P for reduce+bcast).
        assert_eq!(
            pick(CollOp::Allreduce, 16, 128 * 1024, &m).0,
            CollectiveAlgo::RecursiveDoubling
        );
        // Every pick is deterministic and carries a finite cost.
        for op in [
            CollOp::Bcast,
            CollOp::Reduce,
            CollOp::Allreduce,
            CollOp::Allgather,
        ] {
            for p in [2usize, 3, 5, 8, 64] {
                for n in [0usize, 8, 4096] {
                    let (a, c) = pick(op, p, n, &m);
                    assert_eq!((a, c), pick(op, p, n, &m));
                    assert!(c.is_finite() && a != CollectiveAlgo::Auto);
                }
            }
        }
    }

    #[test]
    fn auto_stays_in_sync_across_mixed_collectives() {
        // Auto must consume collective tags identically on every rank
        // even when consecutive calls resolve to different algorithms.
        for size in [1, 2, 3, 5, 8] {
            let out = run_with_algo(size, CollectiveAlgo::Auto, move |comm| {
                let s = comm.allreduce(&(comm.rank() as u64 + 1), ReduceOp::sum());
                let g = comm.allgather(&(comm.rank() as u32));
                let b = comm.bcast(0, (comm.rank() == 0).then(|| vec![7u8; 1024]));
                let r = comm.reduce(size - 1, &1i64, ReduceOp::sum());
                comm.barrier();
                (s, g, b, r)
            });
            for (rank, (s, g, b, r)) in out.into_iter().enumerate() {
                assert_eq!(s, (size * (size + 1) / 2) as u64);
                assert_eq!(g, (0..size as u32).collect::<Vec<_>>());
                assert_eq!(b, vec![7u8; 1024]);
                let expect = (rank == size - 1).then_some(size as i64);
                assert_eq!(r, expect, "size {size} rank {rank}");
            }
        }
    }

    #[test]
    fn vec_sum_reduces_elementwise() {
        let out = Universe::run(3, |comm| {
            let v = vec![comm.rank() as i64; 4];
            comm.allreduce(&v, ReduceOp::vec_sum())
        });
        for v in out {
            assert_eq!(v, vec![3, 3, 3, 3]);
        }
    }
}
