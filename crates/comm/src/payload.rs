//! Two-arm message payload: encoded wire bytes, or a transferable region.
//!
//! Ranks are threads in one process, so a large payload never needs to be
//! serialized at all: above [`Comm::zerocopy_threshold`](crate::Comm) the
//! send path wraps the typed value in an [`Arc`]-backed [`Region`] and
//! moves the *handle* through the mailbox. The receiver downcasts and
//! (when it holds the last handle) takes ownership back out — zero
//! serialize, zero memcpy. Small and control messages keep the encoded
//! wire path, whose sizes experiment E2 measures.
//!
//! ## Virtual-time and checksum semantics
//!
//! A region still *models* as the bytes it would have occupied on a real
//! cluster's wire: every region carries its exact encoded-equivalent size
//! ([`Region::wire_bytes`], computed by [`Wire::wire_size`](crate::Wire)),
//! and the LogGP clock, [`Status::bytes`](crate::Status), and the
//! byte-counting stats all charge that size. Scaling shapes (E2/E9/E17)
//! are therefore bitwise independent of which arm a message took.
//!
//! FNV checksumming is **wire-path-only**: a region handle has no byte
//! image to corrupt in flight, so region envelopes carry checksum 0 and
//! intake verification applies only to the [`Payload::Bytes`] arm. A
//! `Corrupt` fault landing on a region send is skipped and counted in
//! [`CommStats::corrupt_skipped_region`](crate::CommStats) — never
//! silently half-applied. Drop/duplicate/delay faults act on the mailbox,
//! not the bytes, and apply to both arms.

use std::any::Any;
use std::sync::Arc;

use crate::error::CommError;

/// Payload size (encoded-equivalent bytes) at or above which the typed
/// send paths switch from encoding to region transfer, unless overridden
/// via [`UniverseConfig::zerocopy_threshold`](crate::UniverseConfig).
pub const DEFAULT_ZEROCOPY_THRESHOLD: usize = 4096;

/// An `Arc`-backed handle to a typed value moving between ranks without
/// serialization. The concrete type is erased so one mailbox carries any
/// payload; the receiver recovers it by downcast.
pub struct Region {
    data: Arc<dyn Any + Send + Sync>,
    /// Exact size of this value's wire encoding, had it been encoded.
    wire_bytes: usize,
    /// Optional FNV-1a digest of the value's wire encoding, stamped at
    /// send time when [`UniverseConfig::region_integrity`](crate::UniverseConfig)
    /// is on and re-verified at typed receives. `None` (the default)
    /// skips verification entirely.
    integrity: Option<u64>,
}

impl Region {
    /// Wrap `value` for transfer, recording its encoded-equivalent size
    /// (callers pass `value.wire_size()`).
    pub fn new<T: Send + Sync + 'static>(value: T, wire_bytes: usize) -> Region {
        Region {
            data: Arc::new(value),
            wire_bytes,
            integrity: None,
        }
    }

    /// Stamp an FNV-1a digest of the value's wire encoding onto the
    /// region (see [`Region::integrity`]).
    #[must_use]
    pub fn with_integrity(mut self, digest: u64) -> Region {
        self.integrity = Some(digest);
        self
    }

    /// The integrity digest stamped at send time, if any.
    pub fn integrity(&self) -> Option<u64> {
        self.integrity
    }

    /// The exact number of bytes this value would occupy on the wire —
    /// what the LogGP clock and byte counters charge for the transfer.
    pub fn wire_bytes(&self) -> usize {
        self.wire_bytes
    }

    /// Borrow the transported value, if it is a `T`.
    pub fn downcast_ref<T: Any>(&self) -> Option<&T> {
        self.data.downcast_ref::<T>()
    }

    /// Take the transported value, if it is a `T`. Ownership transfers
    /// without a copy when this is the last handle; otherwise (e.g. the
    /// sender's reliable-delivery retransmit copy is still unacked) the
    /// value is cloned — a memcpy, still far cheaper than encode+decode.
    pub fn take<T: Any + Send + Sync + Clone>(self) -> Option<T> {
        let arc = self.data.downcast::<T>().ok()?;
        Some(Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
    }
}

impl Clone for Region {
    fn clone(&self) -> Self {
        Region {
            data: Arc::clone(&self.data),
            wire_bytes: self.wire_bytes,
            integrity: self.integrity,
        }
    }
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Region({} wire bytes)", self.wire_bytes)
    }
}

/// The message body: encoded wire bytes (small/control messages) or a
/// transferable region handle (bulk data at or above the threshold).
#[derive(Debug, Clone)]
pub enum Payload {
    /// The encoded wire path: bytes produced by [`Wire::encode`](crate::Wire).
    Bytes(Vec<u8>),
    /// The zero-copy path: an owned value moved by handle.
    Region(Region),
}

impl Payload {
    /// Encoded-equivalent size in bytes — identical for both arms, by
    /// construction, so every clock/stats charge is arm-independent.
    pub fn wire_len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Region(r) => r.wire_bytes(),
        }
    }

    /// Did this payload travel as a region handle?
    pub fn is_region(&self) -> bool {
        matches!(self, Payload::Region(_))
    }

    /// Unwrap the wire-bytes arm. A region arriving at a receive that
    /// only understands bytes is a pairing bug (the sender chose zero
    /// copy where the receiver cannot accept it) and surfaces as a typed
    /// decode error rather than a panic.
    pub fn into_wire_bytes(self) -> Result<Vec<u8>, CommError> {
        match self {
            Payload::Bytes(b) => Ok(b),
            Payload::Region(r) => Err(CommError::Decode(format!(
                "zero-copy region ({} wire bytes) arrived at a wire-bytes-only receive; \
                 pair region sends with a `_zc` receive",
                r.wire_bytes()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_transfers_ownership_without_copy() {
        let v = vec![1.0f64; 1000];
        let ptr = v.as_ptr();
        let r = Region::new(v, 8008);
        assert_eq!(r.wire_bytes(), 8008);
        let back: Vec<f64> = r.take().unwrap();
        // Sole handle: the allocation moved, it was not cloned.
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back.len(), 1000);
    }

    #[test]
    fn shared_region_falls_back_to_clone() {
        let r = Region::new(vec![7u64; 4], 40);
        let held = r.clone();
        let back: Vec<u64> = r.take().unwrap();
        assert_eq!(back, vec![7u64; 4]);
        assert_eq!(held.downcast_ref::<Vec<u64>>().unwrap()[0], 7);
    }

    #[test]
    fn downcast_to_wrong_type_fails() {
        let r = Region::new(vec![1u8; 3], 11);
        assert!(r.downcast_ref::<Vec<f64>>().is_none());
        assert!(r.take::<Vec<f64>>().is_none());
    }

    #[test]
    fn payload_wire_len_is_arm_independent() {
        assert_eq!(Payload::Bytes(vec![0u8; 88]).wire_len(), 88);
        assert_eq!(
            Payload::Region(Region::new(vec![0.0f64; 10], 88)).wire_len(),
            88
        );
    }

    #[test]
    fn region_at_bytes_receive_is_a_typed_error() {
        let p = Payload::Region(Region::new(vec![0u8; 8], 16));
        assert!(matches!(
            p.into_wire_bytes(),
            Err(CommError::Decode(msg)) if msg.contains("zero-copy")
        ));
    }
}
