//! Nonblocking point-to-point requests: `isend`/`irecv` + `wait`/`test`.
//!
//! This is the message-passing core; the blocking [`Comm::send`]/
//! [`Comm::recv`]/[`Comm::sendrecv`] calls (and the ring / recursive-
//! doubling collectives) are thin wrappers that post a request and wait on
//! it immediately. Posting and completing are split so callers can overlap
//! communication with modeled compute ([`Comm::advance_compute`]).
//!
//! ## Virtual-time rules (LogGP, extended for overlap)
//!
//! * **`isend`** charges the sender only the CPU overhead `o` of posting.
//!   Serialization happens "on the NIC": the message occupies the wire from
//!   `max(clock, nic_free)` for `bytes·G` seconds, and consecutive posted
//!   sends queue behind each other (`nic_free` tracks when the NIC drains).
//!   A blocked-on immediately (`send`) request therefore costs exactly the
//!   old blocking `o + bytes·G`.
//! * **`wait` on a send** advances the clock to the departure time if the
//!   clock has not already passed it. Any wire time the clock *did* pass —
//!   because the rank computed while the NIC drained — is counted as
//!   [`CommStats::overlap_s`](crate::CommStats::overlap_s) instead of stall time.
//! * **`irecv`** is free to post; it only records the posting clock.
//! * **`wait` on a receive** applies the blocking delivery rule
//!   `clock = max(clock, depart + L) + o`, but the charge is measured from
//!   the *wait* clock, not the *post* clock. The difference — flight time
//!   that elapsed while this rank computed between post and wait — is
//!   credited to `overlap_s`. A receive waited immediately costs exactly
//!   the old blocking receive.
//!
//! `overlap_s` is therefore "modeled seconds of communication hidden
//! behind compute", the quantity experiment E17 reports; it is also
//! exported as the `comm.overlap_s{rank=…}` gauge when metrics are on.
//!
//! Tag matching is unchanged: a request matches `(ctx, tag, src)` with the
//! same pending-queue scan as blocking receives, so nonblocking and
//! blocking traffic interleave safely on one communicator. Matching
//! happens at `test`/`wait` time; waiting on same-`(src, tag)` requests in
//! post order reproduces MPI's posted-receive order. Dropping an unwaited
//! receive request does not consume a message (the envelope stays
//! available to later receives).

use std::time::{Duration, Instant};

use crate::comm::{Comm, Envelope, Src, Status, Tag};
use crate::error::CommError;
use crate::payload::{Payload, Region};
use crate::wire::{decode_from_slice, Wire};

/// Payload of a completed request: `None` for sends, the received message
/// for receives. The payload carries either encoded wire bytes or a
/// zero-copy region handle (see the [`crate::payload`] module); typed
/// receives ([`Comm::wait_recv_zc`]) accept both arms transparently.
pub type Completion = Option<(Payload, Status)>;

/// Delivery timing captured for span attribution (tracing only).
#[derive(Debug, Clone, Copy)]
pub(crate) struct RecvTiming {
    /// Virtual arrival time at this rank (`depart + L`).
    pub(crate) arrive: f64,
    /// Seconds the wait actually blocked (`max(arrive − wait_clock, 0)`).
    pub(crate) blocked: f64,
    /// Total clock advance of the delivery (`blocked + o`).
    pub(crate) adv: f64,
}

pub(crate) enum ReqInner {
    Send {
        /// Clock right after posting (post cost `o` already charged).
        post_end: f64,
        /// When the NIC finishes serializing this message.
        depart: f64,
        /// Departure time actually stamped on the envelope: `depart`
        /// plus any injected delay fault. The sender's clock never
        /// waits for an in-flight delay, so `depart` settles the clock
        /// while `sent_depart` feeds span attribution — the receiver's
        /// critical-path hop charges the gap to this sender as blocked
        /// time instead of mistaking it for wire latency.
        sent_depart: f64,
        /// Pure serialization time `bytes·G` (for span attribution).
        wire: f64,
    },
    Recv {
        src: Src,
        tag: Tag,
        /// Clock when the receive was posted.
        posted_at: f64,
        /// Envelope claimed by a successful `test`, delivered at `wait`.
        ready: Option<Envelope>,
    },
}

/// Handle to an in-flight nonblocking operation. Complete it with
/// [`Comm::wait`] (or [`Comm::waitall`]/[`Comm::waitany`]) on the same
/// communicator that created it.
#[must_use = "a dropped request is never completed: wait on it (or the \
              virtual clock silently loses the operation's cost)"]
pub struct Request {
    pub(crate) inner: ReqInner,
    /// Communicator context, to catch cross-communicator waits in debug.
    pub(crate) ctx: u64,
    /// Span covering the request lifetime (post → complete).
    pub(crate) timer: Option<obs::span::SpanTimer>,
    /// Span name: `isend`/`irecv`, or `send`/`recv` for blocking wrappers.
    pub(crate) span_name: &'static str,
    /// Flow id stamped on the outgoing message (sends, tracing enabled).
    pub(crate) flow: u64,
}

impl Request {
    /// Is this a send request? (Sends are always complete: payloads are
    /// buffered at post time, so `wait` only settles the virtual clock.)
    pub fn is_send(&self) -> bool {
        matches!(self.inner, ReqInner::Send { .. })
    }
}

impl Comm {
    /// Post a nonblocking raw-bytes send. See the module docs for the
    /// virtual-time rules.
    pub fn isend_bytes(&self, dest: usize, tag: Tag, bytes: Vec<u8>) -> Result<Request, CommError> {
        self.isend_bytes_named(dest, tag, bytes, "isend")
    }

    /// Post a nonblocking typed send. Encodes into a pooled wire buffer.
    pub fn isend<T: Wire>(&self, dest: usize, tag: Tag, value: &T) -> Result<Request, CommError> {
        let mut buf = self.take_buf();
        value.encode(&mut buf);
        self.isend_bytes_named(dest, tag, buf, "isend")
    }

    /// Post a nonblocking typed send of an *owned* value, taking the
    /// zero-copy region arm when the encoded size reaches
    /// [`Comm::zerocopy_threshold`]: the value moves through the mailbox
    /// as an `Arc` handle, with no serialization or memcpy. Below the
    /// threshold this is exactly [`Comm::isend`]. Either way the LogGP
    /// clock charges the same modeled `o + wire_size·G`, so scaling
    /// shapes do not depend on the threshold. Pair the receive with
    /// [`Comm::wait_recv_zc`]/[`Comm::recv_zc`], which accept both arms.
    pub fn isend_zc<T>(&self, dest: usize, tag: Tag, value: T) -> Result<Request, CommError>
    where
        T: Wire + Send + Sync + 'static,
    {
        let n = value.wire_size();
        if n < self.zerocopy_threshold() {
            let mut buf = self.take_buf();
            value.encode(&mut buf);
            debug_assert_eq!(buf.len(), n, "wire_size disagrees with encode");
            self.isend_bytes_named(dest, tag, buf, "isend")
        } else {
            let region = if self.region_integrity() {
                // Opt-in: serialize once anyway, to stamp the region with
                // a digest the typed receive re-derives and checks.
                let digest = self.region_digest(&value);
                Region::new(value, n).with_integrity(digest)
            } else {
                Region::new(value, n)
            };
            self.isend_payload_named(dest, tag, Payload::Region(region), "isend")
        }
    }

    /// FNV-1a over `value`'s wire encoding (the integrity-check digest).
    fn region_digest<T: Wire>(&self, value: &T) -> u64 {
        let mut buf = self.take_buf();
        value.encode(&mut buf);
        let digest = crate::fault::checksum(&buf);
        self.put_buf(buf);
        digest
    }

    pub(crate) fn isend_bytes_named(
        &self,
        dest: usize,
        tag: Tag,
        bytes: Vec<u8>,
        span_name: &'static str,
    ) -> Result<Request, CommError> {
        self.isend_payload_named(dest, tag, Payload::Bytes(bytes), span_name)
    }

    pub(crate) fn isend_payload_named(
        &self,
        dest: usize,
        tag: Tag,
        payload: Payload,
        span_name: &'static str,
    ) -> Result<Request, CommError> {
        self.check_rank(dest)?;
        self.fault_tick()?;
        let n = payload.wire_len();
        let state = &self.state;
        let posted_at = state.clock.get();
        // CPU cost of posting; wire serialization runs on the NIC and can
        // overlap compute until `wait` settles the clock.
        let post_end = posted_at + self.model.overhead_s;
        state.clock.set(post_end);
        let ser_start = post_end.max(state.nic_free.get());
        let depart = ser_start + n as f64 * self.model.seconds_per_byte;
        state.nic_free.set(depart);
        let zerocopy = payload.is_region();
        {
            let mut st = state.stats.borrow_mut();
            st.msgs_sent += 1;
            st.bytes_sent += n as u64;
            st.modeled_comm_s += self.model.overhead_s;
            if zerocopy {
                st.zerocopy_msgs += 1;
                st.zerocopy_bytes += n as u64;
            }
        }
        // Flow ids only exist while tracing: the disabled path stays one
        // relaxed load, and flow 0 means "no causal edge" downstream.
        let (timer, flow) = if obs::enabled() {
            self.obs_count_send(n, zerocopy, dest, tag);
            let seq = state.flow_seq.get() + 1;
            state.flow_seq.set(seq);
            (
                Some(obs::span::span_start(posted_at)),
                obs::flow::data(state.flow_domain, seq),
            )
        } else {
            (None, obs::flow::NONE)
        };
        let sent_depart = self.transmit_fresh(dest, tag, depart, payload, flow)?;
        Ok(Request {
            inner: ReqInner::Send {
                post_end,
                depart,
                sent_depart,
                wire: n as f64 * self.model.seconds_per_byte,
            },
            ctx: self.ctx,
            timer,
            span_name,
            flow,
        })
    }

    /// Post a nonblocking receive matching `(src, tag)`.
    pub fn irecv(&self, src: Src, tag: Tag) -> Result<Request, CommError> {
        self.irecv_named(src, tag, "irecv")
    }

    pub(crate) fn irecv_named(
        &self,
        src: Src,
        tag: Tag,
        span_name: &'static str,
    ) -> Result<Request, CommError> {
        if let Src::Rank(r) = src {
            self.check_rank(r)?;
        }
        self.fault_tick()?;
        let posted_at = self.state.clock.get();
        let timer = if obs::enabled() {
            Some(obs::span::span_start(posted_at))
        } else {
            None
        };
        Ok(Request {
            inner: ReqInner::Recv {
                src,
                tag,
                posted_at,
                ready: None,
            },
            ctx: self.ctx,
            timer,
            span_name,
            flow: obs::flow::NONE,
        })
    }

    /// Nonblocking completion check. Sends are always complete; a receive
    /// completes once a matching message is available (the message is then
    /// claimed by this request, and `wait` will deliver it without
    /// blocking). Never advances the virtual clock.
    pub fn test(&self, req: &mut Request) -> bool {
        debug_assert_eq!(
            req.ctx, self.ctx,
            "request tested on a different communicator"
        );
        match &mut req.inner {
            ReqInner::Send { .. } => true,
            ReqInner::Recv {
                src, tag, ready, ..
            } => {
                if ready.is_some() {
                    return true;
                }
                // Drain the mailbox without blocking, then claim a match.
                self.drain_mailbox();
                self.pump_retransmits();
                let mut pending = self.state.pending.borrow_mut();
                if let Some(i) = pending.iter().position(|e| self.matches(e, *src, *tag)) {
                    *ready = Some(pending.remove(i));
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Complete a request, blocking if necessary. Returns the received
    /// message for receives, `None` for sends. Honors the universe's stall
    /// deadline (see [`CommError::Stalled`]).
    pub fn wait(&self, req: Request) -> Result<Completion, CommError> {
        self.wait_deadline(req, self.state.stall_timeout.get())
    }

    /// Complete a receive request and decode its payload. The delivered
    /// wire buffer is recycled into this rank's pool. A region arrival
    /// surfaces as a decode error — pair zero-copy sends with
    /// [`Comm::wait_recv_zc`], which handles both arms.
    pub fn wait_recv<T: Wire>(&self, req: Request) -> Result<(T, Status), CommError> {
        debug_assert!(!req.is_send(), "wait_recv on a send request");
        let (payload, status) = self
            .wait(req)?
            .expect("receive completion carries a payload");
        let bytes = payload.into_wire_bytes()?;
        let value = decode_from_slice(&bytes)?;
        self.put_buf(bytes);
        Ok((value, status))
    }

    /// Complete a receive request whose sender may have used either
    /// payload arm: wire bytes decode exactly like [`Comm::wait_recv`];
    /// a region downcasts to `T` and transfers ownership of the value —
    /// no copy when this is the last handle, one clone when the sender's
    /// reliable-delivery retransmit copy is still unacked.
    pub fn wait_recv_zc<T>(&self, req: Request) -> Result<(T, Status), CommError>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        debug_assert!(!req.is_send(), "wait_recv_zc on a send request");
        let (payload, status) = self
            .wait(req)?
            .expect("receive completion carries a payload");
        match payload {
            Payload::Bytes(bytes) => {
                let value = decode_from_slice(&bytes)?;
                self.put_buf(bytes);
                Ok((value, status))
            }
            Payload::Region(region) => {
                let stamped = region.integrity();
                let value = region.take::<T>().ok_or_else(|| {
                    CommError::Decode(format!(
                        "region payload is not a {}",
                        std::any::type_name::<T>()
                    ))
                })?;
                if let Some(expect) = stamped {
                    self.state.stats.borrow_mut().region_integrity_checked += 1;
                    if obs::enabled() {
                        self.obs_fault_counter("comm.region_integrity_checked");
                    }
                    if self.region_digest(&value) != expect {
                        return Err(CommError::Corrupt {
                            rank: self.state.world_rank,
                            src: self.global_rank_of(status.src),
                            tag: status.tag,
                        });
                    }
                }
                Ok((value, status))
            }
        }
    }

    pub(crate) fn wait_deadline(
        &self,
        req: Request,
        deadline: Option<Duration>,
    ) -> Result<Completion, CommError> {
        debug_assert_eq!(
            req.ctx, self.ctx,
            "request waited on a different communicator"
        );
        let state = &self.state;
        match req.inner {
            ReqInner::Send {
                post_end,
                depart,
                sent_depart,
                wire,
            } => {
                let clock = state.clock.get();
                // Wire time the clock already passed was hidden by compute.
                let charge = (depart - clock).max(0.0);
                let overlap = (depart - post_end) - charge;
                state.clock.set(clock.max(depart));
                {
                    let mut st = state.stats.borrow_mut();
                    st.modeled_comm_s += charge;
                    st.overlap_s += overlap;
                }
                if let Some(t) = req.timer {
                    self.obs_request_done(
                        t,
                        req.span_name,
                        overlap,
                        post_end,
                        sent_depart,
                        wire,
                        req.flow,
                    );
                }
                Ok(None)
            }
            ReqInner::Recv {
                src,
                tag,
                posted_at,
                ready,
            } => {
                let env = match ready {
                    Some(env) => env,
                    None => self.claim_matching(src, tag, deadline)?,
                };
                if env.corrupt {
                    return Err(CommError::Corrupt {
                        rank: self.state.world_rank,
                        src: env.gsrc,
                        tag: env.tag,
                    });
                }
                let flow_in = env.flow;
                let (out, timing) = self.deliver_posted(env, posted_at);
                if let Some(t) = req.timer {
                    self.obs_count_recv(t, req.span_name, &out.1, flow_in, timing);
                }
                Ok(Some(out))
            }
        }
    }

    /// Find (or block for) an envelope matching `(src, tag)`, honoring an
    /// optional stall deadline. While this rank has unacked reliable
    /// sends, the block is chopped into short ticks so the retransmit
    /// pump keeps running (a blocked sender must still heal drops).
    fn claim_matching(
        &self,
        src: Src,
        tag: Tag,
        deadline: Option<Duration>,
    ) -> Result<Envelope, CommError> {
        {
            let mut pending = self.state.pending.borrow_mut();
            if let Some(i) = pending.iter().position(|e| self.matches(e, src, tag)) {
                return Ok(pending.remove(i));
            }
        }
        let t0 = Instant::now();
        loop {
            self.pump_retransmits();
            let env = match self.block_recv(deadline, t0) {
                Ok(Some(env)) => env,
                // Retransmit tick expired; deadline was rechecked.
                Ok(None) => continue,
                Err(CommError::Stalled { .. }) => return Err(self.stalled(src, tag, t0.elapsed())),
                Err(e) => return Err(e),
            };
            let Some(env) = self.intake(env) else {
                continue;
            };
            if self.matches(&env, src, tag) {
                self.state.stats.borrow_mut().wall_recv_s += t0.elapsed().as_secs_f64();
                return Ok(env);
            }
            self.state.pending.borrow_mut().push(env);
        }
    }

    /// One bounded mailbox wait: blocks up to the stall deadline, capped
    /// by the retransmit tick when unacked sends are outstanding. Returns
    /// `Ok(None)` when only the tick expired (caller should pump and
    /// retry); errors with [`CommError::Disconnected`] only if every
    /// sender handle is gone.
    fn block_recv(
        &self,
        deadline: Option<Duration>,
        t0: Instant,
    ) -> Result<Option<Envelope>, CommError> {
        let remaining = match deadline {
            None => None,
            Some(limit) => Some(
                limit
                    .checked_sub(t0.elapsed())
                    .ok_or_else(|| self.stalled_now(t0.elapsed()))?,
            ),
        };
        let wait = match (remaining, self.block_tick()) {
            (None, None) => {
                return self
                    .state
                    .rx
                    .recv()
                    .map(Some)
                    .map_err(|_| CommError::Disconnected)
            }
            (None, Some(tick)) => tick,
            (Some(rem), None) => rem,
            (Some(rem), Some(tick)) => rem.min(tick),
        };
        use std::sync::mpsc::RecvTimeoutError;
        match self.state.rx.recv_timeout(wait) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => {
                if let Some(limit) = deadline {
                    if t0.elapsed() >= limit {
                        return Err(self.stalled_now(t0.elapsed()));
                    }
                }
                Ok(None)
            }
            Err(RecvTimeoutError::Disconnected) => Err(CommError::Disconnected),
        }
    }

    /// Placeholder stall used by `block_recv`; `claim_matching` and
    /// `waitany` rewrite it with the precise match spec via `map_err`.
    fn stalled_now(&self, waited: Duration) -> CommError {
        self.stalled(Src::Any, 0, waited)
    }

    fn stalled(&self, src: Src, tag: Tag, waited: Duration) -> CommError {
        // Snapshot the unmatched mailbox: distinguishes "nothing ever
        // arrived" from "messages arrived with the wrong tag/context" —
        // and the unacked reliable sends, which distinguish "the peer is
        // silent" from "the peer may be waiting on a message this rank
        // still owes a retransmit for".
        let pending = self.state.pending.borrow();
        let unacked = self.state.unacked.borrow();
        let now = Instant::now();
        CommError::Stalled {
            rank: self.state.world_rank,
            src: match src {
                Src::Any => None,
                Src::Rank(r) => Some(self.global_rank_of(r)),
            },
            tag,
            waited_ms: waited.as_millis() as u64,
            queued: pending.len(),
            queued_tags: pending.iter().take(8).map(|e| e.tag).collect(),
            retx_in_flight: unacked.len(),
            retx_seqs: unacked.iter().take(8).map(|r| r.seq).collect(),
            retx_backoff_ms: unacked
                .iter()
                .map(|r| r.next_retry.saturating_duration_since(now).as_millis() as u64)
                .min(),
        }
    }

    /// Deliver an envelope for a receive that was posted at `posted_at`:
    /// the blocking delivery rule, minus flight time that already elapsed
    /// while the rank computed (credited to `overlap_s`).
    fn deliver_posted(&self, env: Envelope, posted_at: f64) -> ((Payload, Status), RecvTiming) {
        let state = &self.state;
        let n = env.payload.wire_len();
        let arrive = env.depart + self.model.latency_s;
        let old = state.clock.get();
        let new = old.max(arrive) + self.model.overhead_s;
        state.clock.set(new);
        let charge = new - old;
        let timing = RecvTiming {
            arrive,
            blocked: (arrive - old).max(0.0),
            adv: charge,
        };
        // What an immediate blocking receive would have cost at post time.
        let blocking_cost = posted_at.max(arrive) + self.model.overhead_s - posted_at;
        {
            let mut st = state.stats.borrow_mut();
            st.msgs_recv += 1;
            st.bytes_recv += n as u64;
            st.modeled_comm_s += charge;
            st.overlap_s += blocking_cost - charge;
        }
        (
            (
                env.payload,
                Status {
                    src: env.src,
                    tag: env.tag,
                    bytes: n,
                    depart: env.depart,
                },
            ),
            timing,
        )
    }

    /// Complete every request, in order. Envelopes arriving for a
    /// later request while an earlier one blocks are parked in the
    /// pending queue, so order never deadlocks.
    pub fn waitall(&self, reqs: Vec<Request>) -> Result<Vec<Completion>, CommError> {
        reqs.into_iter().map(|r| self.wait(r)).collect()
    }

    /// Complete whichever request finishes first, removing it from `reqs`;
    /// returns its original index and completion. Sends complete
    /// immediately; among receives, whichever message is available (or
    /// arrives) first wins. Panics if `reqs` is empty.
    pub fn waitany(&self, reqs: &mut Vec<Request>) -> Result<(usize, Completion), CommError> {
        assert!(!reqs.is_empty(), "waitany on an empty request set");
        let t0 = Instant::now();
        let deadline = self.state.stall_timeout.get();
        loop {
            for i in 0..reqs.len() {
                if self.test(&mut reqs[i]) {
                    let req = reqs.remove(i);
                    return Ok((i, self.wait(req)?));
                }
            }
            // All are unmatched receives: block for the next envelope and
            // rescan. Mismatches park in pending exactly like `recv`.
            self.pump_retransmits();
            let env = match self.block_recv(deadline, t0) {
                Ok(Some(env)) => env,
                Ok(None) => continue,
                Err(CommError::Stalled { .. }) => return Err(self.stalled_any(reqs, t0.elapsed())),
                Err(e) => return Err(e),
            };
            if let Some(env) = self.intake(env) {
                self.state.pending.borrow_mut().push(env);
            }
        }
    }

    fn stalled_any(&self, reqs: &[Request], waited: Duration) -> CommError {
        // Report the first pending receive's match spec as the diagnostic.
        for r in reqs {
            if let ReqInner::Recv { src, tag, .. } = r.inner {
                return self.stalled(src, tag, waited);
            }
        }
        self.stalled(Src::Any, 0, waited)
    }

    /// Receive with an explicit deadline, independent of the universe's
    /// configured stall timeout.
    pub fn recv_timeout<T: Wire>(
        &self,
        src: Src,
        tag: Tag,
        timeout: Duration,
    ) -> Result<(T, Status), CommError> {
        let (bytes, status) = self.recv_bytes_timeout(src, tag, timeout)?;
        let value = decode_from_slice(&bytes)?;
        self.put_buf(bytes);
        Ok((value, status))
    }

    /// Raw-bytes variant of [`Comm::recv_timeout`].
    pub fn recv_bytes_timeout(
        &self,
        src: Src,
        tag: Tag,
        timeout: Duration,
    ) -> Result<(Vec<u8>, Status), CommError> {
        let req = self.irecv_named(src, tag, "recv")?;
        let (payload, status) = self
            .wait_deadline(req, Some(timeout))?
            .expect("receive completion carries a payload");
        Ok((payload.into_wire_bytes()?, status))
    }

    /// Registry labels use the *global* rank so sub-communicator traffic
    /// aggregates onto the same per-rank series as world traffic. Handles
    /// are cached on the rank state: the per-message cost is three
    /// relaxed atomic updates, not registry lookups.
    #[cold]
    fn obs_count_send(&self, n: usize, zerocopy: bool, _dest: usize, _tag: Tag) {
        let h = self.state.obs_handles();
        h.msgs_sent.inc();
        h.bytes_sent.add(n as u64);
        h.sent_msg_bytes.record(n as u64);
        if zerocopy {
            h.zerocopy_msgs.inc();
            h.zerocopy_bytes.add(n as u64);
        }
    }

    #[cold]
    #[allow(clippy::too_many_arguments)]
    fn obs_request_done(
        &self,
        timer: obs::span::SpanTimer,
        name: &'static str,
        overlap: f64,
        post_end: f64,
        depart: f64,
        wire: f64,
        flow: u64,
    ) {
        use obs::flow::args;
        timer.finish_meta(
            "comm",
            name,
            self.virtual_time(),
            &[
                ("overlap_s", overlap),
                (args::POST_END, post_end),
                (args::DEPART, depart),
                (args::WIRE, wire),
            ],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Send,
                flow_out: flow,
                flow_in: 0,
            },
        );
        self.obs_overlap_gauge();
    }

    #[cold]
    fn obs_count_recv(
        &self,
        timer: obs::span::SpanTimer,
        name: &'static str,
        status: &Status,
        flow_in: u64,
        timing: RecvTiming,
    ) {
        use obs::flow::args;
        timer.finish_meta(
            "comm",
            name,
            self.virtual_time(),
            &[
                ("bytes", status.bytes as f64),
                ("src", self.global_rank_of(status.src) as f64),
                ("tag", status.tag as f64),
                (args::ARRIVE, timing.arrive),
                (args::BLOCKED, timing.blocked),
                (args::ADV, timing.adv),
                (args::LAT, self.model.latency_s),
            ],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Recv,
                flow_out: 0,
                flow_in,
            },
        );
        let h = self.state.obs_handles();
        h.msgs_recv.inc();
        h.bytes_recv.add(status.bytes as u64);
        self.obs_overlap_gauge();
    }

    /// Publish cumulative hidden-communication seconds for this rank.
    fn obs_overlap_gauge(&self) {
        let total = self.state.stats.borrow().overlap_s;
        self.state.obs_handles().overlap_s.set(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::{Universe, UniverseConfig};
    use crate::NetworkModel;

    #[test]
    fn isend_irecv_roundtrip() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                let r = comm.isend(1, 3, &vec![1u64, 2, 3]).unwrap();
                comm.wait(r).unwrap();
                vec![]
            } else {
                let r = comm.irecv(Src::Rank(0), 3).unwrap();
                let (v, st) = comm.wait_recv::<Vec<u64>>(r).unwrap();
                assert_eq!(st.src, 0);
                v
            }
        });
        assert_eq!(out[1], vec![1, 2, 3]);
    }

    #[test]
    fn test_claims_message_without_blocking() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &42u8).unwrap();
            } else {
                let mut r = comm.irecv(Src::Rank(0), 7).unwrap();
                while !comm.test(&mut r) {
                    std::thread::yield_now();
                }
                // A second receive of the same tag must not steal it.
                assert!(!comm.probe(Src::Rank(0), 7));
                let (v, _) = comm.wait_recv::<u8>(r).unwrap();
                assert_eq!(v, 42);
            }
        });
    }

    #[test]
    fn waitall_completes_out_of_order_arrivals() {
        let out = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let reqs = vec![
                    comm.irecv(Src::Rank(1), 1).unwrap(),
                    comm.irecv(Src::Rank(2), 2).unwrap(),
                ];
                comm.waitall(reqs)
                    .unwrap()
                    .into_iter()
                    .map(|c| c.unwrap().1.src)
                    .collect()
            } else {
                comm.send(0, comm.rank() as u32, &comm.rank()).unwrap();
                vec![]
            }
        });
        assert_eq!(out[0], vec![1, 2]);
    }

    #[test]
    fn waitany_returns_first_available() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, &1u8).unwrap();
            } else {
                let mut reqs = vec![
                    comm.irecv(Src::Rank(0), 8).unwrap(),
                    comm.irecv(Src::Rank(0), 9).unwrap(),
                ];
                let (i, c) = comm.waitany(&mut reqs).unwrap();
                assert_eq!(i, 1);
                assert_eq!(c.unwrap().1.tag, 9);
                assert_eq!(reqs.len(), 1);
            }
        });
    }

    #[test]
    fn overlap_hides_flight_time_under_compute() {
        // Rank 1 posts the receive, computes 1 ms (≫ the ~0.4 µs message
        // flight), then waits: nearly the whole flight is hidden.
        let report = Universe::run_report(UniverseConfig::default(), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &vec![0u8; 1000]).unwrap();
            } else {
                let r = comm.irecv(Src::Rank(0), 0).unwrap();
                comm.advance_compute(2.0e6); // 1 ms at 2 Gflop/s
                comm.wait(r).unwrap();
            }
        });
        let st = report.stats[1];
        assert!(st.overlap_s > 0.0, "expected hidden flight time");
        let model = NetworkModel::default();
        // Hidden time can't exceed the blocking cost of this message.
        assert!(st.overlap_s <= model.transfer_time(1008) + model.overhead_s);
        // The receive charge shrank accordingly: total modeled comm for
        // rank 1 is blocking cost minus what was hidden (≈ just o).
        assert!(st.modeled_comm_s < model.transfer_time(1008));
    }

    #[test]
    fn blocking_wrappers_report_zero_overlap() {
        let report = Universe::run_report(UniverseConfig::default(), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &vec![0u8; 4096]).unwrap();
            } else {
                let _ = comm.recv::<Vec<u8>>(Src::Rank(0), 0).unwrap();
            }
        });
        assert_eq!(report.stats[0].overlap_s, 0.0);
        assert_eq!(report.stats[1].overlap_s, 0.0);
    }

    #[test]
    fn isend_queues_on_the_nic() {
        // Two posted sends serialize back-to-back on the wire; waiting on
        // the second settles the clock past both transfers.
        let report = Universe::run_report(UniverseConfig::default(), 2, |comm| {
            if comm.rank() == 0 {
                let a = comm.isend(1, 0, &vec![0u8; 100_000]).unwrap();
                let b = comm.isend(1, 1, &vec![0u8; 100_000]).unwrap();
                comm.waitall(vec![a, b]).unwrap();
            } else {
                let _ = comm.recv::<Vec<u8>>(Src::Rank(0), 0).unwrap();
                let _ = comm.recv::<Vec<u8>>(Src::Rank(0), 1).unwrap();
            }
        });
        let model = NetworkModel::default();
        let wire = 2.0 * 100_008.0 * model.seconds_per_byte;
        assert!(report.stats[0].modeled_comm_s + report.stats[0].overlap_s >= wire);
    }

    #[test]
    fn region_integrity_verifies_and_counts() {
        let cfg = UniverseConfig::default()
            .with_zerocopy_threshold(1)
            .with_region_integrity(true);
        let report = Universe::run_report(cfg, 2, |comm| {
            if comm.rank() == 0 {
                comm.send_zc(1, 3, vec![1.25f64; 512]).unwrap();
            } else {
                let (v, _) = comm.recv_zc::<Vec<f64>>(Src::Rank(0), 3).unwrap();
                assert_eq!(v, vec![1.25f64; 512]);
            }
        });
        assert_eq!(report.stats[1].region_integrity_checked, 1);
        assert_eq!(report.stats[0].zerocopy_msgs, 1);
    }

    #[test]
    fn region_integrity_mismatch_surfaces_as_corrupt() {
        // A deliberately wrong digest must surface as a typed Corrupt at
        // the typed receive (this is what catches sender-side aliasing:
        // the value no longer matches what was stamped at send time).
        let cfg = UniverseConfig::default().with_region_integrity(true);
        Universe::run_report(cfg, 2, |comm| {
            if comm.rank() == 0 {
                let v = vec![9u64; 64];
                let n = v.wire_size();
                let region = Region::new(v, n).with_integrity(0xbad);
                let req = comm
                    .isend_payload_named(1, 7, Payload::Region(region), "isend")
                    .unwrap();
                comm.wait(req).unwrap();
            } else {
                let err = comm.recv_zc::<Vec<u64>>(Src::Rank(0), 7).unwrap_err();
                assert_eq!(
                    err,
                    CommError::Corrupt {
                        rank: 1,
                        src: 0,
                        tag: 7
                    }
                );
            }
        });
    }

    #[test]
    fn recv_timeout_reports_stall_diagnostics() {
        Universe::run(2, |comm| {
            if comm.rank() == 1 {
                let err = comm
                    .recv_timeout::<u8>(Src::Rank(0), 5, Duration::from_millis(10))
                    .unwrap_err();
                match err {
                    CommError::Stalled { rank, src, tag, .. } => {
                        assert_eq!(rank, 1);
                        assert_eq!(src, Some(0));
                        assert_eq!(tag, 5);
                    }
                    other => panic!("expected Stalled, got {other:?}"),
                }
            }
            // Rank 0 never sends; both ranks fall through to exit.
        });
    }

    #[test]
    fn configured_stall_deadline_applies_to_request_wait() {
        let cfg = UniverseConfig {
            stall_timeout: Some(Duration::from_millis(10)),
            ..Default::default()
        };
        let results = Universe::run_report(cfg, 2, |comm| {
            if comm.rank() == 1 {
                let r = comm.irecv(Src::Rank(0), 11).unwrap();
                match comm.wait(r) {
                    Err(CommError::Stalled { tag: 11, .. }) => true,
                    other => panic!("expected stall, got {other:?}"),
                }
            } else {
                true
            }
        });
        assert!(results.results.iter().all(|&ok| ok));
    }
}
