//! Point-to-point messaging: ranks, mailboxes, tag matching, sub-communicators.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

use crate::collectives::CollectiveAlgo;
use crate::error::CommError;
use crate::fault::{Delivery, FaultPlan};
use crate::model::NetworkModel;
use crate::payload::Payload;
use crate::reliable::Retx;
use crate::stats::CommStats;
use crate::wire::{decode_from_slice, Wire};

/// Message tag. User tags must be below [`MAX_USER_TAG`]; higher values are
/// reserved for collectives.
pub type Tag = u32;

/// Highest tag available to user code.
pub const MAX_USER_TAG: Tag = 1 << 30;

/// Source selector for [`Comm::recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match a message from any rank.
    Any,
    /// Match only messages from this rank (communicator-local).
    Rank(usize),
}

/// Metadata about a received message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Status {
    /// Communicator-local rank of the sender.
    pub src: usize,
    /// Tag the message was sent with.
    pub tag: Tag,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Sender's virtual clock at departure (seconds).
    pub depart: f64,
}

/// Payload class of an envelope: user data, or a reliable-delivery ack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnvKind {
    Data,
    Ack,
}

/// One message in flight.
#[derive(Clone)]
pub(crate) struct Envelope {
    pub(crate) ctx: u64,
    pub(crate) src: usize,
    pub(crate) tag: Tag,
    pub(crate) depart: f64,
    pub(crate) payload: Payload,
    /// Global rank of the sender (for acks and dup suppression, which
    /// operate below the communicator layer).
    pub(crate) gsrc: usize,
    /// Per-(sender → receiver) sequence number; 0 in raw delivery mode.
    pub(crate) seq: u64,
    /// FNV-1a over the wire bytes; 0 when the fault plane is inactive
    /// and always 0 for region payloads (checksumming is wire-path-only,
    /// see the `payload` module docs).
    pub(crate) checksum: u64,
    pub(crate) kind: EnvKind,
    /// Set at intake when checksum verification failed (raw mode only;
    /// reliable mode discards corrupt arrivals instead).
    pub(crate) corrupt: bool,
    /// Causal flow id ([`obs::flow`]); 0 when tracing is disabled and for
    /// acks. Retransmitted copies reuse the original id.
    pub(crate) flow: u64,
}

/// State shared between a rank's thread and every sub-communicator it
/// derives (they all drain the same physical mailbox).
pub(crate) struct RankState {
    pub(crate) rx: Receiver<Envelope>,
    pub(crate) pending: RefCell<Vec<Envelope>>,
    pub(crate) clock: Cell<f64>,
    /// Virtual time at which the NIC finishes serializing every send
    /// posted so far (posted sends queue back-to-back on the wire).
    pub(crate) nic_free: Cell<f64>,
    /// Wall-clock deadline for blocking receives/waits; `None` blocks
    /// forever (see [`CommError::Stalled`]).
    pub(crate) stall_timeout: Cell<Option<Duration>>,
    pub(crate) stats: RefCell<CommStats>,
    /// This rank's world (global) id, fixed at universe launch.
    pub(crate) world_rank: usize,
    pub(crate) delivery: Delivery,
    pub(crate) fault: FaultPlan,
    /// Fresh data transmissions so far (drives fault decisions).
    pub(crate) send_count: Cell<u64>,
    /// Communication operations so far (drives the kill threshold).
    pub(crate) op_count: Cell<u64>,
    /// Latched once the kill threshold is crossed.
    pub(crate) killed: Cell<bool>,
    /// Next sequence number per destination global rank (reliable mode).
    pub(crate) next_seq: RefCell<Vec<u64>>,
    /// Sequence numbers already delivered, per source global rank.
    pub(crate) seen: RefCell<Vec<std::collections::HashSet<u64>>>,
    /// Sent-but-unacked envelopes awaiting retransmission.
    pub(crate) unacked: RefCell<Vec<Retx>>,
    /// Recycled wire buffers: send paths encode into them, receive paths
    /// return delivered payloads to them (see [`Comm::take_buf`]).
    pub(crate) pool: RefCell<Vec<Vec<u8>>>,
    /// Encoded-equivalent size at or above which zero-copy send paths
    /// ship a region handle instead of encoding (from the config).
    pub(crate) zerocopy_threshold: usize,
    /// Stamp + verify FNV digests on zero-copy regions (from the config).
    pub(crate) region_integrity: bool,
    /// Flow-id domain for causal tracing (`obs::flow`), unique per rank
    /// state within the process so universes never collide.
    pub(crate) flow_domain: u64,
    /// Messages stamped with a flow id so far (sequence within the domain).
    pub(crate) flow_seq: Cell<u64>,
    /// Cached registry handles for the hot per-message metrics (see
    /// [`RankState::obs_handles`]).
    obs_handles: std::cell::OnceCell<ObsHandles>,
}

/// Registry handles the enabled tracing path touches on every message.
/// Resolving a handle costs a key format plus a registry lock; caching
/// them per rank turns that into plain relaxed atomic updates, which is
/// what keeps enabled-tracing overhead inside the E21 budget.
pub(crate) struct ObsHandles {
    pub(crate) msgs_sent: obs::Counter,
    pub(crate) bytes_sent: obs::Counter,
    pub(crate) sent_msg_bytes: obs::Histogram,
    pub(crate) msgs_recv: obs::Counter,
    pub(crate) bytes_recv: obs::Counter,
    pub(crate) overlap_s: obs::Gauge,
    pub(crate) zerocopy_msgs: obs::Counter,
    pub(crate) zerocopy_bytes: obs::Counter,
}

impl RankState {
    /// The cached metric handles, resolved on first use. A rank state
    /// never outlives its universe run, so the cache cannot go stale —
    /// except across an `obs::reset()` issued *mid-run*, which orphans
    /// the handles (updates land on detached atomics; harmless, but
    /// invisible to later snapshots).
    pub(crate) fn obs_handles(&self) -> &ObsHandles {
        self.obs_handles.get_or_init(|| {
            let rank = self.world_rank.to_string();
            let g = obs::global();
            let k = |name: &str| obs::registry::key(name, &[("rank", &rank)]);
            ObsHandles {
                msgs_sent: g.counter(&k("comm.msgs_sent")),
                bytes_sent: g.counter(&k("comm.bytes_sent")),
                sent_msg_bytes: g.histogram("comm.sent_msg_bytes"),
                msgs_recv: g.counter(&k("comm.msgs_recv")),
                bytes_recv: g.counter(&k("comm.bytes_recv")),
                overlap_s: g.gauge(&k("comm.overlap_s")),
                zerocopy_msgs: g.counter(&k("comm.zerocopy_msgs")),
                zerocopy_bytes: g.counter(&k("comm.zerocopy_bytes")),
            }
        })
    }
}

/// Most buffers a rank's pool retains; excess returns are dropped.
const POOL_MAX: usize = 64;

/// Largest buffer capacity the pool retains. A buffer grown by one huge
/// encode would otherwise pin its high-water allocation for the rest of
/// the rank's life; above this it is dropped (and counted in
/// [`CommStats::buffer_pool_evictions`]). Bulk payloads ride the
/// zero-copy region arm instead of growing pooled buffers.
const POOL_MAX_BUF_BYTES: usize = 64 * 1024;

/// A communicator handle: the single object user code talks to.
///
/// `Comm` is deliberately `!Send`: it lives on the rank's own thread, like
/// an `MPI_Comm` lives in its process.
pub struct Comm {
    rank: usize,
    pub(crate) ctx: u64,
    /// communicator-local rank → global rank
    pub(crate) group: Arc<Vec<usize>>,
    /// global rank → mailbox sender
    pub(crate) senders: Arc<Vec<Sender<Envelope>>>,
    pub(crate) state: Rc<RankState>,
    pub(crate) model: NetworkModel,
    algo: CollectiveAlgo,
    pub(crate) coll_seq: Cell<u64>,
    split_seq: Cell<u64>,
}

fn mix_ctx(parent: u64, seq: u64, color: u64) -> u64 {
    // SplitMix64-style mixing; only needs to be deterministic and
    // collision-resistant across the handful of communicators a job makes.
    let mut z = parent
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(seq)
        .wrapping_mul(0xbf58476d1ce4e5b9)
        .wrapping_add(color)
        .wrapping_add(0x94d049bb133111eb);
    z ^= z >> 31;
    z = z.wrapping_mul(0xd6e8feb86659fd93);
    z ^= z >> 32;
    z | 1 // never collide with the world context 0
}

impl Comm {
    pub(crate) fn new_world(
        rank: usize,
        size: usize,
        senders: Arc<Vec<Sender<Envelope>>>,
        rx: Receiver<Envelope>,
        config: &crate::universe::UniverseConfig,
    ) -> Self {
        Comm {
            rank,
            ctx: 0,
            group: Arc::new((0..size).collect()),
            senders,
            state: Rc::new(RankState {
                rx,
                pending: RefCell::new(Vec::new()),
                clock: Cell::new(0.0),
                nic_free: Cell::new(0.0),
                stall_timeout: Cell::new(config.stall_timeout),
                stats: RefCell::new(CommStats::default()),
                world_rank: rank,
                delivery: config.delivery,
                fault: config.fault,
                send_count: Cell::new(0),
                op_count: Cell::new(0),
                killed: Cell::new(false),
                next_seq: RefCell::new(vec![0; size]),
                seen: RefCell::new(vec![std::collections::HashSet::new(); size]),
                unacked: RefCell::new(Vec::new()),
                pool: RefCell::new(Vec::new()),
                zerocopy_threshold: config.zerocopy_threshold,
                region_integrity: config.region_integrity,
                flow_domain: obs::flow::next_domain(),
                flow_seq: Cell::new(0),
                obs_handles: std::cell::OnceCell::new(),
            }),
            model: config.model,
            algo: config.algo,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        }
    }

    /// This rank's id within the communicator.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// Global (world) rank backing a communicator-local rank.
    pub fn global_rank_of(&self, local: usize) -> usize {
        self.group[local]
    }

    /// The cost model in effect.
    pub fn model(&self) -> NetworkModel {
        self.model
    }

    /// Collective algorithm selection (ablated in experiment E12).
    pub fn algo(&self) -> CollectiveAlgo {
        self.algo
    }

    /// Override the collective algorithm (must be called symmetrically).
    pub fn set_algo(&mut self, algo: CollectiveAlgo) {
        self.algo = algo;
    }

    /// Current virtual time of this rank, seconds.
    pub fn virtual_time(&self) -> f64 {
        self.state.clock.get()
    }

    /// Advance this rank's virtual clock by a modeled compute phase.
    pub fn advance_compute(&self, flops: f64) {
        let dt = self.model.compute_time(flops);
        self.state.clock.set(self.state.clock.get() + dt);
        self.state.stats.borrow_mut().modeled_compute_s += dt;
    }

    /// Advance this rank's virtual clock by an explicit duration (for
    /// callers that model compute in seconds rather than flops).
    pub fn advance_seconds(&self, dt: f64) {
        self.state.clock.set(self.state.clock.get() + dt);
        self.state.stats.borrow_mut().modeled_compute_s += dt;
    }

    /// Take a cleared wire buffer from this rank's pool, or allocate a
    /// fresh one if the pool is empty. Return it with [`Comm::put_buf`]
    /// once done so hot paths stop allocating per message; reuse is
    /// counted in [`CommStats::buffer_reuse`] and mirrored as the
    /// `pool.buffer_reuse{rank}` counter.
    pub fn take_buf(&self) -> Vec<u8> {
        match self.state.pool.borrow_mut().pop() {
            Some(mut buf) => {
                buf.clear();
                self.state.stats.borrow_mut().buffer_reuse += 1;
                if obs::enabled() {
                    self.obs_cache_counter("pool.buffer_reuse");
                }
                buf
            }
            None => Vec::new(),
        }
    }

    /// Return a wire buffer to this rank's pool for later reuse. The
    /// pool is bounded both ways — at most 64 entries, none larger
    /// than 64 KiB of capacity — so one large
    /// gather can no longer pin its high-water allocation in the pool.
    /// Refused buffers are dropped and counted in
    /// [`CommStats::buffer_pool_evictions`] (mirrored as
    /// `pool.buffer_pool_evictions{rank}`); capacity-less buffers never
    /// held memory and are discarded without counting.
    pub fn put_buf(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        if buf.capacity() <= POOL_MAX_BUF_BYTES {
            let mut pool = self.state.pool.borrow_mut();
            if pool.len() < POOL_MAX {
                pool.push(buf);
                return;
            }
        }
        self.state.stats.borrow_mut().buffer_pool_evictions += 1;
        if obs::enabled() {
            self.obs_cache_counter("pool.buffer_pool_evictions");
        }
    }

    /// Record a hit in a communication-plan cache. The caches themselves
    /// live above `comm` (the `dmap` plan cache, the ODIN worker
    /// exchange-plan cache); this mirrors the event one-for-one into
    /// [`CommStats::plan_hits`] and the `cache.plan_hits{rank}` counter,
    /// exactly like the fault counters.
    pub fn record_plan_hit(&self) {
        self.state.stats.borrow_mut().plan_hits += 1;
        if obs::enabled() {
            self.obs_cache_counter("cache.plan_hits");
        }
    }

    /// Record a communication-plan cache miss (a plan was built from
    /// scratch). Mirrored into [`CommStats::plan_misses`] and
    /// `cache.plan_misses{rank}`.
    pub fn record_plan_miss(&self) {
        self.state.stats.borrow_mut().plan_misses += 1;
        if obs::enabled() {
            self.obs_cache_counter("cache.plan_misses");
        }
    }

    /// Registry mirror of the cache/pool counters, labeled by global
    /// rank exactly like the fault counters.
    #[cold]
    fn obs_cache_counter(&self, name: &str) {
        let rank = self.state.world_rank.to_string();
        obs::global()
            .counter(&obs::registry::key(name, &[("rank", &rank)]))
            .inc();
    }

    /// Snapshot of this rank's counters.
    pub fn stats(&self) -> CommStats {
        *self.state.stats.borrow()
    }

    /// Reset counters (benchmarks use this between phases).
    pub fn reset_stats(&self) {
        *self.state.stats.borrow_mut() = CommStats::default();
    }

    pub(crate) fn check_rank(&self, r: usize) -> Result<(), CommError> {
        if r >= self.size() {
            Err(CommError::InvalidRank {
                rank: r,
                size: self.size(),
            })
        } else {
            Ok(())
        }
    }

    /// Override the stall deadline for blocking receives and request
    /// waits on this rank (shared by every derived sub-communicator).
    pub fn set_stall_timeout(&self, timeout: Option<Duration>) {
        self.state.stall_timeout.set(timeout);
    }

    /// Send raw bytes to `dest` (communicator-local) with `tag`. Blocking
    /// wrapper over [`Comm::isend_bytes`]: posts the message and settles
    /// the clock immediately, charging the full `o + bytes·G`.
    pub fn send_bytes(&self, dest: usize, tag: Tag, bytes: Vec<u8>) -> Result<(), CommError> {
        let req = self.isend_bytes_named(dest, tag, bytes, "send")?;
        self.wait(req).map(|_| ())
    }

    /// Send a typed value to `dest` with `tag`. Encodes into a pooled
    /// wire buffer; the receiver's typed `recv` recycles it on its side.
    pub fn send<T: Wire>(&self, dest: usize, tag: Tag, value: &T) -> Result<(), CommError> {
        let mut buf = self.take_buf();
        value.encode(&mut buf);
        self.send_bytes(dest, tag, buf)
    }

    /// The encoded-equivalent size at or above which zero-copy sends
    /// ship a region handle instead of encoding (from the universe
    /// config; see the [`crate::payload`] module).
    pub fn zerocopy_threshold(&self) -> usize {
        self.state.zerocopy_threshold
    }

    /// Whether zero-copy regions are stamped with (and verified against)
    /// an FNV digest of their wire encoding (from the universe config;
    /// see [`crate::UniverseConfig::region_integrity`]).
    pub fn region_integrity(&self) -> bool {
        self.state.region_integrity
    }

    /// Send an owned typed value, taking the zero-copy region arm when
    /// its encoded size reaches the threshold. Blocking wrapper over
    /// [`Comm::isend_zc`]; pair with [`Comm::recv_zc`] on the receiver.
    pub fn send_zc<T>(&self, dest: usize, tag: Tag, value: T) -> Result<(), CommError>
    where
        T: Wire + Send + Sync + 'static,
    {
        let req = self.isend_zc(dest, tag, value)?;
        self.wait(req).map(|_| ())
    }

    /// Receive a typed value sent with either payload arm: wire bytes
    /// decode (and recycle the buffer), regions transfer ownership of
    /// the value itself. The blocking pair of [`Comm::send_zc`].
    pub fn recv_zc<T>(&self, src: Src, tag: Tag) -> Result<(T, Status), CommError>
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let req = self.irecv_named(src, tag, "recv")?;
        self.wait_recv_zc(req)
    }

    pub(crate) fn matches(&self, env: &Envelope, src: Src, tag: Tag) -> bool {
        env.ctx == self.ctx
            && env.tag == tag
            && match src {
                Src::Any => true,
                Src::Rank(r) => env.src == r,
            }
    }

    /// Receive raw bytes matching `(src, tag)`; blocks until a match
    /// arrives. Blocking wrapper over [`Comm::irecv`] + [`Comm::wait`].
    pub fn recv_bytes(&self, src: Src, tag: Tag) -> Result<(Vec<u8>, Status), CommError> {
        let req = self.irecv_named(src, tag, "recv")?;
        let (payload, status) = self
            .wait(req)?
            .expect("receive completion carries a payload");
        Ok((payload.into_wire_bytes()?, status))
    }

    /// Receive a typed value matching `(src, tag)`. The delivered wire
    /// buffer is recycled into this rank's pool after decoding.
    pub fn recv<T: Wire>(&self, src: Src, tag: Tag) -> Result<(T, Status), CommError> {
        let (bytes, status) = self.recv_bytes(src, tag)?;
        let value = decode_from_slice(&bytes)?;
        self.put_buf(bytes);
        Ok((value, status))
    }

    /// Drive reliability progress without receiving: drain the mailbox
    /// (acking arrivals) and retransmit overdue unacked sends. Every
    /// *blocked* receive already does this; an idle rank — e.g. a worker
    /// parked at its command queue after finishing a collective whose
    /// final copy to a peer was dropped — must call it periodically, or
    /// that peer starves with no retransmit ever coming. No-op outside
    /// reliable mode.
    pub fn pump(&self) {
        self.drain_mailbox();
        self.pump_retransmits();
    }

    /// Non-blocking check: is a matching message already available?
    /// Drains the mailbox into the pending queue without blocking.
    pub fn probe(&self, src: Src, tag: Tag) -> bool {
        self.drain_mailbox();
        self.pump_retransmits();
        self.state
            .pending
            .borrow()
            .iter()
            .any(|e| self.matches(e, src, tag))
    }

    /// Exchange with a partner: send then receive with the same tag.
    /// Safe against deadlock because sends never block. Built on the
    /// request layer so the outgoing serialization overlaps the wait for
    /// the incoming message.
    pub fn sendrecv<T: Wire, U: Wire>(
        &self,
        dest: usize,
        send_value: &T,
        src: usize,
        tag: Tag,
    ) -> Result<U, CommError> {
        let sreq = self.isend(dest, tag, send_value)?;
        let (v, _) = self.recv::<U>(Src::Rank(src), tag)?;
        self.wait(sreq)?;
        Ok(v)
    }

    /// Split into sub-communicators by `color`. Must be called by every
    /// rank of this communicator. Ranks sharing a color form a new
    /// communicator ordered by their rank in the parent. Returns the new
    /// communicator handle; its messages can never match the parent's.
    pub fn split(&self, color: u64) -> Result<Comm, CommError> {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        let colors: Vec<u64> = self.allgather(&color);
        let group: Vec<usize> = colors
            .iter()
            .enumerate()
            .filter(|(_, c)| **c == color)
            .map(|(r, _)| self.group[r])
            .collect();
        let my_global = self.group[self.rank];
        let new_rank = group
            .iter()
            .position(|&g| g == my_global)
            .expect("own rank must be in its color group");
        Ok(Comm {
            rank: new_rank,
            ctx: mix_ctx(self.ctx, seq, color),
            group: Arc::new(group),
            senders: Arc::clone(&self.senders),
            state: Rc::clone(&self.state),
            model: self.model,
            algo: self.algo,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
        })
    }

    /// Duplicate the communicator (same group, separate message context).
    pub fn duplicate(&self) -> Result<Comm, CommError> {
        self.split(0)
    }
}

#[cfg(test)]
mod tests {
    use crate::universe::Universe;
    use crate::{CommError, Src};

    #[test]
    fn ping_pong() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &42u64).unwrap();
                let (v, st) = comm.recv::<u64>(Src::Rank(1), 8).unwrap();
                assert_eq!(st.src, 1);
                v
            } else {
                let (v, _) = comm.recv::<u64>(Src::Rank(0), 7).unwrap();
                comm.send(0, 8, &(v + 1)).unwrap();
                v
            }
        });
        assert_eq!(out, vec![43, 42]);
    }

    #[test]
    fn tag_matching_reorders() {
        let out = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &String::from("first")).unwrap();
                comm.send(1, 2, &String::from("second")).unwrap();
                String::new()
            } else {
                // Receive in the opposite order of sending.
                let (b, _) = comm.recv::<String>(Src::Rank(0), 2).unwrap();
                let (a, _) = comm.recv::<String>(Src::Rank(0), 1).unwrap();
                format!("{a}/{b}")
            }
        });
        assert_eq!(out[1], "first/second");
    }

    #[test]
    fn src_any_matches_either_sender() {
        let out = Universe::run(3, |comm| {
            if comm.rank() == 0 {
                let mut got = Vec::new();
                for _ in 0..2 {
                    let (v, st) = comm.recv::<usize>(Src::Any, 5).unwrap();
                    got.push((st.src, v));
                }
                got.sort_unstable();
                got
            } else {
                comm.send(0, 5, &(comm.rank() * 10)).unwrap();
                vec![]
            }
        });
        assert_eq!(out[0], vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn invalid_rank_rejected() {
        Universe::run(2, |comm| {
            let err = comm.send(5, 0, &0u8).unwrap_err();
            assert_eq!(err, CommError::InvalidRank { rank: 5, size: 2 });
        });
    }

    #[test]
    fn self_send_works() {
        let out = Universe::run(1, |comm| {
            comm.send(0, 3, &vec![1.5f64, 2.5]).unwrap();
            let (v, _) = comm.recv::<Vec<f64>>(Src::Rank(0), 3).unwrap();
            v
        });
        assert_eq!(out[0], vec![1.5, 2.5]);
    }

    #[test]
    fn sendrecv_exchanges_between_neighbors() {
        let out = Universe::run(4, |comm| {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            let got: u64 = comm
                .sendrecv(right, &(comm.rank() as u64), left, 9)
                .unwrap();
            got
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn split_separates_contexts() {
        let out = Universe::run(4, |comm| {
            let color = (comm.rank() % 2) as u64;
            let sub = comm.split(color).unwrap();
            assert_eq!(sub.size(), 2);
            // ranks {0,2} and {1,3}: sum ranks within each sub-communicator
            let world_rank = comm.rank() as u64;
            sub.allreduce(&world_rank, |a: &u64, b: &u64| a + b)
        });
        assert_eq!(out, vec![2, 4, 2, 4]);
    }

    #[test]
    fn virtual_clock_advances_on_messages() {
        let report = Universe::run_report(Default::default(), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &vec![0u8; 1000]).unwrap();
            } else {
                let _ = comm.recv::<Vec<u8>>(Src::Rank(0), 0).unwrap();
            }
        });
        // Receiver clock must include latency + 1008 bytes of transfer.
        let model = crate::NetworkModel::default();
        assert!(report.makespan_s >= model.transfer_time(1008));
    }

    #[test]
    fn probe_sees_pending_message() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 4, &1u8).unwrap();
            } else {
                // Busy-wait until probe sees it (bounded by test timeout).
                while !comm.probe(Src::Rank(0), 4) {
                    std::thread::yield_now();
                }
                let (v, _) = comm.recv::<u8>(Src::Rank(0), 4).unwrap();
                assert_eq!(v, 1);
            }
        });
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let report = Universe::run_report(Default::default(), 2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, &vec![1.0f64; 10]).unwrap();
            } else {
                let _ = comm.recv::<Vec<f64>>(Src::Rank(0), 0).unwrap();
            }
        });
        assert_eq!(report.stats[0].msgs_sent, 1);
        assert_eq!(report.stats[0].bytes_sent, 88);
        assert_eq!(report.stats[1].msgs_recv, 1);
        assert_eq!(report.stats[1].bytes_recv, 88);
    }

    #[test]
    fn zerocopy_send_transfers_ownership_without_copy() {
        use crate::universe::UniverseConfig;
        let cfg = UniverseConfig::default().with_zerocopy_threshold(1);
        let report = Universe::run_report(cfg, 2, |comm| {
            if comm.rank() == 0 {
                let v: Vec<f64> = (0..1000).map(|i| i as f64).collect();
                let ptr = v.as_ptr() as usize;
                comm.send_zc(1, 3, v).unwrap();
                ptr
            } else {
                let (v, st) = comm.recv_zc::<Vec<f64>>(Src::Rank(0), 3).unwrap();
                assert_eq!(st.bytes, 8008, "Status carries the wire-equivalent size");
                assert_eq!(v[999], 999.0);
                v.as_ptr() as usize
            }
        });
        // Raw mode keeps no retransmit copy: the very allocation moved.
        assert_eq!(report.results[0], report.results[1]);
        assert_eq!(report.stats[0].zerocopy_msgs, 1);
        assert_eq!(report.stats[0].zerocopy_bytes, 8008);
        // Byte counters charge the wire-equivalent size on both sides.
        assert_eq!(report.stats[0].bytes_sent, 8008);
        assert_eq!(report.stats[1].bytes_recv, 8008);
    }

    #[test]
    fn zerocopy_below_threshold_takes_the_wire_path() {
        let report = Universe::run_report(Default::default(), 2, |comm| {
            if comm.rank() == 0 {
                comm.send_zc(1, 3, vec![1.0f64; 10]).unwrap();
            } else {
                let (v, _) = comm.recv_zc::<Vec<f64>>(Src::Rank(0), 3).unwrap();
                assert_eq!(v.len(), 10);
            }
        });
        // 88 bytes < default threshold: encoded, not a region.
        assert_eq!(report.stats[0].zerocopy_msgs, 0);
        assert_eq!(report.stats[0].bytes_sent, 88);
    }

    #[test]
    fn modeled_time_is_identical_across_payload_arms() {
        use crate::universe::UniverseConfig;
        // The same traffic with regions forced on vs off must produce a
        // bitwise-identical makespan and byte counts: the LogGP clock
        // charges wire-equivalent bytes either way (the E2/E9/E17
        // invariance the refactor promises).
        let run = |threshold: usize| {
            let cfg = UniverseConfig::default().with_zerocopy_threshold(threshold);
            Universe::run_report(cfg, 2, |comm| {
                if comm.rank() == 0 {
                    comm.send_zc(1, 1, vec![0.5f64; 50_000]).unwrap();
                    comm.recv_zc::<Vec<u64>>(Src::Rank(1), 2).unwrap().1.depart
                } else {
                    comm.recv_zc::<Vec<f64>>(Src::Rank(0), 1).unwrap();
                    comm.send_zc(0, 2, vec![7u64; 20_000]).unwrap();
                    comm.virtual_time()
                }
            })
        };
        let zc = run(1);
        let wire = run(usize::MAX);
        assert!(zc.stats[0].zerocopy_msgs > 0 && wire.stats[0].zerocopy_msgs == 0);
        assert_eq!(zc.makespan_s.to_bits(), wire.makespan_s.to_bits());
        assert_eq!(zc.results[0].to_bits(), wire.results[0].to_bits());
        for (a, b) in zc.stats.iter().zip(&wire.stats) {
            assert_eq!(a.bytes_sent, b.bytes_sent);
            assert_eq!(a.bytes_recv, b.bytes_recv);
            assert_eq!(a.modeled_comm_s.to_bits(), b.modeled_comm_s.to_bits());
        }
    }

    #[test]
    fn pool_drops_oversized_buffers_and_counts_evictions() {
        Universe::run(1, |comm| {
            // Oversized: capacity beyond the per-entry cap is refused.
            comm.put_buf(Vec::with_capacity(super::POOL_MAX_BUF_BYTES + 1));
            assert_eq!(comm.stats().buffer_pool_evictions, 1);
            let got = comm.take_buf();
            assert_eq!(got.capacity(), 0, "oversized buffer must not be pooled");
            assert_eq!(comm.stats().buffer_reuse, 0);
            // Entry cap: the 65th acceptable buffer is refused too.
            for _ in 0..super::POOL_MAX + 1 {
                comm.put_buf(Vec::with_capacity(16));
            }
            assert_eq!(comm.stats().buffer_pool_evictions, 2);
            // Capacity-less buffers never held memory: not an eviction.
            comm.put_buf(Vec::new());
            assert_eq!(comm.stats().buffer_pool_evictions, 2);
        });
    }
}
