//! LogGP-style network/compute cost model.
//!
//! The reproduction has no cluster (repro band 2/5), so scaling experiments
//! use a virtual clock per rank. The model is deliberately simple and fully
//! documented: a point-to-point message of `n` bytes that departs at sender
//! time `t` becomes visible to the receiver at
//!
//! ```text
//! t_arrive = t + o + L + n * G
//! ```
//!
//! where `o` is CPU send overhead, `L` wire latency, and `G` the inverse
//! bandwidth (seconds per byte). The `o + n·G` term is charged to the
//! *sender's* clock (the NIC serializes bytes), so a rank sending many
//! large messages pays for each; `L` is added on the receiving side.
//! Compute phases advance a rank's clock by `flops * flop_time`.
//! Collectives are built from p2p messages, so their modeled cost emerges
//! from the algorithm actually executed (linear vs tree vs recursive
//! doubling), which is exactly what experiment E12 ablates.

/// Cost-model constants. Defaults approximate a commodity InfiniBand
/// cluster circa the paper's era: 5 µs latency, 2.5 GB/s bandwidth, and a
/// core sustaining 2 Gflop/s on stream-like kernels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// CPU overhead per send/recv, seconds.
    pub overhead_s: f64,
    /// Wire latency per message, seconds.
    pub latency_s: f64,
    /// Seconds per byte transferred (inverse bandwidth).
    pub seconds_per_byte: f64,
    /// Seconds per floating-point operation for modeled compute.
    pub seconds_per_flop: f64,
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel {
            overhead_s: 0.5e-6,
            latency_s: 5.0e-6,
            seconds_per_byte: 1.0 / 2.5e9,
            seconds_per_flop: 1.0 / 2.0e9,
        }
    }
}

impl NetworkModel {
    /// A model with zero costs: virtual time stays at zero, useful for
    /// tests that only check message semantics.
    pub fn zero() -> Self {
        NetworkModel {
            overhead_s: 0.0,
            latency_s: 0.0,
            seconds_per_byte: 0.0,
            seconds_per_flop: 0.0,
        }
    }

    /// Modeled one-way transfer time for a message of `bytes` (excluding
    /// the sender-side overhead, which is charged to the sender's clock).
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.latency_s + bytes as f64 * self.seconds_per_byte
    }

    /// Modeled time for `flops` floating-point operations.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops * self.seconds_per_flop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_cluster_like() {
        let m = NetworkModel::default();
        // 1 MiB message ≈ latency + 1 MiB / 2.5 GB/s ≈ 0.42 ms.
        let t = m.transfer_time(1 << 20);
        assert!(t > 4.0e-4 && t < 5.0e-4, "t = {t}");
        // 1 Mflop at 2 Gflop/s = 0.5 ms.
        assert!((m.compute_time(1.0e6) - 5.0e-4).abs() < 1e-12);
    }

    #[test]
    fn zero_model_is_free() {
        let m = NetworkModel::zero();
        assert_eq!(m.transfer_time(1 << 30), 0.0);
        assert_eq!(m.compute_time(1e12), 0.0);
    }

    #[test]
    fn transfer_scales_linearly_in_bytes() {
        let m = NetworkModel::default();
        let t1 = m.transfer_time(1000);
        let t2 = m.transfer_time(2000);
        let per_byte = t2 - t1;
        assert!((per_byte - 1000.0 * m.seconds_per_byte).abs() < 1e-15);
    }
}
