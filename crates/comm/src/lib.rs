//! # comm — message-passing substrate with a virtual-time cluster model
//!
//! This crate stands in for MPI in the reproduction of *"A Python HPC
//! framework: PyTrilinos, ODIN, and Seamless"* (SC 2012). Every *rank* is an
//! OS thread with a private mailbox; ranks exchange typed, tagged messages
//! and participate in collectives, exactly mirroring the MPI programming
//! model the paper's systems are built on.
//!
//! Because the reproduction runs on a shared-memory machine rather than a
//! cluster, the substrate additionally maintains a **LogGP-style virtual
//! clock** per rank: each message advances the receiver's clock by
//! `L + bytes·G`, and compute phases advance clocks via
//! [`Comm::advance_compute`]. Benchmarks report both measured wall time and
//! the modeled cluster makespan (the maximum clock over all ranks), which is
//! what gives scaling curves their *shape* when more ranks are simulated
//! than physical cores exist.
//!
//! ## Quick example
//!
//! ```
//! use comm::{Universe, ReduceOp};
//!
//! let results = Universe::run(4, |comm| {
//!     let mine = (comm.rank() + 1) as u64;
//!     comm.allreduce(&mine, ReduceOp::sum())
//! });
//! assert_eq!(results, vec![10, 10, 10, 10]);
//! ```

pub mod collectives;
pub mod comm;
pub mod error;
pub mod fault;
pub mod model;
pub mod payload;
pub mod queue;
pub mod reliable;
pub mod request;
pub mod stats;
pub mod universe;
pub mod wire;

pub use crate::comm::{Comm, Src, Status, Tag, MAX_USER_TAG};
pub use collectives::{CollectiveAlgo, ReduceOp};
pub use error::CommError;
pub use fault::{Delivery, FaultAction, FaultPlan};
pub use model::NetworkModel;
pub use payload::{Payload, Region, DEFAULT_ZEROCOPY_THRESHOLD};
pub use queue::{Bounded, PopError, PushError, QueueStats};
pub use request::{Completion, Request};
pub use stats::CommStats;
pub use universe::{RunReport, Universe, UniverseConfig};
pub use wire::{decode_from_slice, encode_to_vec, Cursor, Wire};
