//! Job launcher: spawns one thread per rank and collects results.

use std::sync::Arc;
use std::time::Instant;

use std::sync::mpsc::channel;

use crate::collectives::CollectiveAlgo;
use crate::comm::{Comm, Envelope};
use crate::fault::{Delivery, FaultPlan};
use crate::model::NetworkModel;
use crate::stats::CommStats;

/// Configuration for a run: the cost model and collective algorithm.
#[derive(Debug, Clone, Copy)]
pub struct UniverseConfig {
    /// LogGP constants used by every rank's virtual clock.
    pub model: NetworkModel,
    /// Collective algorithm family (ablated in E12).
    pub algo: CollectiveAlgo,
    /// Encoded-equivalent payload size, in bytes, at or above which the
    /// typed zero-copy send paths ship an `Arc`-backed region handle
    /// instead of encoding (see the `payload` module). Modeled time is
    /// arm-independent, so this only moves wall-clock cost; set it to
    /// `usize::MAX` to force the encode path everywhere (parity tests do).
    pub zerocopy_threshold: usize,
    /// When `true`, typed zero-copy sends stamp each region with an
    /// FNV-1a digest of the value's wire encoding and typed zero-copy
    /// receives re-encode and verify it, surfacing a mismatch as
    /// [`crate::CommError::Corrupt`]. Off by default: in-process region
    /// handles cannot bit-rot in flight, so the check exists to catch
    /// aliasing bugs (a sender mutating a value it still shares with an
    /// in-flight retransmit copy) at the cost of re-serializing — it
    /// deliberately trades away the zero-copy CPU win while keeping the
    /// zero-copy allocation behavior.
    pub region_integrity: bool,
    /// Wall-clock deadline for blocking receives and request waits; a
    /// rank blocked longer returns [`crate::CommError::Stalled`] with
    /// who/tag/src diagnostics instead of hanging forever. `None`
    /// (default) blocks indefinitely.
    pub stall_timeout: Option<std::time::Duration>,
    /// Seeded fault schedule injected into every rank's transmissions.
    /// The default plan injects nothing.
    pub fault: FaultPlan,
    /// How envelopes travel: [`Delivery::Raw`] (default) delivers
    /// directly and lets injected faults stand; [`Delivery::Reliable`]
    /// layers seq/ack/retransmit/dup-suppression on top so drop, dup and
    /// corrupt faults are healed transparently (see E18).
    pub delivery: Delivery,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            model: NetworkModel::default(),
            algo: CollectiveAlgo::default(),
            zerocopy_threshold: crate::payload::DEFAULT_ZEROCOPY_THRESHOLD,
            region_integrity: false,
            stall_timeout: None,
            fault: FaultPlan::default(),
            delivery: Delivery::default(),
        }
    }
}

impl UniverseConfig {
    /// Set the LogGP network cost model.
    #[must_use]
    pub fn with_model(mut self, model: NetworkModel) -> Self {
        self.model = model;
        self
    }

    /// Set the collective algorithm family.
    #[must_use]
    pub fn with_algo(mut self, algo: CollectiveAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Set the zero-copy region threshold (bytes of encoded-equivalent
    /// payload). `usize::MAX` disables region transfer entirely.
    #[must_use]
    pub fn with_zerocopy_threshold(mut self, bytes: usize) -> Self {
        self.zerocopy_threshold = bytes;
        self
    }

    /// Enable (or disable) the FNV integrity check on zero-copy region
    /// payloads. See [`UniverseConfig::region_integrity`].
    #[must_use]
    pub fn with_region_integrity(mut self, on: bool) -> Self {
        self.region_integrity = on;
        self
    }

    /// Set the blocking-receive deadline.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Set the injected fault schedule.
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Set the delivery mode.
    #[must_use]
    pub fn with_delivery(mut self, delivery: Delivery) -> Self {
        self.delivery = delivery;
        self
    }
}

/// Everything measured about one run.
#[derive(Debug)]
pub struct RunReport<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication counters.
    pub stats: Vec<CommStats>,
    /// Modeled cluster makespan: the maximum virtual clock over all ranks.
    pub makespan_s: f64,
    /// Measured wall-clock duration of the whole job.
    pub wall_s: f64,
}

/// Entry point: `Universe::run(P, |comm| …)` executes the closure on `P`
/// ranks (threads) and returns their results in rank order.
pub struct Universe;

impl Universe {
    /// Run with default configuration, returning only the results.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        Self::run_report(UniverseConfig::default(), size, f).results
    }

    /// Run with explicit configuration, returning the full report.
    pub fn run_report<R, F>(config: UniverseConfig, size: usize, f: F) -> RunReport<R>
    where
        R: Send,
        F: Fn(&mut Comm) -> R + Send + Sync,
    {
        assert!(size > 0, "a job needs at least one rank");
        obs::init_from_env();
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let f = &f;
        let t0 = Instant::now();
        let mut outcomes: Vec<Option<(R, CommStats, f64)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let senders = Arc::clone(&senders);
                handles.push(scope.spawn(move || {
                    let _obs = obs::RankGuard::enter(rank);
                    let mut comm = Comm::new_world(rank, size, senders, rx, &config);
                    let result = f(&mut comm);
                    // Heal any still-unacked reliable sends before the
                    // rank's mailbox goes away.
                    comm.quiesce();
                    (result, comm.stats(), comm.virtual_time())
                }));
            }
            for (rank, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(out) => outcomes[rank] = Some(out),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let mut results = Vec::with_capacity(size);
        let mut stats = Vec::with_capacity(size);
        let mut makespan_s: f64 = 0.0;
        for out in outcomes {
            let (r, st, clock) = out.expect("every rank must produce a result");
            results.push(r);
            stats.push(st);
            makespan_s = makespan_s.max(clock);
        }
        RunReport {
            results,
            stats,
            makespan_s,
            wall_s,
        }
    }
}

/// A running detached job (see [`Universe::spawn`]).
pub struct Detached<R> {
    handles: Vec<std::thread::JoinHandle<(R, CommStats, f64)>>,
}

impl<R> Detached<R> {
    /// Wait for every rank and assemble the report.
    pub fn join(self) -> RunReport<R> {
        let mut results = Vec::with_capacity(self.handles.len());
        let mut stats = Vec::with_capacity(self.handles.len());
        let mut makespan_s: f64 = 0.0;
        for h in self.handles {
            match h.join() {
                Ok((r, st, clock)) => {
                    results.push(r);
                    stats.push(st);
                    makespan_s = makespan_s.max(clock);
                }
                Err(e) => std::panic::resume_unwind(e),
            }
        }
        RunReport {
            results,
            stats,
            makespan_s,
            wall_s: 0.0,
        }
    }

    /// Wait for every rank, swallowing panics instead of resuming them.
    /// A supervisor tearing down a pool that may have died (killed or
    /// stalled workers) must not re-panic mid-cleanup. Returns the number
    /// of ranks that panicked.
    pub fn join_quiet(self) -> usize {
        self.handles
            .into_iter()
            .map(|h| h.join())
            .filter(|r| r.is_err())
            .count()
    }

    /// Abandon the pool without joining: the threads are detached and
    /// exit with the process. Used when workers may be blocked forever
    /// (e.g. stuck in a collective with a killed peer).
    pub fn abandon(self) {
        drop(self.handles);
    }
}

impl Universe {
    /// Spawn a job whose ranks outlive the caller (a persistent worker
    /// pool — the shape of ODIN's worker processes). The closure receives
    /// `(comm, rank)`; per-rank inputs should be moved in via `seed_fn`,
    /// which is called once per rank on the spawning thread.
    pub fn spawn<R, T, F, G>(config: UniverseConfig, size: usize, seed_fn: G, f: F) -> Detached<R>
    where
        R: Send + 'static,
        T: Send + 'static,
        F: Fn(&mut Comm, T) -> R + Send + Sync + 'static,
        G: FnMut(usize) -> T,
    {
        assert!(size > 0, "a job needs at least one rank");
        obs::init_from_env();
        let mut seed_fn = seed_fn;
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }
        let senders = Arc::new(senders);
        let f = Arc::new(f);
        let mut handles = Vec::with_capacity(size);
        for (rank, rx) in receivers.into_iter().enumerate() {
            let senders = Arc::clone(&senders);
            let f = Arc::clone(&f);
            let seed = seed_fn(rank);
            handles.push(std::thread::spawn(move || {
                let _obs = obs::RankGuard::enter(rank);
                let mut comm = Comm::new_world(rank, size, senders, rx, &config);
                let result = f(&mut comm, seed);
                comm.quiesce();
                (result, comm.stats(), comm.virtual_time())
            }));
        }
        Detached { handles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReduceOp;

    #[test]
    fn results_come_back_in_rank_order() {
        let out = Universe::run(6, |comm| comm.rank() * comm.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25]);
    }

    #[test]
    fn single_rank_world_works() {
        let out = Universe::run(1, |comm| {
            assert_eq!(comm.size(), 1);
            comm.barrier();
            comm.allreduce(&5i32, ReduceOp::sum())
        });
        assert_eq!(out, vec![5]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Universe::run(0, |_comm| ());
    }

    #[test]
    fn report_includes_makespan_and_stats() {
        let report = Universe::run_report(UniverseConfig::default(), 3, |comm| {
            comm.advance_compute(1.0e6);
            comm.barrier();
        });
        // Every rank computed 1 Mflop at the default 2 Gflop/s: ≥ 0.5 ms.
        assert!(report.makespan_s >= 5.0e-4);
        assert_eq!(report.stats.len(), 3);
        assert!(report.wall_s > 0.0);
        // Dissemination barrier on 3 ranks: 2 rounds, 2 sends per rank.
        assert_eq!(report.stats[0].msgs_sent, 2);
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Universe::run(2, |comm| {
                if comm.rank() == 1 {
                    panic!("worker exploded");
                }
                // rank 0 returns without waiting on rank 1
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn spawn_runs_detached_pool() {
        use std::sync::mpsc::channel as chan;
        let mut inboxes = Vec::new();
        let detached = Universe::spawn(
            UniverseConfig::default(),
            3,
            |_rank| {
                let (tx, rx) = chan::<u64>();
                inboxes.push(tx);
                rx
            },
            |comm, rx| {
                // wait for a value from the spawner, then allreduce it
                let v = rx.recv().unwrap();
                comm.allreduce(&v, ReduceOp::sum())
            },
        );
        for (i, tx) in inboxes.iter().enumerate() {
            tx.send(i as u64 + 1).unwrap();
        }
        let report = detached.join();
        assert_eq!(report.results, vec![6, 6, 6]);
    }

    #[test]
    fn zero_model_keeps_clock_at_zero() {
        let cfg = UniverseConfig {
            model: NetworkModel::zero(),
            ..Default::default()
        };
        let report = Universe::run_report(cfg, 4, |comm| {
            comm.allreduce(&1u64, ReduceOp::sum());
        });
        assert_eq!(report.makespan_s, 0.0);
    }
}
