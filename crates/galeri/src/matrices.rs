//! Standard test matrices, all distributed over block row maps.

use comm::Comm;
use dlinalg::CsrMatrix;
use dmap::DistMap;
use obs::SplitMix64;

fn square_maps(comm: &Comm, n: usize) -> (DistMap, DistMap) {
    let m = DistMap::block(n, comm.size(), comm.rank());
    (m.clone(), m)
}

/// General tridiagonal matrix with constant bands `(lower, diag, upper)`.
pub fn tridiag(comm: &Comm, n: usize, lower: f64, diag: f64, upper: f64) -> CsrMatrix<f64> {
    let (rm, dm) = square_maps(comm, n);
    CsrMatrix::from_row_fn(comm, rm, dm, move |g| {
        let mut row = Vec::with_capacity(3);
        if g > 0 {
            row.push((g - 1, lower));
        }
        row.push((g, diag));
        if g + 1 < n {
            row.push((g + 1, upper));
        }
        row
    })
}

/// 1-D Dirichlet Laplacian: stencil `[-1, 2, -1]`, SPD, eigenvalues
/// `2 - 2cos(kπ/(n+1))`.
pub fn laplace_1d(comm: &Comm, n: usize) -> CsrMatrix<f64> {
    tridiag(comm, n, -1.0, 2.0, -1.0)
}

/// 2-D Dirichlet Laplacian on an `nx × ny` grid, 5-point stencil,
/// row-major grid numbering. SPD.
pub fn laplace_2d(comm: &Comm, nx: usize, ny: usize) -> CsrMatrix<f64> {
    let n = nx * ny;
    let (rm, dm) = square_maps(comm, n);
    CsrMatrix::from_row_fn(comm, rm, dm, move |g| {
        let (i, j) = (g % nx, g / nx);
        let mut row = Vec::with_capacity(5);
        if j > 0 {
            row.push((g - nx, -1.0));
        }
        if i > 0 {
            row.push((g - 1, -1.0));
        }
        row.push((g, 4.0));
        if i + 1 < nx {
            row.push((g + 1, -1.0));
        }
        if j + 1 < ny {
            row.push((g + nx, -1.0));
        }
        row
    })
}

/// 3-D Dirichlet Laplacian on an `nx × ny × nz` grid, 7-point stencil.
pub fn laplace_3d(comm: &Comm, nx: usize, ny: usize, nz: usize) -> CsrMatrix<f64> {
    let n = nx * ny * nz;
    let (rm, dm) = square_maps(comm, n);
    CsrMatrix::from_row_fn(comm, rm, dm, move |g| {
        let i = g % nx;
        let j = (g / nx) % ny;
        let k = g / (nx * ny);
        let mut row = Vec::with_capacity(7);
        if k > 0 {
            row.push((g - nx * ny, -1.0));
        }
        if j > 0 {
            row.push((g - nx, -1.0));
        }
        if i > 0 {
            row.push((g - 1, -1.0));
        }
        row.push((g, 6.0));
        if i + 1 < nx {
            row.push((g + 1, -1.0));
        }
        if j + 1 < ny {
            row.push((g + nx, -1.0));
        }
        if k + 1 < nz {
            row.push((g + nx * ny, -1.0));
        }
        row
    })
}

/// Anisotropic 2-D Laplacian: `-u_xx - eps * u_yy`. Small `eps` stresses
/// preconditioners (the classic smoothed-aggregation test case).
pub fn anisotropic_laplace_2d(comm: &Comm, nx: usize, ny: usize, eps: f64) -> CsrMatrix<f64> {
    let n = nx * ny;
    let (rm, dm) = square_maps(comm, n);
    CsrMatrix::from_row_fn(comm, rm, dm, move |g| {
        let (i, j) = (g % nx, g / nx);
        let mut row = Vec::with_capacity(5);
        if j > 0 {
            row.push((g - nx, -eps));
        }
        if i > 0 {
            row.push((g - 1, -1.0));
        }
        row.push((g, 2.0 + 2.0 * eps));
        if i + 1 < nx {
            row.push((g + 1, -1.0));
        }
        if j + 1 < ny {
            row.push((g + nx, -eps));
        }
        row
    })
}

/// 1-D advection–diffusion `-u'' + beta·u'` (central differences):
/// nonsymmetric for `beta ≠ 0`; exercises GMRES/BiCGStab.
pub fn advection_diffusion_1d(comm: &Comm, n: usize, beta: f64) -> CsrMatrix<f64> {
    let h = 1.0 / (n as f64 + 1.0);
    tridiag(comm, n, -1.0 - 0.5 * beta * h, 2.0, -1.0 + 0.5 * beta * h)
}

/// Identity matrix.
pub fn identity(comm: &Comm, n: usize) -> CsrMatrix<f64> {
    let (rm, dm) = square_maps(comm, n);
    CsrMatrix::from_row_fn(comm, rm, dm, |g| vec![(g, 1.0)])
}

/// Random sparse symmetric diagonally-dominant (hence SPD) matrix with
/// about `off_per_row` off-diagonal entries per row. Deterministic in
/// `seed` and independent of the rank count (entries are generated
/// globally, then kept if locally owned).
pub fn random_spd(comm: &Comm, n: usize, off_per_row: usize, seed: u64) -> CsrMatrix<f64> {
    // Generate the global symmetric pattern identically on every rank.
    let mut rng = SplitMix64::new(seed);
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for _ in 0..off_per_row {
            let j = rng.gen_index(n);
            let v = -rng.gen_range_f64(0.1, 1.0);
            if i != j {
                entries.push((i, j, v));
                entries.push((j, i, v));
            }
        }
    }
    // Row sums for diagonal dominance.
    let mut rowsum = vec![0.0f64; n];
    for &(i, _, v) in &entries {
        rowsum[i] += v.abs();
    }
    let (rm, dm) = square_maps(comm, n);
    let mine: Vec<(usize, usize, f64)> = entries
        .into_iter()
        .filter(|&(i, _, _)| rm.global_to_local(i).is_some())
        .chain(
            (0..n)
                .filter(|&i| rm.global_to_local(i).is_some())
                .map(|i| (i, i, rowsum[i] + 1.0)),
        )
        .collect();
    CsrMatrix::from_triplets(comm, rm, dm, mine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;
    use dlinalg::DistVector;

    #[test]
    fn laplace_1d_row_sums() {
        Universe::run(2, |comm| {
            let a = laplace_1d(comm, 6);
            let ones = DistVector::constant(a.domain_map().clone(), 1.0);
            let y = a.matvec(comm, &ones).gather_global(comm);
            // interior rows sum to 0, boundary rows to 1
            assert_eq!(y, vec![1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        });
    }

    #[test]
    fn laplace_2d_structure() {
        Universe::run(3, |comm| {
            let a = laplace_2d(comm, 3, 3);
            assert_eq!(a.shape(), (9, 9));
            // 5-point stencil nnz: 9*5 - 2*3(boundary x) - 2*3(boundary y) = 33
            assert_eq!(a.nnz_global(comm), 33);
            let d = a.diagonal();
            assert!(d.local().iter().all(|&v| v == 4.0));
        });
    }

    #[test]
    fn laplace_3d_structure() {
        Universe::run(2, |comm| {
            let a = laplace_3d(comm, 2, 3, 2);
            assert_eq!(a.shape(), (12, 12));
            let ones = DistVector::constant(a.domain_map().clone(), 1.0);
            let y = a.matvec(comm, &ones);
            // row sum = 6 - number of neighbors ≥ 0 for all rows
            assert!(y.local().iter().all(|&v| v >= 0.0));
        });
    }

    #[test]
    fn advection_diffusion_is_nonsymmetric() {
        Universe::run(2, |comm| {
            let a = advection_diffusion_1d(comm, 8, 10.0);
            let at = a.transpose(comm);
            let x = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64 + 0.3).cos());
            let y1 = a.matvec(comm, &x).gather_global(comm);
            let y2 = at.matvec(comm, &x).gather_global(comm);
            assert!(y1.iter().zip(&y2).any(|(u, v)| (u - v).abs() > 1e-10));
        });
    }

    #[test]
    fn identity_matvec_is_identity() {
        Universe::run(2, |comm| {
            let a = identity(comm, 5);
            let x = DistVector::from_fn(a.domain_map().clone(), |g| g as f64 * 1.1);
            let y = a.matvec(comm, &x);
            assert_eq!(y.local(), x.local());
        });
    }

    #[test]
    fn random_spd_is_symmetric_and_rank_count_invariant() {
        let y2 = Universe::run(2, |comm| {
            let a = random_spd(comm, 20, 3, 42);
            let x = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64 * 0.37).sin());
            a.matvec(comm, &x).gather_global(comm)
        });
        let y3 = Universe::run(3, |comm| {
            let a = random_spd(comm, 20, 3, 42);
            let x = DistVector::from_fn(a.domain_map().clone(), |g| (g as f64 * 0.37).sin());
            // symmetry: compare with transpose action
            let at = a.transpose(comm);
            let y = a.matvec(comm, &x).gather_global(comm);
            let yt = at.matvec(comm, &x).gather_global(comm);
            for (u, v) in y.iter().zip(&yt) {
                assert!((u - v).abs() < 1e-12, "not symmetric");
            }
            y
        });
        for (u, v) in y2[0].iter().zip(&y3[0]) {
            assert!((u - v).abs() < 1e-12, "rank-count dependence detected");
        }
    }

    #[test]
    fn tridiag_bands() {
        Universe::run(2, |comm| {
            let a = tridiag(comm, 5, 1.0, -2.0, 3.0);
            let x = DistVector::from_fn(a.domain_map().clone(), |_| 1.0);
            let y = a.matvec(comm, &x).gather_global(comm);
            assert_eq!(y, vec![1.0, 2.0, 2.0, 2.0, -1.0]);
        });
    }
}
