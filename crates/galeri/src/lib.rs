//! # galeri — gallery of maps, matrices and manufactured problems
//!
//! Analog of the Trilinos Galeri package ("examples of common maps and
//! matrices", paper Table I) plus the TriUtils testing-utility role: every
//! solver test and benchmark in the workspace draws its operators from
//! here.

pub mod manufactured;
pub mod maps;
pub mod matrices;
pub mod workloads;

pub use manufactured::{poisson1d_manufactured, poisson2d_manufactured, ManufacturedProblem};
pub use matrices::{
    advection_diffusion_1d, anisotropic_laplace_2d, identity, laplace_1d, laplace_2d, laplace_3d,
    random_spd, tridiag,
};
