//! Manufactured-solution problems: operator + right-hand side + exact
//! solution, for convergence tests that know the answer.

use std::f64::consts::PI;

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector};

use crate::matrices::{laplace_1d, laplace_2d};

/// A linear system with a known exact solution.
pub struct ManufacturedProblem {
    /// The operator.
    pub a: CsrMatrix<f64>,
    /// Right-hand side.
    pub b: DistVector<f64>,
    /// Exact discrete solution (`a · x_exact == b` to rounding).
    pub x_exact: DistVector<f64>,
}

/// 1-D Poisson with `u(x) = sin(πx)` on `(0,1)`, Dirichlet boundaries.
/// The discrete RHS is computed as `A·u_h`, so `u_h` is exactly the
/// discrete solution (no truncation-error tolerance needed in tests).
pub fn poisson1d_manufactured(comm: &Comm, n: usize) -> ManufacturedProblem {
    let a = laplace_1d(comm, n);
    let h = 1.0 / (n as f64 + 1.0);
    let x_exact = DistVector::from_fn(a.domain_map().clone(), move |g| {
        (PI * (g as f64 + 1.0) * h).sin()
    });
    let b = a.matvec(comm, &x_exact);
    ManufacturedProblem { a, b, x_exact }
}

/// 2-D Poisson with `u(x,y) = sin(πx)·sin(πy)` on the unit square.
pub fn poisson2d_manufactured(comm: &Comm, nx: usize, ny: usize) -> ManufacturedProblem {
    let a = laplace_2d(comm, nx, ny);
    let hx = 1.0 / (nx as f64 + 1.0);
    let hy = 1.0 / (ny as f64 + 1.0);
    let x_exact = DistVector::from_fn(a.domain_map().clone(), move |g| {
        let i = (g % nx) as f64 + 1.0;
        let j = (g / nx) as f64 + 1.0;
        (PI * i * hx).sin() * (PI * j * hy).sin()
    });
    let b = a.matvec(comm, &x_exact);
    ManufacturedProblem { a, b, x_exact }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn residual_of_exact_solution_is_zero() {
        Universe::run(3, |comm| {
            for prob in [
                poisson1d_manufactured(comm, 17),
                poisson2d_manufactured(comm, 5, 7),
            ] {
                let ax = prob.a.matvec(comm, &prob.x_exact);
                let mut r = prob.b.clone();
                r.axpy(-1.0, &ax);
                assert!(r.norm2(comm) < 1e-13);
            }
        });
    }

    #[test]
    fn solution_is_nontrivial() {
        Universe::run(2, |comm| {
            let prob = poisson2d_manufactured(comm, 6, 6);
            assert!(prob.x_exact.norm2(comm) > 0.5);
            assert!(prob.b.norm2(comm) > 0.0);
        });
    }
}
