//! Convenience map constructors bound to a communicator.

use comm::Comm;
use dmap::{DistMap, Distribution};

/// Uniform block map over `comm`.
pub fn block_map(comm: &Comm, n: usize) -> DistMap {
    DistMap::block(n, comm.size(), comm.rank())
}

/// Cyclic map over `comm`.
pub fn cyclic_map(comm: &Comm, n: usize) -> DistMap {
    DistMap::cyclic(n, comm.size(), comm.rank())
}

/// Map with an arbitrary structured distribution over `comm`.
pub fn map_with(comm: &Comm, dist: Distribution, n: usize) -> DistMap {
    DistMap::with_distribution(dist, n, comm.size(), comm.rank())
}

/// An intentionally imbalanced block map: the first rank gets `frac` of
/// all indices (test fodder for the Isorropia-style rebalancer).
pub fn skewed_block_map(comm: &Comm, n: usize, frac: f64) -> DistMap {
    let p = comm.size();
    assert!((0.0..=1.0).contains(&frac));
    let first = ((n as f64) * frac) as usize;
    let rest = n - first;
    let mut counts = vec![0usize; p];
    counts[0] = first;
    for (r, c) in counts.iter_mut().enumerate().skip(1) {
        *c = rest / (p - 1) + usize::from(r - 1 < rest % (p - 1));
    }
    if p == 1 {
        counts[0] = n;
    }
    DistMap::block_from_counts(&counts, comm.rank())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn builders_cover_distributions() {
        Universe::run(3, |comm| {
            assert_eq!(block_map(comm, 10).n_global(), 10);
            assert_eq!(
                cyclic_map(comm, 10).my_count(),
                10 / 3 + usize::from(comm.rank() < 1)
            );
            let m = map_with(comm, Distribution::BlockCyclic(2), 12);
            assert_eq!(m.n_global(), 12);
        });
    }

    #[test]
    fn skewed_map_is_skewed() {
        Universe::run(4, |comm| {
            let m = skewed_block_map(comm, 100, 0.7);
            if comm.rank() == 0 {
                assert_eq!(m.my_count(), 70);
            } else {
                assert_eq!(m.my_count(), 10);
            }
        });
    }
}
