//! Synthetic workload generators shared by benchmarks.

use comm::Comm;
use dlinalg::DistVector;
use dmap::DistMap;
use obs::SplitMix64;

/// Deterministic random vector: values depend only on the global index and
/// seed, so results are identical for every rank count.
pub fn random_vector(comm: &Comm, n: usize, seed: u64) -> DistVector<f64> {
    let map = DistMap::block(n, comm.size(), comm.rank());
    DistVector::from_fn(map, move |g| {
        let mut rng = SplitMix64::new(seed ^ (g as u64).wrapping_mul(0x9e3779b97f4a7c15));
        rng.gen_range_f64(-1.0, 1.0)
    })
}

/// Per-element weights with a power-law hotspot at low indices —
/// the load-imbalance stress case for rebalancing.
pub fn powerlaw_weights(map: &DistMap, alpha: f64) -> Vec<f64> {
    (0..map.my_count())
        .map(|l| {
            let g = map.local_to_global(l) as f64 + 1.0;
            g.powf(-alpha) * 1000.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn random_vector_rank_count_invariant() {
        let a = Universe::run(2, |comm| random_vector(comm, 16, 7).gather_global(comm));
        let b = Universe::run(4, |comm| random_vector(comm, 16, 7).gather_global(comm));
        assert_eq!(a[0], b[0]);
    }

    #[test]
    fn powerlaw_is_decreasing() {
        Universe::run(1, |comm| {
            let map = DistMap::block(10, comm.size(), comm.rank());
            let w = powerlaw_weights(&map, 1.0);
            for k in 1..w.len() {
                assert!(w[k] <= w[k - 1]);
            }
        });
    }
}
