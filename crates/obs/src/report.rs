//! Human-readable text report and machine-readable registry dump.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::registry;
use crate::span;
use crate::trace::escape_json;

/// Dump the global registry as a JSON object:
/// `{"counters":{…},"gauges":{…},"histograms":{"k":{"count":…,"sum":…,
/// "min":…,"max":…,"buckets":[…]}}}`. The `bench` binaries expose this
/// via `--metrics-json` for trajectory tracking.
pub fn metrics_json() -> String {
    let mut counters = String::new();
    let mut gauges = String::new();
    let mut hists = String::new();
    registry::global().for_each(|key, kind, value, snap| match kind {
        "counter" => {
            if !counters.is_empty() {
                counters.push(',');
            }
            let _ = write!(counters, "\"{}\":{}", escape_json(key), value as u64);
        }
        "gauge" => {
            if !gauges.is_empty() {
                gauges.push(',');
            }
            let v = if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            };
            let _ = write!(gauges, "\"{}\":{}", escape_json(key), v);
        }
        _ => {
            let s = snap.expect("histogram entries carry snapshots");
            if !hists.is_empty() {
                hists.push(',');
            }
            let min = if s.count == 0 { 0 } else { s.min };
            let _ = write!(
                hists,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                escape_json(key),
                s.count,
                s.sum,
                min,
                s.max
            );
            // Trim trailing empty buckets to keep the dump readable.
            let last = s.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
            for (i, b) in s.buckets[..last].iter().enumerate() {
                if i > 0 {
                    hists.push(',');
                }
                let _ = write!(hists, "{b}");
            }
            hists.push_str("]}");
        }
    });
    format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}")
}

/// Pretty-print a byte-ish quantity for the text report.
fn fmt_qty(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else if v == v.trunc() {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// The human-readable report: every metric in key order, histograms with
/// count/mean/min/max and a sparkline of the log2 profile, then a span
/// summary aggregated by `category.name` over all ranks.
pub fn text_report() -> String {
    let mut out = String::new();
    out.push_str("== observability report ==\n");
    out.push_str("-- metrics --\n");
    let mut any = false;
    registry::global().for_each(|key, kind, value, snap| {
        any = true;
        match kind {
            "counter" => {
                let _ = writeln!(out, "  {key:<48} {:>12}", fmt_qty(value));
            }
            "gauge" => {
                let _ = writeln!(out, "  {key:<48} {value:>12.4}");
            }
            _ => {
                let s = snap.expect("histogram entries carry snapshots");
                let mean = if s.count == 0 {
                    0.0
                } else {
                    s.sum as f64 / s.count as f64
                };
                let min = if s.count == 0 { 0 } else { s.min };
                let bars: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                let peak = s.buckets.iter().copied().max().unwrap_or(0).max(1);
                let last = s.buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                let spark: String = s.buckets[..last]
                    .iter()
                    .map(|&b| bars[(b * 8).div_ceil(peak) as usize])
                    .collect();
                let _ = writeln!(
                    out,
                    "  {key:<48} n={} mean={} min={} max={} log2=[{spark}]",
                    fmt_qty(s.count as f64),
                    fmt_qty(mean),
                    fmt_qty(min as f64),
                    fmt_qty(s.max as f64),
                );
            }
        }
    });
    if !any {
        out.push_str("  (no metrics recorded)\n");
    }
    out.push_str("-- spans (all ranks) --\n");
    // (cat, name) -> (count, total virtual seconds, total wall seconds)
    let mut agg: BTreeMap<(String, String), (u64, f64, f64)> = BTreeMap::new();
    let mut ranks = 0usize;
    for (rank, dropped, events) in span::snapshot_all() {
        if dropped > 0 {
            let who = rank.map_or("driver".to_string(), |r| format!("rank {r}"));
            let _ = writeln!(
                out,
                "  WARNING: {who} overwrote {dropped} spans (ring full) — \
                 traces and profiles are truncated"
            );
        }
        if !events.is_empty() {
            ranks += 1;
        }
        for ev in events {
            let e = agg
                .entry((ev.cat.to_string(), ev.name.to_string()))
                .or_insert((0, 0.0, 0.0));
            e.0 += 1;
            e.1 += (ev.virt_end_s - ev.virt_start_s).max(0.0);
            e.2 += (ev.wall_end_s - ev.wall_start_s).max(0.0);
        }
    }
    if agg.is_empty() {
        out.push_str("  (no spans recorded)\n");
    } else {
        let _ = writeln!(
            out,
            "  {:<40} {:>10} {:>14} {:>14}   ({ranks} active timelines)",
            "span", "count", "virt total", "wall total"
        );
        for ((cat, name), (count, virt, wall)) in agg {
            let _ = writeln!(
                out,
                "  {:<40} {count:>10} {virt:>13.6}s {wall:>13.6}s",
                format!("{cat}.{name}")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_json_is_valid_and_complete() {
        registry::global()
            .counter("report.test_counter{rank=0}")
            .add(7);
        registry::global().gauge("report.test_gauge").set(1.5);
        registry::global().histogram("report.test_hist").record(100);
        let j = metrics_json();
        crate::json::validate(&j).expect("metrics dump must be valid JSON");
        assert!(j.contains("\"report.test_counter{rank=0}\":7"));
        assert!(j.contains("report.test_gauge"));
        assert!(j.contains("report.test_hist"));
    }

    #[test]
    fn text_report_renders_without_panicking() {
        registry::global().histogram("report.render_hist").record(0);
        let r = text_report();
        assert!(r.contains("observability report"));
        assert!(r.contains("report.render_hist"));
    }
}
