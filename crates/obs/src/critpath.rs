//! Critical-path extraction and straggler attribution over the program
//! activity graph.
//!
//! The walk runs *backward* over LogGP virtual time: start at the rank
//! whose recorded clock ends latest (the makespan), repeatedly find the
//! event span that last advanced that rank's clock, attribute the
//! interval it explains, and — when the event is a receive that actually
//! blocked — hop the matched flow edge to the sender and continue there
//! at the sender's post time. Every attributed interval lands in exactly
//! one of five categories:
//!
//! * **compute** — clock advance with no event span covering it
//!   (`advance_compute`, ack overheads, un-instrumented work);
//! * **wire** — posting/delivery overhead `o`, serialization `bytes·G`,
//!   and latency `L` of messages on the path;
//! * **blocked** — wait time explained by nothing but the sender being
//!   late: NIC queueing beyond the message's own serialization and any
//!   injected delay (this is where a delay fault surfaces, charged to
//!   the *sending* rank);
//! * **retransmit** — reliable-delivery retransmission spans on the path;
//! * **kernel** — Seamless VM execution spans on the path.
//!
//! Each walk step attributes exactly the amount by which the frontier
//! time decreases, so the categories tile `[0, makespan]` with no gaps
//! or double counting; [`Profile::critical_path_s`] is *defined* as the
//! ordered sum of the five category totals, which is the bitwise
//! identity the tests assert. Cross-domain edges (ODIN master → worker,
//! wall clock vs virtual clock) are drawn in the trace but never walked.

use std::collections::{BTreeMap, HashMap};

use crate::flow::args;
use crate::graph::Pag;
use crate::span::SpanKind;
use crate::trace::escape_json;

/// Category names, in attribution order; `Profile::categories` and
/// `RankLoad::residency` are indexed the same way.
pub const CATEGORIES: [&str; 5] = ["compute", "wire", "blocked", "retransmit", "kernel"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cat {
    Compute = 0,
    Wire = 1,
    Blocked = 2,
    Retransmit = 3,
    Kernel = 4,
}

/// One rank's view of the profile.
#[derive(Debug, Clone)]
pub struct RankProfile {
    /// Global rank id.
    pub rank: usize,
    /// Seconds of the critical path attributed to this rank, per
    /// [`CATEGORIES`] entry.
    pub residency: [f64; 5],
    /// Full-timeline decomposition of this rank's clock (not just the
    /// path), per [`CATEGORIES`] entry — the load/imbalance vector.
    pub load: [f64; 5],
    /// Final recorded virtual clock of this rank.
    pub end_s: f64,
}

impl RankProfile {
    /// Total critical-path seconds attributed to this rank.
    pub fn residency_total(&self) -> f64 {
        self.residency.iter().sum()
    }
    /// Straggler score: anomaly categories first (blocked + retransmit).
    fn straggler_score(&self) -> (f64, f64) {
        (
            self.residency[Cat::Blocked as usize] + self.residency[Cat::Retransmit as usize],
            self.residency_total(),
        )
    }
}

/// The hottest flow edge on the critical path.
#[derive(Debug, Clone, Copy)]
pub struct HotEdge {
    /// Sending (producing) rank.
    pub src: usize,
    /// Receiving (consuming) rank.
    pub dst: usize,
    /// Total path seconds carried by this rank pair's edges.
    pub total_s: f64,
    /// Portion attributed to the blocked category (queueing/delay).
    pub blocked_s: f64,
}

/// Everything the critical-path walk learned about a run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Latest recorded virtual clock over all ranks.
    pub makespan_s: f64,
    /// Length of the critical path: the ordered sum of [`Profile::categories`].
    pub critical_path_s: f64,
    /// Path seconds per [`CATEGORIES`] entry.
    pub categories: [f64; 5],
    /// Path seconds per subsystem (span category, or `"(gap)"` for
    /// un-instrumented clock advance).
    pub by_subsystem: BTreeMap<String, f64>,
    /// Per-rank residency and load vectors, by rank.
    pub ranks: Vec<RankProfile>,
    /// Ranks ordered most-suspicious first (blocked + retransmit
    /// residency, then total residency).
    pub stragglers: Vec<usize>,
    /// The dominant straggler (`stragglers[0]`), if any rank is on the path.
    pub dominant_rank: Option<usize>,
    /// The flow edge carrying the most blocked time on the path.
    pub dominant_edge: Option<HotEdge>,
    /// Diagnostics forwarded from the [`Pag`].
    pub orphan_consumers: usize,
    /// Flows produced but never consumed (see [`Pag::unconsumed_producers`]).
    pub unconsumed_producers: usize,
    /// Spans lost to ring overwrites; nonzero means a truncated profile.
    pub dropped_spans: u64,
    /// Makespan divided by mean rank end time (1.0 = perfectly balanced).
    pub imbalance: f64,
}

/// Run the critical-path walk over a built graph.
pub fn profile(pag: &Pag) -> Profile {
    let ends = pag.rank_end_times();
    let makespan_s = ends.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
    let mut acc = Acc::new(&ends);
    if let Some(&(start_rank, _)) = ends
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
    {
        walk(pag, start_rank, makespan_s, &mut acc);
    }
    acc.load_vectors(pag);
    acc.into_profile(pag, makespan_s, &ends)
}

/// Build the graph from the live span buffers and profile it.
pub fn profile_current() -> Profile {
    profile(&Pag::build())
}

struct Acc {
    residency: HashMap<usize, [f64; 5]>,
    load: HashMap<usize, [f64; 5]>,
    by_subsystem: BTreeMap<String, f64>,
    edges: HashMap<(usize, usize), (f64, f64)>,
    categories: [f64; 5],
}

impl Acc {
    fn new(ends: &[(usize, f64)]) -> Acc {
        let mut residency = HashMap::new();
        let mut load = HashMap::new();
        for &(r, _) in ends {
            residency.insert(r, [0.0; 5]);
            load.insert(r, [0.0; 5]);
        }
        Acc {
            residency,
            load,
            by_subsystem: BTreeMap::new(),
            edges: HashMap::new(),
            categories: [0.0; 5],
        }
    }

    fn add(&mut self, rank: usize, cat: Cat, subsystem: &str, amount: f64) {
        if amount <= 0.0 {
            return;
        }
        self.categories[cat as usize] += amount;
        self.residency.entry(rank).or_insert([0.0; 5])[cat as usize] += amount;
        *self
            .by_subsystem
            .entry(subsystem.to_string())
            .or_insert(0.0) += amount;
    }

    /// Full-timeline load vectors, independent of the walk: classify
    /// every event span's clock charge, then call the remainder of each
    /// rank's clock compute. Overlapping requests make this a (useful)
    /// approximation; the walk categories are the exact ones.
    fn load_vectors(&mut self, pag: &Pag) {
        for n in &pag.nodes {
            let Some(r) = n.rank else { continue };
            let e = &n.event;
            let dur = (e.virt_end_s - e.virt_start_s).max(0.0);
            let v = self.load.entry(r).or_insert([0.0; 5]);
            match e.kind {
                SpanKind::Kernel => v[Cat::Kernel as usize] += dur,
                SpanKind::Retx => v[Cat::Retransmit as usize] += dur,
                SpanKind::Recv => {
                    let blocked = e.arg(args::BLOCKED).unwrap_or(0.0).max(0.0);
                    let adv = e.arg(args::ADV).unwrap_or(0.0).max(blocked);
                    v[Cat::Blocked as usize] += blocked;
                    v[Cat::Wire as usize] += adv - blocked;
                }
                SpanKind::Send => {
                    let a = e.virt_start_s;
                    let pe = e.arg(args::POST_END).unwrap_or(a).max(a);
                    let d = e.arg(args::DEPART).unwrap_or(pe).max(pe);
                    let ws = e.arg(args::WIRE).unwrap_or(0.0).max(0.0);
                    let ser = d - pe;
                    v[Cat::Wire as usize] += (pe - a) + ser.min(ws);
                    v[Cat::Blocked as usize] += (ser - ws).max(0.0);
                }
                SpanKind::Other => {}
            }
        }
        for (r, v) in self.load.iter_mut() {
            let end = pag
                .nodes
                .iter()
                .filter(|n| n.rank == Some(*r))
                .map(|n| n.event.virt_end_s)
                .fold(0.0f64, f64::max);
            let tracked: f64 = v[1] + v[2] + v[3] + v[4];
            v[Cat::Compute as usize] = (end - tracked).max(0.0);
        }
    }

    fn into_profile(self, pag: &Pag, makespan_s: f64, ends: &[(usize, f64)]) -> Profile {
        let critical_path_s = self.categories.iter().sum();
        let mut ranks: Vec<RankProfile> = ends
            .iter()
            .map(|&(rank, end_s)| RankProfile {
                rank,
                residency: self.residency.get(&rank).copied().unwrap_or([0.0; 5]),
                load: self.load.get(&rank).copied().unwrap_or([0.0; 5]),
                end_s,
            })
            .collect();
        ranks.sort_by_key(|r| r.rank);
        let mut stragglers: Vec<usize> = ranks.iter().map(|r| r.rank).collect();
        let score_of: HashMap<usize, (f64, f64)> = ranks
            .iter()
            .map(|r| (r.rank, r.straggler_score()))
            .collect();
        stragglers.sort_by(|a, b| {
            let (ba, ta) = score_of[a];
            let (bb, tb) = score_of[b];
            bb.total_cmp(&ba).then(tb.total_cmp(&ta)).then(a.cmp(b))
        });
        let dominant_rank = stragglers.first().copied().filter(|r| score_of[r].1 > 0.0);
        let dominant_edge = self
            .edges
            .iter()
            .max_by(|a, b| {
                (a.1 .1)
                    .total_cmp(&b.1 .1)
                    .then((a.1 .0).total_cmp(&b.1 .0))
                    .then(b.0.cmp(a.0))
            })
            .map(|(&(src, dst), &(total_s, blocked_s))| HotEdge {
                src,
                dst,
                total_s,
                blocked_s,
            });
        let mean_end = if ends.is_empty() {
            0.0
        } else {
            ends.iter().map(|&(_, e)| e).sum::<f64>() / ends.len() as f64
        };
        Profile {
            makespan_s,
            critical_path_s,
            categories: self.categories,
            by_subsystem: self.by_subsystem,
            ranks,
            stragglers,
            dominant_rank,
            dominant_edge,
            orphan_consumers: pag.orphan_consumers,
            unconsumed_producers: pag.unconsumed_producers,
            dropped_spans: pag.dropped_spans,
            imbalance: if mean_end > 0.0 {
                makespan_s / mean_end
            } else {
                1.0
            },
        }
    }
}

fn walk(pag: &Pag, start_rank: usize, makespan_s: f64, acc: &mut Acc) {
    let events = pag.event_index();
    // Consumer node → same-domain producer node, for edge hops.
    let producer: HashMap<usize, usize> = pag
        .edges
        .iter()
        .filter(|e| e.flow != 0 && !e.cross_domain)
        .map(|e| (e.dst, e.src))
        .collect();
    let mut cursor: HashMap<usize, usize> =
        events.iter().map(|(&r, list)| (r, list.len())).collect();
    let mut r = start_rank;
    let mut t = makespan_s;
    while t > 0.0 {
        // Latest unvisited event span on `r` ending at or before `t`.
        let found = events.get(&r).and_then(|list| {
            let hi = cursor.get(&r).copied().unwrap_or(0).min(list.len());
            let ub = list[..hi].partition_point(|&i| pag.nodes[i].event.virt_end_s <= t);
            (ub > 0).then(|| (ub - 1, list[ub - 1]))
        });
        let Some((li, idx)) = found else {
            // Nothing recorded below t: the rank computed from time zero.
            acc.add(r, Cat::Compute, "(gap)", t);
            break;
        };
        cursor.insert(r, li);
        let e = &pag.nodes[idx].event;
        let end = e.virt_end_s;
        if t > end {
            acc.add(r, Cat::Compute, "(gap)", t - end);
            t = end;
        }
        let a = e.virt_start_s.min(t);
        match e.kind {
            SpanKind::Kernel => {
                acc.add(r, Cat::Kernel, e.cat, t - a);
                t = a;
            }
            SpanKind::Retx => {
                acc.add(r, Cat::Retransmit, e.cat, t - a);
                t = a;
            }
            SpanKind::Send => {
                let pe = e.arg(args::POST_END).unwrap_or(a).clamp(a, t);
                let d = e.arg(args::DEPART).unwrap_or(t).max(pe);
                let ws = e.arg(args::WIRE).unwrap_or(0.0).max(0.0);
                let cut = t.min(d);
                if t > cut {
                    // The clock passed departure before the wait: that
                    // tail was overlapped compute, not communication.
                    acc.add(r, Cat::Compute, e.cat, t - cut);
                }
                let ser = (cut - pe).max(0.0);
                let wire_part = ser.min(ws);
                acc.add(r, Cat::Wire, e.cat, (pe - a) + wire_part);
                acc.add(r, Cat::Blocked, e.cat, ser - wire_part);
                t = a;
            }
            SpanKind::Recv => {
                let blocked = e.arg(args::BLOCKED).unwrap_or(0.0).max(0.0);
                let adv = e.arg(args::ADV).unwrap_or(0.0).clamp(blocked, t);
                let w = t - adv;
                // Delivery overhead `o` (and the whole advance when the
                // wait never blocked).
                acc.add(r, Cat::Wire, e.cat, adv - blocked);
                if blocked <= 0.0 {
                    t = w;
                    continue;
                }
                let hop = producer.get(&idx).and_then(|&p| {
                    let pn = &pag.nodes[p];
                    pn.rank.map(|q| (q, &pn.event))
                });
                let Some((q, pe_ev)) = hop else {
                    // No producer recorded (orphan): charge the wait to
                    // this rank and keep walking locally.
                    acc.add(r, Cat::Blocked, e.cat, blocked);
                    t = w;
                    continue;
                };
                let arrive = e.arg(args::ARRIVE).unwrap_or(w + blocked);
                let d = pe_ev.arg(args::DEPART).unwrap_or(arrive).min(arrive);
                let ws = pe_ev.arg(args::WIRE).unwrap_or(0.0).max(0.0);
                let pe = pe_ev.arg(args::POST_END).unwrap_or(pe_ev.virt_end_s).min(d);
                // The message's journey [pe, arrive] explains the wait:
                // latency + own serialization are wire; anything more the
                // NIC sat on it (queueing, injected delay) is blocked —
                // charged to the *sender*, who is the cause.
                let lat = arrive - d;
                let ser = d - pe;
                let wire_part = ser.min(ws);
                let delay = ser - wire_part;
                acc.add(q, Cat::Wire, pe_ev.cat, lat + wire_part);
                acc.add(q, Cat::Blocked, pe_ev.cat, delay);
                let entry = acc.edges.entry((q, r)).or_insert((0.0, 0.0));
                entry.0 += lat + ser;
                entry.1 += delay.max(0.0);
                r = q;
                t = pe;
            }
            SpanKind::Other => unreachable!("event index excludes container spans"),
        }
    }
}

fn fmt_s(v: f64) -> String {
    if v >= 1.0 {
        format!("{v:.3}s")
    } else if v >= 1e-3 {
        format!("{:.3}ms", v * 1e3)
    } else {
        format!("{:.3}us", v * 1e6)
    }
}

impl Profile {
    /// Human-readable critical-path report.
    pub fn text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== critical path == makespan {} | path {} | imbalance {:.3}",
            fmt_s(self.makespan_s),
            fmt_s(self.critical_path_s),
            self.imbalance
        );
        let total = self.critical_path_s.max(f64::MIN_POSITIVE);
        for (i, name) in CATEGORIES.iter().enumerate() {
            let v = self.categories[i];
            let _ = writeln!(
                out,
                "  {name:<12} {:>12}  {:5.1}%",
                fmt_s(v),
                100.0 * v / total
            );
        }
        out.push_str("  by subsystem:");
        for (sub, v) in &self.by_subsystem {
            let _ = write!(out, " {sub}={}", fmt_s(*v));
        }
        out.push('\n');
        let _ = writeln!(out, "  stragglers (blocked+retransmit residency first):");
        for &rank in self.stragglers.iter().take(8) {
            let rp = self
                .ranks
                .iter()
                .find(|r| r.rank == rank)
                .expect("straggler list mirrors ranks");
            let _ = writeln!(
                out,
                "    rank {rank:<4} path {:>10}  blocked {:>10}  end {:>10}",
                fmt_s(rp.residency_total()),
                fmt_s(rp.residency[Cat::Blocked as usize]),
                fmt_s(rp.end_s)
            );
        }
        match self.dominant_rank {
            Some(r) => {
                let _ = writeln!(out, "  dominant straggler: rank {r}");
            }
            None => out.push_str("  dominant straggler: (none)\n"),
        }
        if let Some(e) = self.dominant_edge {
            let _ = writeln!(
                out,
                "  dominant edge: rank {} -> rank {} ({} on path, {} blocked)",
                e.src,
                e.dst,
                fmt_s(e.total_s),
                fmt_s(e.blocked_s)
            );
        }
        if self.orphan_consumers > 0 || self.dropped_spans > 0 {
            let _ = writeln!(
                out,
                "  WARNING: profile truncated — {} orphan flow edges, {} dropped spans",
                self.orphan_consumers, self.dropped_spans
            );
        }
        out
    }

    /// Machine-readable JSON profile (validates under `crate::json`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let vec5 = |v: &[f64; 5]| {
            let parts: Vec<String> = CATEGORIES
                .iter()
                .zip(v.iter())
                .map(|(k, x)| format!("\"{k}\":{}", num(*x)))
                .collect();
            format!("{{{}}}", parts.join(","))
        };
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"makespan_s\":{},\"critical_path_s\":{},\"imbalance\":{},\"categories\":{}",
            num(self.makespan_s),
            num(self.critical_path_s),
            num(self.imbalance),
            vec5(&self.categories)
        );
        out.push_str(",\"by_subsystem\":{");
        for (i, (sub, v)) in self.by_subsystem.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(sub), num(*v));
        }
        out.push_str("},\"ranks\":[");
        for (i, r) in self.ranks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"end_s\":{},\"residency\":{},\"load\":{}}}",
                r.rank,
                num(r.end_s),
                vec5(&r.residency),
                vec5(&r.load)
            );
        }
        out.push_str("],\"stragglers\":[");
        for (i, r) in self.stragglers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{r}");
        }
        out.push(']');
        match self.dominant_rank {
            Some(r) => {
                let _ = write!(out, ",\"dominant_rank\":{r}");
            }
            None => out.push_str(",\"dominant_rank\":null"),
        }
        match self.dominant_edge {
            Some(e) => {
                let _ = write!(
                    out,
                    ",\"dominant_edge\":{{\"src\":{},\"dst\":{},\"total_s\":{},\"blocked_s\":{}}}",
                    e.src,
                    e.dst,
                    num(e.total_s),
                    num(e.blocked_s)
                );
            }
            None => out.push_str(",\"dominant_edge\":null"),
        }
        let _ = write!(
            out,
            ",\"orphan_consumers\":{},\"unconsumed_producers\":{},\"dropped_spans\":{}}}",
            self.orphan_consumers, self.unconsumed_producers, self.dropped_spans
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow;
    use crate::span::SpanEvent;

    #[allow(clippy::too_many_arguments)]
    fn ev(
        rank: usize,
        name: &str,
        start: f64,
        end: f64,
        kind: SpanKind,
        flow_out: u64,
        flow_in: u64,
        args_v: &[(&'static str, f64)],
    ) -> (Option<usize>, SpanEvent) {
        (
            Some(rank),
            SpanEvent {
                cat: "comm",
                name: name.to_string().into(),
                virt_start_s: start,
                virt_end_s: end,
                wall_start_s: 0.0,
                wall_end_s: 0.0,
                args: args_v.to_vec(),
                kind,
                flow_out,
                flow_in,
            },
        )
    }

    /// One delayed message: sender posts at 1.0 (o=0.1, post_end=1.1),
    /// wire 0.2 so an on-time depart would be 1.3, but the NIC held it
    /// until 2.3 (1.0 s injected delay); L=0.1 → arrive 2.4. The receiver
    /// waits from 0.5 and unblocks at 2.4 (+o → end 2.5).
    fn delayed_pair() -> Pag {
        let f = flow::data(flow::next_domain(), 1);
        let rings = vec![
            (
                Some(0),
                0,
                vec![
                    ev(
                        0,
                        "send",
                        1.0,
                        2.3,
                        SpanKind::Send,
                        f,
                        0,
                        &[
                            (args::POST_END, 1.1),
                            (args::DEPART, 2.3),
                            (args::WIRE, 0.2),
                        ],
                    )
                    .1,
                ],
            ),
            (
                Some(1),
                0,
                vec![
                    ev(
                        1,
                        "recv",
                        0.5,
                        2.5,
                        SpanKind::Recv,
                        0,
                        f,
                        &[
                            (args::ARRIVE, 2.4),
                            (args::BLOCKED, 1.9),
                            (args::ADV, 2.0),
                            (args::LAT, 0.1),
                        ],
                    )
                    .1,
                ],
            ),
        ];
        Pag::from_snapshot(rings)
    }

    #[test]
    fn categories_sum_bitwise_to_path_length() {
        let p = profile(&delayed_pair());
        assert_eq!(p.categories.iter().sum::<f64>(), p.critical_path_s);
        // And the path tiles the makespan exactly (single chain → equal).
        assert!((p.critical_path_s - p.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn injected_delay_lands_on_blocked_and_names_the_sender() {
        let p = profile(&delayed_pair());
        // delay = (depart − post_end) − wire = 1.2 − 0.2 = 1.0.
        let blocked = p.categories[Cat::Blocked as usize];
        assert!((blocked - 1.0).abs() < 1e-12, "blocked = {blocked}");
        assert_eq!(p.dominant_rank, Some(0), "delay charged to the sender");
        let e = p.dominant_edge.expect("one hop on the path");
        assert_eq!((e.src, e.dst), (0, 1));
        assert!((e.blocked_s - 1.0).abs() < 1e-12);
        // Sender residency holds the blocked share.
        let r0 = &p.ranks[0];
        assert!((r0.residency[Cat::Blocked as usize] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unblocked_receive_stays_on_the_local_timeline() {
        let f = flow::data(flow::next_domain(), 1);
        let rings = vec![(
            Some(0),
            0,
            vec![
                ev(
                    0,
                    "send",
                    0.0,
                    0.3,
                    SpanKind::Send,
                    f,
                    0,
                    &[
                        (args::POST_END, 0.1),
                        (args::DEPART, 0.3),
                        (args::WIRE, 0.2),
                    ],
                )
                .1,
                // Self-message consumed long after arrival: no block.
                ev(
                    0,
                    "recv",
                    0.0,
                    2.1,
                    SpanKind::Recv,
                    0,
                    f,
                    &[
                        (args::ARRIVE, 0.4),
                        (args::BLOCKED, 0.0),
                        (args::ADV, 0.1),
                        (args::LAT, 0.1),
                    ],
                )
                .1,
            ],
        )];
        let p = profile(&Pag::from_snapshot(rings));
        assert_eq!(p.categories[Cat::Blocked as usize], 0.0);
        assert_eq!(p.categories.iter().sum::<f64>(), p.critical_path_s);
        assert!((p.critical_path_s - p.makespan_s).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_profiles_to_zero() {
        let p = profile(&Pag::from_snapshot(Vec::new()));
        assert_eq!(p.critical_path_s, 0.0);
        assert_eq!(p.dominant_rank, None);
        assert!(p.text().contains("(none)"));
        crate::json::validate(&p.to_json()).unwrap();
    }

    #[test]
    fn report_renders_and_json_validates() {
        let p = profile(&delayed_pair());
        let txt = p.text();
        assert!(txt.contains("dominant straggler: rank 0"));
        assert!(txt.contains("blocked"));
        crate::json::validate(&p.to_json()).unwrap();
        assert!(p.to_json().contains("\"dominant_rank\":0"));
    }
}
