//! Flow identifiers: the causal glue between span timelines.
//!
//! A *flow id* is a compact `u64` stamped on a message at its producing
//! span (an `isend`, a retransmission, an ODIN dispatch) and carried
//! through the wire path to its consuming span (the matching receive, the
//! worker's command-block execution). At export time the
//! [`graph`](crate::graph) module stitches producer and consumer spans
//! into happens-before edges, which is what turns per-rank timelines into
//! a program activity graph.
//!
//! ## Id layout
//!
//! `0` ([`NONE`]) means "no flow" — acks, disabled-path messages, and
//! every span recorded before this machinery existed. Nonzero ids come in
//! two namespaces:
//!
//! * **data flows** (`bit 63 clear`): `(domain << 32) | seq`. A *domain*
//!   is allocated once per rank state via [`next_domain`] (so two
//!   universes in one process — or the same rank id in a worker pool and
//!   a user job — can never collide), and `seq` counts that rank's
//!   messages from 1.
//! * **control flows** (`bit 63 set`): a process-global sequence from
//!   [`next_ctrl`], used by the ODIN master for dispatches to workers.
//!   Control flows cross clock domains (the master runs on wall time),
//!   so the critical-path walk treats their edges as annotation-only.
//!
//! Ids are *not* stable across runs (domains are allocated in thread
//! start order); anything that must be deterministic — the PAG
//! fingerprint, the critical-path report — therefore keys on graph
//! structure, never on raw flow ids.

use std::sync::atomic::{AtomicU64, Ordering};

/// The null flow id: no causal edge.
pub const NONE: u64 = 0;

/// Bit marking a control-plane (master → worker) flow.
pub const CTRL_BIT: u64 = 1 << 63;

static NEXT_DOMAIN: AtomicU64 = AtomicU64::new(1);
static NEXT_CTRL: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh flow domain (one per rank state / sender identity).
/// Domains are never reused within a process.
pub fn next_domain() -> u64 {
    NEXT_DOMAIN.fetch_add(1, Ordering::Relaxed)
}

/// Build a data-flow id from a sender's domain and its message sequence
/// number (1-based). Never returns [`NONE`] for valid inputs.
#[inline]
pub fn data(domain: u64, seq: u64) -> u64 {
    debug_assert!(domain >= 1, "flow domains start at 1");
    ((domain & 0x7FFF_FFFF) << 32) | (seq & 0xFFFF_FFFF)
}

/// Allocate a fresh control-plane flow id (ODIN master dispatches).
pub fn next_ctrl() -> u64 {
    CTRL_BIT | NEXT_CTRL.fetch_add(1, Ordering::Relaxed)
}

/// Is this a control-plane flow (cross clock-domain edge)?
#[inline]
pub fn is_ctrl(flow: u64) -> bool {
    flow & CTRL_BIT != 0
}

/// Argument keys shared between the `comm` instrumentation sites (which
/// record them) and the [`critpath`](crate::critpath) walk (which reads
/// them back). All values are virtual seconds unless noted.
pub mod args {
    /// Sender clock right after paying the posting overhead `o`.
    pub const POST_END: &str = "post_end_s";
    /// Virtual time the NIC finished serializing the message.
    pub const DEPART: &str = "depart_s";
    /// Pure serialization time `bytes · G` of the message.
    pub const WIRE: &str = "wire_s";
    /// Virtual arrival time at the receiver (`depart + L`).
    pub const ARRIVE: &str = "arrive_s";
    /// Seconds the receiver's wait actually blocked (`max(arrive − wait_clock, 0)`).
    pub const BLOCKED: &str = "blocked_s";
    /// Total clock advance of the receive wait (`blocked + o`).
    pub const ADV: &str = "adv_s";
    /// The model latency `L` in effect for this message.
    pub const LAT: &str = "lat_s";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_nonzero_and_namespaced() {
        let d = next_domain();
        let f = data(d, 1);
        assert_ne!(f, NONE);
        assert!(!is_ctrl(f));
        let c = next_ctrl();
        assert!(is_ctrl(c));
        assert_ne!(c, f);
    }

    #[test]
    fn domains_separate_equal_sequences() {
        let d1 = next_domain();
        let d2 = next_domain();
        assert_ne!(data(d1, 7), data(d2, 7));
    }
}
