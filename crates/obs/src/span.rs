//! Per-rank span timelines.
//!
//! Each rank (thread) records completed spans into its own bounded ring
//! buffer, so tracing a long run costs O(capacity) memory per rank and
//! recording never blocks on other ranks (each thread locks only its own
//! buffer, which is uncontended except during export). Every span carries
//! **two** time axes:
//!
//! * wall time — measured on this host, microseconds since process start;
//! * virtual time — the rank's LogGP model clock from `comm`, which is
//!   what gives traces their *cluster* shape when more ranks are
//!   simulated than cores exist.
//!
//! The Chrome-trace exporter uses virtual time for the timeline and
//! attaches wall times as span arguments.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default per-rank ring capacity (events). Oldest events are overwritten
/// once full; the drop count is reported in the trace metadata.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Structural role of a span in the program activity graph. The
/// critical-path walk ([`crate::critpath`]) only treats *event* spans
/// (everything except [`SpanKind::Other`]) as clock-advancing timeline
/// entries; container spans (collectives, solver iterations, phases) are
/// context and may nest freely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A container or annotation span (the default).
    #[default]
    Other,
    /// A point-to-point send request (post → wait).
    Send,
    /// A point-to-point receive request (post → delivery).
    Recv,
    /// A reliable-delivery retransmission.
    Retx,
    /// Seamless VM kernel execution on a worker.
    Kernel,
}

/// Causal metadata attached to a span at finish time; see
/// [`SpanTimer::finish_meta`]. `Default` is an [`SpanKind::Other`] span
/// with no flow edges, which is what plain [`SpanTimer::finish`] records.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanMeta {
    /// Structural role (see [`SpanKind`]).
    pub kind: SpanKind,
    /// Flow id this span *produced* (stamped on an outgoing message).
    pub flow_out: u64,
    /// Flow id this span *consumed* (carried by the message it received).
    pub flow_in: u64,
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Subsystem category: `"comm"`, `"odin"`, `"solver"`, …
    pub cat: &'static str,
    /// Span name, e.g. `allreduce(tree)` or `cg.iter`. Hot paths pass a
    /// `&'static str` so recording a span allocates nothing for the name.
    pub name: Cow<'static, str>,
    /// Virtual-clock start/end, seconds.
    pub virt_start_s: f64,
    /// Virtual-clock end, seconds.
    pub virt_end_s: f64,
    /// Wall-clock start/end, seconds since process start.
    pub wall_start_s: f64,
    /// Wall-clock end, seconds since process start.
    pub wall_end_s: f64,
    /// Numeric arguments (`bytes`, `residual`, …).
    pub args: Vec<(&'static str, f64)>,
    /// Structural role in the program activity graph.
    pub kind: SpanKind,
    /// Flow id produced by this span ([`crate::flow::NONE`] if none).
    pub flow_out: u64,
    /// Flow id consumed by this span ([`crate::flow::NONE`] if none).
    pub flow_in: u64,
}

impl SpanEvent {
    /// Look up a numeric argument by key (first match).
    pub fn arg(&self, key: &str) -> Option<f64> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// One rank's buffered timeline.
pub struct Ring {
    /// Rank this thread recorded as, `None` for the driver/master thread.
    pub rank: Option<usize>,
    events: Vec<SpanEvent>,
    capacity: usize,
    /// Next write position once `events` reached capacity.
    head: usize,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            rank: None,
            events: Vec::new(),
            capacity: DEFAULT_RING_CAPACITY,
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            // Mirror the loss into the registry so truncated profiles are
            // loud (`obs.spans_dropped{rank}` + a text-report warning),
            // not just trace metadata. Only the overflow path pays this.
            let rank = match self.rank {
                Some(r) => r.to_string(),
                None => "driver".to_string(),
            };
            crate::registry::global()
                .counter(&crate::registry::key(
                    "obs.spans_dropped",
                    &[("rank", &rank)],
                ))
                .inc();
        }
    }

    /// Events in arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

fn all_rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static MY_RING: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

fn my_ring() -> Arc<Mutex<Ring>> {
    MY_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(r) = slot.as_ref() {
            return Arc::clone(r);
        }
        let ring = Arc::new(Mutex::new(Ring::new()));
        all_rings().lock().unwrap().push(Arc::clone(&ring));
        *slot = Some(Arc::clone(&ring));
        ring
    })
}

/// Tag the current thread's timeline with a rank id. `comm::Universe`
/// calls this on every rank thread it spawns.
pub fn set_rank(rank: Option<usize>) {
    my_ring().lock().unwrap().rank = rank;
}

/// The rank the current thread recorded as, if any.
pub fn current_rank() -> Option<usize> {
    MY_RING.with(|slot| slot.borrow().as_ref().and_then(|r| r.lock().unwrap().rank))
}

/// RAII rank tag: sets the thread's rank and, for *nested* scopes,
/// restores the enclosing rank on drop. Leaving the outermost scope
/// keeps the tag sticky — the thread's ring stays attributed to the last
/// rank it ran as, so traces exported after rank threads finish still
/// carry per-rank timelines.
pub struct RankGuard {
    prev: Option<usize>,
}

impl RankGuard {
    /// Enter a rank scope on this thread.
    pub fn enter(rank: usize) -> Self {
        let prev = current_rank();
        set_rank(Some(rank));
        RankGuard { prev }
    }
}

impl Drop for RankGuard {
    fn drop(&mut self) {
        if self.prev.is_some() {
            set_rank(self.prev);
        }
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Wall-clock seconds since process start (first use).
pub fn wall_now_s() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// Start-of-span timestamps; produce with [`span_start`], consume with
/// [`SpanTimer::finish`]. Callers only construct one after checking
/// [`crate::enabled`], so the disabled path never touches the clock.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    wall_start_s: f64,
    virt_start_s: f64,
}

/// Capture span start times. `virt_now_s` is the rank's virtual clock
/// (pass the wall clock again for un-modeled threads like the ODIN
/// master).
#[inline]
pub fn span_start(virt_now_s: f64) -> SpanTimer {
    SpanTimer {
        wall_start_s: wall_now_s(),
        virt_start_s: virt_now_s,
    }
}

impl SpanTimer {
    /// Record the completed span on the current thread's timeline.
    pub fn finish(
        self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        virt_now_s: f64,
        args: &[(&'static str, f64)],
    ) {
        self.finish_meta(cat, name, virt_now_s, args, SpanMeta::default());
    }

    /// [`SpanTimer::finish`] with causal metadata: the span's structural
    /// [`SpanKind`] and the flow ids it produced/consumed.
    pub fn finish_meta(
        self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        virt_now_s: f64,
        args: &[(&'static str, f64)],
        meta: SpanMeta,
    ) {
        let ev = SpanEvent {
            cat,
            name: name.into(),
            virt_start_s: self.virt_start_s,
            virt_end_s: virt_now_s,
            wall_start_s: self.wall_start_s,
            wall_end_s: wall_now_s(),
            args: args.to_vec(),
            kind: meta.kind,
            flow_out: meta.flow_out,
            flow_in: meta.flow_in,
        };
        my_ring().lock().unwrap().push(ev);
    }
}

/// Snapshot every thread's timeline: `(rank, dropped, events)` per ring,
/// in registration order.
pub fn snapshot_all() -> Vec<(Option<usize>, u64, Vec<SpanEvent>)> {
    all_rings()
        .lock()
        .unwrap()
        .iter()
        .map(|r| {
            let ring = r.lock().unwrap();
            (ring.rank, ring.dropped, ring.events())
        })
        .collect()
}

/// Clear every buffered span (keeps rank tags).
pub fn clear_all() {
    for r in all_rings().lock().unwrap().iter() {
        let mut ring = r.lock().unwrap();
        ring.events.clear();
        ring.head = 0;
        ring.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_per_thread_rings() {
        clear_all();
        let t = span_start(1.0);
        t.finish("test", "op", 2.0, &[("bytes", 64.0)]);
        std::thread::spawn(|| {
            let _g = RankGuard::enter(7);
            let t = span_start(0.5);
            t.finish("test", "worker-op", 0.75, &[]);
        })
        .join()
        .unwrap();
        let rings = snapshot_all();
        let mine: Vec<_> = rings
            .iter()
            .flat_map(|(_, _, evs)| evs.iter())
            .filter(|e| e.name == "op")
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].virt_start_s, 1.0);
        assert_eq!(mine[0].virt_end_s, 2.0);
        assert_eq!(mine[0].args, vec![("bytes", 64.0)]);
        let worker: Vec<_> = rings
            .iter()
            .filter(|(rank, _, _)| *rank == Some(7))
            .collect();
        assert_eq!(worker.len(), 1);
        assert_eq!(worker[0].2.len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = Ring::new();
        ring.capacity = 4;
        for i in 0..6 {
            ring.push(SpanEvent {
                cat: "t",
                name: format!("e{i}").into(),
                virt_start_s: 0.0,
                virt_end_s: 0.0,
                wall_start_s: 0.0,
                wall_end_s: 0.0,
                args: vec![],
                kind: SpanKind::Other,
                flow_out: 0,
                flow_in: 0,
            });
        }
        assert_eq!(ring.dropped, 2);
        let names: Vec<String> = ring
            .events()
            .into_iter()
            .map(|e| e.name.into_owned())
            .collect();
        assert_eq!(names, vec!["e2", "e3", "e4", "e5"]);
    }
}
