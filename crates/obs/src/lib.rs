//! # obs — unified observability for the framework
//!
//! The paper (§III-J) names "instrumentation to help identify performance
//! bottlenecks associated with different communication patterns" as an
//! explicit ODIN goal. This crate is that layer, shared by every other
//! crate in the workspace:
//!
//! * a process-global [`Registry`] of named counters,
//!   gauges and log2-bucketed histograms with labeled instances
//!   (`comm.bytes_sent{rank=3}`);
//! * lightweight [spans](span) recorded into per-rank ring buffers,
//!   timestamped with **both** wall time and the rank's LogGP virtual
//!   clock;
//! * exporters: [Chrome-trace / Perfetto JSON](trace) and a
//!   [human-readable text report](report).
//!
//! ## The disabled-path guarantee
//!
//! All instrumentation is guarded by one process-global relaxed
//! [`AtomicBool`]. When observability is off (the default), every
//! instrumented hot path reduces to a single `Relaxed` atomic load —
//! no allocation, no locking, no branching beyond the one test. The
//! guarantee is enforced by `tests/observability.rs`.
//!
//! ## Activation
//!
//! Programmatic: [`set_enabled`]`(true)`. From the environment (read once
//! by [`init_from_env`], which the `bench` binaries and `comm::Universe`
//! call):
//!
//! * `HPC_TRACE=<path>` — enable and, at [`finalize`], write a Chrome
//!   trace to `<path>` (open in <https://ui.perfetto.dev> or
//!   `chrome://tracing`);
//! * `HPC_METRICS=1` — enable and, at [`finalize`], print the text
//!   report to stderr; `HPC_METRICS=<path>` instead writes the JSON
//!   metrics snapshot to `<path>` (parity with the benches'
//!   `--metrics-json` flag);
//! * `HPC_CRITPATH=1` — enable and, at [`finalize`], print the
//!   [critical-path report](critpath) to stderr; `HPC_CRITPATH=<path>`
//!   writes the machine-readable JSON profile to `<path>`.

pub mod critpath;
pub mod flow;
pub mod graph;
pub mod json;
pub mod registry;
pub mod report;
pub mod rng;
pub mod span;
pub mod trace;

pub use registry::{global, Counter, Gauge, Histogram, Registry};
pub use rng::SplitMix64;
pub use span::{current_rank, set_rank, RankGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is observability on? One relaxed atomic load — this is the *entire*
/// cost of every instrumentation site when recording is disabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off globally. Spans and metrics recorded while
/// enabled stay buffered either way; disabling only stops new recording.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// What `init_from_env` found (kept for `finalize`).
#[derive(Debug, Clone, Default)]
struct EnvConfig {
    trace_path: Option<String>,
    metrics_report: bool,
    metrics_path: Option<String>,
    critpath_report: bool,
    critpath_path: Option<String>,
}

/// Parse an on/off-or-path env value: `(false, None)` when unset, empty
/// or `"0"`; `(true, None)` for `"1"` (stderr report); `(false,
/// Some(path))` for anything else (write to that file).
fn report_or_path(var: &str) -> (bool, Option<String>) {
    match std::env::var(var) {
        Ok(v) if v.is_empty() || v == "0" => (false, None),
        Ok(v) if v == "1" => (true, None),
        Ok(v) => (false, Some(v)),
        Err(_) => (false, None),
    }
}

fn env_config() -> &'static Mutex<EnvConfig> {
    static CFG: OnceLock<Mutex<EnvConfig>> = OnceLock::new();
    CFG.get_or_init(|| Mutex::new(EnvConfig::default()))
}

/// Read `HPC_TRACE` / `HPC_METRICS` once and enable recording if either
/// is set. Idempotent and cheap to call from library entry points.
pub fn init_from_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let trace_path = std::env::var("HPC_TRACE").ok().filter(|s| !s.is_empty());
        let (metrics_report, metrics_path) = report_or_path("HPC_METRICS");
        let (critpath_report, critpath_path) = report_or_path("HPC_CRITPATH");
        if trace_path.is_some()
            || metrics_report
            || metrics_path.is_some()
            || critpath_report
            || critpath_path.is_some()
        {
            set_enabled(true);
        }
        *env_config().lock().unwrap() = EnvConfig {
            trace_path,
            metrics_report,
            metrics_path,
            critpath_report,
            critpath_path,
        };
    });
}

/// Honor the environment configuration captured by [`init_from_env`]:
/// write the Chrome trace to `$HPC_TRACE` and/or print the text report
/// when `$HPC_METRICS` is set. Call at the end of a program; a no-op when
/// neither variable was set.
pub fn finalize() {
    let cfg = env_config().lock().unwrap().clone();
    if let Some(path) = &cfg.trace_path {
        match trace::write_chrome_trace(path) {
            Ok(n) => eprintln!("obs: wrote {n} trace events to {path}"),
            Err(e) => eprintln!("obs: failed to write trace to {path}: {e}"),
        }
    }
    if cfg.metrics_report {
        eprint!("{}", report::text_report());
    }
    if let Some(path) = &cfg.metrics_path {
        match std::fs::write(path, report::metrics_json()) {
            Ok(()) => eprintln!("obs: wrote metrics snapshot to {path}"),
            Err(e) => eprintln!("obs: failed to write metrics to {path}: {e}"),
        }
    }
    if cfg.critpath_report || cfg.critpath_path.is_some() {
        let profile = critpath::profile_current();
        if cfg.critpath_report {
            eprint!("{}", profile.text());
        }
        if let Some(path) = &cfg.critpath_path {
            match std::fs::write(path, profile.to_json()) {
                Ok(()) => eprintln!("obs: wrote critical-path profile to {path}"),
                Err(e) => eprintln!("obs: failed to write profile to {path}: {e}"),
            }
        }
    }
}

/// Reset every buffer and counter (tests use this to isolate runs).
/// Leaves the enabled flag untouched.
pub fn reset() {
    registry::global().clear();
    span::clear_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_flag_round_trips() {
        let was = enabled();
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(was);
    }
}
