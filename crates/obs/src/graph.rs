//! Program activity graph (PAG): per-rank span timelines stitched into a
//! happens-before DAG.
//!
//! Nodes are completed spans; edges are
//!
//! * **program order** — consecutive spans on the same timeline
//!   ([`PagEdge::flow`] = 0), and
//! * **message causality** — a producer span (send, retransmit, ODIN
//!   dispatch) connected to the consumer span that received its flow id
//!   ([`PagEdge::flow`] ≠ 0, see [`crate::flow`]).
//!
//! Construction is deterministic: nodes are sorted by
//! `(rank, virt_start, virt_end, cat, name)` — never by thread
//! registration order or raw flow id, both of which vary run to run —
//! and edges are sorted by `(src, dst)`. [`Pag::fingerprint`] hashes that
//! canonical structure, which is what the determinism test compares
//! across repeated runs.
//!
//! A retransmitted message has *several* producer spans for one flow
//! (the original send plus each retransmission). The consumer is matched
//! to the copy that actually delivered it — the producer whose recorded
//! departure best explains the consumer's recorded arrival
//! (`arrive = depart + L`) — so chaos runs cannot orphan edges.

use std::collections::HashMap;

use crate::flow;
use crate::span::{self, SpanEvent, SpanKind};

/// One span, placed on its timeline.
#[derive(Debug, Clone)]
pub struct PagNode {
    /// Rank the span was recorded on; `None` for the driver/master.
    pub rank: Option<usize>,
    /// The span itself (virtual + wall times, args, kind, flow ids).
    pub event: SpanEvent,
}

/// A happens-before edge between two [`PagNode`]s (indices into
/// [`Pag::nodes`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagEdge {
    /// Producer node index.
    pub src: usize,
    /// Consumer node index.
    pub dst: usize,
    /// Flow id for message edges, `0` for program-order edges.
    pub flow: u64,
    /// Endpoints live in different clock domains (driver wall time vs
    /// rank virtual time); shown as a trace arrow but excluded from the
    /// critical-path walk.
    pub cross_domain: bool,
}

/// The program activity graph plus its stitching diagnostics.
#[derive(Debug, Clone)]
pub struct Pag {
    /// Spans in canonical order (see module docs).
    pub nodes: Vec<PagNode>,
    /// Program-order and message edges, sorted by `(src, dst)`.
    pub edges: Vec<PagEdge>,
    /// Consumer spans whose flow id had no producer span (e.g. the
    /// producer was overwritten in a full ring buffer).
    pub orphan_consumers: usize,
    /// Produced flows no consumer span ever claimed (e.g. a message
    /// dropped in raw delivery mode, or received after recording stopped).
    pub unconsumed_producers: usize,
    /// Spans lost to ring-buffer overwrites, summed over all timelines
    /// (a nonzero value means the graph is truncated).
    pub dropped_spans: u64,
}

fn rank_key(rank: Option<usize>) -> usize {
    // Driver timelines sort after every rank.
    rank.map_or(usize::MAX, |r| r)
}

impl Pag {
    /// Build the graph from the current span buffers
    /// ([`span::snapshot_all`]).
    pub fn build() -> Pag {
        Self::from_snapshot(span::snapshot_all())
    }

    /// Build from an explicit snapshot (tests use this to replay fixed
    /// timelines).
    pub fn from_snapshot(rings: Vec<(Option<usize>, u64, Vec<SpanEvent>)>) -> Pag {
        let mut dropped_spans = 0u64;
        let mut nodes: Vec<PagNode> = Vec::new();
        for (rank, dropped, events) in rings {
            dropped_spans += dropped;
            nodes.extend(events.into_iter().map(|event| PagNode { rank, event }));
        }
        nodes.sort_by(|a, b| {
            rank_key(a.rank)
                .cmp(&rank_key(b.rank))
                .then(a.event.virt_start_s.total_cmp(&b.event.virt_start_s))
                .then(a.event.virt_end_s.total_cmp(&b.event.virt_end_s))
                .then(a.event.cat.cmp(b.event.cat))
                .then(a.event.name.cmp(&b.event.name))
        });

        let mut edges: Vec<PagEdge> = Vec::new();
        // Program order: consecutive spans (by start time) per timeline.
        let mut prev_on: HashMap<usize, usize> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let key = rank_key(n.rank);
            if let Some(&p) = prev_on.get(&key) {
                edges.push(PagEdge {
                    src: p,
                    dst: i,
                    flow: 0,
                    cross_domain: false,
                });
            }
            prev_on.insert(key, i);
        }

        // Message causality: match each consumer to the producer copy
        // whose departure best explains the recorded arrival.
        let mut producers: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.event.flow_out != flow::NONE {
                producers.entry(n.event.flow_out).or_default().push(i);
            }
        }
        let mut consumed: HashMap<u64, bool> = HashMap::new();
        let mut orphan_consumers = 0usize;
        for (i, n) in nodes.iter().enumerate() {
            let f = n.event.flow_in;
            if f == flow::NONE {
                continue;
            }
            let Some(cands) = producers.get(&f) else {
                orphan_consumers += 1;
                continue;
            };
            consumed.insert(f, true);
            let arrive = n.event.arg(flow::args::ARRIVE);
            let lat = n.event.arg(flow::args::LAT).unwrap_or(0.0);
            let best = cands
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    let score = |j: usize| match (arrive, nodes[j].event.arg(flow::args::DEPART)) {
                        (Some(arr), Some(dep)) => (arr - lat - dep).abs(),
                        // No timing info (control flows): prefer the
                        // earliest producer; `f64::MAX` ties break on
                        // index below via min_by's first-wins order.
                        _ => f64::MAX,
                    };
                    score(a).total_cmp(&score(b))
                })
                .expect("candidate list is never empty");
            edges.push(PagEdge {
                src: best,
                dst: i,
                flow: f,
                cross_domain: nodes[best].rank.is_none() != n.rank.is_none(),
            });
        }
        let unconsumed_producers = producers
            .keys()
            .filter(|f| !consumed.contains_key(*f))
            .count();
        edges.sort_by(|a, b| {
            a.src
                .cmp(&b.src)
                .then(a.dst.cmp(&b.dst))
                .then(a.flow.cmp(&b.flow))
        });
        Pag {
            nodes,
            edges,
            orphan_consumers,
            unconsumed_producers,
            dropped_spans,
        }
    }

    /// Message edges only (flow ≠ 0); what the trace exporter draws as
    /// Perfetto arrows.
    pub fn flow_edges(&self) -> impl Iterator<Item = &PagEdge> {
        self.edges.iter().filter(|e| e.flow != 0)
    }

    /// Producer node matched to this consumer node, if any.
    pub fn producer_of(&self, consumer: usize) -> Option<usize> {
        self.edges
            .iter()
            .find(|e| e.dst == consumer && e.flow != 0)
            .map(|e| e.src)
    }

    /// Structural hash of the graph, stable across runs of the same
    /// deterministic program: covers ranks, categories, names, kinds,
    /// virtual times and edge shape — not wall times, not raw flow ids,
    /// not thread registration order.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for n in &self.nodes {
            mix(&(rank_key(n.rank) as u64).to_le_bytes());
            mix(n.event.cat.as_bytes());
            mix(n.event.name.as_bytes());
            mix(&(n.event.kind as u8).to_le_bytes());
            mix(&n.event.virt_start_s.to_bits().to_le_bytes());
            mix(&n.event.virt_end_s.to_bits().to_le_bytes());
            mix(&[
                u8::from(n.event.flow_out != 0),
                u8::from(n.event.flow_in != 0),
            ]);
        }
        for e in &self.edges {
            mix(&(e.src as u64).to_le_bytes());
            mix(&(e.dst as u64).to_le_bytes());
            mix(&[u8::from(e.flow != 0), u8::from(e.cross_domain)]);
        }
        h
    }

    /// Per-timeline final virtual clock: the latest span end recorded on
    /// each rank (`None` timelines excluded).
    pub fn rank_end_times(&self) -> Vec<(usize, f64)> {
        let mut ends: HashMap<usize, f64> = HashMap::new();
        for n in &self.nodes {
            if let Some(r) = n.rank {
                let e = ends.entry(r).or_insert(0.0);
                *e = e.max(n.event.virt_end_s);
            }
        }
        let mut v: Vec<(usize, f64)> = ends.into_iter().collect();
        v.sort_by_key(|(r, _)| *r);
        v
    }

    /// Event spans (kind ≠ `Other`) per rank, each list sorted by
    /// `virt_end` — the timeline the critical-path walk consumes.
    pub(crate) fn event_index(&self) -> HashMap<usize, Vec<usize>> {
        let mut per_rank: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.event.kind != SpanKind::Other {
                if let Some(r) = n.rank {
                    per_rank.entry(r).or_default().push(i);
                }
            }
        }
        for list in per_rank.values_mut() {
            list.sort_by(|&a, &b| {
                self.nodes[a]
                    .event
                    .virt_end_s
                    .total_cmp(&self.nodes[b].event.virt_end_s)
            });
        }
        per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanMeta;

    fn ev(
        name: &str,
        start: f64,
        end: f64,
        kind: SpanKind,
        flow_out: u64,
        flow_in: u64,
        args: &[(&'static str, f64)],
    ) -> SpanEvent {
        SpanEvent {
            cat: "t",
            name: name.to_string().into(),
            virt_start_s: start,
            virt_end_s: end,
            wall_start_s: 0.0,
            wall_end_s: 0.0,
            args: args.to_vec(),
            kind,
            flow_out,
            flow_in,
        }
    }

    #[test]
    fn stitches_send_to_recv_and_orders_nodes() {
        let f = flow::data(flow::next_domain(), 1);
        let rings = vec![
            // Registration order is reversed vs rank order on purpose.
            (
                Some(1),
                0,
                vec![ev(
                    "recv",
                    0.0,
                    3.0,
                    SpanKind::Recv,
                    0,
                    f,
                    &[(flow::args::ARRIVE, 2.5), (flow::args::LAT, 0.5)],
                )],
            ),
            (
                Some(0),
                0,
                vec![ev(
                    "send",
                    0.0,
                    1.0,
                    SpanKind::Send,
                    f,
                    0,
                    &[(flow::args::DEPART, 2.0)],
                )],
            ),
        ];
        let pag = Pag::from_snapshot(rings);
        assert_eq!(pag.nodes[0].rank, Some(0));
        assert_eq!(pag.nodes[1].rank, Some(1));
        let flows: Vec<_> = pag.flow_edges().collect();
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].src, flows[0].dst), (0, 1));
        assert_eq!(pag.orphan_consumers, 0);
        assert_eq!(pag.unconsumed_producers, 0);
    }

    #[test]
    fn retransmit_matches_by_departure_not_first_copy() {
        let f = flow::data(flow::next_domain(), 1);
        let rings = vec![(
            Some(0),
            0,
            vec![
                ev(
                    "send",
                    0.0,
                    1.0,
                    SpanKind::Send,
                    f,
                    0,
                    &[(flow::args::DEPART, 1.0)],
                ),
                ev(
                    "retx",
                    4.0,
                    4.1,
                    SpanKind::Retx,
                    f,
                    0,
                    &[(flow::args::DEPART, 5.0)],
                ),
                ev(
                    "recv",
                    0.0,
                    6.0,
                    SpanKind::Recv,
                    0,
                    f,
                    &[(flow::args::ARRIVE, 5.5), (flow::args::LAT, 0.5)],
                ),
            ],
        )];
        let pag = Pag::from_snapshot(rings);
        let edge = pag.flow_edges().next().unwrap();
        // arrive − L = 5.0 → the retransmitted copy delivered it.
        assert_eq!(pag.nodes[edge.src].event.name, "retx");
        assert_eq!(pag.orphan_consumers, 0);
        // The flow *was* consumed, even though one copy never landed.
        assert_eq!(pag.unconsumed_producers, 0);
    }

    #[test]
    fn fingerprint_ignores_registration_order_and_flow_values() {
        let make = |f: u64, swap: bool| {
            let a = (
                Some(0),
                0u64,
                vec![ev(
                    "send",
                    0.0,
                    1.0,
                    SpanKind::Send,
                    f,
                    0,
                    &[(flow::args::DEPART, 2.0)],
                )],
            );
            let b = (
                Some(1),
                0u64,
                vec![ev(
                    "recv",
                    0.0,
                    3.0,
                    SpanKind::Recv,
                    0,
                    f,
                    &[(flow::args::ARRIVE, 2.5), (flow::args::LAT, 0.5)],
                )],
            );
            let rings = if swap { vec![b, a] } else { vec![a, b] };
            Pag::from_snapshot(rings).fingerprint()
        };
        let f1 = flow::data(flow::next_domain(), 1);
        let f2 = flow::data(flow::next_domain(), 1);
        assert_eq!(make(f1, false), make(f2, true));
    }

    #[test]
    fn missing_producer_counts_as_orphan() {
        let f = flow::data(flow::next_domain(), 9);
        let rings = vec![(
            Some(0),
            0,
            vec![ev("recv", 0.0, 1.0, SpanKind::Recv, 0, f, &[])],
        )];
        let pag = Pag::from_snapshot(rings);
        assert_eq!(pag.orphan_consumers, 1);
    }

    #[test]
    fn span_meta_default_is_plain_other() {
        let m = SpanMeta::default();
        assert_eq!(m.kind, SpanKind::Other);
        assert_eq!(m.flow_out, 0);
        assert_eq!(m.flow_in, 0);
    }
}
