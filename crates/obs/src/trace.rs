//! Chrome-trace / Perfetto JSON exporter.
//!
//! Produces the `traceEvents` format understood by `chrome://tracing` and
//! <https://ui.perfetto.dev>: one *process* per simulated rank (pid =
//! rank + 1; pid 0 is the driver/master thread), complete (`"ph":"X"`)
//! events whose timeline axis is the rank's **virtual clock** in
//! microseconds, with the measured wall-clock times attached as event
//! arguments. Registry metrics ride along under `otherData.metrics`.

use std::fmt::Write as _;

use crate::graph::Pag;
use crate::span;

/// Escape a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        // JSON has no NaN/Inf; finite values print losslessly enough for
        // trace timestamps at microsecond scale.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn pid_of(rank: Option<usize>) -> usize {
    match rank {
        None => 0,
        Some(r) => r + 1,
    }
}

/// Render the full Chrome-trace JSON document from the current span
/// buffers and registry. Returns `(json, n_events)`.
pub fn chrome_trace_json() -> (String, usize) {
    let rings = span::snapshot_all();
    let mut out = String::with_capacity(1 << 16);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut n_events = 0usize;
    // Process-name metadata: one entry per distinct pid.
    let mut pids: Vec<(usize, String)> = Vec::new();
    for (rank, _, _) in &rings {
        let pid = pid_of(*rank);
        let label = match rank {
            None => "driver".to_string(),
            Some(r) => format!("rank {r}"),
        };
        if !pids.iter().any(|(p, _)| *p == pid) {
            pids.push((pid, label));
        }
    }
    pids.sort();
    for (pid, label) in &pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(label)
        );
    }
    for (rank, dropped, events) in &rings {
        let pid = pid_of(*rank);
        if *dropped > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"name\":\"ring_dropped_events\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"dropped\":{dropped}}}}}"
            );
        }
        for ev in events {
            if !first {
                out.push(',');
            }
            first = false;
            n_events += 1;
            let ts_us = ev.virt_start_s * 1e6;
            let dur_us = ((ev.virt_end_s - ev.virt_start_s) * 1e6).max(0.0);
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{pid},\"tid\":0,\
                 \"ts\":{},\"dur\":{},\"args\":{{\"wall_ts_us\":{},\"wall_dur_us\":{}",
                escape_json(&ev.name),
                escape_json(ev.cat),
                fmt_f64(ts_us),
                fmt_f64(dur_us),
                fmt_f64(ev.wall_start_s * 1e6),
                fmt_f64((ev.wall_end_s - ev.wall_start_s) * 1e6),
            );
            for (k, v) in &ev.args {
                let _ = write!(out, ",\"{}\":{}", escape_json(k), fmt_f64(*v));
            }
            out.push_str("}}");
        }
    }
    // Perfetto flow events: an `s`/`f` pair per matched happens-before
    // edge, drawn as an arrow from the producing span's end to the
    // consuming span's end. The edge index is the flow-event id — flow
    // ids themselves can repeat across a retransmitted message's copies
    // and Perfetto would chain those into one bogus multi-hop arrow.
    let pag = Pag::build();
    for (i, edge) in pag.flow_edges().enumerate() {
        let src = &pag.nodes[edge.src];
        let dst = &pag.nodes[edge.dst];
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"s\",\"id\":{i},\"name\":\"flow\",\"cat\":\"flow\",\
             \"pid\":{},\"tid\":0,\"ts\":{}}},\
             {{\"ph\":\"f\",\"bp\":\"e\",\"id\":{i},\"name\":\"flow\",\"cat\":\"flow\",\
             \"pid\":{},\"tid\":0,\"ts\":{}}}",
            pid_of(src.rank),
            fmt_f64(src.event.virt_end_s * 1e6),
            pid_of(dst.rank),
            fmt_f64(dst.event.virt_end_s * 1e6),
        );
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"metrics\":");
    out.push_str(&crate::report::metrics_json());
    out.push_str("}}");
    (out, n_events)
}

/// Write the Chrome trace to `path`; returns the number of span events.
pub fn write_chrome_trace(path: &str) -> std::io::Result<usize> {
    let (json, n) = chrome_trace_json();
    std::fs::write(path, json)?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn trace_document_is_valid_json_and_has_metadata() {
        span::clear_all();
        let t = span::span_start(0.001);
        t.finish("testcat", "trace-doc-span", 0.002, &[("bytes", 42.0)]);
        crate::registry::global()
            .counter("trace.test_counter")
            .add(3);
        let (json, n) = chrome_trace_json();
        assert!(n >= 1);
        crate::json::validate(&json).expect("trace must be valid JSON");
        assert!(json.contains("\"cat\":\"testcat\""));
        assert!(json.contains("trace-doc-span"));
        assert!(json.contains("process_name"));
        assert!(json.contains("trace.test_counter"));
    }
}
