//! SplitMix64 — the workspace's deterministic, dependency-free PRNG.
//!
//! Used wherever reproducible pseudo-random data is needed (galeri's
//! random matrices/vectors, property-style tests) so the default build
//! carries no external `rand` dependency. Output for a given seed is
//! stable across platforms and releases; tests may bake in expectations.

/// SplitMix64 state. Passes BigCrush; a 64-bit counter mixed through two
/// multiply-xorshift rounds (Steele, Lea & Flood, OOPSLA 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`. Uses the
    /// widening-multiply trick (Lemire) — bias is < 2^-64, negligible for
    /// test-data generation.
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range_usize: empty range");
        lo + self.gen_index(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_sequence_is_stable() {
        // Reference values from the canonical splitmix64 implementation,
        // seed 1234567.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SplitMix64::new(42);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
            let w = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&w));
        }
    }

    #[test]
    fn index_ranges_cover_and_respect_bounds() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_index(10);
            assert!(i < 10);
            seen[i] = true;
            let j = rng.gen_range_usize(3, 7);
            assert!((3..7).contains(&j));
        }
        assert!(seen.iter().all(|&s| s), "all indices should appear");
    }
}
