//! Process-global metrics registry: counters, gauges, log2 histograms.
//!
//! Metrics are identified by a full key string, conventionally
//! `subsystem.name{label=value,…}` — e.g. `comm.bytes_sent{rank=3}` or
//! `solver.iterations{solver=cg}`. [`Registry::counter`] and friends
//! return cheap `Arc`-backed handles; repeated lookups with the same key
//! return handles to the same underlying atomic, so instrumentation sites
//! may either cache a handle or re-look it up each time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of log2 buckets: bucket `i` holds values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 is `v == 0`, bucket 1 is `v == 1`,
/// bucket 11 is `1024..=2047`, and so on up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotone counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-value gauge holding an `f64` (stored as bits in an atomic).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Log2-bucketed histogram of `u64` samples (message sizes, iteration
/// counts…). Records count, sum, min, max and a 65-bucket log2 profile.
pub struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// Histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Read-only snapshot of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (u64::MAX when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Log2 bucket counts; bucket `i` covers `[2^(i-1), 2^i)` (bucket 0
    /// is exactly zero, bucket 1 exactly one).
    pub buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Bucket index of a value: its bit length.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        h.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let s = self.snapshot();
        if s.count == 0 {
            0.0
        } else {
            s.sum as f64 / s.count as f64
        }
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry: a name → metric map. Normally accessed through
/// [`global`], but tests may build private instances.
pub struct Registry {
    slots: Mutex<BTreeMap<String, Slot>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            slots: Mutex::new(BTreeMap::new()),
        }
    }

    /// Get or create the counter named `key`. Panics if `key` already
    /// names a different metric kind.
    pub fn counter(&self, key: &str) -> Counter {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(key.to_string())
            .or_insert_with(|| Slot::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Slot::Counter(c) => c.clone(),
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// Get or create the gauge named `key`.
    pub fn gauge(&self, key: &str) -> Gauge {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(key.to_string())
            .or_insert_with(|| Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))))
        {
            Slot::Gauge(g) => g.clone(),
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// Get or create the histogram named `key`.
    pub fn histogram(&self, key: &str) -> Histogram {
        let mut slots = self.slots.lock().unwrap();
        match slots
            .entry(key.to_string())
            .or_insert_with(|| Slot::Histogram(Histogram::new()))
        {
            Slot::Histogram(h) => h.clone(),
            _ => panic!("metric {key:?} already registered with a different kind"),
        }
    }

    /// Value of a counter if it exists (tests and exporters).
    pub fn counter_value(&self, key: &str) -> Option<u64> {
        match self.slots.lock().unwrap().get(key) {
            Some(Slot::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Value of a gauge if it exists.
    pub fn gauge_value(&self, key: &str) -> Option<f64> {
        match self.slots.lock().unwrap().get(key) {
            Some(Slot::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Snapshot of a histogram if it exists.
    pub fn histogram_snapshot(&self, key: &str) -> Option<HistogramSnapshot> {
        match self.slots.lock().unwrap().get(key) {
            Some(Slot::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Sum of all counters whose key starts with `prefix` (aggregating
    /// over label instances, e.g. every `comm.bytes_sent{rank=…}`).
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, s)| match s {
                Slot::Counter(c) => Some(c.get()),
                _ => None,
            })
            .sum()
    }

    /// Remove every metric.
    pub fn clear(&self) {
        self.slots.lock().unwrap().clear();
    }

    /// Visit every metric in key order, formatted for the exporters:
    /// counters/gauges yield `(key, kind, value-as-f64, None)`, histograms
    /// yield their snapshot.
    pub fn for_each(&self, mut f: impl FnMut(&str, &'static str, f64, Option<&HistogramSnapshot>)) {
        for (key, slot) in self.slots.lock().unwrap().iter() {
            match slot {
                Slot::Counter(c) => f(key, "counter", c.get() as f64, None),
                Slot::Gauge(g) => f(key, "gauge", g.get(), None),
                Slot::Histogram(h) => {
                    let s = h.snapshot();
                    f(key, "histogram", s.count as f64, Some(&s));
                }
            }
        }
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Format a metric key with labels: `key("comm.bytes_sent", &[("rank",
/// "3")])` → `comm.bytes_sent{rank=3}`. With no labels, returns the name
/// as-is.
pub fn key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16);
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.add(3);
        b.inc();
        assert_eq!(r.counter_value("x.count"), Some(4));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn gauges_hold_last_value() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(2.5);
        g.set(-1.0);
        assert_eq!(r.gauge_value("g"), Some(-1.0));
    }

    #[test]
    fn histogram_log2_bucketing() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [0u64, 1, 3, 1024, 1500] {
            h.record(v);
        }
        let s = r.histogram_snapshot("h").unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 2528);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1500);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[11], 2);
        assert!((h.mean() - 505.6).abs() < 1e-12);
    }

    #[test]
    fn key_formatting() {
        assert_eq!(key("a.b", &[]), "a.b");
        assert_eq!(key("a.b", &[("rank", "3")]), "a.b{rank=3}");
        assert_eq!(
            key("a.b", &[("rank", "3"), ("solver", "cg")]),
            "a.b{rank=3,solver=cg}"
        );
    }

    #[test]
    fn counter_sum_aggregates_label_instances() {
        let r = Registry::new();
        r.counter("c.bytes{rank=0}").add(10);
        r.counter("c.bytes{rank=1}").add(5);
        r.counter("c.other").add(100);
        assert_eq!(r.counter_sum("c.bytes"), 15);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let r = Registry::new();
        r.counter("dual");
        r.gauge("dual");
    }
}
