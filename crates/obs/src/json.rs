//! Minimal JSON validator (no DOM, no dependencies).
//!
//! The exporters hand-render JSON; this recursive-descent checker lets
//! tests assert the output actually parses, and gives downstream tools a
//! cheap sanity gate before shipping a trace to Perfetto.

/// Validate that `input` is exactly one well-formed JSON value (with
/// optional surrounding whitespace). Returns the byte offset and message
/// of the first error.
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.i))
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", c as char))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            self.err(&format!("expected {lit}"))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return self.err("bad \\u escape"),
                                }
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                }
                Some(c) if c < 0x20 => return self.err("raw control char in string"),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return self.err("expected exponent digits");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e-3",
            "\"a\\n\\u00e9\"",
            "[]",
            "[1, [2, {\"a\": 3}], \"x\"]",
            "{\"traceEvents\":[{\"ph\":\"X\",\"ts\":1.5}],\"other\":{}}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "01suffix",
            "nul",
            "{\"a\":1} extra",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} accepted");
        }
    }
}
