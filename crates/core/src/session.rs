//! One-call setup of the whole framework.

use odin::{OdinConfig, OdinContext};

/// A configured framework instance: the ODIN worker pool (which also runs
/// the solver stack via the bridge) plus convenience constructors. The
/// prototype-on-8-cores / deploy-on-a-cluster story from §V is the
/// `workers` knob plus the virtual-time model in [`comm::NetworkModel`].
pub struct Session {
    ctx: OdinContext,
}

impl Session {
    /// Start a session with `workers` worker threads and defaults
    /// otherwise.
    pub fn new(workers: usize) -> Self {
        Session {
            ctx: OdinContext::with_workers(workers),
        }
    }

    /// Start with a full configuration (custom cost model, collective
    /// algorithm).
    pub fn with_config(config: OdinConfig) -> Self {
        Session {
            ctx: OdinContext::new(config),
        }
    }

    /// The underlying ODIN context (arrays, tables, local functions).
    pub fn odin(&self) -> &OdinContext {
        &self.ctx
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.ctx.n_workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_runs_end_to_end() {
        // the paper's §V pipeline in miniature: data with ODIN, a Seamless
        // kernel, a solver through the bridge
        let session = Session::new(2);
        let ctx = session.odin();
        assert_eq!(session.workers(), 2);
        // ODIN data
        let x = ctx.linspace(0.0, 1.0, 9);
        // Seamless kernel as the node-level function
        let kernel = seamless::compile_kernel(
            "def square(a):\n    for i in range(len(a)):\n        a[i] = a[i] * a[i]\n",
            "square",
            &[seamless::Type::ArrF],
        )
        .unwrap();
        crate::apply_kernel(ctx, &x, &kernel).unwrap();
        // solver through the bridge
        let n = 9;
        let (sol, rep) = crate::solve_with_odin_rhs(
            ctx,
            &x,
            move |g| {
                let mut row = vec![(g, 2.0)];
                if g > 0 {
                    row.push((g - 1, -1.0));
                }
                if g + 1 < n {
                    row.push((g + 1, -1.0));
                }
                row
            },
            crate::SolveMethod::Cg,
            Default::default(),
        );
        assert!(rep.converged);
        assert_eq!(sol.len(), 9);
    }
}
