//! The ODIN ↔ solver bridge (§III-E / experiment E11).
//!
//! A 1-D block-distributed f64 ODIN array *is* a solver vector (same map,
//! same layout): the bridge view is copy-only-within-the-worker. Arrays in
//! any other distribution are redistributed first — the measurable "bridge
//! cost" E11 compares against the solve itself.

use std::sync::Arc;

use odin::{DType, Dist, DistArray, OdinContext};
use solvers::{cg, gmres, AmgPreconditioner, IdentityPrecond, JacobiPrecond, KrylovConfig};

/// Which solver the bridge dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Conjugate gradients, unpreconditioned.
    Cg,
    /// CG with point-Jacobi.
    CgJacobi,
    /// CG with smoothed-aggregation AMG.
    CgAmg,
    /// Restarted GMRES.
    Gmres,
}

/// What the bridge did and how the solve went.
#[derive(Debug, Clone)]
pub struct BridgeReport {
    /// Whether the input array needed redistribution to block layout.
    pub redistributed: bool,
    /// Inner solver iterations.
    pub iterations: usize,
    /// Final residual norm.
    pub final_residual: f64,
    /// Whether the solver converged.
    pub converged: bool,
}

/// Solve `A·x = b` where `b` is an ODIN array and `A` is defined by
/// `row_fn(global_row) -> (global_col, value)` entries (built
/// block-distributed on the workers). Returns the solution as a new ODIN
/// array plus a [`BridgeReport`]. Collective across the worker pool.
pub fn solve_with_odin_rhs<'c, F>(
    ctx: &'c OdinContext,
    b: &DistArray<'c>,
    row_fn: F,
    method: SolveMethod,
    cfg: KrylovConfig,
) -> (DistArray<'c>, BridgeReport)
where
    F: Fn(usize) -> Vec<(usize, f64)> + Send + Sync + 'static,
{
    let meta = b.meta();
    assert_eq!(meta.ndim(), 1, "the bridge takes 1-D arrays");
    // Conformability: solvers want Block + f64. Redistribute/cast if not.
    let mut redistributed = false;
    let owned_block;
    let b_block: &DistArray<'c> = if meta.dist == Dist::Block && meta.dtype == DType::F64 {
        b
    } else {
        redistributed = true;
        let as_f64 = if meta.dtype == DType::F64 {
            None
        } else {
            Some(b.astype(DType::F64))
        };
        owned_block = as_f64.as_ref().unwrap_or(b).redistribute(Dist::Block);
        &owned_block
    };
    let x = ctx.zeros(&[meta.shape[0]], DType::F64);
    let report = Arc::new(std::sync::Mutex::new(None::<BridgeReport>));
    let report2 = Arc::clone(&report);
    let row_fn = Arc::new(row_fn);
    ctx.run_spmd(&[b_block, &x], move |scope, args| {
        let (b_id, x_id) = (args[0], args[1]);
        let bv = scope.as_dist_vector(b_id);
        let map = bv.map().clone();
        let row_fn = Arc::clone(&row_fn);
        let a = dlinalg::CsrMatrix::from_row_fn(scope.comm, map.clone(), map, move |g| row_fn(g));
        let mut xv = dlinalg::DistVector::zeros(a.domain_map().clone());
        let status = match method {
            SolveMethod::Cg => cg(scope.comm, &a, &bv, &mut xv, &IdentityPrecond, &cfg),
            SolveMethod::CgJacobi => {
                let m = JacobiPrecond::new(&a);
                cg(scope.comm, &a, &bv, &mut xv, &m, &cfg)
            }
            SolveMethod::CgAmg => {
                let m = AmgPreconditioner::new(scope.comm, &a, Default::default());
                cg(scope.comm, &a, &bv, &mut xv, &m, &cfg)
            }
            SolveMethod::Gmres => gmres(scope.comm, &a, &bv, &mut xv, &IdentityPrecond, &cfg),
        };
        scope.store_dist_vector(x_id, &xv);
        if scope.rank() == 0 {
            *report2.lock().unwrap() = Some(BridgeReport {
                redistributed: false, // patched below on the master
                iterations: status.iterations,
                converged: status.converged,
                final_residual: status.final_residual(),
            });
        }
    });
    let mut rep = report.lock().unwrap().take().expect("worker 0 must report");
    rep.redistributed = redistributed;
    (x, rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplace_row(n: usize) -> impl Fn(usize) -> Vec<(usize, f64)> + Send + Sync + 'static {
        move |g| {
            let mut row = Vec::with_capacity(3);
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        }
    }

    #[test]
    fn conformable_bridge_solves_without_redistribution() {
        let ctx = OdinContext::with_workers(3);
        let n = 32;
        let b = ctx.ones(&[n], DType::F64);
        let (x, rep) = solve_with_odin_rhs(
            &ctx,
            &b,
            laplace_row(n),
            SolveMethod::Cg,
            KrylovConfig::default(),
        );
        assert!(!rep.redistributed);
        assert!(rep.converged);
        // residual check on the master: A x ≈ 1
        let xs = x.to_vec();
        for g in 0..n {
            let mut ax = 2.0 * xs[g];
            if g > 0 {
                ax -= xs[g - 1];
            }
            if g + 1 < n {
                ax -= xs[g + 1];
            }
            assert!((ax - 1.0).abs() < 1e-6, "row {g}: {ax}");
        }
    }

    #[test]
    fn cyclic_array_is_redistributed_first() {
        let ctx = OdinContext::with_workers(2);
        let n = 16;
        let b = ctx.random_dist(&[n], 3, Dist::Cyclic);
        let expect = b.to_vec();
        let (x, rep) = solve_with_odin_rhs(
            &ctx,
            &b,
            laplace_row(n),
            SolveMethod::CgJacobi,
            KrylovConfig::default(),
        );
        assert!(rep.redistributed);
        assert!(rep.converged);
        let xs = x.to_vec();
        for g in 0..n {
            let mut ax = 2.0 * xs[g];
            if g > 0 {
                ax -= xs[g - 1];
            }
            if g + 1 < n {
                ax -= xs[g + 1];
            }
            assert!((ax - expect[g]).abs() < 1e-6);
        }
    }

    #[test]
    fn integer_rhs_is_cast() {
        let ctx = OdinContext::with_workers(2);
        let n = 8;
        let b = ctx.ones(&[n], DType::I64);
        let (_x, rep) = solve_with_odin_rhs(
            &ctx,
            &b,
            laplace_row(n),
            SolveMethod::Gmres,
            KrylovConfig::default(),
        );
        assert!(rep.redistributed);
        assert!(rep.converged);
    }

    #[test]
    fn amg_bridge_converges_fast_on_2d() {
        let ctx = OdinContext::with_workers(2);
        let nx = 16;
        let n = nx * nx;
        let b = ctx.ones(&[n], DType::F64);
        let row = move |g: usize| {
            let (i, j) = (g % nx, g / nx);
            let mut row = Vec::with_capacity(5);
            if j > 0 {
                row.push((g - nx, -1.0));
            }
            if i > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 4.0));
            if i + 1 < nx {
                row.push((g + 1, -1.0));
            }
            if j + 1 < ny_of(nx, n) {
                row.push((g + nx, -1.0));
            }
            row
        };
        let (_x, amg) =
            solve_with_odin_rhs(&ctx, &b, row, SolveMethod::CgAmg, KrylovConfig::default());
        assert!(amg.converged);
        let row2 = move |g: usize| {
            let (i, j) = (g % nx, g / nx);
            let mut row = Vec::with_capacity(5);
            if j > 0 {
                row.push((g - nx, -1.0));
            }
            if i > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 4.0));
            if i + 1 < nx {
                row.push((g + 1, -1.0));
            }
            if j + 1 < ny_of(nx, n) {
                row.push((g + nx, -1.0));
            }
            row
        };
        let (_x2, plain) =
            solve_with_odin_rhs(&ctx, &b, row2, SolveMethod::Cg, KrylovConfig::default());
        assert!(plain.converged);
        assert!(
            amg.iterations < plain.iterations,
            "amg {} vs cg {}",
            amg.iterations,
            plain.iterations
        );
    }

    fn ny_of(nx: usize, n: usize) -> usize {
        n / nx
    }
}
