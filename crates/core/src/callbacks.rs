//! Seamless kernels as node-level functions (§V user story).
//!
//! Two compositions from the paper:
//! * a compiled kernel used as "the node-level function for a distributed
//!   array computation with ODIN" ([`apply_kernel`]);
//! * a solver that "calls back to Python to evaluate a model", with
//!   Seamless converting the callback "into a highly efficient numerical
//!   kernel" ([`newton_with_pyish_reaction`]).

use std::sync::Arc;

use comm::Comm;
use dlinalg::{CsrMatrix, DistVector};
use odin::{DistArray, OdinContext};
use seamless::{CompiledKernel, Type, Value};
use solvers::{newton_krylov, NewtonConfig, NonlinearProblem, SolveStatus};

/// Apply a compiled pyish kernel (signature `def f(a): …`, mutating its
/// array argument) to every worker's segment of a distributed array — the
/// `@odin.local`-plus-`@jit` composition. Collective.
///
/// Float-array kernels (`[Type::ArrF]`) apply to F64 arrays, integer-array
/// kernels (`[Type::ArrI]`) to I64 arrays. A kernel/array dtype mismatch
/// is caught master-side and surfaces as a typed
/// [`odin::OdinError::DtypeMismatch`] instead of panicking a worker; a
/// kernel that does not take exactly one array fails with
/// [`crate::Error::Seamless`].
pub fn apply_kernel(
    ctx: &OdinContext,
    arr: &DistArray<'_>,
    kernel: &CompiledKernel,
) -> crate::Result<()> {
    let expected = match kernel.arg_types() {
        [Type::ArrF] => odin::DType::F64,
        [Type::ArrI] => odin::DType::I64,
        other => {
            return Err(seamless::SeamlessError::Type(format!(
                "apply_kernel needs `def f(a)` over one float or integer array, got {other:?}"
            ))
            .into());
        }
    };
    let found = arr.dtype();
    if found != expected {
        return Err(odin::OdinError::DtypeMismatch { expected, found }.into());
    }
    let kernel = Arc::new(kernel.clone());
    ctx.run_spmd(&[arr], move |scope, args| match scope.local_mut(args[0]) {
        odin::Buffer::F64(v) => {
            let mut data = std::mem::take(v);
            kernel
                .apply_in_place(&mut data)
                .expect("kernel failed on a worker segment");
            *scope.local_mut(args[0]) = odin::Buffer::F64(data);
        }
        odin::Buffer::I64(v) => {
            let mut data = std::mem::take(v);
            kernel
                .apply_in_place_i64(&mut data)
                .expect("kernel failed on a worker segment");
            *scope.local_mut(args[0]) = odin::Buffer::I64(data);
        }
        other => unreachable!("dtype checked master-side, found {:?}", other.dtype()),
    });
    Ok(())
}

/// A 1-D reaction–diffusion problem `−u'' − λ·g(u) = 0` (Dirichlet, unit
/// interval) whose nonlinearity `g` **and its derivative** are specified
/// in pyish and compiled with Seamless — the paper's model-callback flow.
pub struct PyishReaction {
    /// Interior points.
    pub n: usize,
    /// Reaction strength λ.
    pub lambda: f64,
    /// Compiled `g(u)` kernel (`def g(u: float): …`).
    pub g: CompiledKernel,
    /// Compiled `g'(u)` kernel.
    pub dg: CompiledKernel,
}

impl PyishReaction {
    /// Compile both kernels from source.
    pub fn from_sources(
        n: usize,
        lambda: f64,
        g_src: &str,
        g_name: &str,
        dg_src: &str,
        dg_name: &str,
    ) -> crate::Result<Self> {
        Ok(PyishReaction {
            n,
            lambda,
            g: seamless::compile_kernel(g_src, g_name, &[Type::Float])?,
            dg: seamless::compile_kernel(dg_src, dg_name, &[Type::Float])?,
        })
    }

    fn h2(&self) -> f64 {
        let h = 1.0 / (self.n as f64 + 1.0);
        h * h
    }

    fn eval(&self, kernel: &CompiledKernel, u: f64) -> f64 {
        kernel
            .call(vec![Value::Float(u)])
            .expect("pyish callback failed")
            .ret
            .as_f64()
            .expect("pyish callback must return a number")
    }
}

impl NonlinearProblem for PyishReaction {
    fn residual(&self, comm: &Comm, x: &DistVector<f64>) -> DistVector<f64> {
        let n = self.n;
        let map = x.map().clone();
        let lap = CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
            let mut row = Vec::with_capacity(3);
            if g > 0 {
                row.push((g - 1, -1.0));
            }
            row.push((g, 2.0));
            if g + 1 < n {
                row.push((g + 1, -1.0));
            }
            row
        });
        let h2 = self.h2();
        let mut f = lap.matvec(comm, x);
        for (fi, &ui) in f.local_mut().iter_mut().zip(x.local().iter()) {
            *fi = *fi / h2 - self.lambda * self.eval(&self.g, ui);
        }
        f
    }

    fn jacobian(&self, comm: &Comm, x: &DistVector<f64>) -> CsrMatrix<f64> {
        let n = self.n;
        let h2 = self.h2();
        let lam = self.lambda;
        let map = x.map().clone();
        let map2 = map.clone();
        // evaluate the derivative callback once per local point
        let dg_vals: Vec<f64> = x.local().iter().map(|&u| self.eval(&self.dg, u)).collect();
        CsrMatrix::from_row_fn(comm, map.clone(), map, move |g| {
            let l = map2.global_to_local(g).unwrap();
            let mut row = Vec::with_capacity(3);
            if g > 0 {
                row.push((g - 1, -1.0 / h2));
            }
            row.push((g, 2.0 / h2 - lam * dg_vals[l]));
            if g + 1 < n {
                row.push((g + 1, -1.0 / h2));
            }
            row
        })
    }
}

/// Solve the reaction problem with Newton–Krylov on the ODIN worker pool;
/// returns the solution as an ODIN array plus the Newton history.
pub fn newton_with_pyish_reaction<'c>(
    ctx: &'c OdinContext,
    problem: PyishReaction,
    cfg: NewtonConfig,
) -> (DistArray<'c>, SolveStatus) {
    let x = ctx.zeros(&[problem.n], odin::DType::F64);
    let status = Arc::new(std::sync::Mutex::new(None::<SolveStatus>));
    let status2 = Arc::clone(&status);
    let problem = Arc::new(problem);
    ctx.run_spmd(&[&x], move |scope, args| {
        let mut xv = scope.as_dist_vector(args[0]);
        let st = newton_krylov(scope.comm, problem.as_ref(), &mut xv, &cfg);
        scope.store_dist_vector(args[0], &xv);
        if scope.rank() == 0 {
            *status2.lock().unwrap() = Some(st);
        }
    });
    let st = status.lock().unwrap().take().expect("worker 0 must report");
    (x, st)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_applied_to_distributed_array() {
        let ctx = OdinContext::with_workers(3);
        let src = "
def clamp01(a):
    for i in range(len(a)):
        a[i] = min(max(a[i], 0.0), 1.0)
";
        let kernel = seamless::compile_kernel(src, "clamp01", &[Type::ArrF]).unwrap();
        let x = ctx.arange_f64(-2.0, 0.5, 10, odin::Dist::Block);
        apply_kernel(&ctx, &x, &kernel).unwrap();
        let got = x.to_vec();
        let expect: Vec<f64> = (0..10)
            .map(|g| (-2.0 + 0.5 * g as f64).clamp(0.0, 1.0))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn integer_kernel_applied_to_i64_array() {
        let ctx = OdinContext::with_workers(3);
        let src = "
def double_odd(a):
    for i in range(len(a)):
        if a[i] % 2 == 1:
            a[i] = a[i] * 2
";
        let kernel = seamless::compile_kernel(src, "double_odd", &[Type::ArrI]).unwrap();
        let x = ctx.arange(9);
        apply_kernel(&ctx, &x, &kernel).unwrap();
        let got = x.to_vec_i64();
        let expect: Vec<i64> = (0..9).map(|g| if g % 2 == 1 { g * 2 } else { g }).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn dtype_mismatch_is_a_typed_error_not_a_worker_panic() {
        let ctx = OdinContext::with_workers(2);
        let src = "
def clamp01(a):
    for i in range(len(a)):
        a[i] = min(max(a[i], 0.0), 1.0)
";
        let kernel = seamless::compile_kernel(src, "clamp01", &[Type::ArrF]).unwrap();
        let x = ctx.arange(6); // I64 array, float-array kernel
        let err = apply_kernel(&ctx, &x, &kernel).unwrap_err();
        match err {
            crate::Error::Odin(odin::OdinError::DtypeMismatch { expected, found }) => {
                assert_eq!(expected, odin::DType::F64);
                assert_eq!(found, odin::DType::I64);
            }
            other => panic!("expected DtypeMismatch, got {other:?}"),
        }
        // The pool survives: the same array is still usable afterwards.
        assert_eq!(x.to_vec_i64(), (0..6).collect::<Vec<i64>>());
    }

    #[test]
    fn bratu_with_pyish_callbacks() {
        // g(u) = exp(u), g'(u) = exp(u): the classic Bratu problem with
        // the nonlinearity specified in pyish.
        let ctx = OdinContext::with_workers(2);
        let problem = PyishReaction::from_sources(
            20,
            1.5,
            "def g(u: float):\n    return exp(u)\n",
            "g",
            "def dg(u: float):\n    return exp(u)\n",
            "dg",
        )
        .unwrap();
        let (x, st) = newton_with_pyish_reaction(&ctx, problem, NewtonConfig::default());
        assert!(st.converged, "history: {:?}", st.history);
        let full = x.to_vec();
        assert!(full.iter().all(|&u| u > 0.0));
        // symmetric peak in the middle
        let max = full.iter().cloned().fold(0.0f64, f64::max);
        assert!((full[10] - max).abs() < 1e-8 || (full[9] - max).abs() < 1e-8);
    }

    #[test]
    fn linear_reaction_matches_direct_solve() {
        // g(u) = u (linear): −u''/… reduces to a linear system we can
        // verify against the residual directly.
        let ctx = OdinContext::with_workers(2);
        let problem = PyishReaction::from_sources(
            12,
            1.0,
            "def g(u: float):\n    return u - 1.0\n",
            "g",
            "def dg(u: float):\n    return 1.0\n",
            "dg",
        )
        .unwrap();
        let n = problem.n;
        let lambda = problem.lambda;
        let (x, st) = newton_with_pyish_reaction(&ctx, problem, NewtonConfig::default());
        assert!(st.converged);
        assert!(st.iterations <= 3, "linear problems converge immediately");
        // verify residual on the master: (2u_i−u_{i−1}−u_{i+1})/h² = λ(u_i−1)
        let u = x.to_vec();
        let h2 = 1.0 / ((n as f64 + 1.0) * (n as f64 + 1.0));
        for i in 0..n {
            let mut lap = 2.0 * u[i];
            if i > 0 {
                lap -= u[i - 1];
            }
            if i + 1 < n {
                lap -= u[i + 1];
            }
            let res = lap / h2 - lambda * (u[i] - 1.0);
            assert!(res.abs() < 1e-6, "row {i}: {res}");
        }
    }
}
