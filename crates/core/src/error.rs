//! One error type for the whole stack, so cross-layer code (and user
//! programs built on `hpc_framework::prelude`-style imports) can `?` any
//! subsystem failure without hand-written conversions.

use comm::CommError;
use odin::OdinError;
use seamless::SeamlessError;
use solvers::SolverError;

/// Any failure the framework can surface: communication, distributed
/// arrays, solvers, or kernel compilation/execution.
#[derive(Debug)]
pub enum Error {
    /// Communication-substrate failure (decode, disconnect, stall, …).
    Comm(CommError),
    /// ODIN pool failure (dead worker, lost segments, …).
    Odin(OdinError),
    /// Solver failure (non-convergence, breakdown).
    Solver(SolverError),
    /// Seamless kernel failure (lex/parse/type/runtime/ffi).
    Seamless(SeamlessError),
}

/// Workspace-wide result alias over [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Comm(e) => write!(f, "comm: {e}"),
            Error::Odin(e) => write!(f, "odin: {e}"),
            Error::Solver(e) => write!(f, "solver: {e}"),
            Error::Seamless(e) => write!(f, "seamless: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Comm(e) => Some(e),
            Error::Odin(e) => Some(e),
            Error::Solver(e) => Some(e),
            Error::Seamless(e) => Some(e),
        }
    }
}

impl From<CommError> for Error {
    fn from(e: CommError) -> Self {
        Error::Comm(e)
    }
}

impl From<OdinError> for Error {
    fn from(e: OdinError) -> Self {
        Error::Odin(e)
    }
}

impl From<SolverError> for Error {
    fn from(e: SolverError) -> Self {
        Error::Solver(e)
    }
}

impl From<SeamlessError> for Error {
    fn from(e: SeamlessError) -> Self {
        Error::Seamless(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_unified(e: SeamlessError) -> Error {
        e.into()
    }

    #[test]
    fn conversions_and_display() {
        let e = as_unified(SeamlessError::Type("bad kernel".into()));
        assert!(matches!(e, Error::Seamless(_)));
        assert!(e.to_string().contains("bad kernel"));
        let e: Error = SolverError::NotConverged {
            iterations: 5,
            residual: 0.1,
        }
        .into();
        assert!(e.to_string().starts_with("solver:"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
