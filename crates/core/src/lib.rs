//! # hpc-core — the framework that ties the three systems together
//!
//! The paper's closing vision (§V, Fig. 2): a user "allocates, initializes
//! and manipulates a large simulation data set using ODIN … devises a
//! solution approach using PyTrilinos solvers that accept ODIN arrays …
//! and Seamless is used to convert [the model] callback into a highly
//! efficient numerical kernel." This crate is that composition layer:
//!
//! * [`bridge`] — solve distributed linear systems whose right-hand sides
//!   are ODIN arrays (§III-E: ODIN arrays "optionally compatible with
//!   Trilinos … Vectors"), with automatic redistribution when the array
//!   is not solver-conformable;
//! * [`callbacks`] — compile pyish sources into kernels and use them as
//!   node-level functions: elementwise maps over distributed arrays, and
//!   model callbacks inside Newton–Krylov solves;
//! * [`session`] — one-call setup of the whole stack.

pub mod bridge;
pub mod callbacks;
pub mod error;
pub mod session;

pub use bridge::{solve_with_odin_rhs, BridgeReport, SolveMethod};
pub use callbacks::{apply_kernel, newton_with_pyish_reaction, PyishReaction};
pub use error::{Error, Result};
pub use session::Session;
