//! Bounded per-rank memoization of [`CommPlan`]s.
//!
//! Building a plan is collective and costs an owner lookup plus an
//! all-to-all of request lists — far more than executing it. Hot paths
//! (SpMV halo gathers, vector redistributes, ODIN ufunc conformance) ask
//! for the *same* plan over and over, so this module keys finished plans
//! by the full structural identity of the participating maps and hands
//! back clones.
//!
//! # Keying and correctness
//!
//! Keys store the complete structural data of each map (block offsets,
//! block size, or the arbitrary gid list) plus the request list, compared
//! by exact equality — a hit can never return a plan for a merely
//! hash-equal input. Keys include `my_rank`, so a cached plan is only
//! ever replayed on the rank that built it (the cache itself is
//! per-thread, which under the simulator's thread-per-rank model means
//! per-rank).
//!
//! # SPMD symmetry
//!
//! Plan construction is collective; a cache hit skips it. That is safe
//! only because hits and misses are symmetric across ranks: under SPMD
//! usage every rank issues the same sequence of `cached_*` calls, so all
//! ranks hit or all ranks miss together, and the bounded LRU evicts in
//! the same order everywhere. Callers that invoke `cached_*` on a subset
//! of ranks (or in rank-divergent order) would deadlock on the miss path
//! exactly as they would calling [`CommPlan::gather`] directly — the
//! cache neither adds nor removes that requirement.

use std::cell::RefCell;

use comm::Comm;

use crate::directory::Directory;
use crate::import_export::CommPlan;
use crate::map::{DistMap, MapKey};

/// Retained plans per rank. Oldest (least recently used) is evicted
/// first; 32 comfortably covers every distinct exchange in the solvers
/// and ODIN programs while bounding memory on pathological workloads.
const PLAN_CACHE_MAX: usize = 32;

enum PlanKey {
    /// `CommPlan::gather(src, needed_gids)`.
    Gather { src: MapKey, gids: Vec<usize> },
    /// `CommPlan::import(src, dst)`.
    Import { src: MapKey, dst: MapKey },
}

struct Entry {
    key: PlanKey,
    plan: CommPlan,
}

thread_local! {
    static CACHE: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
}

/// Look the key up (LRU order maintained by moving hits to the back);
/// on a miss, build collectively and insert. Counter bookkeeping feeds
/// `CommStats::plan_hits` / `plan_misses` and the mirrored obs counters.
fn lookup_or_build(
    comm: &Comm,
    matches: impl Fn(&PlanKey) -> bool,
    make_key: impl FnOnce() -> PlanKey,
    build: impl FnOnce() -> CommPlan,
) -> CommPlan {
    let hit = CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.iter().position(|e| matches(&e.key)).map(|i| {
            let e = c.remove(i);
            let plan = e.plan.clone();
            c.push(e);
            plan
        })
    });
    if let Some(plan) = hit {
        comm.record_plan_hit();
        return plan;
    }
    comm.record_plan_miss();
    let plan = build();
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.len() == PLAN_CACHE_MAX {
            c.remove(0);
        }
        c.push(Entry {
            key: make_key(),
            plan: plan.clone(),
        });
    });
    plan
}

/// Memoized [`CommPlan::gather`]: builds (and caches) the owner
/// directory and plan on first use, replays the cached plan afterwards.
/// Collective on a miss only — see the module docs for the SPMD
/// symmetry requirement.
pub fn cached_gather(comm: &Comm, src: &DistMap, needed_gids: &[usize]) -> CommPlan {
    lookup_or_build(
        comm,
        |k| matches!(k, PlanKey::Gather { src: s, gids } if src.matches_key(s) && gids == needed_gids),
        || PlanKey::Gather {
            src: src.to_key(),
            gids: needed_gids.to_vec(),
        },
        || {
            let dir = Directory::build(comm, src);
            CommPlan::gather(comm, src, &dir, needed_gids)
        },
    )
}

/// Memoized [`CommPlan::import`]: redistribution plan from `src` layout
/// to `dst` layout. Collective on a miss only.
pub fn cached_import(comm: &Comm, src: &DistMap, dst: &DistMap) -> CommPlan {
    lookup_or_build(
        comm,
        |k| matches!(k, PlanKey::Import { src: s, dst: d } if src.matches_key(s) && dst.matches_key(d)),
        || PlanKey::Import {
            src: src.to_key(),
            dst: dst.to_key(),
        },
        || {
            let dir = Directory::build(comm, src);
            CommPlan::import(comm, src, dst, &dir)
        },
    )
}

/// Drop every plan cached by the calling rank. Mostly a test hook; also
/// useful to release plan memory after a workload phase ends.
pub fn clear_plan_cache() {
    CACHE.with(|c| c.borrow_mut().clear());
}

/// Number of plans currently cached by the calling rank.
pub fn plan_cache_len() -> usize {
    CACHE.with(|c| c.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn repeat_imports_hit_and_match_cold_plan() {
        Universe::run(3, |comm| {
            clear_plan_cache();
            let n = 17;
            let src = DistMap::block(n, comm.size(), comm.rank());
            let dst = DistMap::cyclic(n, comm.size(), comm.rank());
            let src_data: Vec<i64> = src.my_gids().iter().map(|&g| 7 * g as i64).collect();
            let expect: Vec<i64> = dst.my_gids().iter().map(|&g| 7 * g as i64).collect();

            let cold = cached_import(comm, &src, &dst);
            assert_eq!(comm.stats().plan_misses, 1);
            assert_eq!(comm.stats().plan_hits, 0);
            assert_eq!(cold.execute_to_vec(comm, &src_data), expect);

            let warm = cached_import(comm, &src, &dst);
            assert_eq!(comm.stats().plan_hits, 1);
            assert_eq!(comm.stats().plan_misses, 1);
            assert_eq!(warm.execute_to_vec(comm, &src_data), expect);
            clear_plan_cache();
        });
    }

    #[test]
    fn gather_key_distinguishes_request_lists_and_maps() {
        Universe::run(2, |comm| {
            clear_plan_cache();
            let map = DistMap::block(8, comm.size(), comm.rank());
            let other = DistMap::cyclic(8, comm.size(), comm.rank());
            let gids_a = vec![0usize, 3, 7];
            let gids_b = vec![0usize, 3, 6];
            let _ = cached_gather(comm, &map, &gids_a);
            let _ = cached_gather(comm, &map, &gids_b);
            let _ = cached_gather(comm, &other, &gids_a);
            assert_eq!(comm.stats().plan_misses, 3);
            let _ = cached_gather(comm, &map, &gids_a);
            assert_eq!(comm.stats().plan_hits, 1);
            assert_eq!(plan_cache_len(), 3);
            clear_plan_cache();
        });
    }

    #[test]
    fn cache_is_bounded_and_evicts_oldest() {
        Universe::run(2, |comm| {
            clear_plan_cache();
            let map = DistMap::block(64, comm.size(), comm.rank());
            for i in 0..(PLAN_CACHE_MAX + 4) {
                let _ = cached_gather(comm, &map, &[i]);
            }
            assert_eq!(plan_cache_len(), PLAN_CACHE_MAX);
            // The most recent keys are retained...
            let _ = cached_gather(comm, &map, &[PLAN_CACHE_MAX + 3]);
            assert_eq!(comm.stats().plan_hits, 1);
            // ...while the oldest were evicted and rebuild on demand.
            let misses_before = comm.stats().plan_misses;
            let _ = cached_gather(comm, &map, &[0]);
            assert_eq!(comm.stats().plan_misses, misses_before + 1);
            clear_plan_cache();
        });
    }
}
