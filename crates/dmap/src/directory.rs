//! Distributed owner lookup (Tpetra `Directory` analog).
//!
//! Structured maps answer "who owns gid g?" with pure arithmetic; arbitrary
//! maps cannot, so a directory distributes the ownership table by a uniform
//! hash (home rank of `g` is `g mod P`) and answers batched queries with
//! two all-to-all exchanges.

use std::collections::HashMap;

use comm::Comm;

use crate::map::DistMap;

/// Owner-lookup service for a [`DistMap`].
pub struct Directory {
    n_ranks: usize,
    /// Structured maps are answered locally with no communication.
    shortcut: Option<DistMap>,
    /// My slice of the distributed table: gid → owner, for gids whose home
    /// rank is me.
    entries: HashMap<usize, usize>,
}

impl Directory {
    /// Build the directory. Collective over `comm` for arbitrary maps;
    /// free for structured maps.
    pub fn build(comm: &Comm, map: &DistMap) -> Self {
        if map.has_global_view() {
            return Directory {
                n_ranks: map.n_ranks(),
                shortcut: Some(map.clone()),
                entries: HashMap::new(),
            };
        }
        let p = comm.size();
        // Tell each home rank about the gids I own.
        let mut outgoing: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        for g in map.my_gids() {
            outgoing[g % p].push(g);
        }
        let incoming = comm.alltoallv(outgoing);
        let mut entries = HashMap::new();
        for (owner, gids) in incoming.into_iter().enumerate() {
            for g in gids {
                let prev = entries.insert(g, owner);
                assert!(prev.is_none(), "gid {g} registered by two owners");
            }
        }
        Directory {
            n_ranks: p,
            shortcut: None,
            entries,
        }
    }

    /// Owning rank of each queried gid, in query order. Collective (every
    /// rank must call it, even with an empty query list) unless the map is
    /// structured.
    pub fn owners_of(&self, comm: &Comm, queries: &[usize]) -> Vec<usize> {
        if let Some(map) = &self.shortcut {
            return queries
                .iter()
                .map(|&g| map.owner_of(g).expect("structured map owner"))
                .collect();
        }
        let p = self.n_ranks;
        // Route each query to its home rank, remembering where answers go.
        let mut outgoing: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        let mut slot: Vec<(usize, usize)> = Vec::with_capacity(queries.len());
        for &g in queries {
            slot.push((g % p, outgoing[g % p].len()));
            outgoing[g % p].push(g);
        }
        let requests = comm.alltoallv(outgoing);
        // Answer the queries that landed here.
        let answers: Vec<Vec<usize>> = requests
            .into_iter()
            .map(|gids| {
                gids.into_iter()
                    .map(|g| {
                        *self
                            .entries
                            .get(&g)
                            .unwrap_or_else(|| panic!("gid {g} not in directory"))
                    })
                    .collect()
            })
            .collect();
        let replies = comm.alltoallv(answers);
        slot.iter().map(|&(home, pos)| replies[home][pos]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn structured_maps_answer_locally() {
        Universe::run(3, |comm| {
            let map = DistMap::cyclic(10, comm.size(), comm.rank());
            let dir = Directory::build(comm, &map);
            let owners = dir.owners_of(comm, &[0, 1, 2, 9]);
            assert_eq!(owners, vec![0, 1, 2, 0]);
            // no communication happened
            assert_eq!(comm.stats().msgs_sent, 0);
        });
    }

    #[test]
    fn arbitrary_map_directory_lookup() {
        Universe::run(4, |comm| {
            let p = comm.size();
            let n = 32;
            // rank r owns gids with (g*7 + 3) % p == r — scrambled layout
            let gids: Vec<usize> = (0..n).filter(|g| (g * 7 + 3) % p == comm.rank()).collect();
            let map = DistMap::from_my_gids(comm, gids);
            let dir = Directory::build(comm, &map);
            // every rank queries all gids
            let queries: Vec<usize> = (0..n).collect();
            let owners = dir.owners_of(comm, &queries);
            for (g, owner) in queries.iter().zip(owners.iter()) {
                assert_eq!(*owner, (g * 7 + 3) % p);
            }
        });
    }

    #[test]
    fn empty_queries_are_fine() {
        Universe::run(2, |comm| {
            let gids: Vec<usize> = (0..6).filter(|g| g % 2 == comm.rank()).collect();
            let map = DistMap::from_my_gids(comm, gids);
            let dir = Directory::build(comm, &map);
            let queries = if comm.rank() == 0 { vec![5, 0] } else { vec![] };
            let owners = dir.owners_of(comm, &queries);
            if comm.rank() == 0 {
                assert_eq!(owners, vec![1, 0]);
            } else {
                assert!(owners.is_empty());
            }
        });
    }
}
