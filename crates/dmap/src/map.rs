//! Distribution maps: who owns which global index.

use std::collections::HashMap;

use comm::Comm;

/// The distribution *pattern* of a map — the vocabulary the paper's ODIN
/// exposes for array creation ("block, cyclic, block-cyclic, or another
/// arbitrary global-to-local index mapping", §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous, nearly equal blocks in rank order.
    Block,
    /// Round-robin by element.
    Cyclic,
    /// Round-robin by fixed-size blocks.
    BlockCyclic(usize),
}

#[derive(Debug, Clone)]
enum MapKind {
    /// Contiguous blocks described by `offsets` (length `P+1`): rank `r`
    /// owns global indices `offsets[r]..offsets[r+1]`. Covers both uniform
    /// and non-uniform block maps.
    Block {
        offsets: Vec<usize>,
    },
    Cyclic,
    BlockCyclic {
        block: usize,
    },
    /// Arbitrary: this rank knows only its own global ids; cross-rank owner
    /// lookup requires a [`crate::Directory`].
    Arbitrary {
        my_gids: Vec<usize>,
        gid_to_lid: HashMap<usize, usize>,
    },
}

/// A distribution of `n_global` indices over `n_ranks` ranks, as seen from
/// `my_rank`. Cheap to clone for the structured kinds.
#[derive(Debug, Clone)]
pub struct DistMap {
    n_global: usize,
    n_ranks: usize,
    my_rank: usize,
    kind: MapKind,
}

/// Start offset of rank `r`'s uniform block.
pub(crate) fn block_start(n: usize, p: usize, r: usize) -> usize {
    let q = n / p;
    let rem = n % p;
    r * q + r.min(rem)
}

impl DistMap {
    /// Uniform block map: rank `r` owns a contiguous run of
    /// `⌈n/P⌉`-or-`⌊n/P⌋` indices.
    pub fn block(n_global: usize, n_ranks: usize, my_rank: usize) -> Self {
        assert!(my_rank < n_ranks, "rank {my_rank} out of {n_ranks}");
        let offsets = (0..=n_ranks)
            .map(|r| block_start(n_global, n_ranks, r.min(n_ranks)))
            .collect::<Vec<_>>();
        DistMap {
            n_global,
            n_ranks,
            my_rank,
            kind: MapKind::Block { offsets },
        }
    }

    /// Non-uniform block map from explicit per-rank counts
    /// (`counts.len() == n_ranks`, summing to the global size).
    pub fn block_from_counts(counts: &[usize], my_rank: usize) -> Self {
        assert!(my_rank < counts.len());
        let mut offsets = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0;
        offsets.push(0);
        for &c in counts {
            acc += c;
            offsets.push(acc);
        }
        DistMap {
            n_global: acc,
            n_ranks: counts.len(),
            my_rank,
            kind: MapKind::Block { offsets },
        }
    }

    /// Cyclic (round-robin) map: global index `g` lives on rank `g mod P`.
    pub fn cyclic(n_global: usize, n_ranks: usize, my_rank: usize) -> Self {
        assert!(my_rank < n_ranks);
        DistMap {
            n_global,
            n_ranks,
            my_rank,
            kind: MapKind::Cyclic,
        }
    }

    /// Block-cyclic map with blocks of `block` indices dealt round-robin.
    pub fn block_cyclic(n_global: usize, block: usize, n_ranks: usize, my_rank: usize) -> Self {
        assert!(my_rank < n_ranks);
        assert!(block > 0, "block size must be positive");
        DistMap {
            n_global,
            n_ranks,
            my_rank,
            kind: MapKind::BlockCyclic { block },
        }
    }

    /// Build a map with one of the structured [`Distribution`] patterns.
    pub fn with_distribution(
        dist: Distribution,
        n_global: usize,
        n_ranks: usize,
        my_rank: usize,
    ) -> Self {
        match dist {
            Distribution::Block => Self::block(n_global, n_ranks, my_rank),
            Distribution::Cyclic => Self::cyclic(n_global, n_ranks, my_rank),
            Distribution::BlockCyclic(b) => Self::block_cyclic(n_global, b, n_ranks, my_rank),
        }
    }

    /// Arbitrary map from this rank's global ids. Collective: validates
    /// (via an allreduce) that the pieces tile `0..n` exactly once.
    pub fn from_my_gids(comm: &Comm, my_gids: Vec<usize>) -> Self {
        let local = my_gids.len();
        let n_global = comm.allreduce(&local, comm::ReduceOp::sum());
        // Cheap distributed sanity check: XOR of all gids must equal the
        // XOR of 0..n when the gids partition the range.
        let my_xor = my_gids.iter().fold(0usize, |a, &g| a ^ g);
        let all_xor = comm.allreduce(&my_xor, |a: &usize, b: &usize| a ^ b);
        let expect_xor = (0..n_global).fold(0usize, |a, g| a ^ g);
        assert_eq!(
            all_xor, expect_xor,
            "gids do not partition 0..{n_global} (xor check failed)"
        );
        let gid_to_lid = my_gids
            .iter()
            .enumerate()
            .map(|(l, &g)| (g, l))
            .collect::<HashMap<_, _>>();
        assert_eq!(
            gid_to_lid.len(),
            my_gids.len(),
            "duplicate global id on rank {}",
            comm.rank()
        );
        DistMap {
            n_global,
            n_ranks: comm.size(),
            my_rank: comm.rank(),
            kind: MapKind::Arbitrary {
                my_gids,
                gid_to_lid,
            },
        }
    }

    /// Total number of global indices.
    pub fn n_global(&self) -> usize {
        self.n_global
    }

    /// Number of ranks the map distributes over.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The rank this view belongs to.
    pub fn my_rank(&self) -> usize {
        self.my_rank
    }

    /// Number of indices owned by `rank`.
    pub fn count_on(&self, rank: usize) -> usize {
        match &self.kind {
            MapKind::Block { offsets } => offsets[rank + 1] - offsets[rank],
            MapKind::Cyclic => block_count_cyclic(self.n_global, self.n_ranks, rank),
            MapKind::BlockCyclic { block } => {
                block_cyclic_count(self.n_global, *block, self.n_ranks, rank)
            }
            MapKind::Arbitrary { my_gids, .. } => {
                assert_eq!(
                    rank, self.my_rank,
                    "arbitrary maps only know their own count; use a Directory"
                );
                my_gids.len()
            }
        }
    }

    /// Number of indices owned by this rank.
    pub fn my_count(&self) -> usize {
        self.count_on(self.my_rank)
    }

    /// Owning rank of global index `g`, when computable locally.
    /// `None` for arbitrary maps when `g` is not local (use a
    /// [`crate::Directory`]).
    pub fn owner_of(&self, g: usize) -> Option<usize> {
        assert!(g < self.n_global, "gid {g} out of range {}", self.n_global);
        match &self.kind {
            MapKind::Block { offsets } => {
                // binary search over offsets
                let r = match offsets.binary_search(&g) {
                    Ok(mut i) => {
                        // g equals an offset: it belongs to the first rank
                        // whose block starts there and is non-empty.
                        while i + 1 < offsets.len() && offsets[i + 1] == offsets[i] {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                Some(r.min(self.n_ranks - 1))
            }
            MapKind::Cyclic => Some(g % self.n_ranks),
            MapKind::BlockCyclic { block } => Some((g / block) % self.n_ranks),
            MapKind::Arbitrary { gid_to_lid, .. } => {
                if gid_to_lid.contains_key(&g) {
                    Some(self.my_rank)
                } else {
                    None
                }
            }
        }
    }

    /// Local index of global index `g` on this rank, if owned here.
    pub fn global_to_local(&self, g: usize) -> Option<usize> {
        if g >= self.n_global {
            return None;
        }
        match &self.kind {
            MapKind::Block { offsets } => {
                let (lo, hi) = (offsets[self.my_rank], offsets[self.my_rank + 1]);
                (g >= lo && g < hi).then(|| g - lo)
            }
            MapKind::Cyclic => (g % self.n_ranks == self.my_rank).then(|| g / self.n_ranks),
            MapKind::BlockCyclic { block } => {
                let blk = g / block;
                if blk % self.n_ranks == self.my_rank {
                    Some((blk / self.n_ranks) * block + g % block)
                } else {
                    None
                }
            }
            MapKind::Arbitrary { gid_to_lid, .. } => gid_to_lid.get(&g).copied(),
        }
    }

    /// Global index of local index `l` on this rank.
    pub fn local_to_global(&self, l: usize) -> usize {
        debug_assert!(l < self.my_count(), "lid {l} out of {}", self.my_count());
        match &self.kind {
            MapKind::Block { offsets } => offsets[self.my_rank] + l,
            MapKind::Cyclic => l * self.n_ranks + self.my_rank,
            MapKind::BlockCyclic { block } => {
                let blk = l / block;
                let within = l % block;
                (blk * self.n_ranks + self.my_rank) * block + within
            }
            MapKind::Arbitrary { my_gids, .. } => my_gids[l],
        }
    }

    /// All global ids owned by this rank, in local-index order.
    pub fn my_gids(&self) -> Vec<usize> {
        (0..self.my_count())
            .map(|l| self.local_to_global(l))
            .collect()
    }

    /// Start of this rank's block (contiguous maps only).
    pub fn my_block_start(&self) -> Option<usize> {
        match &self.kind {
            MapKind::Block { offsets } => Some(offsets[self.my_rank]),
            _ => None,
        }
    }

    /// Whether every rank's indices are contiguous and in rank order.
    pub fn is_contiguous_block(&self) -> bool {
        matches!(self.kind, MapKind::Block { .. })
    }

    /// Whether local owner lookup works for any gid (structured maps).
    pub fn has_global_view(&self) -> bool {
        !matches!(self.kind, MapKind::Arbitrary { .. })
    }

    /// Snapshot this map's full structural identity for use as a
    /// plan-cache key. Exact: two maps produce equal keys iff they are
    /// structurally identical from this rank's point of view.
    pub(crate) fn to_key(&self) -> MapKey {
        let kind = match &self.kind {
            MapKind::Block { offsets } => MapKeyKind::Block {
                offsets: offsets.clone(),
            },
            MapKind::Cyclic => MapKeyKind::Cyclic,
            MapKind::BlockCyclic { block } => MapKeyKind::BlockCyclic { block: *block },
            MapKind::Arbitrary { my_gids, .. } => MapKeyKind::Arbitrary {
                my_gids: my_gids.clone(),
            },
        };
        MapKey {
            n_global: self.n_global,
            n_ranks: self.n_ranks,
            my_rank: self.my_rank,
            kind,
        }
    }

    /// Whether a previously snapshotted [`MapKey`] describes exactly this
    /// map. Allocation-free (unlike building a fresh key to compare).
    pub(crate) fn matches_key(&self, key: &MapKey) -> bool {
        if self.n_global != key.n_global
            || self.n_ranks != key.n_ranks
            || self.my_rank != key.my_rank
        {
            return false;
        }
        match (&self.kind, &key.kind) {
            (MapKind::Block { offsets }, MapKeyKind::Block { offsets: k }) => offsets == k,
            (MapKind::Cyclic, MapKeyKind::Cyclic) => true,
            (MapKind::BlockCyclic { block }, MapKeyKind::BlockCyclic { block: k }) => block == k,
            (MapKind::Arbitrary { my_gids, .. }, MapKeyKind::Arbitrary { my_gids: k }) => {
                my_gids == k
            }
            _ => false,
        }
    }

    /// Two maps are *compatible* when every rank owns the same gids in the
    /// same local order — data can be shared with no communication. Only an
    /// approximation is possible locally for arbitrary maps (it compares
    /// the local gid lists, which is exactly the property needed).
    pub fn same_as(&self, other: &DistMap) -> bool {
        if self.n_global != other.n_global
            || self.n_ranks != other.n_ranks
            || self.my_rank != other.my_rank
        {
            return false;
        }
        match (&self.kind, &other.kind) {
            (MapKind::Block { offsets: a }, MapKind::Block { offsets: b }) => a == b,
            (MapKind::Cyclic, MapKind::Cyclic) => true,
            (MapKind::BlockCyclic { block: a }, MapKind::BlockCyclic { block: b }) => a == b,
            _ => {
                self.my_count() == other.my_count()
                    && (0..self.my_count())
                        .all(|l| self.local_to_global(l) == other.local_to_global(l))
            }
        }
    }

    /// How many gids change owner between this map and `target` — the
    /// element traffic a redistribute from `self` to `target` must move.
    /// Both maps need a global owner view (structured maps); `None`
    /// otherwise, or when the maps don't describe the same index space.
    pub fn moved_count(&self, target: &DistMap) -> Option<usize> {
        if self.n_global != target.n_global
            || self.n_ranks != target.n_ranks
            || !self.has_global_view()
            || !target.has_global_view()
        {
            return None;
        }
        Some(
            (0..self.n_global)
                .filter(|&g| self.owner_of(g) != target.owner_of(g))
                .count(),
        )
    }
}

/// Exact structural snapshot of a [`DistMap`] as seen from one rank —
/// the plan cache's key material (see [`crate::plan_cache`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MapKey {
    n_global: usize,
    n_ranks: usize,
    my_rank: usize,
    kind: MapKeyKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum MapKeyKind {
    Block { offsets: Vec<usize> },
    Cyclic,
    BlockCyclic { block: usize },
    Arbitrary { my_gids: Vec<usize> },
}

fn block_count_cyclic(n: usize, p: usize, r: usize) -> usize {
    n / p + usize::from(r < n % p)
}

fn block_cyclic_count(n: usize, block: usize, p: usize, r: usize) -> usize {
    let cycle = block * p;
    let full_cycles = n / cycle;
    let rem = n % cycle;
    let extra = rem.saturating_sub(r * block).min(block);
    full_cycles * block + extra
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(map: &DistMap) {
        for l in 0..map.my_count() {
            let g = map.local_to_global(l);
            assert_eq!(map.global_to_local(g), Some(l), "g={g} l={l}");
            assert_eq!(map.owner_of(g), Some(map.my_rank()));
        }
    }

    fn total_count(make: impl Fn(usize) -> DistMap, p: usize, n: usize) {
        let total: usize = (0..p).map(|r| make(r).my_count()).sum();
        assert_eq!(total, n);
        // and the union of gids is exactly 0..n
        let mut seen = vec![false; n];
        for r in 0..p {
            for g in make(r).my_gids() {
                assert!(!seen[g], "gid {g} owned twice");
                seen[g] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn block_partitions_exactly() {
        for (n, p) in [(10, 3), (7, 7), (3, 5), (0, 2), (100, 1), (13, 4)] {
            total_count(|r| DistMap::block(n, p, r), p, n);
            for r in 0..p {
                check_bijection(&DistMap::block(n, p, r));
            }
        }
    }

    #[test]
    fn cyclic_partitions_exactly() {
        for (n, p) in [(10, 3), (7, 7), (3, 5), (0, 2), (13, 4)] {
            total_count(|r| DistMap::cyclic(n, p, r), p, n);
            for r in 0..p {
                check_bijection(&DistMap::cyclic(n, p, r));
            }
        }
    }

    #[test]
    fn block_cyclic_partitions_exactly() {
        for (n, p, b) in [(10, 3, 2), (17, 4, 3), (8, 2, 8), (5, 3, 1), (0, 2, 4)] {
            total_count(|r| DistMap::block_cyclic(n, b, p, r), p, n);
            for r in 0..p {
                check_bijection(&DistMap::block_cyclic(n, b, p, r));
            }
        }
    }

    #[test]
    fn moved_count_measures_redistribute_traffic() {
        // Identical maps move nothing; a block→cyclic reshuffle of 12
        // elements over 3 ranks keeps exactly the gids whose block owner
        // happens to equal their cyclic owner.
        let block = DistMap::block(12, 3, 0);
        let cyclic = DistMap::cyclic(12, 3, 0);
        assert_eq!(block.moved_count(&DistMap::block(12, 3, 0)), Some(0));
        let moved = block.moved_count(&cyclic).unwrap();
        let stay = (0..12)
            .filter(|&g| block.owner_of(g) == cyclic.owner_of(g))
            .count();
        assert_eq!(moved, 12 - stay);
        assert!(moved > 0);
        // Symmetric, and off for mismatched index spaces.
        assert_eq!(cyclic.moved_count(&block), Some(moved));
        assert_eq!(block.moved_count(&DistMap::block(13, 3, 0)), None);
    }

    #[test]
    fn block_owner_lookup() {
        let map = DistMap::block(10, 3, 0);
        // counts are 4,3,3 → offsets 0,4,7,10
        assert_eq!(map.owner_of(0), Some(0));
        assert_eq!(map.owner_of(3), Some(0));
        assert_eq!(map.owner_of(4), Some(1));
        assert_eq!(map.owner_of(6), Some(1));
        assert_eq!(map.owner_of(7), Some(2));
        assert_eq!(map.owner_of(9), Some(2));
    }

    #[test]
    fn block_with_empty_ranks() {
        // n < p: some ranks own nothing.
        let p = 5;
        let n = 3;
        for r in 0..p {
            let map = DistMap::block(n, p, r);
            assert_eq!(map.my_count(), usize::from(r < 3));
        }
        let map = DistMap::block(n, p, 0);
        assert_eq!(map.owner_of(2), Some(2));
    }

    #[test]
    fn cyclic_layout_is_round_robin() {
        let map = DistMap::cyclic(10, 3, 1);
        assert_eq!(map.my_gids(), vec![1, 4, 7]);
    }

    #[test]
    fn block_cyclic_layout() {
        // n=10, b=2, p=2: blocks [0,1][2,3][4,5][6,7][8,9] dealt 0,1,0,1,0
        let map0 = DistMap::block_cyclic(10, 2, 2, 0);
        assert_eq!(map0.my_gids(), vec![0, 1, 4, 5, 8, 9]);
        let map1 = DistMap::block_cyclic(10, 2, 2, 1);
        assert_eq!(map1.my_gids(), vec![2, 3, 6, 7]);
    }

    #[test]
    fn block_from_counts_nonuniform() {
        let map = DistMap::block_from_counts(&[5, 0, 2], 2);
        assert_eq!(map.n_global(), 7);
        assert_eq!(map.my_gids(), vec![5, 6]);
        assert_eq!(map.owner_of(4), Some(0));
        assert_eq!(map.owner_of(5), Some(2));
        // the empty rank owns nothing
        let m1 = DistMap::block_from_counts(&[5, 0, 2], 1);
        assert_eq!(m1.my_count(), 0);
    }

    #[test]
    fn same_as_distinguishes_kinds() {
        let a = DistMap::block(12, 3, 1);
        let b = DistMap::block(12, 3, 1);
        let c = DistMap::cyclic(12, 3, 1);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&c));
        assert!(!a.same_as(&DistMap::block(12, 4, 1)));
    }

    #[test]
    fn with_distribution_dispatches() {
        assert!(DistMap::with_distribution(Distribution::Block, 9, 3, 0).is_contiguous_block());
        assert_eq!(
            DistMap::with_distribution(Distribution::Cyclic, 9, 3, 1).my_gids(),
            vec![1, 4, 7]
        );
        assert_eq!(
            DistMap::with_distribution(Distribution::BlockCyclic(3), 9, 3, 2).my_gids(),
            vec![6, 7, 8]
        );
    }

    #[test]
    fn arbitrary_map_via_universe() {
        let out = comm::Universe::run(3, |comm| {
            // interleave oddly: rank r owns gids where g/2 % 3 == r
            let gids: Vec<usize> = (0..12).filter(|g| (g / 2) % 3 == comm.rank()).collect();
            let map = DistMap::from_my_gids(comm, gids.clone());
            assert_eq!(map.n_global(), 12);
            assert_eq!(map.my_gids(), gids);
            assert!(!map.has_global_view());
            check_bijection(&map);
            map.my_count()
        });
        assert_eq!(out, vec![4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "xor check failed")]
    fn arbitrary_map_rejects_bad_partition() {
        comm::Universe::run(2, |comm| {
            // both ranks claim gid 0
            let gids = vec![0];
            let _ = DistMap::from_my_gids(comm, gids);
        });
    }
}
