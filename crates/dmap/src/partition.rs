//! Weighted 1-D repartitioning (Isorropia analog).
//!
//! Given per-element weights on a block-distributed index space, compute a
//! new block map whose per-rank weight totals are balanced. This is the
//! one-dimensional load-balancing role PyTrilinos exposes through the
//! Isorropia package (paper Table I).

use comm::{Comm, ReduceOp};

use crate::map::DistMap;

/// Compute a balanced block map for elements currently distributed by
/// `old_map` (any map kind) with local weights `weights` (one per local
/// element, in local order). Collective. Returns the new block map; use
/// [`crate::CommPlan::import`] to move the data.
///
/// Elements are assigned by the position of their cumulative-weight
/// midpoint among `P` equal weight buckets, which keeps elements in global
/// order (a requirement for a block map) and balances totals to within one
/// element's weight.
pub fn rebalance_block_map(comm: &Comm, old_map: &DistMap, weights: &[f64]) -> DistMap {
    assert_eq!(
        weights.len(),
        old_map.my_count(),
        "one weight per local element"
    );
    assert!(
        weights.iter().all(|w| *w >= 0.0 && w.is_finite()),
        "weights must be finite and non-negative"
    );
    let p = comm.size();
    // The rebalance keeps global order, so weights must be keyed by gid.
    // For non-block old maps, fetch weights into block order first via the
    // prefix trick: we only need *sums in gid order*, so gather each
    // element's (gid, weight) contribution to the rank-order cumulative.
    // Simplest correct approach: compute per-element destination from the
    // global cumulative weight at the element's gid, which requires the
    // weights in gid order. We get there with an alltoallv keyed by the
    // block map over the same global range.
    let n = old_map.n_global();
    let block = DistMap::block(n, p, comm.rank());
    // Route (gid, w) pairs to the block owner of gid.
    let mut outgoing: Vec<Vec<(usize, f64)>> = (0..p).map(|_| Vec::new()).collect();
    for (l, &w) in weights.iter().enumerate() {
        let g = old_map.local_to_global(l);
        let owner = block.owner_of(g).unwrap();
        outgoing[owner].push((g, w));
    }
    let incoming = comm.alltoallv(outgoing);
    let start = block.my_block_start().unwrap();
    let mut w_block = vec![0.0f64; block.my_count()];
    for pairs in incoming {
        for (g, w) in pairs {
            w_block[g - start] = w;
        }
    }
    // Global prefix sums over gid order.
    let local_sum: f64 = w_block.iter().sum();
    let total = comm.allreduce(&local_sum, ReduceOp::sum());
    let base = comm.exscan(&local_sum, 0.0, ReduceOp::sum());
    if total <= 0.0 {
        // Degenerate: all weights zero — fall back to uniform block.
        return DistMap::block(n, p, comm.rank());
    }
    // Destination rank of each element by cumulative midpoint.
    let mut counts = vec![0usize; p];
    let mut cum = base;
    for &w in &w_block {
        let mid = cum + 0.5 * w;
        let dest = ((mid / total) * p as f64) as usize;
        counts[dest.min(p - 1)] += 1;
        cum += w;
    }
    let counts = comm.allreduce(&counts, ReduceOp::vec_sum());
    DistMap::block_from_counts(&counts, comm.rank())
}

/// Weight imbalance of a map under `local_weight`: `max_rank / mean_rank`.
/// Collective; every rank gets the same answer.
pub fn imbalance(comm: &Comm, local_weight: f64) -> f64 {
    let max = comm.allreduce(&local_weight, ReduceOp::max());
    let sum = comm.allreduce(&local_weight, ReduceOp::sum());
    let mean = sum / comm.size() as f64;
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn uniform_weights_stay_uniform() {
        Universe::run(4, |comm| {
            let old = DistMap::block(16, comm.size(), comm.rank());
            let w = vec![1.0; old.my_count()];
            let new = rebalance_block_map(comm, &old, &w);
            assert_eq!(new.my_count(), 4);
            assert!(new.same_as(&old));
        });
    }

    #[test]
    fn skewed_weights_rebalance() {
        Universe::run(4, |comm| {
            let n = 40;
            let old = DistMap::block(n, comm.size(), comm.rank());
            // rank 0's elements are 9x heavier
            let w: Vec<f64> = old
                .my_gids()
                .iter()
                .map(|&g| if g < 10 { 9.0 } else { 1.0 })
                .collect();
            let new = rebalance_block_map(comm, &old, &w);
            // total weight = 10*9 + 30*1 = 120, ideal 30 per rank.
            let new_local_weight: f64 = new
                .my_gids()
                .iter()
                .map(|&g| if g < 10 { 9.0 } else { 1.0 })
                .sum();
            let imb = imbalance(comm, new_local_weight);
            assert!(imb < 1.35, "imbalance {imb} too high");
            // old imbalance for reference: rank0 had 90 of 120 → 3.0
            new.n_global()
        });
    }

    #[test]
    fn rebalance_from_cyclic_map() {
        Universe::run(3, |comm| {
            let n = 12;
            let old = DistMap::cyclic(n, comm.size(), comm.rank());
            let w: Vec<f64> = old.my_gids().iter().map(|&g| (g + 1) as f64).collect();
            let new = rebalance_block_map(comm, &old, &w);
            assert_eq!(new.n_global(), n);
            assert!(new.is_contiguous_block());
            // weights 1..12 sum to 78; no rank should hold more than ~60%
            let lw: f64 = new.my_gids().iter().map(|&g| (g + 1) as f64).sum();
            assert!(lw <= 0.6 * 78.0, "rank weight {lw}");
        });
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        Universe::run(2, |comm| {
            let old = DistMap::block(6, comm.size(), comm.rank());
            let w = vec![0.0; old.my_count()];
            let new = rebalance_block_map(comm, &old, &w);
            assert_eq!(new.my_count(), 3);
        });
    }
}
