//! # dmap — distribution maps, directory lookup, and data-movement plans
//!
//! This crate is the analog of Tpetra's `Map`/`Directory`/`Import`/`Export`
//! (and Epetra's `BlockMap`), plus the 1-D repartitioning role of
//! Isorropia. A [`DistMap`] describes how `n` global indices are divided
//! among `P` ranks — block, cyclic, block-cyclic, or arbitrary, the same
//! distribution vocabulary ODIN exposes for its arrays (paper §III-A).
//!
//! [`CommPlan`] precomputes the communication needed to move data between
//! two maps (the Import/Export pattern), and [`partition`] rebalances a
//! block map under per-element weights.

pub mod directory;
pub mod import_export;
pub mod map;
pub mod partition;
pub mod plan_cache;

pub use directory::Directory;
pub use import_export::{CombineMode, CommPlan, PlanInFlight};
pub use map::{DistMap, Distribution};
pub use partition::rebalance_block_map;
pub use plan_cache::{cached_gather, cached_import, clear_plan_cache, plan_cache_len};
