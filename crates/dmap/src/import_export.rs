//! Precomputed communication plans (Tpetra `Import`/`Export` analog).
//!
//! A [`CommPlan`] records, once, which local entries must be sent to which
//! peers and where received entries land; executing the plan then moves any
//! `Wire`-encodable element type with no further index arithmetic. The same
//! mechanism serves three paper use-cases:
//!
//! * redistribution between two maps (non-conformable binary ufuncs, E4),
//! * halo/ghost gathers for SpMV and shifted-slice arithmetic (E5),
//! * reverse "export" with combine modes for accumulating contributions.

use comm::{Comm, Cursor, Payload, Request, Src, Tag, Wire};

use crate::directory::Directory;
use crate::map::DistMap;

// Plan traffic is tagged per execution from the comm's SPMD-ordered tag
// sequence ([`Comm::next_spmd_tag`]): executions are collectively ordered,
// so sender and receiver always derive the same tag, and back-to-back
// executions of identically-shaped plans can never cross-match even when
// reliable delivery reorders a delayed message.

/// How received values combine with existing target entries in
/// [`CommPlan::execute_combine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineMode {
    /// Overwrite the target entry.
    Insert,
    /// Add into the target entry.
    Add,
}

/// Requests posted by [`CommPlan::execute_start`], completed by
/// [`CommPlan::execute_finish`]. Holding one keeps the exchange in flight
/// while the owner computes.
pub struct PlanInFlight {
    sends: Vec<Request>,
    recvs: Vec<Request>,
}

/// A reusable data-movement plan from a source map to a list of requested
/// global ids (which may overlap across ranks — that is what makes halo
/// exchange expressible).
#[derive(Debug, Clone)]
pub struct CommPlan {
    /// `(peer, source-local ids to send, in peer's request order)`
    sends: Vec<(usize, Vec<usize>)>,
    /// `(peer, target positions to fill, in my request order)`
    recvs: Vec<(usize, Vec<usize>)>,
    /// `(source lid, target position)` for locally-owned requests
    local: Vec<(usize, usize)>,
    /// Number of target positions (= length of the request list).
    n_target: usize,
    /// Per target position, where its value comes from:
    /// `(u32::MAX, source lid)` for locally-owned entries, or
    /// `(index into recvs, offset within that payload)`. Lets
    /// [`Self::execute_to_vec`] construct the output in order without
    /// a `Default` pre-fill.
    fill_src: Vec<(u32, u32)>,
}

impl CommPlan {
    /// Build a gather plan: after execution, `target[i]` holds the value of
    /// global id `needed_gids[i]` taken from `src`-distributed data.
    /// Collective over `comm`.
    pub fn gather(comm: &Comm, src: &DistMap, dir: &Directory, needed_gids: &[usize]) -> CommPlan {
        let p = comm.size();
        let me = comm.rank();
        let owners = dir.owners_of(comm, needed_gids);
        // Group requests by owner.
        let mut req_gids: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        let mut req_pos: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
        let mut local = Vec::new();
        for (pos, (&g, &owner)) in needed_gids.iter().zip(owners.iter()).enumerate() {
            if owner == me {
                let lid = src.global_to_local(g).unwrap_or_else(|| {
                    panic!("directory says rank {me} owns gid {g}, map disagrees")
                });
                local.push((lid, pos));
            } else {
                req_gids[owner].push(g);
                req_pos[owner].push(pos);
            }
        }
        // Tell owners what we need; learn what peers need from us.
        let incoming = comm.alltoallv(req_gids);
        let mut sends = Vec::new();
        for (peer, gids) in incoming.into_iter().enumerate() {
            if gids.is_empty() {
                continue;
            }
            let lids = gids
                .into_iter()
                .map(|g| {
                    src.global_to_local(g)
                        .unwrap_or_else(|| panic!("rank {me} asked for gid {g} it does not own"))
                })
                .collect();
            sends.push((peer, lids));
        }
        let recvs: Vec<(usize, Vec<usize>)> = req_pos
            .into_iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .collect();
        // Invert the position lists: every target position is covered by
        // exactly one local copy or one received payload slot.
        let mut fill_src = vec![(0u32, 0u32); needed_gids.len()];
        for &(lid, pos) in &local {
            fill_src[pos] = (u32::MAX, lid as u32);
        }
        for (pi, (_, positions)) in recvs.iter().enumerate() {
            for (off, &pos) in positions.iter().enumerate() {
                fill_src[pos] = (pi as u32, off as u32);
            }
        }
        CommPlan {
            sends,
            recvs,
            local,
            n_target: needed_gids.len(),
            fill_src,
        }
    }

    /// Build a redistribution plan from `src` to `dst` (an *import*): after
    /// execution, data laid out by `src` is laid out by `dst`.
    pub fn import(comm: &Comm, src: &DistMap, dst: &DistMap, dir: &Directory) -> CommPlan {
        assert_eq!(
            src.n_global(),
            dst.n_global(),
            "import requires equal global sizes"
        );
        Self::gather(comm, src, dir, &dst.my_gids())
    }

    /// Number of entries the target buffer must hold.
    pub fn n_target(&self) -> usize {
        self.n_target
    }

    /// Total values this rank sends when the plan executes.
    pub fn n_sent(&self) -> usize {
        self.sends.iter().map(|(_, l)| l.len()).sum()
    }

    /// Number of peer ranks this rank exchanges data with.
    pub fn n_peers(&self) -> usize {
        self.sends.len() + self.recvs.len()
    }

    /// Execute the plan: fill `target` (length [`Self::n_target`]) from
    /// `src_data` (laid out by the source map). Collective. Implemented as
    /// [`Self::execute_start`] + [`Self::execute_finish`] back-to-back; use
    /// the split pair directly to overlap compute with the exchange.
    pub fn execute<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        src_data: &[T],
        target: &mut [T],
    ) {
        let inflight = self.execute_start(comm, src_data, target);
        self.execute_finish(comm, inflight, target);
    }

    /// Blocking reference execution: every send settles on the wire before
    /// the local copies, and receives drain in plan order. Semantically
    /// identical to [`Self::execute`]; kept as the baseline the overlap
    /// property tests and experiment E17 compare against.
    pub fn execute_blocking<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        src_data: &[T],
        target: &mut [T],
    ) {
        self.execute_combine(comm, src_data, target, CombineMode::Insert, |_, v| v)
    }

    /// First half of a split-phase execution: post every outgoing payload
    /// (nonblocking), copy locally-owned entries into `target`, and post
    /// the receives. The caller may then compute on any target position for
    /// which [`Self::locally_satisfied`] is true before calling
    /// [`Self::execute_finish`].
    pub fn execute_start<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        src_data: &[T],
        target: &mut [T],
    ) -> PlanInFlight {
        assert!(
            target.len() >= self.n_target,
            "target buffer too small: {} < {}",
            target.len(),
            self.n_target
        );
        let tag = comm.next_spmd_tag();
        let sends = self.post_sends(comm, src_data, tag);
        for &(slid, tpos) in &self.local {
            target[tpos] = src_data[slid];
        }
        let recvs = self
            .recvs
            .iter()
            .map(|&(peer, _)| comm.irecv(Src::Rank(peer), tag).expect("plan irecv"))
            .collect();
        PlanInFlight { sends, recvs }
    }

    /// Post one outgoing payload nonblocking. Small payloads are encoded
    /// straight into a pooled wire buffer in `Vec<T>` wire format (length
    /// prefix + elements), so steady-state executions allocate nothing on
    /// the send side; payloads at or above the comm's zero-copy threshold
    /// are gathered once into a `Vec<T>` and handed over as a region —
    /// no wire encode, no receive-side decode.
    fn post_one<T: Wire + Copy + Send + Sync + 'static>(
        comm: &Comm,
        src_data: &[T],
        peer: usize,
        lids: &[usize],
        tag: Tag,
    ) -> Request {
        let n = 8 + lids.iter().map(|&l| src_data[l].wire_size()).sum::<usize>();
        if n >= comm.zerocopy_threshold() {
            let gathered: Vec<T> = lids.iter().map(|&l| src_data[l]).collect();
            comm.isend_zc(peer, tag, gathered).expect("plan isend")
        } else {
            let mut buf = comm.take_buf();
            (lids.len() as u64).encode(&mut buf);
            for &l in lids {
                src_data[l].encode(&mut buf);
            }
            comm.isend_bytes(peer, tag, buf).expect("plan isend")
        }
    }

    /// Post every outgoing payload nonblocking via [`Self::post_one`].
    fn post_sends<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        src_data: &[T],
        tag: Tag,
    ) -> Vec<Request> {
        self.sends
            .iter()
            .map(|&(peer, ref lids)| Self::post_one(comm, src_data, peer, lids, tag))
            .collect()
    }

    /// Scatter one received payload directly into `target` at `positions`.
    /// Wire-path payloads decode straight from the pooled buffer (then
    /// recycle it); region payloads are read in place through the handle.
    /// Neither arm stages an intermediate copy.
    fn scatter_payload<T, F>(
        comm: &Comm,
        payload: Payload,
        positions: &[usize],
        target: &mut [T],
        combine: F,
    ) where
        T: Wire + Copy + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        match payload {
            Payload::Bytes(bytes) => {
                let mut cur = Cursor::new(&bytes);
                let n = u64::decode(&mut cur).expect("plan payload header") as usize;
                assert_eq!(n, positions.len(), "plan payload mismatch");
                for &pos in positions {
                    let v = T::decode(&mut cur).expect("plan payload element");
                    target[pos] = combine(target[pos], v);
                }
                assert_eq!(cur.remaining(), 0, "trailing bytes in plan payload");
                comm.put_buf(bytes);
            }
            Payload::Region(region) => {
                let vals: &Vec<T> = region
                    .downcast_ref()
                    .expect("plan region payload is not Vec<T>");
                assert_eq!(vals.len(), positions.len(), "plan payload mismatch");
                for (&pos, &v) in positions.iter().zip(vals.iter()) {
                    target[pos] = combine(target[pos], v);
                }
            }
        }
    }

    /// Second half of a split-phase execution: wait for every posted
    /// receive, scatter the payloads into `target`, and settle the sends.
    pub fn execute_finish<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        inflight: PlanInFlight,
        target: &mut [T],
    ) {
        for ((_, positions), req) in self.recvs.iter().zip(inflight.recvs) {
            let (payload, _) = comm
                .wait(req)
                .expect("plan recv")
                .expect("receive completion carries a payload");
            Self::scatter_payload(comm, payload, positions, target, |_, v| v);
        }
        for req in inflight.sends {
            comm.wait(req).expect("plan send wait");
        }
    }

    /// Which target positions are filled with no communication (by the
    /// local-copy phase of [`Self::execute_start`]). This is the
    /// interior/boundary partition overlapped SpMV builds on: rows whose
    /// every input position is locally satisfied can be computed while the
    /// exchange is in flight.
    pub fn locally_satisfied(&self) -> Vec<bool> {
        let mut out = vec![false; self.n_target];
        for &(_, tpos) in &self.local {
            out[tpos] = true;
        }
        out
    }

    /// Execute with an explicit combine: `combine(old_target_value, incoming)`
    /// decides what lands in the target. `CombineMode::Add` callers can pass
    /// `|a, b| a + b`; the mode argument is advisory metadata for readers.
    pub fn execute_combine<T, F>(
        &self,
        comm: &Comm,
        src_data: &[T],
        target: &mut [T],
        _mode: CombineMode,
        combine: F,
    ) where
        T: Wire + Copy + Send + Sync + 'static,
        F: Fn(T, T) -> T,
    {
        assert!(
            target.len() >= self.n_target,
            "target buffer too small: {} < {}",
            target.len(),
            self.n_target
        );
        let tag = comm.next_spmd_tag();
        for &(peer, ref lids) in &self.sends {
            let req = Self::post_one(comm, src_data, peer, lids, tag);
            comm.wait(req).expect("plan send");
        }
        for &(slid, tpos) in &self.local {
            target[tpos] = combine(target[tpos], src_data[slid]);
        }
        for &(peer, ref positions) in &self.recvs {
            let req = comm.irecv(Src::Rank(peer), tag).expect("plan irecv");
            let (payload, _) = comm
                .wait(req)
                .expect("plan recv")
                .expect("receive completion carries a payload");
            Self::scatter_payload(comm, payload, positions, target, &combine);
        }
    }

    /// Convenience: allocate and fill a fresh target buffer. The output
    /// is constructed in order from the plan's per-position source table,
    /// so no `Default` pre-fill (and no `Default` bound) is needed.
    pub fn execute_to_vec<T: Wire + Copy + Send + Sync + 'static>(
        &self,
        comm: &Comm,
        src_data: &[T],
    ) -> Vec<T> {
        let tag = comm.next_spmd_tag();
        let sends = self.post_sends(comm, src_data, tag);
        let payloads: Vec<Vec<T>> = self
            .recvs
            .iter()
            .map(|&(peer, ref positions)| {
                let req = comm.irecv(Src::Rank(peer), tag).expect("plan irecv");
                let (payload, _) = comm.wait_recv_zc::<Vec<T>>(req).expect("plan recv");
                assert_eq!(payload.len(), positions.len(), "plan payload mismatch");
                payload
            })
            .collect();
        let mut out = Vec::with_capacity(self.n_target);
        for &(peer, idx) in &self.fill_src {
            out.push(if peer == u32::MAX {
                src_data[idx as usize]
            } else {
                payloads[peer as usize][idx as usize]
            });
        }
        for req in sends {
            comm.wait(req).expect("plan send wait");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comm::Universe;

    #[test]
    fn import_block_to_cyclic_roundtrip() {
        Universe::run(3, |comm| {
            let n = 11;
            let src = DistMap::block(n, comm.size(), comm.rank());
            let dst = DistMap::cyclic(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &src);
            let plan = CommPlan::import(comm, &src, &dst, &dir);
            // data[g] = 100 + g, laid out by the block map
            let src_data: Vec<i64> = src.my_gids().iter().map(|&g| 100 + g as i64).collect();
            let out = plan.execute_to_vec(comm, &src_data);
            let expect: Vec<i64> = dst.my_gids().iter().map(|&g| 100 + g as i64).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn gather_with_overlap_is_halo_exchange() {
        Universe::run(4, |comm| {
            let n = 16;
            let map = DistMap::block(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &map);
            // Each rank wants its own gids plus one ghost on each side.
            let mut needed = map.my_gids();
            let first = needed.first().copied();
            let last = needed.last().copied();
            if let Some(f) = first {
                if f > 0 {
                    needed.insert(0, f - 1);
                }
            }
            if let Some(l) = last {
                if l + 1 < n {
                    needed.push(l + 1);
                }
            }
            let plan = CommPlan::gather(comm, &map, &dir, &needed);
            let src_data: Vec<f64> = map.my_gids().iter().map(|&g| g as f64 * 0.5).collect();
            let out = plan.execute_to_vec(comm, &src_data);
            let expect: Vec<f64> = needed.iter().map(|&g| g as f64 * 0.5).collect();
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn combine_add_accumulates() {
        Universe::run(2, |comm| {
            let n = 4;
            let map = DistMap::block(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &map);
            // Both ranks request gid 0 and gid 3.
            let needed = vec![0usize, 3];
            let plan = CommPlan::gather(comm, &map, &dir, &needed);
            let src_data: Vec<i64> = map.my_gids().iter().map(|&g| g as i64).collect();
            let mut target = vec![10i64; 2];
            plan.execute_combine(comm, &src_data, &mut target, CombineMode::Add, |a, b| a + b);
            assert_eq!(target, vec![10, 13]);
        });
    }

    #[test]
    fn plan_is_reusable() {
        Universe::run(2, |comm| {
            let n = 8;
            let src = DistMap::block(n, comm.size(), comm.rank());
            let dst = DistMap::cyclic(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &src);
            let plan = CommPlan::import(comm, &src, &dst, &dir);
            for round in 0..3i64 {
                let src_data: Vec<i64> = src.my_gids().iter().map(|&g| g as i64 * round).collect();
                let out = plan.execute_to_vec(comm, &src_data);
                let expect: Vec<i64> = dst.my_gids().iter().map(|&g| g as i64 * round).collect();
                assert_eq!(out, expect);
            }
        });
    }

    #[test]
    fn split_phase_matches_blocking_and_reports_local_positions() {
        Universe::run(4, |comm| {
            let n = 16;
            let map = DistMap::block(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &map);
            let mut needed = map.my_gids();
            if let Some(&f) = needed.first() {
                if f > 0 {
                    needed.insert(0, f - 1);
                }
            }
            if let Some(&l) = needed.last() {
                if l + 1 < n {
                    needed.push(l + 1);
                }
            }
            let plan = CommPlan::gather(comm, &map, &dir, &needed);
            let src_data: Vec<f64> = map.my_gids().iter().map(|&g| g as f64 * 0.5).collect();

            let mut blocking = vec![0.0f64; plan.n_target()];
            plan.execute_blocking(comm, &src_data, &mut blocking);

            let mut overlapped = vec![0.0f64; plan.n_target()];
            let inflight = plan.execute_start(comm, &src_data, &mut overlapped);
            // Local positions are already valid mid-flight.
            let local = plan.locally_satisfied();
            for (pos, &is_local) in local.iter().enumerate() {
                if is_local {
                    assert_eq!(overlapped[pos].to_bits(), blocking[pos].to_bits());
                }
            }
            comm.advance_compute(1.0e4);
            plan.execute_finish(comm, inflight, &mut overlapped);
            for (a, b) in overlapped.iter().zip(&blocking) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Ghost positions (one per side except at the ends) are not local.
            let ghosts = local.iter().filter(|&&x| !x).count();
            assert_eq!(ghosts, plan.n_target() - map.my_gids().len());
        });
    }

    #[test]
    fn conformable_import_moves_nothing() {
        Universe::run(3, |comm| {
            let n = 10;
            let map = DistMap::block(n, comm.size(), comm.rank());
            let dir = Directory::build(comm, &map);
            let plan = CommPlan::import(comm, &map, &map, &dir);
            assert_eq!(plan.n_sent(), 0);
            assert_eq!(plan.n_peers(), 0);
        });
    }

    #[test]
    fn arbitrary_source_map_works() {
        Universe::run(3, |comm| {
            let n = 12;
            let p = comm.size();
            // scrambled ownership
            let gids: Vec<usize> = (0..n).filter(|g| (g * 5 + 1) % p == comm.rank()).collect();
            let src = DistMap::from_my_gids(comm, gids);
            let dst = DistMap::block(n, p, comm.rank());
            let dir = Directory::build(comm, &src);
            let plan = CommPlan::import(comm, &src, &dst, &dir);
            let src_data: Vec<u64> = src.my_gids().iter().map(|&g| g as u64 * 3).collect();
            let out = plan.execute_to_vec(comm, &src_data);
            let expect: Vec<u64> = dst.my_gids().iter().map(|&g| g as u64 * 3).collect();
            assert_eq!(out, expect);
        });
    }
}
