//! Static compilation and host embedding (§IV-B and §IV-D).
//!
//! [`compile`] turns pyish source into a self-contained, `Send + Sync`
//! [`CompiledKernel`] — the "statically compiled library" a host program
//! links against. Because the kernel is an ordinary Rust value, statically
//! typed host code (C++ in the paper's example) calls algorithms that were
//! *specified in Python*: the inverse embedding of §IV-D. The solver
//! callback in `hpc-core` and the ODIN local-function bridge both consume
//! these kernels.

use crate::bytecode::Program;
use crate::compile::compile_program;
use crate::parser::parse_module;
use crate::types::Type;
use crate::value::Value;
use crate::vm::Vm;
use crate::SeamlessError;

/// Result of invoking a kernel or interpreted function: the return value
/// plus the (possibly mutated) arguments, in order.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutput {
    /// The function's return value.
    pub ret: Value,
    /// The arguments after the call (array mutations visible here).
    pub args: Vec<Value>,
}

/// A compiled, reusable function instance (entry + everything it calls,
/// monomorphized for one argument signature).
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    program: Program,
    name: String,
    arg_types: Vec<Type>,
}

impl CompiledKernel {
    /// The entry function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signature this kernel was compiled for.
    pub fn arg_types(&self) -> &[Type] {
        &self.arg_types
    }

    /// The return type.
    pub fn ret_type(&self) -> Type {
        self.program.funcs[0].ret
    }

    /// Bytecode listing (debugging / documentation).
    pub fn disassemble(&self) -> String {
        self.program.disassemble()
    }

    /// Invoke the kernel.
    pub fn call(&self, args: Vec<Value>) -> Result<CallOutput, SeamlessError> {
        Vm::new(&self.program).call(args)
    }

    /// Convenience: a `f64 → f64` view of the kernel (for solver
    /// callbacks). Errors at call time if the kernel disagrees.
    pub fn as_f64_fn(&self) -> impl Fn(f64) -> Result<f64, SeamlessError> + '_ {
        move |x| {
            let out = self.call(vec![Value::Float(x)])?;
            out.ret
                .as_f64()
                .ok_or_else(|| SeamlessError::Runtime("kernel did not return a number".into()))
        }
    }

    /// Convenience: apply the kernel in place to a float slice
    /// (`kernel(arr)` mutating semantics) — the node-level array kernel
    /// shape ODIN local functions use.
    pub fn apply_in_place(&self, data: &mut Vec<f64>) -> Result<Value, SeamlessError> {
        let buf = std::mem::take(data);
        let out = self.call(vec![Value::ArrF(buf)])?;
        match out.args.into_iter().next() {
            Some(Value::ArrF(v)) => {
                *data = v;
                Ok(out.ret)
            }
            _ => Err(SeamlessError::Runtime(
                "kernel lost its array argument".into(),
            )),
        }
    }

    /// Integer twin of [`CompiledKernel::apply_in_place`]: apply the
    /// kernel in place to an i64 slice (`kernel(arr)` mutating
    /// semantics) — the node-level shape for I64 distributed arrays.
    pub fn apply_in_place_i64(&self, data: &mut Vec<i64>) -> Result<Value, SeamlessError> {
        let buf = std::mem::take(data);
        let out = self.call(vec![Value::ArrI(buf)])?;
        match out.args.into_iter().next() {
            Some(Value::ArrI(v)) => {
                *data = v;
                Ok(out.ret)
            }
            _ => Err(SeamlessError::Runtime(
                "kernel lost its array argument".into(),
            )),
        }
    }
}

/// Statically compile `fname` from `src` for the given argument types
/// (§IV-B: same source as the JIT path, no language changes).
pub fn compile(
    src: &str,
    fname: &str,
    arg_types: &[Type],
) -> Result<CompiledKernel, SeamlessError> {
    let module = parse_module(src)?;
    let program = compile_program(&module, fname, arg_types)?;
    Ok(CompiledKernel {
        program,
        name: fname.to_string(),
        arg_types: arg_types.to_vec(),
    })
}

/// Compile with a loaded foreign library in scope: unknown calls resolve
/// through the library's discovered signatures, so pyish source can call
/// `atan2`, `pow`, … directly (§IV-A composed with §IV-C).
pub fn compile_with_externs(
    src: &str,
    fname: &str,
    arg_types: &[Type],
    lib: &crate::cmodule::CModule,
) -> Result<CompiledKernel, SeamlessError> {
    let module = parse_module(src)?;
    let program =
        crate::compile::compile_program_with_externs(&module, fname, arg_types, Some(lib))?;
    Ok(CompiledKernel {
        program,
        name: fname.to_string(),
        arg_types: arg_types.to_vec(),
    })
}

/// JIT entry point (§IV-A): in this reproduction "just-in-time" and
/// "static" compilation share the pipeline; the JIT spelling exists
/// because call sites discover types at run time and pass them here.
pub fn jit(src: &str, fname: &str, arg_types: &[Type]) -> Result<CompiledKernel, SeamlessError> {
    compile(src, fname, arg_types)
}

/// Compile with types discovered from example argument values — the
/// decorator-without-annotations flow (`@jit` with no hints).
pub fn jit_from_values(
    src: &str,
    fname: &str,
    example_args: &[Value],
) -> Result<CompiledKernel, SeamlessError> {
    let types: Vec<Type> = example_args.iter().map(|v| v.type_of()).collect();
    compile(src, fname, &types)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_SRC: &str = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";

    #[test]
    fn kernel_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledKernel>();
    }

    #[test]
    fn jit_and_static_agree() {
        let k1 = jit(SUM_SRC, "sum", &[Type::ArrF]).unwrap();
        let k2 = compile(SUM_SRC, "sum", &[Type::ArrF]).unwrap();
        let args = vec![Value::ArrF(vec![0.5; 10])];
        assert_eq!(
            k1.call(args.clone()).unwrap().ret,
            k2.call(args).unwrap().ret
        );
        assert_eq!(k1.ret_type(), Type::Float);
        assert_eq!(k1.name(), "sum");
        assert_eq!(k1.arg_types(), &[Type::ArrF]);
    }

    #[test]
    fn jit_from_values_discovers_types() {
        let k = jit_from_values(SUM_SRC, "sum", &[Value::ArrF(vec![1.0, 2.0])]).unwrap();
        let out = k.call(vec![Value::ArrF(vec![1.0, 2.0])]).unwrap();
        assert_eq!(out.ret, Value::Float(3.0));
    }

    #[test]
    fn kernel_shared_across_threads() {
        let k = std::sync::Arc::new(jit(SUM_SRC, "sum", &[Type::ArrF]).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let k = std::sync::Arc::clone(&k);
            handles.push(std::thread::spawn(move || {
                let arr: Vec<f64> = (0..100).map(|i| (i * t) as f64).collect();
                let expect: f64 = arr.iter().sum();
                let out = k.call(vec![Value::ArrF(arr)]).unwrap();
                assert_eq!(out.ret, Value::Float(expect));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn f64_fn_view() {
        let src = "def poly(x: float):\n    return 3.0 * x ** 2 + 2.0 * x + 1.0\n";
        let k = compile(src, "poly", &[Type::Float]).unwrap();
        let f = k.as_f64_fn();
        assert_eq!(f(2.0).unwrap(), 17.0);
        assert_eq!(f(0.0).unwrap(), 1.0);
    }

    #[test]
    fn apply_in_place_mutates() {
        let src = "
def relu(a):
    for i in range(len(a)):
        a[i] = max(a[i], 0.0)
";
        let k = compile(src, "relu", &[Type::ArrF]).unwrap();
        let mut data = vec![-1.0, 2.0, -0.5, 3.0];
        k.apply_in_place(&mut data).unwrap();
        assert_eq!(data, vec![0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn pyish_source_calls_foreign_functions() {
        // §IV-A meets §IV-C: the kernel body calls straight into "libm"
        // through signatures discovered from the header text.
        let libm = crate::cmodule::CModule::load_system("m").unwrap();
        let src = "
def polar(y: float, x: float):
    r = hypot(x, y)
    t = atan2(y, x)
    return r * 1000.0 + t
";
        let k = compile_with_externs(src, "polar", &[Type::Float, Type::Float], &libm).unwrap();
        let out = k.call(vec![Value::Float(3.0), Value::Float(4.0)]).unwrap();
        let expect = 5.0 * 1000.0 + 3.0f64.atan2(4.0);
        assert_eq!(out.ret, Value::Float(expect));
        // the interpreter resolves the same calls through the library
        let interp = crate::interp::Interpreter::new(src)
            .unwrap()
            .with_externs(libm);
        let iv = interp
            .call("polar", vec![Value::Float(3.0), Value::Float(4.0)])
            .unwrap();
        assert_eq!(iv.ret, out.ret);
    }

    #[test]
    fn local_functions_shadow_the_library() {
        let libm = crate::cmodule::CModule::load_system("m").unwrap();
        let src = "
def pow(a: float, b: float):
    return a + b

def f(x: float):
    return pow(x, 1.0)
";
        let k = compile_with_externs(src, "f", &[Type::Float], &libm).unwrap();
        let out = k.call(vec![Value::Float(2.0)]).unwrap();
        assert_eq!(out.ret, Value::Float(3.0)); // local pow, not libm pow
    }

    #[test]
    fn extern_integral_conversions() {
        let libm = crate::cmodule::CModule::load_system("m").unwrap();
        // int abs(int): the float argument truncates like C
        let src = "def f(x: float):\n    return abs2(x)\n";
        // 'abs' is a builtin, so alias through a custom header instead
        let mut syms: std::collections::HashMap<String, crate::cmodule::NativeFn> =
            std::collections::HashMap::new();
        syms.insert("abs2".into(), |a| a[0].abs());
        let lib = crate::cmodule::CModule::load("mylib", "int abs2(int n);", syms).unwrap();
        let k = compile_with_externs(src, "f", &[Type::Float], &lib).unwrap();
        let out = k.call(vec![Value::Float(-3.9)]).unwrap();
        assert_eq!(out.ret, Value::Int(3)); // truncated then |.|, int return
        drop(libm);
    }

    #[test]
    fn unknown_extern_still_errors() {
        let libm = crate::cmodule::CModule::load_system("m").unwrap();
        let src = "def f(x: float):\n    return nosuchfn(x)\n";
        assert!(compile_with_externs(src, "f", &[Type::Float], &libm).is_err());
    }

    #[test]
    fn disassembly_is_nonempty() {
        let k = compile(SUM_SRC, "sum", &[Type::ArrF]).unwrap();
        let d = k.disassemble();
        assert!(d.contains("fn #0 sum"));
        assert!(d.lines().count() > 5);
    }
}
