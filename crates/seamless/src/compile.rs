//! AST → typed bytecode compiler.
//!
//! Functions are monomorphized per concrete argument signature (the JIT
//! pattern: compile for the types actually seen). The optimizer consists
//! of AST constant folding ([`crate::ast::Expr::fold`]) plus strength
//! reduction of small constant integer powers into multiplies.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Module, Stmt, UnOp};
use crate::bytecode::{
    Cmp, CompiledFunc, ExternDecl, Instr, Math2Fn, MathFn, Program, Reg, RegFile,
};
use crate::cmodule::CModule;
use crate::types::{
    binop_type, builtin_type, extern_types, infer_function_with_externs, FuncTypes, Type,
};
use crate::SeamlessError;

/// Compile `entry` (and everything it calls) for the given argument types.
pub fn compile_program(
    module: &Module,
    entry: &str,
    arg_types: &[Type],
) -> Result<Program, SeamlessError> {
    compile_program_with_externs(module, entry, arg_types, None)
}

/// As [`compile_program`], resolving otherwise-unknown calls through a
/// loaded foreign library (pyish code calling `libm` directly).
pub fn compile_program_with_externs(
    module: &Module,
    entry: &str,
    arg_types: &[Type],
    externs: Option<&CModule>,
) -> Result<Program, SeamlessError> {
    let mut pc = ProgramCompiler {
        module,
        lib: externs,
        funcs: Vec::new(),
        index: HashMap::new(),
        externs: Vec::new(),
        extern_index: HashMap::new(),
    };
    pc.ensure(entry, arg_types)?;
    Ok(Program {
        funcs: pc.funcs,
        externs: pc.externs,
    })
}

struct ProgramCompiler<'m> {
    module: &'m Module,
    lib: Option<&'m CModule>,
    funcs: Vec<CompiledFunc>,
    index: HashMap<(String, Vec<Type>), usize>,
    externs: Vec<ExternDecl>,
    extern_index: HashMap<String, usize>,
}

impl<'m> ProgramCompiler<'m> {
    /// Compile (or look up) a function instance; returns its table index.
    fn ensure(&mut self, name: &str, arg_types: &[Type]) -> Result<usize, SeamlessError> {
        let key = (name.to_string(), arg_types.to_vec());
        if let Some(&idx) = self.index.get(&key) {
            return Ok(idx);
        }
        let types = infer_function_with_externs(self.module, name, arg_types, self.lib)?;
        // Reserve the slot first so recursive calls resolve.
        let idx = self.funcs.len();
        self.index.insert(key, idx);
        self.funcs.push(CompiledFunc {
            name: name.to_string(),
            params: Vec::new(),
            param_types: arg_types.to_vec(),
            ret: types.ret,
            reg_counts: [0; 4],
            instrs: Vec::new(),
        });
        let func = self
            .module
            .function(name)
            .ok_or_else(|| SeamlessError::Type(format!("unknown function {name}")))?
            .clone();
        let compiled = FnCompiler::compile(self, &func, types, arg_types)?;
        self.funcs[idx] = compiled;
        Ok(idx)
    }
}

struct FnCompiler<'a, 'm> {
    prog: &'a mut ProgramCompiler<'m>,
    types: FuncTypes,
    slots: HashMap<String, (RegFile, Reg)>,
    counts: [usize; 4],
    instrs: Vec<Instr>,
    ret: Type,
    /// (continue-patch positions, break-patch positions) per nested loop
    loops: Vec<(Vec<usize>, Vec<usize>)>,
}

fn file_idx(f: RegFile) -> usize {
    match f {
        RegFile::F => 0,
        RegFile::I => 1,
        RegFile::AF => 2,
        RegFile::AI => 3,
    }
}

impl<'a, 'm> FnCompiler<'a, 'm> {
    fn compile(
        prog: &'a mut ProgramCompiler<'m>,
        func: &crate::ast::FuncDef,
        types: FuncTypes,
        arg_types: &[Type],
    ) -> Result<CompiledFunc, SeamlessError> {
        let mut c = FnCompiler {
            prog,
            ret: types.ret,
            types,
            slots: HashMap::new(),
            counts: [0; 4],
            instrs: Vec::new(),
            loops: Vec::new(),
        };
        // Parameters take the first slots of their files, in order.
        let mut params = Vec::new();
        for (pname, _) in &func.params {
            let t = c.types.vars[pname];
            let file = RegFile::for_type(t);
            let reg = c.alloc(file);
            c.slots.insert(pname.clone(), (file, reg));
            params.push((file, reg));
        }
        // Remaining variables, sorted for determinism.
        let mut names: Vec<String> = c.types.vars.keys().cloned().collect();
        names.sort();
        for name in names {
            if !c.slots.contains_key(name.as_str()) {
                let file = RegFile::for_type(c.types.vars[name.as_str()]);
                let reg = c.alloc(file);
                c.slots.insert(name, (file, reg));
            }
        }
        // Parameters annotated Float but called with Int arrive as ints in
        // an F slot? No: the caller coerces. Params use the *inferred*
        // (annotated) type; the VM entry coerces Value args.
        for stmt in &func.body {
            c.stmt(stmt)?;
        }
        c.instrs.push(Instr::Ret(None));
        Ok(CompiledFunc {
            name: func.name.clone(),
            params,
            param_types: arg_types.to_vec(),
            ret: c.ret,
            reg_counts: c.counts,
            instrs: c.instrs,
        })
    }

    fn alloc(&mut self, file: RegFile) -> Reg {
        let i = file_idx(file);
        let r = self.counts[i];
        self.counts[i] += 1;
        r as Reg
    }

    fn emit(&mut self, ins: Instr) {
        self.instrs.push(ins);
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(_, t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }

    /// Coerce a compiled value to `want`, emitting a conversion if needed.
    fn coerce(
        &mut self,
        (t, file, reg): (Type, RegFile, Reg),
        want: Type,
    ) -> Result<(RegFile, Reg), SeamlessError> {
        if t == want || (RegFile::for_type(t) == RegFile::for_type(want) && want != Type::Float) {
            // Bool/Int share the I file; no conversion needed except to F.
            return Ok((file, reg));
        }
        match (t, want) {
            (Type::Int | Type::Bool, Type::Float) => {
                let dst = self.alloc(RegFile::F);
                self.emit(Instr::IToF(dst, reg));
                Ok((RegFile::F, dst))
            }
            (Type::Float, Type::Int) => {
                let dst = self.alloc(RegFile::I);
                self.emit(Instr::FToI(dst, reg));
                Ok((RegFile::I, dst))
            }
            _ => Err(SeamlessError::Type(format!(
                "cannot coerce {t:?} to {want:?}"
            ))),
        }
    }

    /// Truthiness of a value as an int 0/1 register.
    fn truthy(&mut self, (t, _file, reg): (Type, RegFile, Reg)) -> Result<Reg, SeamlessError> {
        match t {
            Type::Bool => Ok(reg),
            Type::Int => {
                let zero = self.alloc(RegFile::I);
                self.emit(Instr::ConstI(zero, 0));
                let dst = self.alloc(RegFile::I);
                self.emit(Instr::CmpI(Cmp::Ne, dst, reg, zero));
                Ok(dst)
            }
            Type::Float => {
                let zero = self.alloc(RegFile::F);
                self.emit(Instr::ConstF(zero, 0.0));
                let dst = self.alloc(RegFile::I);
                self.emit(Instr::CmpF(Cmp::Ne, dst, reg, zero));
                Ok(dst)
            }
            other => Err(SeamlessError::Type(format!(
                "{other:?} is not usable as a condition"
            ))),
        }
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), SeamlessError> {
        match stmt {
            Stmt::Assign { name, value, .. } => {
                let v = self.expr(&value.clone().fold())?;
                let var_t = self.types.vars[name.as_str()];
                let (file, reg) = self.slots[name.as_str()];
                match var_t {
                    Type::ArrF => {
                        let (_, src) = self.coerce(v, Type::ArrF)?;
                        if src != reg {
                            self.emit(Instr::MovArrF(reg, src));
                        }
                    }
                    Type::ArrI => {
                        let (_, src) = self.coerce(v, Type::ArrI)?;
                        if src != reg {
                            self.emit(Instr::MovArrI(reg, src));
                        }
                    }
                    _ => {
                        let (sfile, src) = self.coerce(v, var_t)?;
                        debug_assert_eq!(sfile, file);
                        if src != reg {
                            self.emit(match file {
                                RegFile::F => Instr::MovF(reg, src),
                                RegFile::I => Instr::MovI(reg, src),
                                _ => unreachable!(),
                            });
                        }
                    }
                }
                Ok(())
            }
            Stmt::AugAssign { name, op, value } => {
                let desugared = Stmt::Assign {
                    name: name.clone(),
                    ann: None,
                    value: Expr::Bin(
                        *op,
                        Box::new(Expr::Name(name.clone())),
                        Box::new(value.clone()),
                    ),
                };
                self.stmt(&desugared)
            }
            Stmt::AugAssignIndex {
                name,
                index,
                op,
                value,
            } => {
                let desugared = Stmt::AssignIndex {
                    name: name.clone(),
                    index: index.clone(),
                    value: Expr::Bin(
                        *op,
                        Box::new(Expr::Index(
                            Box::new(Expr::Name(name.clone())),
                            Box::new(index.clone()),
                        )),
                        Box::new(value.clone()),
                    ),
                };
                self.stmt(&desugared)
            }
            Stmt::AssignIndex { name, index, value } => {
                let arr_t = self.types.vars[name.as_str()];
                let (_, arr) = self.slots[name.as_str()];
                let iv = self.expr(&index.clone().fold())?;
                let (_, idx) = self.coerce(iv, Type::Int)?;
                let vv = self.expr(&value.clone().fold())?;
                match arr_t {
                    Type::ArrF => {
                        let (_, src) = self.coerce(vv, Type::Float)?;
                        self.emit(Instr::StoreF(arr, idx, src));
                    }
                    Type::ArrI => {
                        let (_, src) = self.coerce(vv, Type::Int)?;
                        self.emit(Instr::StoreI(arr, idx, src));
                    }
                    other => {
                        return Err(SeamlessError::Type(format!(
                            "cannot index-assign into {other:?}"
                        )))
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then, orelse } => {
                let c = self.expr(&cond.clone().fold())?;
                let creg = self.truthy(c)?;
                let jf = self.here();
                self.emit(Instr::JumpIfFalse(creg, 0));
                for s in then {
                    self.stmt(s)?;
                }
                if orelse.is_empty() {
                    let end = self.here();
                    self.patch_jump(jf, end);
                } else {
                    let jend = self.here();
                    self.emit(Instr::Jump(0));
                    let else_at = self.here();
                    self.patch_jump(jf, else_at);
                    for s in orelse {
                        self.stmt(s)?;
                    }
                    let end = self.here();
                    self.patch_jump(jend, end);
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                let start = self.here();
                let c = self.expr(&cond.clone().fold())?;
                let creg = self.truthy(c)?;
                let jf = self.here();
                self.emit(Instr::JumpIfFalse(creg, 0));
                self.loops.push((Vec::new(), Vec::new()));
                for s in body {
                    self.stmt(s)?;
                }
                self.emit(Instr::Jump(start));
                let end = self.here();
                self.patch_jump(jf, end);
                let (continues, breaks) = self.loops.pop().unwrap();
                for at in continues {
                    self.patch_jump(at, start);
                }
                for at in breaks {
                    self.patch_jump(at, end);
                }
                Ok(())
            }
            Stmt::ForRange {
                var,
                start,
                stop,
                step,
                body,
            } => {
                if self.types.vars[var.as_str()] != Type::Int {
                    return Err(SeamlessError::Type(format!(
                        "loop variable {var} must remain an integer"
                    )));
                }
                let (_, ivar) = self.slots[var.as_str()];
                let sv = self.expr(&start.clone().fold())?;
                let (_, sreg) = self.coerce(sv, Type::Int)?;
                self.emit(Instr::MovI(ivar, sreg));
                let tv = self.expr(&stop.clone().fold())?;
                let (_, t_tmp) = self.coerce(tv, Type::Int)?;
                let stop_reg = self.alloc(RegFile::I);
                self.emit(Instr::MovI(stop_reg, t_tmp));
                let pv = self.expr(&step.clone().fold())?;
                let (_, p_tmp) = self.coerce(pv, Type::Int)?;
                let step_reg = self.alloc(RegFile::I);
                self.emit(Instr::MovI(step_reg, p_tmp));
                // guard: step > 0
                let zero = self.alloc(RegFile::I);
                self.emit(Instr::ConstI(zero, 0));
                let ok = self.alloc(RegFile::I);
                self.emit(Instr::CmpI(Cmp::Gt, ok, step_reg, zero));
                self.emit(Instr::ErrIfFalse(ok, "range step must be positive".into()));
                // loop head
                let head = self.here();
                let c = self.alloc(RegFile::I);
                self.emit(Instr::CmpI(Cmp::Lt, c, ivar, stop_reg));
                let jf = self.here();
                self.emit(Instr::JumpIfFalse(c, 0));
                self.loops.push((Vec::new(), Vec::new()));
                for s in body {
                    self.stmt(s)?;
                }
                let incr = self.here();
                self.emit(Instr::AddI(ivar, ivar, step_reg));
                self.emit(Instr::Jump(head));
                let end = self.here();
                self.patch_jump(jf, end);
                let (continues, breaks) = self.loops.pop().unwrap();
                for at in continues {
                    self.patch_jump(at, incr);
                }
                for at in breaks {
                    self.patch_jump(at, end);
                }
                Ok(())
            }
            Stmt::Return(value) => {
                match value {
                    None => self.emit(Instr::Ret(None)),
                    Some(e) => {
                        let v = self.expr(&e.clone().fold())?;
                        let want = self.ret;
                        let (file, reg) = self.coerce(v, want)?;
                        self.emit(Instr::Ret(Some((file, reg))));
                    }
                }
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                let _ = self.expr(&e.clone().fold())?;
                Ok(())
            }
            Stmt::Pass => Ok(()),
            Stmt::Break => {
                let at = self.here();
                self.emit(Instr::Jump(0));
                self.loops
                    .last_mut()
                    .ok_or_else(|| SeamlessError::Type("break outside a loop".into()))?
                    .1
                    .push(at);
                Ok(())
            }
            Stmt::Continue => {
                let at = self.here();
                self.emit(Instr::Jump(0));
                self.loops
                    .last_mut()
                    .ok_or_else(|| SeamlessError::Type("continue outside a loop".into()))?
                    .0
                    .push(at);
                Ok(())
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(Type, RegFile, Reg), SeamlessError> {
        match e {
            Expr::Int(v) => {
                let r = self.alloc(RegFile::I);
                self.emit(Instr::ConstI(r, *v));
                Ok((Type::Int, RegFile::I, r))
            }
            Expr::Float(v) => {
                let r = self.alloc(RegFile::F);
                self.emit(Instr::ConstF(r, *v));
                Ok((Type::Float, RegFile::F, r))
            }
            Expr::Bool(b) => {
                let r = self.alloc(RegFile::I);
                self.emit(Instr::ConstI(r, i64::from(*b)));
                Ok((Type::Bool, RegFile::I, r))
            }
            Expr::Name(n) => {
                let t = *self
                    .types
                    .vars
                    .get(n.as_str())
                    .ok_or_else(|| SeamlessError::Type(format!("undefined variable {n}")))?;
                let (file, reg) = self.slots[n.as_str()];
                Ok((t, file, reg))
            }
            Expr::Un(UnOp::Neg, a) => {
                let v = self.expr(a)?;
                match v.0 {
                    Type::Float => {
                        let dst = self.alloc(RegFile::F);
                        self.emit(Instr::NegF(dst, v.2));
                        Ok((Type::Float, RegFile::F, dst))
                    }
                    Type::Int | Type::Bool => {
                        let dst = self.alloc(RegFile::I);
                        self.emit(Instr::NegI(dst, v.2));
                        Ok((Type::Int, RegFile::I, dst))
                    }
                    other => Err(SeamlessError::Type(format!("cannot negate {other:?}"))),
                }
            }
            Expr::Un(UnOp::Not, a) => {
                let v = self.expr(a)?;
                let b = self.truthy(v)?;
                let dst = self.alloc(RegFile::I);
                self.emit(Instr::NotI(dst, b));
                Ok((Type::Bool, RegFile::I, dst))
            }
            Expr::Index(a, i) => {
                let av = self.expr(a)?;
                let iv = self.expr(i)?;
                let (_, idx) = self.coerce(iv, Type::Int)?;
                match av.0 {
                    Type::ArrF => {
                        let dst = self.alloc(RegFile::F);
                        self.emit(Instr::LoadF(dst, av.2, idx));
                        Ok((Type::Float, RegFile::F, dst))
                    }
                    Type::ArrI => {
                        let dst = self.alloc(RegFile::I);
                        self.emit(Instr::LoadI(dst, av.2, idx));
                        Ok((Type::Int, RegFile::I, dst))
                    }
                    other => Err(SeamlessError::Type(format!("cannot index {other:?}"))),
                }
            }
            Expr::Bin(op, a, b) => self.bin(*op, a, b),
            Expr::Call { name, args } => self.call(name, args),
        }
    }

    fn bin(
        &mut self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
    ) -> Result<(Type, RegFile, Reg), SeamlessError> {
        // strength reduction: x ** 2 / x ** 3 → multiplies
        if op == BinOp::Pow {
            if let Expr::Int(e @ (2 | 3)) = b {
                let base = self.expr(a)?;
                return self.small_pow(base, *e as u32);
            }
        }
        if matches!(op, BinOp::And | BinOp::Or) {
            let va = self.expr(a)?;
            let ba = self.truthy(va)?;
            let vb = self.expr(b)?;
            let bb = self.truthy(vb)?;
            let dst = self.alloc(RegFile::I);
            self.emit(match op {
                BinOp::And => Instr::AndI(dst, ba, bb),
                _ => Instr::OrI(dst, ba, bb),
            });
            return Ok((Type::Bool, RegFile::I, dst));
        }
        let va = self.expr(a)?;
        let vb = self.expr(b)?;
        let rt = binop_type(op, va.0, vb.0)?;
        if op.is_comparison() {
            let float_cmp = va.0 == Type::Float || vb.0 == Type::Float;
            let cmp = match op {
                BinOp::Eq => Cmp::Eq,
                BinOp::Ne => Cmp::Ne,
                BinOp::Lt => Cmp::Lt,
                BinOp::Le => Cmp::Le,
                BinOp::Gt => Cmp::Gt,
                BinOp::Ge => Cmp::Ge,
                _ => unreachable!(),
            };
            let dst = self.alloc(RegFile::I);
            if float_cmp {
                let (_, ra) = self.coerce(va, Type::Float)?;
                let (_, rb) = self.coerce(vb, Type::Float)?;
                self.emit(Instr::CmpF(cmp, dst, ra, rb));
            } else {
                self.emit(Instr::CmpI(cmp, dst, va.2, vb.2));
            }
            return Ok((Type::Bool, RegFile::I, dst));
        }
        match rt {
            Type::Float => {
                let (_, ra) = self.coerce(va, Type::Float)?;
                let (_, rb) = self.coerce(vb, Type::Float)?;
                let dst = self.alloc(RegFile::F);
                let ins = match op {
                    BinOp::Add => Instr::AddF(dst, ra, rb),
                    BinOp::Sub => Instr::SubF(dst, ra, rb),
                    BinOp::Mul => Instr::MulF(dst, ra, rb),
                    BinOp::Div => Instr::DivF(dst, ra, rb),
                    BinOp::Mod => Instr::ModF(dst, ra, rb),
                    BinOp::Pow => Instr::PowF(dst, ra, rb),
                    BinOp::FloorDiv => {
                        self.emit(Instr::DivF(dst, ra, rb));
                        let dst2 = self.alloc(RegFile::F);
                        self.emit(Instr::Math1(MathFn::Floor, dst2, dst));
                        return Ok((Type::Float, RegFile::F, dst2));
                    }
                    other => return Err(SeamlessError::Type(format!("bad float op {other:?}"))),
                };
                self.emit(ins);
                Ok((Type::Float, RegFile::F, dst))
            }
            Type::Int => {
                let ra = va.2;
                let rb = vb.2;
                let dst = self.alloc(RegFile::I);
                let ins = match op {
                    BinOp::Add => Instr::AddI(dst, ra, rb),
                    BinOp::Sub => Instr::SubI(dst, ra, rb),
                    BinOp::Mul => Instr::MulI(dst, ra, rb),
                    BinOp::FloorDiv => Instr::FloorDivI(dst, ra, rb),
                    BinOp::Mod => Instr::ModI(dst, ra, rb),
                    BinOp::Pow => Instr::PowI(dst, ra, rb),
                    other => return Err(SeamlessError::Type(format!("bad int op {other:?}"))),
                };
                self.emit(ins);
                Ok((Type::Int, RegFile::I, dst))
            }
            other => Err(SeamlessError::Type(format!(
                "binary op result type {other:?} unsupported"
            ))),
        }
    }

    fn small_pow(
        &mut self,
        base: (Type, RegFile, Reg),
        e: u32,
    ) -> Result<(Type, RegFile, Reg), SeamlessError> {
        match base.0 {
            Type::Float => {
                let mut acc = base.2;
                for _ in 1..e {
                    let dst = self.alloc(RegFile::F);
                    self.emit(Instr::MulF(dst, acc, base.2));
                    acc = dst;
                }
                Ok((Type::Float, RegFile::F, acc))
            }
            Type::Int | Type::Bool => {
                let mut acc = base.2;
                for _ in 1..e {
                    let dst = self.alloc(RegFile::I);
                    self.emit(Instr::MulI(dst, acc, base.2));
                    acc = dst;
                }
                Ok((Type::Int, RegFile::I, acc))
            }
            other => Err(SeamlessError::Type(format!(
                "cannot exponentiate {other:?}"
            ))),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(Type, RegFile, Reg), SeamlessError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.expr(a)?);
        }
        let arg_types: Vec<Type> = vals.iter().map(|v| v.0).collect();
        if let Some(rt) = builtin_type(name, &arg_types)? {
            return self.builtin(name, vals, rt);
        }
        // foreign function through a loaded CModule (only when no user
        // function of the same name exists — locals shadow the library)
        if self.prog.module.function(name).is_none() {
            if let Some(lib) = self.prog.lib {
                if let Some(sig) = lib.signature(name) {
                    let (params, ret) = extern_types(sig);
                    let ext = match self.prog.extern_index.get(name) {
                        Some(&i) => i,
                        None => {
                            let f = lib.native(name).ok_or_else(|| {
                                SeamlessError::Ffi(format!("{name} declared but not in library"))
                            })?;
                            let i = self.prog.externs.len();
                            self.prog.externs.push(ExternDecl {
                                name: name.to_string(),
                                params: params.iter().map(|t| RegFile::for_type(*t)).collect(),
                                ret_int: ret == Type::Int,
                                f,
                            });
                            self.prog.extern_index.insert(name.to_string(), i);
                            i
                        }
                    };
                    // coerce args to the discovered parameter files
                    let mut regs = Vec::with_capacity(vals.len());
                    for (v, want) in vals.into_iter().zip(params) {
                        regs.push(self.coerce(v, want)?);
                    }
                    let dfile = RegFile::for_type(ret);
                    let dst = (dfile, self.alloc(dfile));
                    self.emit(Instr::CallExtern {
                        ext,
                        dst,
                        args: regs,
                    });
                    return Ok((ret, dst.0, dst.1));
                }
            }
        }
        // user function
        let idx = self.prog.ensure(name, &arg_types)?;
        let ret = self.prog.funcs[idx].ret;
        let call_args: Vec<(RegFile, Reg)> = vals.iter().map(|v| (v.1, v.2)).collect();
        let dst = if ret == Type::Unit {
            None
        } else {
            let file = RegFile::for_type(ret);
            Some((file, self.alloc(file)))
        };
        self.emit(Instr::Call {
            func: idx,
            dst,
            args: call_args,
        });
        match dst {
            None => Ok((Type::Unit, RegFile::I, 0)),
            Some((file, reg)) => Ok((ret, file, reg)),
        }
    }

    fn builtin(
        &mut self,
        name: &str,
        vals: Vec<(Type, RegFile, Reg)>,
        rt: Type,
    ) -> Result<(Type, RegFile, Reg), SeamlessError> {
        match name {
            "len" => {
                let dst = self.alloc(RegFile::I);
                match vals[0].0 {
                    Type::ArrF => self.emit(Instr::LenF(dst, vals[0].2)),
                    Type::ArrI => self.emit(Instr::LenI(dst, vals[0].2)),
                    _ => unreachable!("typed earlier"),
                }
                Ok((Type::Int, RegFile::I, dst))
            }
            "sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "floor" | "ceil" => {
                let f = match name {
                    "sqrt" => MathFn::Sqrt,
                    "sin" => MathFn::Sin,
                    "cos" => MathFn::Cos,
                    "tan" => MathFn::Tan,
                    "exp" => MathFn::Exp,
                    "floor" => MathFn::Floor,
                    "ceil" => MathFn::Ceil,
                    _ => MathFn::Log,
                };
                let (_, src) = self.coerce(vals[0], Type::Float)?;
                let dst = self.alloc(RegFile::F);
                self.emit(Instr::Math1(f, dst, src));
                Ok((Type::Float, RegFile::F, dst))
            }
            "hypot" | "atan2" => {
                let f = if name == "hypot" {
                    Math2Fn::Hypot
                } else {
                    Math2Fn::Atan2
                };
                let (_, ra) = self.coerce(vals[0], Type::Float)?;
                let (_, rb) = self.coerce(vals[1], Type::Float)?;
                let dst = self.alloc(RegFile::F);
                self.emit(Instr::Math2(f, dst, ra, rb));
                Ok((Type::Float, RegFile::F, dst))
            }
            "abs" => match vals[0].0 {
                Type::Float => {
                    let dst = self.alloc(RegFile::F);
                    self.emit(Instr::Math1(MathFn::Abs, dst, vals[0].2));
                    Ok((Type::Float, RegFile::F, dst))
                }
                _ => {
                    let dst = self.alloc(RegFile::I);
                    self.emit(Instr::AbsI(dst, vals[0].2));
                    Ok((Type::Int, RegFile::I, dst))
                }
            },
            "min" | "max" => {
                if rt == Type::Float {
                    let (_, ra) = self.coerce(vals[0], Type::Float)?;
                    let (_, rb) = self.coerce(vals[1], Type::Float)?;
                    let dst = self.alloc(RegFile::F);
                    self.emit(if name == "min" {
                        Instr::MinF(dst, ra, rb)
                    } else {
                        Instr::MaxF(dst, ra, rb)
                    });
                    Ok((Type::Float, RegFile::F, dst))
                } else {
                    let dst = self.alloc(RegFile::I);
                    self.emit(if name == "min" {
                        Instr::MinI(dst, vals[0].2, vals[1].2)
                    } else {
                        Instr::MaxI(dst, vals[0].2, vals[1].2)
                    });
                    Ok((rt, RegFile::I, dst))
                }
            }
            "float" => {
                let (file, reg) = self.coerce(vals[0], Type::Float)?;
                Ok((Type::Float, file, reg))
            }
            "int" => {
                let (file, reg) = self.coerce(vals[0], Type::Int)?;
                Ok((Type::Int, file, reg))
            }
            "zeros" => {
                let dst = self.alloc(RegFile::AF);
                self.emit(Instr::NewArrF(dst, vals[0].2));
                Ok((Type::ArrF, RegFile::AF, dst))
            }
            "izeros" => {
                let dst = self.alloc(RegFile::AI);
                self.emit(Instr::NewArrI(dst, vals[0].2));
                Ok((Type::ArrI, RegFile::AI, dst))
            }
            other => Err(SeamlessError::Type(format!("unknown builtin {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn compile(src: &str, f: &str, args: &[Type]) -> Program {
        let m = parse_module(src).unwrap();
        compile_program(&m, f, args).unwrap()
    }

    #[test]
    fn sum_compiles_with_typed_opcodes() {
        let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
        let p = compile(src, "sum", &[Type::ArrF]);
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert_eq!(f.ret, Type::Float);
        // float adds and array loads, no boxed anything
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::AddF(..))));
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::LoadF(..))));
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::LenF(..))));
    }

    #[test]
    fn strength_reduction_of_small_powers() {
        let p = compile("def f(x: float):\n    return x ** 2\n", "f", &[Type::Float]);
        let f = &p.funcs[0];
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::MulF(..))));
        assert!(!f.instrs.iter().any(|i| matches!(i, Instr::PowF(..))));
    }

    #[test]
    fn constant_folding_reaches_codegen() {
        let p = compile("def f():\n    return 2 * 3 + 4\n", "f", &[]);
        let f = &p.funcs[0];
        // a single ConstI 10 then Ret
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::ConstI(_, 10))));
        assert!(!f.instrs.iter().any(|i| matches!(i, Instr::MulI(..))));
    }

    #[test]
    fn monomorphization_per_signature() {
        let src = "
def id2(x):
    return x

def main(a, b):
    return id2(a) + id2(b)
";
        let p = compile(src, "main", &[Type::Int, Type::Float]);
        // id2 compiled twice: once for Int, once for Float
        let ids: Vec<_> = p.funcs.iter().filter(|f| f.name == "id2").collect();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn recursive_function_compiles() {
        let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
";
        let p = compile(src, "fib", &[Type::Int]);
        assert_eq!(p.funcs.len(), 1);
        assert!(p.funcs[0]
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Call { func: 0, .. })));
    }

    #[test]
    fn loops_emit_guards_and_jumps() {
        let src = "def f(n):\n    t = 0\n    for i in range(n):\n        t += i\n    return t\n";
        let p = compile(src, "f", &[Type::Int]);
        let f = &p.funcs[0];
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::ErrIfFalse(..))));
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::JumpIfFalse(..))));
        assert!(f.instrs.iter().any(|i| matches!(i, Instr::Jump(_))));
    }
}
