//! The boxed tree-walking interpreter — the CPython stand-in.
//!
//! Every operation allocates/matches on boxed [`Value`]s and dispatches
//! dynamically, faithfully reproducing the per-operation overhead that
//! makes interpreted numeric loops slow (the overhead Seamless' JIT
//! removes; E7 measures the gap).

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, FuncDef, Module, Stmt, UnOp};
use crate::export::CallOutput;
use crate::parser::parse_module;
use crate::value::Value;
use crate::SeamlessError;

/// An interpreter over a parsed module.
pub struct Interpreter {
    module: Module,
    externs: Option<crate::cmodule::CModule>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl Interpreter {
    /// Parse and wrap a module.
    pub fn new(src: &str) -> Result<Self, SeamlessError> {
        Ok(Interpreter {
            module: parse_module(src)?,
            externs: None,
        })
    }

    /// Wrap an existing module.
    pub fn from_module(module: Module) -> Self {
        Interpreter {
            module,
            externs: None,
        }
    }

    /// Resolve otherwise-unknown calls through a loaded foreign library.
    pub fn with_externs(mut self, lib: crate::cmodule::CModule) -> Self {
        self.externs = Some(lib);
        self
    }

    /// Call `fname` with `args`; mutated array arguments come back in
    /// [`CallOutput::args`] (value semantics at the boundary).
    pub fn call(&self, fname: &str, args: Vec<Value>) -> Result<CallOutput, SeamlessError> {
        let func = self
            .module
            .function(fname)
            .ok_or_else(|| SeamlessError::Runtime(format!("unknown function {fname}")))?;
        if func.params.len() != args.len() {
            return Err(SeamlessError::Runtime(format!(
                "{fname} takes {} arguments, got {}",
                func.params.len(),
                args.len()
            )));
        }
        let mut env: HashMap<String, Value> = HashMap::new();
        for ((p, _), v) in func.params.iter().zip(args) {
            env.insert(p.clone(), v);
        }
        let flow = self.exec_block(func, &func.body, &mut env)?;
        let ret = match flow {
            Flow::Return(v) => v,
            _ => Value::Unit,
        };
        let out_args = func
            .params
            .iter()
            .map(|(p, _)| env.remove(p).unwrap_or(Value::Unit))
            .collect();
        Ok(CallOutput {
            ret,
            args: out_args,
        })
    }

    fn exec_block(
        &self,
        func: &FuncDef,
        block: &[Stmt],
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, SeamlessError> {
        for stmt in block {
            match self.exec_stmt(func, stmt, env)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        func: &FuncDef,
        stmt: &Stmt,
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, SeamlessError> {
        match stmt {
            Stmt::Assign { name, value, .. } => {
                let v = self.eval(value, env)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::AugAssign { name, op, value } => {
                let rhs = self.eval(value, env)?;
                let cur = env
                    .get(name)
                    .cloned()
                    .ok_or_else(|| SeamlessError::Runtime(format!("undefined {name}")))?;
                let v = binop(*op, cur, rhs)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::AssignIndex { name, index, value } => {
                let idx = self.eval_index(index, env)?;
                let v = self.eval(value, env)?;
                store_index(env, name, idx, v)?;
                Ok(Flow::Normal)
            }
            Stmt::AugAssignIndex {
                name,
                index,
                op,
                value,
            } => {
                let idx = self.eval_index(index, env)?;
                let rhs = self.eval(value, env)?;
                let cur = load_index(env, name, idx)?;
                let v = binop(*op, cur, rhs)?;
                store_index(env, name, idx, v)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then, orelse } => {
                if self.eval(cond, env)?.truthy() {
                    self.exec_block(func, then, env)
                } else {
                    self.exec_block(func, orelse, env)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond, env)?.truthy() {
                    match self.exec_block(func, body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::ForRange {
                var,
                start,
                stop,
                step,
                body,
            } => {
                let start = self.eval_index(start, env)?;
                let stop = self.eval_index(stop, env)?;
                let step = self.eval_index(step, env)?;
                if step <= 0 {
                    return Err(SeamlessError::Runtime("range step must be positive".into()));
                }
                let mut i = start;
                while i < stop {
                    env.insert(var.clone(), Value::Int(i));
                    match self.exec_block(func, body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    i += step;
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(value) => {
                let v = match value {
                    None => Value::Unit,
                    Some(e) => self.eval(e, env)?,
                };
                Ok(Flow::Return(v))
            }
            Stmt::ExprStmt(e) => {
                let _ = self.eval(e, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Pass => Ok(Flow::Normal),
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
        }
    }

    fn eval_index(&self, e: &Expr, env: &mut HashMap<String, Value>) -> Result<i64, SeamlessError> {
        self.eval(e, env)?
            .as_i64()
            .ok_or_else(|| SeamlessError::Runtime("expected an integer".into()))
    }

    fn eval(&self, e: &Expr, env: &mut HashMap<String, Value>) -> Result<Value, SeamlessError> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Name(n) => env
                .get(n)
                .cloned()
                .ok_or_else(|| SeamlessError::Runtime(format!("undefined variable {n}"))),
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, env)?;
                let vb = self.eval(b, env)?;
                binop(*op, va, vb)
            }
            Expr::Un(op, a) => {
                let v = self.eval(a, env)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(x) => Ok(Value::Int(-x)),
                        Value::Float(x) => Ok(Value::Float(-x)),
                        Value::Bool(b) => Ok(Value::Int(-i64::from(b))),
                        other => Err(SeamlessError::Runtime(format!("cannot negate {other:?}"))),
                    },
                    UnOp::Not => Ok(Value::Bool(!v.truthy())),
                }
            }
            Expr::Index(a, i) => {
                let idx = self.eval_index(i, env)?;
                // fast path: direct name avoids cloning the array
                if let Expr::Name(n) = a.as_ref() {
                    return load_index(env, n, idx);
                }
                let arr = self.eval(a, env)?;
                index_value(&arr, idx)
            }
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, env)?);
                }
                if let Some(v) = call_builtin(name, &vals)? {
                    return Ok(v);
                }
                if self.module.function(name).is_some() {
                    let out = self.call(name, vals)?;
                    return Ok(out.ret);
                }
                if let Some(lib) = &self.externs {
                    if lib.signature(name).is_some() {
                        return lib.call(name, &vals);
                    }
                }
                Err(SeamlessError::Runtime(format!("unknown function {name}")))
            }
        }
    }
}

fn index_value(arr: &Value, idx: i64) -> Result<Value, SeamlessError> {
    let check = |len: usize| -> Result<usize, SeamlessError> {
        let i = if idx < 0 { idx + len as i64 } else { idx };
        if i < 0 || i as usize >= len {
            Err(SeamlessError::Runtime(format!(
                "index {idx} out of range for length {len}"
            )))
        } else {
            Ok(i as usize)
        }
    };
    match arr {
        Value::ArrF(v) => Ok(Value::Float(v[check(v.len())?])),
        Value::ArrI(v) => Ok(Value::Int(v[check(v.len())?])),
        other => Err(SeamlessError::Runtime(format!("cannot index {other:?}"))),
    }
}

fn load_index(env: &HashMap<String, Value>, name: &str, idx: i64) -> Result<Value, SeamlessError> {
    let arr = env
        .get(name)
        .ok_or_else(|| SeamlessError::Runtime(format!("undefined variable {name}")))?;
    index_value(arr, idx)
}

fn store_index(
    env: &mut HashMap<String, Value>,
    name: &str,
    idx: i64,
    v: Value,
) -> Result<(), SeamlessError> {
    let arr = env
        .get_mut(name)
        .ok_or_else(|| SeamlessError::Runtime(format!("undefined variable {name}")))?;
    match arr {
        Value::ArrF(vec) => {
            let len = vec.len() as i64;
            let i = if idx < 0 { idx + len } else { idx };
            if i < 0 || i >= len {
                return Err(SeamlessError::Runtime(format!(
                    "index {idx} out of range for length {len}"
                )));
            }
            vec[i as usize] = v
                .as_f64()
                .ok_or_else(|| SeamlessError::Runtime("cannot store non-number".into()))?;
            Ok(())
        }
        Value::ArrI(vec) => {
            let len = vec.len() as i64;
            let i = if idx < 0 { idx + len } else { idx };
            if i < 0 || i >= len {
                return Err(SeamlessError::Runtime(format!(
                    "index {idx} out of range for length {len}"
                )));
            }
            vec[i as usize] = v
                .as_i64()
                .ok_or_else(|| SeamlessError::Runtime("cannot store non-integer".into()))?;
            Ok(())
        }
        other => Err(SeamlessError::Runtime(format!(
            "cannot index-assign into {other:?}"
        ))),
    }
}

/// Dynamic binary dispatch — the expensive part of interpretation.
pub(crate) fn binop(op: BinOp, a: Value, b: Value) -> Result<Value, SeamlessError> {
    use BinOp::*;
    if op.is_comparison() {
        let (x, y) = (
            a.as_f64()
                .ok_or_else(|| SeamlessError::Runtime("cannot compare non-number".into()))?,
            b.as_f64()
                .ok_or_else(|| SeamlessError::Runtime("cannot compare non-number".into()))?,
        );
        return Ok(Value::Bool(match op {
            Eq => x == y,
            Ne => x != y,
            Lt => x < y,
            Le => x <= y,
            Gt => x > y,
            Ge => x >= y,
            _ => unreachable!(),
        }));
    }
    match op {
        And => return Ok(Value::Bool(a.truthy() && b.truthy())),
        Or => return Ok(Value::Bool(a.truthy() || b.truthy())),
        _ => {}
    }
    let int_int =
        matches!(a, Value::Int(_) | Value::Bool(_)) && matches!(b, Value::Int(_) | Value::Bool(_));
    let x = a
        .as_f64()
        .ok_or_else(|| SeamlessError::Runtime(format!("bad operand {a:?}")))?;
    let y = b
        .as_f64()
        .ok_or_else(|| SeamlessError::Runtime(format!("bad operand {b:?}")))?;
    let (xi, yi) = (a.as_i64().unwrap_or(0), b.as_i64().unwrap_or(0));
    Ok(match op {
        Add if int_int => Value::Int(xi.wrapping_add(yi)),
        Sub if int_int => Value::Int(xi.wrapping_sub(yi)),
        Mul if int_int => Value::Int(xi.wrapping_mul(yi)),
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        FloorDiv if int_int => {
            if yi == 0 {
                return Err(SeamlessError::Runtime("integer division by zero".into()));
            }
            Value::Int(xi.div_euclid(yi))
        }
        FloorDiv => Value::Float((x / y).floor()),
        Mod if int_int => {
            if yi == 0 {
                return Err(SeamlessError::Runtime("integer modulo by zero".into()));
            }
            Value::Int(xi.rem_euclid(yi))
        }
        Mod => Value::Float(x - y * (x / y).floor()),
        Pow if int_int => {
            if yi >= 0 {
                Value::Int(xi.pow(yi.min(u32::MAX as i64) as u32))
            } else {
                Value::Float(x.powf(y))
            }
        }
        Pow => Value::Float(x.powf(y)),
        _ => unreachable!(),
    })
}

/// Builtin dispatch; `Ok(None)` when `name` is not a builtin.
pub(crate) fn call_builtin(name: &str, args: &[Value]) -> Result<Option<Value>, SeamlessError> {
    let one_f = |f: fn(f64) -> f64| -> Result<Option<Value>, SeamlessError> {
        let x = args
            .first()
            .and_then(|v| v.as_f64())
            .ok_or_else(|| SeamlessError::Runtime(format!("{name} needs one number")))?;
        Ok(Some(Value::Float(f(x))))
    };
    match name {
        "len" => match args {
            [Value::ArrF(v)] => Ok(Some(Value::Int(v.len() as i64))),
            [Value::ArrI(v)] => Ok(Some(Value::Int(v.len() as i64))),
            _ => Err(SeamlessError::Runtime("len needs an array".into())),
        },
        "sqrt" => one_f(f64::sqrt),
        "sin" => one_f(f64::sin),
        "cos" => one_f(f64::cos),
        "tan" => one_f(f64::tan),
        "exp" => one_f(f64::exp),
        "log" => one_f(f64::ln),
        "floor" => one_f(f64::floor),
        "ceil" => one_f(f64::ceil),
        "hypot" | "atan2" => match args {
            [a, b] => {
                let (x, y) = (
                    a.as_f64()
                        .ok_or_else(|| SeamlessError::Runtime(format!("{name} needs numbers")))?,
                    b.as_f64()
                        .ok_or_else(|| SeamlessError::Runtime(format!("{name} needs numbers")))?,
                );
                Ok(Some(Value::Float(if name == "hypot" {
                    x.hypot(y)
                } else {
                    x.atan2(y)
                })))
            }
            _ => Err(SeamlessError::Runtime(format!("{name} needs two numbers"))),
        },
        "abs" => match args {
            [Value::Float(x)] => Ok(Some(Value::Float(x.abs()))),
            [Value::Int(x)] => Ok(Some(Value::Int(x.abs()))),
            [Value::Bool(b)] => Ok(Some(Value::Int(i64::from(*b)))),
            _ => Err(SeamlessError::Runtime("abs needs one number".into())),
        },
        "min" | "max" => {
            let (a, b) = match args {
                [a, b] => (a, b),
                _ => return Err(SeamlessError::Runtime(format!("{name} needs two numbers"))),
            };
            let int_int = matches!(a, Value::Int(_)) && matches!(b, Value::Int(_));
            let x = a.as_f64().unwrap_or(f64::NAN);
            let y = b.as_f64().unwrap_or(f64::NAN);
            let pick_a = if name == "min" { x <= y } else { x >= y };
            if int_int {
                Ok(Some(Value::Int(if pick_a {
                    a.as_i64().unwrap()
                } else {
                    b.as_i64().unwrap()
                })))
            } else {
                Ok(Some(Value::Float(if pick_a { x } else { y })))
            }
        }
        "float" => Ok(Some(Value::Float(
            args.first()
                .and_then(|v| v.as_f64())
                .ok_or_else(|| SeamlessError::Runtime("float needs a number".into()))?,
        ))),
        "int" => Ok(Some(Value::Int(
            args.first()
                .and_then(|v| v.as_i64())
                .ok_or_else(|| SeamlessError::Runtime("int needs a number".into()))?,
        ))),
        "zeros" => match args {
            [Value::Int(n)] if *n >= 0 => Ok(Some(Value::ArrF(vec![0.0; *n as usize]))),
            _ => Err(SeamlessError::Runtime(
                "zeros needs a non-negative int".into(),
            )),
        },
        "izeros" => match args {
            [Value::Int(n)] if *n >= 0 => Ok(Some(Value::ArrI(vec![0; *n as usize]))),
            _ => Err(SeamlessError::Runtime(
                "izeros needs a non-negative int".into(),
            )),
        },
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str, f: &str, args: Vec<Value>) -> Value {
        Interpreter::new(src).unwrap().call(f, args).unwrap().ret
    }

    #[test]
    fn paper_sum_example() {
        let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
        let v = run(src, "sum", vec![Value::ArrF(vec![1.0, 2.0, 3.5])]);
        assert_eq!(v, Value::Float(6.5));
    }

    #[test]
    fn control_flow_fizzbuzz_style() {
        let src = "
def classify(n):
    if n % 15 == 0:
        return 3
    elif n % 3 == 0:
        return 1
    elif n % 5 == 0:
        return 2
    else:
        return 0
";
        assert_eq!(run(src, "classify", vec![Value::Int(30)]), Value::Int(3));
        assert_eq!(run(src, "classify", vec![Value::Int(9)]), Value::Int(1));
        assert_eq!(run(src, "classify", vec![Value::Int(10)]), Value::Int(2));
        assert_eq!(run(src, "classify", vec![Value::Int(7)]), Value::Int(0));
    }

    #[test]
    fn while_break_continue() {
        let src = "
def f(n):
    total = 0
    i = 0
    while True:
        i = i + 1
        if i > n:
            break
        if i % 2 == 0:
            continue
        total = total + i
    return total
";
        // sum of odd numbers ≤ 9 = 25
        assert_eq!(run(src, "f", vec![Value::Int(9)]), Value::Int(25));
    }

    #[test]
    fn recursion_fib() {
        let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
";
        assert_eq!(run(src, "fib", vec![Value::Int(10)]), Value::Int(55));
    }

    #[test]
    fn mutated_arrays_come_back() {
        let src = "
def scale(a, s):
    for i in range(len(a)):
        a[i] = a[i] * s
";
        let out = Interpreter::new(src)
            .unwrap()
            .call(
                "scale",
                vec![Value::ArrF(vec![1.0, 2.0]), Value::Float(3.0)],
            )
            .unwrap();
        assert_eq!(out.ret, Value::Unit);
        assert_eq!(out.args[0], Value::ArrF(vec![3.0, 6.0]));
    }

    #[test]
    fn python_arithmetic_semantics() {
        let src = "def f():\n    return (7 // 2) + (-7 // 2) + (7 % -2) + (-7 % 2)\n";
        // Python: 3 + (-4) + ... hmm — we use euclidean for ints:
        // 7//2=3, -7//2 (div_euclid) = -4, 7 % -2 (rem_euclid) = 1, -7 % 2 = 1
        assert_eq!(run(src, "f", vec![]), Value::Int(1));
        let src2 = "def g():\n    return 2 ** 10 + 2 ** -1\n";
        assert_eq!(run(src2, "g", vec![]), Value::Float(1024.5));
        let src3 = "def h():\n    return 1 / 2\n";
        assert_eq!(run(src3, "h", vec![]), Value::Float(0.5));
    }

    #[test]
    fn builtins_work() {
        let src = "def f(a):\n    return sqrt(abs(min(-4.0, len(a))))\n";
        let v = run(src, "f", vec![Value::ArrI(vec![1, 2, 3])]);
        assert_eq!(v, Value::Float(2.0));
        let src2 = "def g(n):\n    b = zeros(n)\n    b[1] = 7.0\n    return b[1] + len(b)\n";
        assert_eq!(run(src2, "g", vec![Value::Int(3)]), Value::Float(10.0));
    }

    #[test]
    fn negative_indexing() {
        let src = "def last(a):\n    return a[-1]\n";
        assert_eq!(
            run(src, "last", vec![Value::ArrF(vec![1.0, 2.0, 9.0])]),
            Value::Float(9.0)
        );
    }

    #[test]
    fn out_of_range_errors() {
        let src = "def f(a):\n    return a[10]\n";
        let err = Interpreter::new(src)
            .unwrap()
            .call("f", vec![Value::ArrF(vec![1.0])])
            .unwrap_err();
        assert!(matches!(err, SeamlessError::Runtime(_)));
    }

    #[test]
    fn cross_function_calls() {
        let src = "
def square(x):
    return x * x

def sumsq(a):
    t = 0.0
    for i in range(len(a)):
        t += square(a[i])
    return t
";
        assert_eq!(
            run(src, "sumsq", vec![Value::ArrF(vec![1.0, 2.0, 3.0])]),
            Value::Float(14.0)
        );
    }
}
