//! Typed register bytecode — the compilation target standing in for LLVM.
//!
//! Values live in four per-frame register files (`f64`, `i64`, float
//! arrays, int arrays); every opcode is monomorphic, so the VM executes
//! without boxing or dynamic dispatch. Booleans are `i64` 0/1.

use crate::types::Type;

/// Which register file a slot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegFile {
    /// `f64` scalars.
    F,
    /// `i64` scalars (and bools).
    I,
    /// Float arrays.
    AF,
    /// Int arrays.
    AI,
}

impl RegFile {
    /// The file a [`Type`] is stored in.
    pub fn for_type(t: Type) -> RegFile {
        match t {
            Type::Float => RegFile::F,
            Type::Int | Type::Bool | Type::Unit => RegFile::I,
            Type::ArrF => RegFile::AF,
            Type::ArrI => RegFile::AI,
        }
    }
}

/// A register reference.
pub type Reg = u16;

/// Comparison kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One-argument float math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathFn {
    /// Square root.
    Sqrt,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
    /// Tangent.
    Tan,
    /// Exponential.
    Exp,
    /// Natural log.
    Log,
    /// Absolute value.
    Abs,
    /// Floor.
    Floor,
    /// Ceiling.
    Ceil,
}

impl MathFn {
    /// Apply.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            MathFn::Sqrt => x.sqrt(),
            MathFn::Sin => x.sin(),
            MathFn::Cos => x.cos(),
            MathFn::Tan => x.tan(),
            MathFn::Exp => x.exp(),
            MathFn::Log => x.ln(),
            MathFn::Abs => x.abs(),
            MathFn::Floor => x.floor(),
            MathFn::Ceil => x.ceil(),
        }
    }
}

/// Two-argument float math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Math2Fn {
    /// `hypot(x, y)` — sqrt(x² + y²) without intermediate overflow.
    Hypot,
    /// `atan2(y, x)` — four-quadrant arctangent.
    Atan2,
}

impl Math2Fn {
    /// Apply.
    pub fn apply(self, x: f64, y: f64) -> f64 {
        match self {
            Math2Fn::Hypot => x.hypot(y),
            Math2Fn::Atan2 => x.atan2(y),
        }
    }
}

/// Instructions. `dst` always comes first.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Load a float constant.
    ConstF(Reg, f64),
    /// Load an int constant.
    ConstI(Reg, i64),
    /// Copy float.
    MovF(Reg, Reg),
    /// Copy int.
    MovI(Reg, Reg),
    /// Clone a float array (`a = b`).
    MovArrF(Reg, Reg),
    /// Clone an int array.
    MovArrI(Reg, Reg),
    /// int → float conversion.
    IToF(Reg, Reg),
    /// float → int truncation.
    FToI(Reg, Reg),
    /// `dst = a + b` (floats).
    AddF(Reg, Reg, Reg),
    /// Float subtraction.
    SubF(Reg, Reg, Reg),
    /// Float multiplication.
    MulF(Reg, Reg, Reg),
    /// Float division.
    DivF(Reg, Reg, Reg),
    /// Python float modulo.
    ModF(Reg, Reg, Reg),
    /// Float power.
    PowF(Reg, Reg, Reg),
    /// Float negation.
    NegF(Reg, Reg),
    /// Int addition.
    AddI(Reg, Reg, Reg),
    /// Int subtraction.
    SubI(Reg, Reg, Reg),
    /// Int multiplication.
    MulI(Reg, Reg, Reg),
    /// Euclidean int floor-division (errors on zero).
    FloorDivI(Reg, Reg, Reg),
    /// Euclidean int modulo (errors on zero).
    ModI(Reg, Reg, Reg),
    /// Int power (errors on negative exponent).
    PowI(Reg, Reg, Reg),
    /// Int negation.
    NegI(Reg, Reg),
    /// Float comparison → int 0/1.
    CmpF(Cmp, Reg, Reg, Reg),
    /// Int comparison → int 0/1.
    CmpI(Cmp, Reg, Reg, Reg),
    /// Logical and over 0/1 ints.
    AndI(Reg, Reg, Reg),
    /// Logical or.
    OrI(Reg, Reg, Reg),
    /// Logical not.
    NotI(Reg, Reg),
    /// Unconditional jump to instruction index.
    Jump(usize),
    /// Jump when the int register is zero.
    JumpIfFalse(Reg, usize),
    /// Length of a float array → int reg.
    LenF(Reg, Reg),
    /// Length of an int array.
    LenI(Reg, Reg),
    /// `dst = arr[idx]` float load (negative indices allowed).
    LoadF(Reg, Reg, Reg),
    /// Int array load.
    LoadI(Reg, Reg, Reg),
    /// `arr[idx] = src` float store.
    StoreF(Reg, Reg, Reg),
    /// Int array store.
    StoreI(Reg, Reg, Reg),
    /// Allocate a zero float array of the given (int reg) length.
    NewArrF(Reg, Reg),
    /// Allocate a zero int array.
    NewArrI(Reg, Reg),
    /// Float math builtin.
    Math1(MathFn, Reg, Reg),
    /// Two-argument float math builtin (`dst = f(a, b)`).
    Math2(Math2Fn, Reg, Reg, Reg),
    /// Float power with a small constant integer exponent, computed via
    /// `powi` — bitwise-matches the interpreted fused path's strength
    /// reduction for uniform integral exponents.
    PowIC(Reg, Reg, i32),
    /// IEEE float remainder (`dst = a % b`, Rust semantics — sign of the
    /// dividend), as opposed to [`Instr::ModF`]'s Python modulo.
    RemF(Reg, Reg, Reg),
    /// `dst = |a|` for ints.
    AbsI(Reg, Reg),
    /// Float min.
    MinF(Reg, Reg, Reg),
    /// Float max.
    MaxF(Reg, Reg, Reg),
    /// Int min.
    MinI(Reg, Reg, Reg),
    /// Int max.
    MaxI(Reg, Reg, Reg),
    /// Call a compiled function: move `args` in, run, move arrays back,
    /// store the return value (if any) into `dst`.
    Call {
        /// Index into the program's function table.
        func: usize,
        /// Destination register for the return value.
        dst: Option<(RegFile, Reg)>,
        /// Argument registers, in parameter order.
        args: Vec<(RegFile, Reg)>,
    },
    /// Return a value (or unit).
    Ret(Option<(RegFile, Reg)>),
    /// Raise a runtime error when the int register is zero (guards, e.g.
    /// non-positive range steps).
    ErrIfFalse(Reg, String),
    /// Call a foreign function from the program's extern table.
    CallExtern {
        /// Index into [`Program::externs`].
        ext: usize,
        /// Destination register.
        dst: (RegFile, Reg),
        /// Argument registers (files match the discovered signature).
        args: Vec<(RegFile, Reg)>,
    },
}

/// One bound foreign function (discovered via a `CModule` header).
#[derive(Debug, Clone)]
pub struct ExternDecl {
    /// Symbol name.
    pub name: String,
    /// Per-parameter register file (I for integral C params, F otherwise).
    pub params: Vec<RegFile>,
    /// Whether the return value is integral.
    pub ret_int: bool,
    /// The native implementation.
    pub f: crate::cmodule::NativeFn,
}

// Function pointers have no meaningful equality; two extern decls are
// "equal" when they bind the same symbol with the same signature.
impl PartialEq for ExternDecl {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.params == other.params && self.ret_int == other.ret_int
    }
}

/// One compiled function.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledFunc {
    /// Source name.
    pub name: String,
    /// Concrete parameter registers (file + slot), in order.
    pub params: Vec<(RegFile, Reg)>,
    /// Parameter types (the signature this instance was compiled for).
    pub param_types: Vec<Type>,
    /// Return type.
    pub ret: Type,
    /// Register-file sizes: `[f, i, arrf, arri]`.
    pub reg_counts: [usize; 4],
    /// The code.
    pub instrs: Vec<Instr>,
}

/// A compiled program: the entry function plus everything it calls,
/// monomorphized per concrete argument signature.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Function table (entry is index 0).
    pub funcs: Vec<CompiledFunc>,
    /// Foreign functions referenced by `CallExtern`.
    pub externs: Vec<ExternDecl>,
}

impl Program {
    /// Human-readable disassembly (used in docs and debugging).
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (fi, f) in self.funcs.iter().enumerate() {
            out.push_str(&format!(
                "fn #{fi} {}({:?}) -> {:?} regs={:?}\n",
                f.name, f.param_types, f.ret, f.reg_counts
            ));
            for (pc, ins) in f.instrs.iter().enumerate() {
                out.push_str(&format!("  {pc:4}: {ins:?}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regfile_mapping() {
        assert_eq!(RegFile::for_type(Type::Float), RegFile::F);
        assert_eq!(RegFile::for_type(Type::Int), RegFile::I);
        assert_eq!(RegFile::for_type(Type::Bool), RegFile::I);
        assert_eq!(RegFile::for_type(Type::ArrF), RegFile::AF);
        assert_eq!(RegFile::for_type(Type::ArrI), RegFile::AI);
    }

    #[test]
    fn mathfn_applies() {
        assert_eq!(MathFn::Sqrt.apply(9.0), 3.0);
        assert_eq!(MathFn::Abs.apply(-2.0), 2.0);
        assert_eq!(MathFn::Floor.apply(1.9), 1.0);
    }

    #[test]
    fn disassembly_mentions_functions() {
        let p = Program {
            funcs: vec![CompiledFunc {
                name: "f".into(),
                params: vec![],
                param_types: vec![],
                ret: Type::Unit,
                reg_counts: [0, 0, 0, 0],
                instrs: vec![Instr::Ret(None)],
            }],
            externs: Vec::new(),
        };
        let d = p.disassemble();
        assert!(d.contains("fn #0 f"));
        assert!(d.contains("Ret"));
    }
}
