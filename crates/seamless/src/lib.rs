//! # seamless — a JIT for a Python-like language, plus frictionless FFI
//!
//! Reproduction of the paper's Seamless system (§IV). Its four features,
//! mapped to this crate:
//!
//! 1. **JIT compilation** (§IV-A): "pyish" source (an indentation-based
//!    Python subset) is parsed, type-inferred, and compiled to a *typed
//!    register bytecode* executed by an unboxed VM — the stand-in for
//!    LLVM codegen. The baseline it is measured against is [`interp`], a
//!    deliberately boxed, dynamically-dispatched tree-walking interpreter
//!    (the CPython stand-in). Experiment E7 runs the paper's `@jit sum`
//!    example on both.
//! 2. **Static compilation** (§IV-B): [`export::compile`] produces a
//!    reusable [`export::CompiledKernel`] — same source, no annotation
//!    changes, callable from host code.
//! 3. **Trivial FFI** (§IV-C): [`cmodule::CModule`] parses C-style header
//!    declarations and *discovers* each function's signature, so foreign
//!    functions are callable with no explicit binding step.
//! 4. **Python as an algorithm-specification language** (§IV-D):
//!    compiled kernels are plain `Send + Sync` Rust values, so statically
//!    typed host code (solver callbacks, ODIN local functions) can call
//!    algorithms specified in pyish — the inverse embedding.
//!
//! ```
//! // the paper's §IV-A example, verbatim modulo decorator syntax
//! let src = "
//! def sum(it):
//!     res = 0.0
//!     for i in range(len(it)):
//!         res = res + it[i]
//!     return res
//! ";
//! let kernel = seamless::jit(src, "sum", &[seamless::Type::ArrF]).unwrap();
//! let out = kernel.call(vec![seamless::Value::ArrF(vec![1.0, 2.5, 3.5])]).unwrap();
//! assert_eq!(out.ret, seamless::Value::Float(7.0));
//! ```

pub mod ast;
pub mod bytecode;
pub mod cmodule;
pub mod codegen;
pub mod compile;
pub mod export;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod types;
pub mod value;
pub mod vm;
pub mod wire;

pub use cmodule::CModule;
pub use export::{
    compile as compile_kernel, compile_with_externs, jit, CallOutput, CompiledKernel,
};
pub use interp::Interpreter;
pub use types::Type;
pub use value::Value;

/// Errors from any stage of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SeamlessError {
    /// Tokenizer error with line number.
    Lex(usize, String),
    /// Parser error with line number.
    Parse(usize, String),
    /// Type inference / checking error.
    Type(String),
    /// Runtime error (both interpreter and VM).
    Runtime(String),
    /// Header parsing / FFI error.
    Ffi(String),
}

impl std::fmt::Display for SeamlessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeamlessError::Lex(line, m) => write!(f, "lex error (line {line}): {m}"),
            SeamlessError::Parse(line, m) => write!(f, "parse error (line {line}): {m}"),
            SeamlessError::Type(m) => write!(f, "type error: {m}"),
            SeamlessError::Runtime(m) => write!(f, "runtime error: {m}"),
            SeamlessError::Ffi(m) => write!(f, "ffi error: {m}"),
        }
    }
}

impl std::error::Error for SeamlessError {}
