//! The unboxed register VM: what "compiled" means in this reproduction.
//!
//! A frame is four plain vectors; the dispatch loop is a single `match`
//! on monomorphic opcodes. No `Value` is touched between entry and exit,
//! which is where the order-of-magnitude win over the boxed interpreter
//! comes from (experiment E7).

use crate::bytecode::{Cmp, CompiledFunc, Instr, Program, Reg, RegFile};
use crate::export::CallOutput;
use crate::types::Type;
use crate::value::Value;
use crate::SeamlessError;
use std::cell::RefCell;

/// Executes compiled programs.
pub struct Vm<'p> {
    program: &'p Program,
    /// Lane-major register scratch for the vectorized chunk path, reused
    /// across [`Vm::run_f64_chunk`] calls so a long array pays the
    /// allocation once.
    lanes: RefCell<Lanes>,
}

#[derive(Default)]
struct Lanes {
    f: Vec<f64>,
    i: Vec<i64>,
}

struct Frame {
    f: Vec<f64>,
    i: Vec<i64>,
    af: Vec<Vec<f64>>,
    ai: Vec<Vec<i64>>,
}

enum RawRet {
    Unit,
    F(f64),
    I(i64),
    AF(Vec<f64>),
    AI(Vec<i64>),
}

impl<'p> Vm<'p> {
    /// Wrap a program.
    pub fn new(program: &'p Program) -> Self {
        Vm {
            program,
            lanes: RefCell::new(Lanes::default()),
        }
    }

    /// Call the entry function (index 0) with boxed arguments; arrays are
    /// coerced per the compiled signature, mutated arrays come back in
    /// [`CallOutput::args`].
    pub fn call(&self, args: Vec<Value>) -> Result<CallOutput, SeamlessError> {
        self.call_func(0, args)
    }

    /// Call any function in the table.
    pub fn call_func(&self, func: usize, args: Vec<Value>) -> Result<CallOutput, SeamlessError> {
        let f = &self.program.funcs[func];
        if args.len() != f.params.len() {
            return Err(SeamlessError::Runtime(format!(
                "{} takes {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        let mut frame = Frame {
            f: vec![0.0; f.reg_counts[0]],
            i: vec![0; f.reg_counts[1]],
            af: vec![Vec::new(); f.reg_counts[2]],
            ai: vec![Vec::new(); f.reg_counts[3]],
        };
        // coerce boxed args into registers per the *inferred* param types
        for (k, v) in args.into_iter().enumerate() {
            let (file, reg) = f.params[k];
            match file {
                RegFile::F => {
                    frame.f[reg as usize] = v.as_f64().ok_or_else(|| {
                        SeamlessError::Runtime(format!("argument {k} must be a number"))
                    })?;
                }
                RegFile::I => {
                    frame.i[reg as usize] = v.as_i64().ok_or_else(|| {
                        SeamlessError::Runtime(format!("argument {k} must be an integer"))
                    })?;
                }
                RegFile::AF => match v {
                    Value::ArrF(a) => frame.af[reg as usize] = a,
                    other => {
                        return Err(SeamlessError::Runtime(format!(
                            "argument {k} must be a float array, got {other:?}"
                        )))
                    }
                },
                RegFile::AI => match v {
                    Value::ArrI(a) => frame.ai[reg as usize] = a,
                    other => {
                        return Err(SeamlessError::Runtime(format!(
                            "argument {k} must be an int array, got {other:?}"
                        )))
                    }
                },
            }
        }
        let raw = self.exec(func, &mut frame)?;
        let ret = match (raw, f.ret) {
            (RawRet::Unit, _) => Value::Unit,
            (RawRet::F(v), _) => Value::Float(v),
            (RawRet::I(v), Type::Bool) => Value::Bool(v != 0),
            (RawRet::I(v), _) => Value::Int(v),
            (RawRet::AF(v), _) => Value::ArrF(v),
            (RawRet::AI(v), _) => Value::ArrI(v),
        };
        // hand mutated arrays back
        let out_args = f
            .params
            .iter()
            .map(|&(file, reg)| match file {
                RegFile::F => Value::Float(frame.f[reg as usize]),
                RegFile::I => Value::Int(frame.i[reg as usize]),
                RegFile::AF => Value::ArrF(std::mem::take(&mut frame.af[reg as usize])),
                RegFile::AI => Value::ArrI(std::mem::take(&mut frame.ai[reg as usize])),
            })
            .collect();
        Ok(CallOutput {
            ret,
            args: out_args,
        })
    }

    /// Unboxed elementwise fast path: run function `func` once per lane,
    /// feeding `inputs[k][lane]` into the k-th (float) parameter and
    /// writing the float return into `out[lane]`. No `Value` is boxed
    /// anywhere — one frame is reused across the whole chunk, so the
    /// per-lane cost is register writes plus the dispatch loop.
    ///
    /// Every parameter must live in the `F` register file and every input
    /// slice must be at least `out.len()` long; integer returns are
    /// widened to `f64`, array/unit returns are errors.
    pub fn run_f64_chunk(
        &self,
        func: usize,
        inputs: &[&[f64]],
        out: &mut [f64],
    ) -> Result<(), SeamlessError> {
        let f = &self.program.funcs[func];
        if inputs.len() != f.params.len() {
            return Err(SeamlessError::Runtime(format!(
                "{} takes {} arguments, got {} input streams",
                f.name,
                f.params.len(),
                inputs.len()
            )));
        }
        for (k, &(file, _)) in f.params.iter().enumerate() {
            if file != RegFile::F {
                return Err(SeamlessError::Runtime(format!(
                    "run_f64_chunk: parameter {k} of {} is not a float scalar",
                    f.name
                )));
            }
            if inputs[k].len() < out.len() {
                return Err(SeamlessError::Runtime(format!(
                    "run_f64_chunk: input {k} shorter than the output chunk"
                )));
            }
        }
        if chunk_vectorizable(f) {
            self.run_chunk_vectorized(f, inputs, out);
            return Ok(());
        }
        let mut frame = Frame {
            f: vec![0.0; f.reg_counts[0]],
            i: vec![0; f.reg_counts[1]],
            af: vec![Vec::new(); f.reg_counts[2]],
            ai: vec![Vec::new(); f.reg_counts[3]],
        };
        for lane in 0..out.len() {
            for (k, &(_, reg)) in f.params.iter().enumerate() {
                frame.f[reg as usize] = inputs[k][lane];
            }
            out[lane] = match self.exec(func, &mut frame)? {
                RawRet::F(v) => v,
                RawRet::I(v) => v as f64,
                _ => {
                    return Err(SeamlessError::Runtime(format!(
                        "run_f64_chunk: {} must return a scalar",
                        f.name
                    )))
                }
            };
        }
        Ok(())
    }

    /// Integer twin of [`Vm::run_f64_chunk`]: run function `func` once per
    /// lane over `i64` input streams, writing the integer return into
    /// `out[lane]`. This is the execution path for `i64`/`bool` kernel
    /// specializations (params compiled into the `I` register file, bools
    /// as 0/1), and the bitwise reference the native `i64` tier is probed
    /// against. Registers are zeroed per lane — exactly what the emitted C
    /// does — so straight-line bodies cannot leak state across lanes.
    ///
    /// Every parameter must live in the `I` register file and the function
    /// must return an integer scalar (`Int` or `Bool`); float returns are
    /// errors (use the f64 chunk path for those).
    pub fn run_i64_chunk(
        &self,
        func: usize,
        inputs: &[&[i64]],
        out: &mut [i64],
    ) -> Result<(), SeamlessError> {
        let f = &self.program.funcs[func];
        if inputs.len() != f.params.len() {
            return Err(SeamlessError::Runtime(format!(
                "{} takes {} arguments, got {} input streams",
                f.name,
                f.params.len(),
                inputs.len()
            )));
        }
        for (k, &(file, _)) in f.params.iter().enumerate() {
            if file != RegFile::I {
                return Err(SeamlessError::Runtime(format!(
                    "run_i64_chunk: parameter {k} of {} is not an integer scalar",
                    f.name
                )));
            }
            if inputs[k].len() < out.len() {
                return Err(SeamlessError::Runtime(format!(
                    "run_i64_chunk: input {k} shorter than the output chunk"
                )));
            }
        }
        let mut frame = Frame {
            f: vec![0.0; f.reg_counts[0]],
            i: vec![0; f.reg_counts[1]],
            af: vec![Vec::new(); f.reg_counts[2]],
            ai: vec![Vec::new(); f.reg_counts[3]],
        };
        for lane in 0..out.len() {
            frame.f.fill(0.0);
            frame.i.fill(0);
            for (k, &(_, reg)) in f.params.iter().enumerate() {
                frame.i[reg as usize] = inputs[k][lane];
            }
            out[lane] = match self.exec(func, &mut frame)? {
                RawRet::I(v) => v,
                _ => {
                    return Err(SeamlessError::Runtime(format!(
                        "run_i64_chunk: {} must return an integer scalar",
                        f.name
                    )))
                }
            };
        }
        Ok(())
    }

    /// Multi-output variant of [`Vm::run_f64_chunk`]: one pass over the
    /// chunk evaluates the whole function, then the rows named by
    /// `out_regs` (float-file registers) are copied into `outs` — so a
    /// fused multi-statement kernel pays for its shared subexpressions
    /// once instead of once per output. Register contents are identical
    /// to the single-output path; only the read-out differs.
    pub fn run_f64_multi_chunk(
        &self,
        func: usize,
        inputs: &[&[f64]],
        out_regs: &[Reg],
        outs: &mut [&mut [f64]],
    ) -> Result<(), SeamlessError> {
        let f = &self.program.funcs[func];
        if inputs.len() != f.params.len() {
            return Err(SeamlessError::Runtime(format!(
                "{} takes {} arguments, got {} input streams",
                f.name,
                f.params.len(),
                inputs.len()
            )));
        }
        if out_regs.len() != outs.len() {
            return Err(SeamlessError::Runtime(format!(
                "run_f64_multi_chunk: {} output registers but {} output chunks",
                out_regs.len(),
                outs.len()
            )));
        }
        let len = outs.first().map_or(0, |o| o.len());
        if outs.iter().any(|o| o.len() != len) {
            return Err(SeamlessError::Runtime(
                "run_f64_multi_chunk: output chunks differ in length".into(),
            ));
        }
        for (k, &(file, _)) in f.params.iter().enumerate() {
            if file != RegFile::F {
                return Err(SeamlessError::Runtime(format!(
                    "run_f64_multi_chunk: parameter {k} of {} is not a float scalar",
                    f.name
                )));
            }
            if inputs[k].len() < len {
                return Err(SeamlessError::Runtime(format!(
                    "run_f64_multi_chunk: input {k} shorter than the output chunk"
                )));
            }
        }
        for &r in out_regs {
            if r as usize >= f.reg_counts[0] {
                return Err(SeamlessError::Runtime(format!(
                    "run_f64_multi_chunk: output register f{r} out of range for {}",
                    f.name
                )));
            }
        }
        if len == 0 {
            return Ok(());
        }
        if chunk_vectorizable(f) {
            let stride = len + 8;
            let mut lanes = self.lanes.borrow_mut();
            let Lanes { f: fl, i: il } = &mut *lanes;
            vector_pass(f, inputs, len, stride, fl, il);
            for (&r, o) in out_regs.iter().zip(outs.iter_mut()) {
                o.copy_from_slice(&fl[r as usize * stride..][..len]);
            }
            return Ok(());
        }
        // Fallback interpreter path: run the function per lane, then read
        // the requested registers out of the frame. Registers are zeroed
        // per lane so a branchy function can't leak state across lanes.
        let mut frame = Frame {
            f: vec![0.0; f.reg_counts[0]],
            i: vec![0; f.reg_counts[1]],
            af: vec![Vec::new(); f.reg_counts[2]],
            ai: vec![Vec::new(); f.reg_counts[3]],
        };
        for lane in 0..len {
            frame.f.fill(0.0);
            frame.i.fill(0);
            for (k, &(_, reg)) in f.params.iter().enumerate() {
                frame.f[reg as usize] = inputs[k][lane];
            }
            self.exec(func, &mut frame)?;
            for (&r, o) in out_regs.iter().zip(outs.iter_mut()) {
                o[lane] = frame.f[r as usize];
            }
        }
        Ok(())
    }

    /// Register-vectorized execution of a straight-line scalar function:
    /// each register becomes a lane-major row and every instruction is
    /// one tight loop over the whole chunk — the same per-op shape as a
    /// hand-fused interpreter, but driven by compiled bytecode. Only
    /// reached when [`chunk_vectorizable`] accepted the function, which
    /// guarantees straight-line infallible instructions and, per
    /// instruction, a destination register strictly above its same-file
    /// sources (so the row split below never aliases).
    fn run_chunk_vectorized(&self, f: &CompiledFunc, inputs: &[&[f64]], out: &mut [f64]) {
        let len = out.len();
        if len == 0 {
            return;
        }
        // Row stride = len rounded away from a multiple of the cache-line
        // count: callers hand over power-of-two chunks (4096 lanes), and
        // exactly power-of-two row spacing lands every register row on
        // the same L1 sets, which thrashes once an expression holds a few
        // live rows. One extra line of padding decorrelates them.
        let stride = len + 8;
        let mut lanes = self.lanes.borrow_mut();
        let Lanes { f: fl, i: il } = &mut *lanes;
        vector_pass(f, inputs, len, stride, fl, il);
        match f.instrs[f.instrs.len() - 1] {
            Instr::Ret(Some((RegFile::F, r))) => {
                out.copy_from_slice(&fl[r as usize * stride..][..len])
            }
            Instr::Ret(Some((RegFile::I, r))) => {
                let src = &il[r as usize * stride..][..len];
                for (o, &x) in out.iter_mut().zip(src) {
                    *o = x as f64;
                }
            }
            ref other => {
                unreachable!("vectorized function must end in a scalar Ret, got {other:?}")
            }
        }
    }
}

/// Shared lane-major instruction pass for the vectorized chunk paths:
/// stages the float parameters into register rows, then runs every
/// instruction except the trailing `Ret`. Callers read whichever result
/// rows they need out of `fl`/`il` afterwards.
fn vector_pass(
    f: &CompiledFunc,
    inputs: &[&[f64]],
    len: usize,
    stride: usize,
    fl: &mut Vec<f64>,
    il: &mut Vec<i64>,
) {
    {
        fl.resize(f.reg_counts[0] * stride, 0.0);
        il.resize(f.reg_counts[1] * stride, 0);
        for (k, &(_, reg)) in f.params.iter().enumerate() {
            fl[reg as usize * stride..][..len].copy_from_slice(&inputs[k][..len]);
        }
        // d = op(a, b), all in the float file: d's row sits above both
        // source rows, so splitting at d's offset borrows them disjointly.
        macro_rules! ff2 {
            ($d:expr, $a:expr, $b:expr, $op:expr) => {{
                let (lo, hi) = fl.split_at_mut(*$d as usize * stride);
                let a = &lo[*$a as usize * stride..][..len];
                let b = &lo[*$b as usize * stride..][..len];
                for ((o, &x), &y) in hi[..len].iter_mut().zip(a).zip(b) {
                    *o = $op(x, y);
                }
            }};
        }
        macro_rules! ff1 {
            ($d:expr, $s:expr, $op:expr) => {{
                let (lo, hi) = fl.split_at_mut(*$d as usize * stride);
                let s = &lo[*$s as usize * stride..][..len];
                for (o, &x) in hi[..len].iter_mut().zip(s) {
                    *o = $op(x);
                }
            }};
        }
        macro_rules! ii2 {
            ($d:expr, $a:expr, $b:expr, $op:expr) => {{
                let (lo, hi) = il.split_at_mut(*$d as usize * stride);
                let a = &lo[*$a as usize * stride..][..len];
                let b = &lo[*$b as usize * stride..][..len];
                for ((o, &x), &y) in hi[..len].iter_mut().zip(a).zip(b) {
                    *o = $op(x, y);
                }
            }};
        }
        macro_rules! ii1 {
            ($d:expr, $s:expr, $op:expr) => {{
                let (lo, hi) = il.split_at_mut(*$d as usize * stride);
                let s = &lo[*$s as usize * stride..][..len];
                for (o, &x) in hi[..len].iter_mut().zip(s) {
                    *o = $op(x);
                }
            }};
        }
        for ins in &f.instrs[..f.instrs.len() - 1] {
            match ins {
                Instr::ConstF(d, v) => fl[*d as usize * stride..][..len].fill(*v),
                Instr::ConstI(d, v) => il[*d as usize * stride..][..len].fill(*v),
                Instr::MovF(d, s) => ff1!(d, s, |x| x),
                Instr::MovI(d, s) => ii1!(d, s, |x| x),
                Instr::IToF(d, s) => {
                    let dst = &mut fl[*d as usize * stride..][..len];
                    let src = &il[*s as usize * stride..][..len];
                    for (o, &x) in dst.iter_mut().zip(src) {
                        *o = x as f64;
                    }
                }
                Instr::FToI(d, s) => {
                    let dst = &mut il[*d as usize * stride..][..len];
                    let src = &fl[*s as usize * stride..][..len];
                    for (o, &x) in dst.iter_mut().zip(src) {
                        *o = x as i64;
                    }
                }
                Instr::AddF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x + y),
                Instr::SubF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x - y),
                Instr::MulF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x * y),
                Instr::DivF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x / y),
                Instr::ModF(d, a, b) => {
                    ff2!(d, a, b, |x: f64, y: f64| x - y * (x / y).floor())
                }
                Instr::PowF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x.powf(y)),
                Instr::NegF(d, s) => ff1!(d, s, |x: f64| -x),
                Instr::AddI(d, a, b) => ii2!(d, a, b, |x: i64, y: i64| x.wrapping_add(y)),
                Instr::SubI(d, a, b) => ii2!(d, a, b, |x: i64, y: i64| x.wrapping_sub(y)),
                Instr::MulI(d, a, b) => ii2!(d, a, b, |x: i64, y: i64| x.wrapping_mul(y)),
                Instr::NegI(d, s) => ii1!(d, s, |x: i64| x.wrapping_neg()),
                Instr::AbsI(d, s) => ii1!(d, s, |x: i64| x.abs()),
                Instr::CmpF(c, d, a, b) => {
                    let dst = &mut il[*d as usize * stride..][..len];
                    let a = &fl[*a as usize * stride..][..len];
                    let b = &fl[*b as usize * stride..][..len];
                    let c = *c;
                    for ((o, &x), &y) in dst.iter_mut().zip(a).zip(b) {
                        *o = i64::from(cmp_f(c, x, y));
                    }
                }
                Instr::CmpI(c, d, a, b) => {
                    let c = *c;
                    ii2!(d, a, b, |x: i64, y: i64| i64::from(cmp_i(c, x, y)))
                }
                Instr::AndI(d, a, b) => {
                    ii2!(d, a, b, |x: i64, y: i64| i64::from(x != 0 && y != 0))
                }
                Instr::OrI(d, a, b) => {
                    ii2!(d, a, b, |x: i64, y: i64| i64::from(x != 0 || y != 0))
                }
                Instr::NotI(d, s) => ii1!(d, s, |x: i64| i64::from(x == 0)),
                // one monomorphic loop per builtin, so the vectorizable
                // ones (sqrt, abs, floor, ceil) actually vectorize
                Instr::Math1(mf, d, s) => {
                    use crate::bytecode::MathFn::*;
                    match mf {
                        Sqrt => ff1!(d, s, |x: f64| x.sqrt()),
                        Sin => ff1!(d, s, |x: f64| x.sin()),
                        Cos => ff1!(d, s, |x: f64| x.cos()),
                        Tan => ff1!(d, s, |x: f64| x.tan()),
                        Exp => ff1!(d, s, |x: f64| x.exp()),
                        Log => ff1!(d, s, |x: f64| x.ln()),
                        Abs => ff1!(d, s, |x: f64| x.abs()),
                        Floor => ff1!(d, s, |x: f64| x.floor()),
                        Ceil => ff1!(d, s, |x: f64| x.ceil()),
                    }
                }
                Instr::Math2(mf, d, a, b) => {
                    use crate::bytecode::Math2Fn::*;
                    match mf {
                        Hypot => ff2!(d, a, b, |x: f64, y: f64| x.hypot(y)),
                        Atan2 => ff2!(d, a, b, |x: f64, y: f64| x.atan2(y)),
                    }
                }
                // `powi` with a runtime exponent is a per-lane libcall
                // (`__powidf2`); inline its exact binary-exponentiation
                // multiply order for small exponents so the loop stays
                // vectorizable AND bit-identical to `x.powi(e)`.
                Instr::PowIC(d, a, e) => match *e {
                    0 => ff1!(d, a, |_x: f64| 1.0),
                    1 => ff1!(d, a, |x: f64| x),
                    2 => ff1!(d, a, |x: f64| x * x),
                    3 => ff1!(d, a, |x: f64| x * (x * x)),
                    4 => ff1!(d, a, |x: f64| {
                        let t = x * x;
                        t * t
                    }),
                    -1 => ff1!(d, a, |x: f64| 1.0 / x),
                    -2 => ff1!(d, a, |x: f64| 1.0 / (x * x)),
                    e => ff1!(d, a, |x: f64| x.powi(e)),
                },
                Instr::RemF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x % y),
                Instr::MinF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x.min(y)),
                Instr::MaxF(d, a, b) => ff2!(d, a, b, |x: f64, y: f64| x.max(y)),
                Instr::MinI(d, a, b) => ii2!(d, a, b, |x: i64, y: i64| x.min(y)),
                Instr::MaxI(d, a, b) => ii2!(d, a, b, |x: i64, y: i64| x.max(y)),
                // chunk_vectorizable admits nothing else
                other => unreachable!("non-vectorizable instruction {other:?}"),
            }
        }
    }
}

impl<'p> Vm<'p> {
    fn exec(&self, func: usize, fr: &mut Frame) -> Result<RawRet, SeamlessError> {
        let code = &self.program.funcs[func].instrs;
        let mut pc = 0usize;
        macro_rules! idx {
            ($arr:expr, $i:expr) => {{
                let len = $arr.len() as i64;
                let raw = $i;
                let j = if raw < 0 { raw + len } else { raw };
                if j < 0 || j >= len {
                    return Err(SeamlessError::Runtime(format!(
                        "index {raw} out of range for length {len}"
                    )));
                }
                j as usize
            }};
        }
        loop {
            let ins = &code[pc];
            pc += 1;
            match ins {
                Instr::ConstF(d, v) => fr.f[*d as usize] = *v,
                Instr::ConstI(d, v) => fr.i[*d as usize] = *v,
                Instr::MovF(d, s) => fr.f[*d as usize] = fr.f[*s as usize],
                Instr::MovI(d, s) => fr.i[*d as usize] = fr.i[*s as usize],
                Instr::MovArrF(d, s) => {
                    let v = fr.af[*s as usize].clone();
                    fr.af[*d as usize] = v;
                }
                Instr::MovArrI(d, s) => {
                    let v = fr.ai[*s as usize].clone();
                    fr.ai[*d as usize] = v;
                }
                Instr::IToF(d, s) => fr.f[*d as usize] = fr.i[*s as usize] as f64,
                Instr::FToI(d, s) => fr.i[*d as usize] = fr.f[*s as usize] as i64,
                Instr::AddF(d, a, b) => fr.f[*d as usize] = fr.f[*a as usize] + fr.f[*b as usize],
                Instr::SubF(d, a, b) => fr.f[*d as usize] = fr.f[*a as usize] - fr.f[*b as usize],
                Instr::MulF(d, a, b) => fr.f[*d as usize] = fr.f[*a as usize] * fr.f[*b as usize],
                Instr::DivF(d, a, b) => fr.f[*d as usize] = fr.f[*a as usize] / fr.f[*b as usize],
                Instr::ModF(d, a, b) => {
                    let (x, y) = (fr.f[*a as usize], fr.f[*b as usize]);
                    fr.f[*d as usize] = x - y * (x / y).floor();
                }
                Instr::PowF(d, a, b) => {
                    fr.f[*d as usize] = fr.f[*a as usize].powf(fr.f[*b as usize])
                }
                Instr::NegF(d, s) => fr.f[*d as usize] = -fr.f[*s as usize],
                Instr::AddI(d, a, b) => {
                    fr.i[*d as usize] = fr.i[*a as usize].wrapping_add(fr.i[*b as usize])
                }
                Instr::SubI(d, a, b) => {
                    fr.i[*d as usize] = fr.i[*a as usize].wrapping_sub(fr.i[*b as usize])
                }
                Instr::MulI(d, a, b) => {
                    fr.i[*d as usize] = fr.i[*a as usize].wrapping_mul(fr.i[*b as usize])
                }
                Instr::FloorDivI(d, a, b) => {
                    let y = fr.i[*b as usize];
                    if y == 0 {
                        return Err(SeamlessError::Runtime("integer division by zero".into()));
                    }
                    fr.i[*d as usize] = fr.i[*a as usize].div_euclid(y);
                }
                Instr::ModI(d, a, b) => {
                    let y = fr.i[*b as usize];
                    if y == 0 {
                        return Err(SeamlessError::Runtime("integer modulo by zero".into()));
                    }
                    fr.i[*d as usize] = fr.i[*a as usize].rem_euclid(y);
                }
                Instr::PowI(d, a, b) => {
                    let e = fr.i[*b as usize];
                    if e < 0 {
                        return Err(SeamlessError::Runtime(
                            "negative integer exponent (use a float base)".into(),
                        ));
                    }
                    fr.i[*d as usize] =
                        fr.i[*a as usize].wrapping_pow(e.min(u32::MAX as i64) as u32);
                }
                Instr::NegI(d, s) => fr.i[*d as usize] = -fr.i[*s as usize],
                Instr::CmpF(c, d, a, b) => {
                    let (x, y) = (fr.f[*a as usize], fr.f[*b as usize]);
                    fr.i[*d as usize] = i64::from(cmp_f(*c, x, y));
                }
                Instr::CmpI(c, d, a, b) => {
                    let (x, y) = (fr.i[*a as usize], fr.i[*b as usize]);
                    fr.i[*d as usize] = i64::from(cmp_i(*c, x, y));
                }
                Instr::AndI(d, a, b) => {
                    fr.i[*d as usize] = i64::from(fr.i[*a as usize] != 0 && fr.i[*b as usize] != 0)
                }
                Instr::OrI(d, a, b) => {
                    fr.i[*d as usize] = i64::from(fr.i[*a as usize] != 0 || fr.i[*b as usize] != 0)
                }
                Instr::NotI(d, s) => fr.i[*d as usize] = i64::from(fr.i[*s as usize] == 0),
                Instr::Jump(t) => pc = *t,
                Instr::JumpIfFalse(c, t) => {
                    if fr.i[*c as usize] == 0 {
                        pc = *t;
                    }
                }
                Instr::LenF(d, a) => fr.i[*d as usize] = fr.af[*a as usize].len() as i64,
                Instr::LenI(d, a) => fr.i[*d as usize] = fr.ai[*a as usize].len() as i64,
                Instr::LoadF(d, a, i) => {
                    let arr = &fr.af[*a as usize];
                    let j = idx!(arr, fr.i[*i as usize]);
                    fr.f[*d as usize] = arr[j];
                }
                Instr::LoadI(d, a, i) => {
                    let arr = &fr.ai[*a as usize];
                    let j = idx!(arr, fr.i[*i as usize]);
                    fr.i[*d as usize] = arr[j];
                }
                Instr::StoreF(a, i, s) => {
                    let v = fr.f[*s as usize];
                    let raw = fr.i[*i as usize];
                    let arr = &mut fr.af[*a as usize];
                    let j = idx!(arr, raw);
                    arr[j] = v;
                }
                Instr::StoreI(a, i, s) => {
                    let v = fr.i[*s as usize];
                    let raw = fr.i[*i as usize];
                    let arr = &mut fr.ai[*a as usize];
                    let j = idx!(arr, raw);
                    arr[j] = v;
                }
                Instr::NewArrF(d, n) => {
                    let n = fr.i[*n as usize];
                    if n < 0 {
                        return Err(SeamlessError::Runtime("negative array length".into()));
                    }
                    fr.af[*d as usize] = vec![0.0; n as usize];
                }
                Instr::NewArrI(d, n) => {
                    let n = fr.i[*n as usize];
                    if n < 0 {
                        return Err(SeamlessError::Runtime("negative array length".into()));
                    }
                    fr.ai[*d as usize] = vec![0; n as usize];
                }
                Instr::Math1(f, d, s) => fr.f[*d as usize] = f.apply(fr.f[*s as usize]),
                Instr::Math2(f, d, a, b) => {
                    fr.f[*d as usize] = f.apply(fr.f[*a as usize], fr.f[*b as usize])
                }
                Instr::PowIC(d, a, e) => fr.f[*d as usize] = fr.f[*a as usize].powi(*e),
                Instr::RemF(d, a, b) => fr.f[*d as usize] = fr.f[*a as usize] % fr.f[*b as usize],
                Instr::AbsI(d, s) => fr.i[*d as usize] = fr.i[*s as usize].abs(),
                Instr::MinF(d, a, b) => {
                    fr.f[*d as usize] = fr.f[*a as usize].min(fr.f[*b as usize])
                }
                Instr::MaxF(d, a, b) => {
                    fr.f[*d as usize] = fr.f[*a as usize].max(fr.f[*b as usize])
                }
                Instr::MinI(d, a, b) => {
                    fr.i[*d as usize] = fr.i[*a as usize].min(fr.i[*b as usize])
                }
                Instr::MaxI(d, a, b) => {
                    fr.i[*d as usize] = fr.i[*a as usize].max(fr.i[*b as usize])
                }
                Instr::CallExtern { ext, dst, args } => {
                    let decl = &self.program.externs[*ext];
                    let mut raw = Vec::with_capacity(args.len());
                    for &(file, reg) in args {
                        raw.push(match file {
                            RegFile::F => fr.f[reg as usize],
                            RegFile::I => fr.i[reg as usize] as f64,
                            _ => {
                                return Err(SeamlessError::Runtime(format!(
                                    "cannot pass an array to extern {}",
                                    decl.name
                                )))
                            }
                        });
                    }
                    let out = (decl.f)(&raw);
                    match dst.0 {
                        RegFile::F => fr.f[dst.1 as usize] = out,
                        RegFile::I => fr.i[dst.1 as usize] = out as i64,
                        _ => unreachable!("externs return scalars"),
                    }
                }
                Instr::ErrIfFalse(c, msg) => {
                    if fr.i[*c as usize] == 0 {
                        return Err(SeamlessError::Runtime(msg.clone()));
                    }
                }
                Instr::Call { func, dst, args } => {
                    let callee = &self.program.funcs[*func];
                    let mut inner = Frame {
                        f: vec![0.0; callee.reg_counts[0]],
                        i: vec![0; callee.reg_counts[1]],
                        af: vec![Vec::new(); callee.reg_counts[2]],
                        ai: vec![Vec::new(); callee.reg_counts[3]],
                    };
                    // move arguments in (arrays moved, scalars copied)
                    for (k, &(file, reg)) in args.iter().enumerate() {
                        let (pfile, preg) = callee.params[k];
                        match (file, pfile) {
                            (RegFile::F, RegFile::F) => inner.f[preg as usize] = fr.f[reg as usize],
                            (RegFile::I, RegFile::I) => inner.i[preg as usize] = fr.i[reg as usize],
                            (RegFile::I, RegFile::F) => {
                                inner.f[preg as usize] = fr.i[reg as usize] as f64
                            }
                            (RegFile::AF, RegFile::AF) => {
                                inner.af[preg as usize] = std::mem::take(&mut fr.af[reg as usize])
                            }
                            (RegFile::AI, RegFile::AI) => {
                                inner.ai[preg as usize] = std::mem::take(&mut fr.ai[reg as usize])
                            }
                            other => {
                                return Err(SeamlessError::Runtime(format!(
                                    "calling convention mismatch {other:?}"
                                )))
                            }
                        }
                    }
                    let raw = self.exec(*func, &mut inner)?;
                    // move arrays back (mutations become visible)
                    for (k, &(file, reg)) in args.iter().enumerate() {
                        let (_, preg) = callee.params[k];
                        match file {
                            RegFile::AF => {
                                fr.af[reg as usize] = std::mem::take(&mut inner.af[preg as usize])
                            }
                            RegFile::AI => {
                                fr.ai[reg as usize] = std::mem::take(&mut inner.ai[preg as usize])
                            }
                            _ => {}
                        }
                    }
                    if let Some((dfile, dreg)) = dst {
                        match (raw, dfile) {
                            (RawRet::F(v), RegFile::F) => fr.f[*dreg as usize] = v,
                            (RawRet::I(v), RegFile::I) => fr.i[*dreg as usize] = v,
                            (RawRet::I(v), RegFile::F) => fr.f[*dreg as usize] = v as f64,
                            (RawRet::AF(v), RegFile::AF) => fr.af[*dreg as usize] = v,
                            (RawRet::AI(v), RegFile::AI) => fr.ai[*dreg as usize] = v,
                            (RawRet::Unit, _) => {
                                return Err(SeamlessError::Runtime(format!(
                                    "{} did not return a value",
                                    callee.name
                                )))
                            }
                            other => {
                                return Err(SeamlessError::Runtime(format!(
                                    "return convention mismatch {:?}",
                                    other.1
                                )))
                            }
                        }
                    }
                }
                Instr::Ret(r) => {
                    return Ok(match r {
                        None => RawRet::Unit,
                        Some((RegFile::F, reg)) => RawRet::F(fr.f[*reg as usize]),
                        Some((RegFile::I, reg)) => RawRet::I(fr.i[*reg as usize]),
                        Some((RegFile::AF, reg)) => {
                            RawRet::AF(std::mem::take(&mut fr.af[*reg as usize]))
                        }
                        Some((RegFile::AI, reg)) => {
                            RawRet::AI(std::mem::take(&mut fr.ai[*reg as usize]))
                        }
                    });
                }
            }
        }
    }
}

/// Accept a function for the register-vectorized chunk path: a single
/// straight-line block of infallible scalar instructions ending in a
/// scalar `Ret`, where every destination register is strictly above its
/// same-file source registers (fresh-register codegen, which both the
/// pyish compiler's expression bodies and `Expr::lower` produce). The
/// ordering is what lets each instruction split the lane buffer at the
/// destination row and borrow its sources from below without aliasing.
fn chunk_vectorizable(f: &CompiledFunc) -> bool {
    let n = f.instrs.len();
    if n == 0
        || !matches!(
            f.instrs[n - 1],
            Instr::Ret(Some((RegFile::F | RegFile::I, _)))
        )
    {
        return false;
    }
    fn above(d: &crate::bytecode::Reg, srcs: &[&crate::bytecode::Reg]) -> bool {
        srcs.iter().all(|s| *d > **s)
    }
    f.instrs[..n - 1].iter().all(|ins| match ins {
        Instr::ConstF(..) | Instr::ConstI(..) => true,
        // cross-file: the two register files never alias
        Instr::IToF(..) | Instr::FToI(..) | Instr::CmpF(..) => true,
        Instr::MovF(d, s) | Instr::NegF(d, s) | Instr::Math1(_, d, s) | Instr::PowIC(d, s, _) => {
            above(d, &[s])
        }
        Instr::AddF(d, a, b)
        | Instr::SubF(d, a, b)
        | Instr::MulF(d, a, b)
        | Instr::DivF(d, a, b)
        | Instr::ModF(d, a, b)
        | Instr::PowF(d, a, b)
        | Instr::RemF(d, a, b)
        | Instr::MinF(d, a, b)
        | Instr::MaxF(d, a, b)
        | Instr::Math2(_, d, a, b) => above(d, &[a, b]),
        Instr::MovI(d, s) | Instr::NegI(d, s) | Instr::AbsI(d, s) | Instr::NotI(d, s) => {
            above(d, &[s])
        }
        Instr::AddI(d, a, b)
        | Instr::SubI(d, a, b)
        | Instr::MulI(d, a, b)
        | Instr::AndI(d, a, b)
        | Instr::OrI(d, a, b)
        | Instr::MinI(d, a, b)
        | Instr::MaxI(d, a, b)
        | Instr::CmpI(_, d, a, b) => above(d, &[a, b]),
        _ => false,
    })
}

fn cmp_f(c: Cmp, x: f64, y: f64) -> bool {
    match c {
        Cmp::Eq => x == y,
        Cmp::Ne => x != y,
        Cmp::Lt => x < y,
        Cmp::Le => x <= y,
        Cmp::Gt => x > y,
        Cmp::Ge => x >= y,
    }
}

fn cmp_i(c: Cmp, x: i64, y: i64) -> bool {
    match c {
        Cmp::Eq => x == y,
        Cmp::Ne => x != y,
        Cmp::Lt => x < y,
        Cmp::Le => x <= y,
        Cmp::Gt => x > y,
        Cmp::Ge => x >= y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_program;
    use crate::parser::parse_module;

    fn run(src: &str, f: &str, args: Vec<Value>) -> Result<CallOutput, SeamlessError> {
        let types: Vec<Type> = args.iter().map(|a| a.type_of()).collect();
        let m = parse_module(src)?;
        let p = compile_program(&m, f, &types)?;
        Vm::new(&p).call(args)
    }

    #[test]
    fn vm_matches_interpreter_on_sum() {
        let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
        let out = run(src, "sum", vec![Value::ArrF(vec![1.0, 2.0, 3.5])]).unwrap();
        assert_eq!(out.ret, Value::Float(6.5));
    }

    #[test]
    fn fib_recursion() {
        let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
";
        let out = run(src, "fib", vec![Value::Int(15)]).unwrap();
        assert_eq!(out.ret, Value::Int(610));
    }

    #[test]
    fn array_mutation_comes_back() {
        let src = "
def axpy(y, x, a):
    for i in range(len(y)):
        y[i] = y[i] + a * x[i]
";
        let out = run(
            src,
            "axpy",
            vec![
                Value::ArrF(vec![1.0, 1.0]),
                Value::ArrF(vec![1.0, 2.0]),
                Value::Float(10.0),
            ],
        )
        .unwrap();
        assert_eq!(out.args[0], Value::ArrF(vec![11.0, 21.0]));
        // x untouched
        assert_eq!(out.args[1], Value::ArrF(vec![1.0, 2.0]));
    }

    #[test]
    fn cross_function_array_mutation() {
        let src = "
def fill(a, v):
    for i in range(len(a)):
        a[i] = v

def main(a):
    fill(a, 9.0)
    return a[0]
";
        let out = run(src, "main", vec![Value::ArrF(vec![0.0, 0.0])]).unwrap();
        assert_eq!(out.ret, Value::Float(9.0));
        assert_eq!(out.args[0], Value::ArrF(vec![9.0, 9.0]));
    }

    #[test]
    fn runtime_errors_surface() {
        let src = "def f(a):\n    return a[5]\n";
        let err = run(src, "f", vec![Value::ArrF(vec![1.0])]).unwrap_err();
        assert!(matches!(err, SeamlessError::Runtime(_)));
        let src2 = "def g(n):\n    return 1 // n\n";
        let err2 = run(src2, "g", vec![Value::Int(0)]).unwrap_err();
        assert!(matches!(err2, SeamlessError::Runtime(_)));
        let src3 =
            "def h(n):\n    t = 0\n    for i in range(0, 10, n):\n        t += 1\n    return t\n";
        let err3 = run(src3, "h", vec![Value::Int(0)]).unwrap_err();
        assert!(matches!(err3, SeamlessError::Runtime(_)));
    }

    #[test]
    fn bool_returns_are_boxed_as_bool() {
        let src = "def f(x):\n    return x > 1.5\n";
        let out = run(src, "f", vec![Value::Float(2.0)]).unwrap();
        assert_eq!(out.ret, Value::Bool(true));
    }

    #[test]
    fn zeros_builtin_returns_array() {
        let src = "
def make(n):
    a = zeros(n)
    for i in range(n):
        a[i] = float(i) * 0.5
    return a
";
        let out = run(src, "make", vec![Value::Int(4)]).unwrap();
        assert_eq!(out.ret, Value::ArrF(vec![0.0, 0.5, 1.0, 1.5]));
    }

    #[test]
    fn negative_indexing_in_vm() {
        let src = "def last(a):\n    return a[-1]\n";
        let out = run(src, "last", vec![Value::ArrF(vec![3.0, 7.0])]).unwrap();
        assert_eq!(out.ret, Value::Float(7.0));
    }

    #[test]
    fn run_f64_chunk_matches_boxed_calls() {
        let src = "
def f(x, y):
    if x > y:
        return x * 2.0
    return y - x
";
        let m = parse_module(src).unwrap();
        let p = compile_program(&m, "f", &[Type::Float, Type::Float]).unwrap();
        let vm = Vm::new(&p);
        let xs = [1.0, 4.0, -2.5, 0.0];
        let ys = [3.0, 1.0, -2.5, 7.25];
        let mut out = [0.0; 4];
        vm.run_f64_chunk(0, &[&xs, &ys], &mut out).unwrap();
        for i in 0..4 {
            let boxed = vm
                .call(vec![Value::Float(xs[i]), Value::Float(ys[i])])
                .unwrap();
            assert_eq!(boxed.ret, Value::Float(out[i]));
        }
    }

    #[test]
    fn run_f64_chunk_rejects_array_params() {
        let src = "def g(a):\n    return a[0]\n";
        let m = parse_module(src).unwrap();
        let p = compile_program(&m, "g", &[Type::ArrF]).unwrap();
        let err = Vm::new(&p)
            .run_f64_chunk(0, &[&[1.0]], &mut [0.0])
            .unwrap_err();
        assert!(matches!(err, SeamlessError::Runtime(_)));
    }

    #[test]
    fn run_f64_multi_chunk_reads_intermediate_registers() {
        // Hand-built straight-line function: f2 = f0 + f1, f3 = f2 * f0.
        // Reading {f2, f3} out of one multi-chunk pass must match what
        // per-lane arithmetic says each register holds.
        let func = CompiledFunc {
            name: "multi".into(),
            params: vec![(RegFile::F, 0), (RegFile::F, 1)],
            param_types: vec![Type::Float, Type::Float],
            ret: Type::Float,
            reg_counts: [4, 0, 0, 0],
            instrs: vec![
                Instr::AddF(2, 0, 1),
                Instr::MulF(3, 2, 0),
                Instr::Ret(Some((RegFile::F, 3))),
            ],
        };
        let p = Program {
            funcs: vec![func],
            externs: vec![],
        };
        let vm = Vm::new(&p);
        let xs = [1.5, -2.0, 0.25, 7.0];
        let ys = [0.5, 3.0, -1.25, 2.0];
        let mut a = [0.0; 4];
        let mut b = [0.0; 4];
        vm.run_f64_multi_chunk(0, &[&xs, &ys], &[2, 3], &mut [&mut a, &mut b])
            .unwrap();
        for i in 0..4 {
            assert_eq!(a[i].to_bits(), (xs[i] + ys[i]).to_bits());
            assert_eq!(b[i].to_bits(), ((xs[i] + ys[i]) * xs[i]).to_bits());
        }
        // The Ret register row must agree with the single-output path.
        let mut single = [0.0; 4];
        vm.run_f64_chunk(0, &[&xs, &ys], &mut single).unwrap();
        assert_eq!(b, single);
        // Out-of-range output register is a runtime error, not UB.
        let err = vm
            .run_f64_multi_chunk(0, &[&xs, &ys], &[9], &mut [&mut a])
            .unwrap_err();
        assert!(matches!(err, SeamlessError::Runtime(_)));
    }

    #[test]
    fn run_f64_multi_chunk_interpreter_fallback_matches() {
        // A looping function is not chunk-vectorizable; the per-lane
        // fallback must still read registers out correctly.
        let src = "
def f(x, y):
    acc = x
    i = 0
    while i < 3:
        acc = acc * 2.0 + y
        i = i + 1
    return acc
";
        let m = parse_module(src).unwrap();
        let p = compile_program(&m, "f", &[Type::Float, Type::Float]).unwrap();
        let vm = Vm::new(&p);
        let xs = [1.0, 4.0, -2.5, 0.0];
        let ys = [3.0, 1.0, -2.5, 7.25];
        let ret_reg = match p.funcs[0].instrs.iter().rev().find_map(|i| match i {
            Instr::Ret(Some((RegFile::F, r))) => Some(*r),
            _ => None,
        }) {
            Some(r) => r,
            None => return, // compiler changed Ret shape; nothing to probe
        };
        let mut multi = [0.0; 4];
        vm.run_f64_multi_chunk(0, &[&xs, &ys], &[ret_reg], &mut [&mut multi])
            .unwrap();
        let mut single = [0.0; 4];
        vm.run_f64_chunk(0, &[&xs, &ys], &mut single).unwrap();
        assert_eq!(multi, single);
    }

    #[test]
    fn while_break_continue_match_interpreter() {
        let src = "
def f(n):
    total = 0
    i = 0
    while True:
        i = i + 1
        if i > n:
            break
        if i % 2 == 0:
            continue
        total = total + i
    return total
";
        let out = run(src, "f", vec![Value::Int(9)]).unwrap();
        assert_eq!(out.ret, Value::Int(25));
    }
}
