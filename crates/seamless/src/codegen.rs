//! Tiered native kernel codegen: lower typed-register bytecode to C,
//! compile it with the system compiler through the CModule plane
//! ([`crate::cmodule::compile_and_load`]), and hand back a chunk function
//! the kernel dispatcher can swap in for the VM.
//!
//! This is the missing compiled half of the paper's §IV claim — "export
//! Python-defined algorithms to statically-typed host code". The tier
//! discipline mirrors the E20 gating rules:
//!
//! 1. every kernel runs on the VM immediately (tier 0 — always correct);
//! 2. a straight-line, infallible, scalar body is *monomorphized* per
//!    (kernel, dtype) into a C chunk function
//!    `void name$dtype$hash(const double* const* in, double* const* out,
//!    size_t n)` and compiled once per process;
//! 3. the native symbol is swapped in **only after a bitwise-parity
//!    probe** against the VM on seeded inputs at several widths. Any
//!    mismatch, compile failure, or unsupported opcode refuses the
//!    program permanently (per process) and execution stays on the VM.
//!
//! Parity is engineered, not hoped for: constants are emitted as exact
//! bit patterns, `powi` uses the VM's inline expansions for small
//! exponents and `__powidf2`'s multiply order otherwise, float→int casts
//! saturate exactly like Rust `as`, integer arithmetic wraps via unsigned
//! casts, and the build passes `-ffp-contract=off` so the C compiler
//! cannot fuse multiply-adds the interpreter keeps separate. The probe
//! then catches anything this reasoning missed.
//!
//! The cache is process-global on purpose: ODIN ranks are threads in one
//! process, so a pool respawn (`recover()`) re-arms the native tier with
//! zero recompiles — the replayed `RegisterKernel` hits the same entry.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::bytecode::{Cmp, CompiledFunc, Instr, Math2Fn, MathFn, Program, Reg, RegFile};
use crate::cmodule;
use crate::vm::Vm;

/// ABI of a compiled f64 chunk function: `in` points at one full-length
/// row per kernel parameter, `out` at one row per output register, `n` is
/// the lane count.
pub type NativeF64 = unsafe extern "C" fn(*const *const f64, *const *mut f64, usize);
/// The `i64` twin (bools travel as 0/1).
pub type NativeI64 = unsafe extern "C" fn(*const *const i64, *const *mut i64, usize);

/// A probed, cached native f64 chunk function plus its arity, wrapped so
/// callers get slice-checked dispatch instead of raw pointers.
#[derive(Clone, Copy)]
pub struct NativeF64Fn {
    f: NativeF64,
    n_in: usize,
    n_out: usize,
}

impl NativeF64Fn {
    /// Run the native body over `n` lanes. Panics (like a slice index
    /// would) if arity or lengths don't line up — callers stage
    /// full-length rows.
    pub fn run(&self, inputs: &[&[f64]], outs: &mut [&mut [f64]], n: usize) {
        assert_eq!(inputs.len(), self.n_in, "native kernel input arity");
        assert_eq!(outs.len(), self.n_out, "native kernel output arity");
        assert!(
            inputs.iter().all(|r| r.len() >= n),
            "native input rows too short"
        );
        assert!(
            outs.iter().all(|r| r.len() >= n),
            "native output rows too short"
        );
        if n == 0 {
            return;
        }
        let in_ptrs: Vec<*const f64> = inputs.iter().map(|r| r.as_ptr()).collect();
        let out_ptrs: Vec<*mut f64> = outs.iter_mut().map(|r| r.as_mut_ptr()).collect();
        // SAFETY: the symbol was compiled for exactly n_in/n_out rows, the
        // rows are ≥ n lanes long, and the parity probe exercised this
        // pointer protocol before the function was ever published.
        unsafe { (self.f)(in_ptrs.as_ptr(), out_ptrs.as_ptr(), n) }
    }
}

/// A probed, cached native i64 chunk function (single output).
#[derive(Clone, Copy)]
pub struct NativeI64Fn {
    f: NativeI64,
    n_in: usize,
}

impl NativeI64Fn {
    /// Run over `n` lanes into one output row.
    pub fn run(&self, inputs: &[&[i64]], out: &mut [i64], n: usize) {
        assert_eq!(inputs.len(), self.n_in, "native kernel input arity");
        assert!(
            inputs.iter().all(|r| r.len() >= n),
            "native input rows too short"
        );
        assert!(out.len() >= n, "native output row too short");
        if n == 0 {
            return;
        }
        let in_ptrs: Vec<*const i64> = inputs.iter().map(|r| r.as_ptr()).collect();
        let out_ptr: [*mut i64; 1] = [out.as_mut_ptr()];
        // SAFETY: as in NativeF64Fn::run.
        unsafe { (self.f)(in_ptrs.as_ptr(), out_ptr.as_ptr(), n) }
    }
}

// fn pointers are Send + Sync, so entries can live in a global map.
#[derive(Clone, Copy)]
enum Entry {
    F64(NativeF64Fn),
    I64(NativeI64Fn),
    /// Compile failed, probe failed, or the body is not native-compilable:
    /// never try again this process.
    Refused,
}

/// Which monomorphization a cache key names.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    program_hash: u64,
    /// 0 = f64 scalar-return, 1 = f64 multi-output, 2 = i64 scalar-return.
    abi: u8,
    out_regs: Vec<Reg>,
}

fn cache() -> &'static Mutex<HashMap<Key, Entry>> {
    static CACHE: OnceLock<Mutex<HashMap<Key, Entry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

static COMPILED: AtomicU64 = AtomicU64::new(0);
static REFUSED: AtomicU64 = AtomicU64::new(0);
static PROBE_FAILED: AtomicU64 = AtomicU64::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime codegen counters (monotonic; tests take relative
/// snapshots because the whole suite shares one process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodegenStats {
    /// Monomorphizations compiled, probed, and published.
    pub compiled: u64,
    /// Programs refused (unsupported opcode, no compiler, cc failure).
    pub refused: u64,
    /// Programs that compiled but failed the bitwise parity probe (these
    /// are also counted in `refused`).
    pub probe_failed: u64,
    /// Cache hits: an already-published (or already-refused) entry was
    /// reused without touching the compiler.
    pub cache_hits: u64,
}

/// Read the counters.
pub fn stats() -> CodegenStats {
    CodegenStats {
        compiled: COMPILED.load(Ordering::Relaxed),
        refused: REFUSED.load(Ordering::Relaxed),
        probe_failed: PROBE_FAILED.load(Ordering::Relaxed),
        cache_hits: CACHE_HITS.load(Ordering::Relaxed),
    }
}

/// `HPC_KERNEL_TIER=vm` pins every kernel to the VM tier — the CI
/// fallback for machines without a C compiler, and the A/B switch the
/// benches use. Read per call (tests in one process flip it).
pub fn vm_forced() -> bool {
    std::env::var("HPC_KERNEL_TIER")
        .map(|v| v == "vm")
        .unwrap_or(false)
}

/// Whether the native tier can arm at all on this machine right now.
pub fn native_available() -> bool {
    !vm_forced() && cmodule::system_cc().is_some()
}

/// A compiled function's body with the compiler's trailing `Ret(None)`
/// epilogue stripped: `compile_program` appends one after every function
/// body, so real kernels end `[…, Ret(Some(r)), Ret(None)]`. The strip is
/// only observable when the remaining tail is a scalar `Ret` — and the
/// whitelist below admits no jumps, so the stripped instructions were
/// unreachable.
fn effective_instrs(f: &CompiledFunc) -> &[Instr] {
    let mut n = f.instrs.len();
    while n > 1 && matches!(f.instrs[n - 1], Instr::Ret(None)) {
        n -= 1;
    }
    &f.instrs[..n]
}

/// Instruction classes the C emitter handles: straight-line, infallible,
/// scalar-only bodies ending in a scalar `Ret` — the same class as the
/// VM's vectorized chunk path, minus its register-ordering requirement
/// (C locals don't alias rows).
pub fn native_compilable(program: &Program) -> bool {
    if !program.externs.is_empty() || program.funcs.is_empty() {
        return false;
    }
    let f = &program.funcs[0];
    let instrs = effective_instrs(f);
    let n = instrs.len();
    if n == 0
        || !matches!(
            instrs[n - 1],
            Instr::Ret(Some((RegFile::F | RegFile::I, _)))
        )
    {
        return false;
    }
    instrs[..n - 1].iter().all(|ins| {
        matches!(
            ins,
            Instr::ConstF(..)
                | Instr::ConstI(..)
                | Instr::MovF(..)
                | Instr::MovI(..)
                | Instr::IToF(..)
                | Instr::FToI(..)
                | Instr::AddF(..)
                | Instr::SubF(..)
                | Instr::MulF(..)
                | Instr::DivF(..)
                | Instr::ModF(..)
                | Instr::PowF(..)
                | Instr::NegF(..)
                | Instr::AddI(..)
                | Instr::SubI(..)
                | Instr::MulI(..)
                | Instr::NegI(..)
                | Instr::CmpF(..)
                | Instr::CmpI(..)
                | Instr::AndI(..)
                | Instr::OrI(..)
                | Instr::NotI(..)
                | Instr::Math1(..)
                | Instr::Math2(..)
                | Instr::PowIC(..)
                | Instr::RemF(..)
                | Instr::AbsI(..)
                | Instr::MinF(..)
                | Instr::MaxF(..)
                | Instr::MinI(..)
                | Instr::MaxI(..)
        )
    })
}

fn program_hash(program: &Program) -> u64 {
    // Wire encoding is exact (f64 travels as bits), so distinct programs
    // get distinct byte strings. Externs are refused before this runs.
    let bytes = comm::encode_to_vec(program);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    bytes.hash(&mut h);
    h.finish()
}

/// `identity$f64$1a2b3c4d`-style symbol mangling: source name (sanitized
/// to C identifier characters — `$` is accepted by gcc/clang on ELF),
/// dtype tag, program hash.
fn mangle(name: &str, dtype: &str, hash: u64, out_regs: &[Reg]) -> String {
    let mut base: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if base.is_empty() || base.starts_with(|c: char| c.is_ascii_digit()) {
        base.insert(0, 'k');
    }
    if out_regs.is_empty() {
        format!("{base}${dtype}${hash:016x}")
    } else {
        format!("{base}${dtype}x{}${hash:016x}", out_regs.len())
    }
}

// ---------------------------------------------------------------------------
// C emission
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Abi {
    /// f64 rows in, one f64 row out of the trailing `Ret`.
    F64Ret,
    /// f64 rows in, one f64 row per listed output register.
    F64Multi,
    /// i64 rows in, one i64 row out of the trailing `Ret`.
    I64Ret,
}

impl Abi {
    fn tag(self) -> u8 {
        match self {
            Abi::F64Ret => 0,
            Abi::F64Multi => 1,
            Abi::I64Ret => 2,
        }
    }
}

const C_PRELUDE: &str = r#"#include <math.h>
#include <stddef.h>
#include <string.h>
typedef long long sl_i64;
typedef unsigned long long sl_u64;
/* exact f64 constants: bit pattern in, double out */
static double sl_db(sl_u64 u) { double d; memcpy(&d, &u, 8); return d; }
/* float -> int with Rust `as` semantics: saturate, NaN -> 0 */
static sl_i64 sl_f2i(double x) {
    if (x != x) return 0;
    if (x >= 9223372036854775808.0) return 9223372036854775807LL;
    if (x < -9223372036854775808.0) return -9223372036854775807LL - 1;
    return (sl_i64)x;
}
/* __powidf2's exact multiply order (also LLVM's inline powi expansion) */
static double sl_powi(double a, sl_i64 b) {
    int recip = b < 0;
    double r = 1.0;
    while (1) {
        if (b & 1) r *= a;
        b /= 2;
        if (b == 0) break;
        a *= a;
    }
    return recip ? 1.0 / r : r;
}
"#;

fn cmp_op(c: Cmp) -> &'static str {
    match c {
        Cmp::Eq => "==",
        Cmp::Ne => "!=",
        Cmp::Lt => "<",
        Cmp::Le => "<=",
        Cmp::Gt => ">",
        Cmp::Ge => ">=",
    }
}

fn math1_fn(m: MathFn) -> &'static str {
    match m {
        MathFn::Sqrt => "sqrt",
        MathFn::Sin => "sin",
        MathFn::Cos => "cos",
        MathFn::Tan => "tan",
        MathFn::Exp => "exp",
        MathFn::Log => "log",
        MathFn::Abs => "fabs",
        MathFn::Floor => "floor",
        MathFn::Ceil => "ceil",
    }
}

fn math2_fn(m: Math2Fn) -> &'static str {
    match m {
        Math2Fn::Hypot => "hypot",
        Math2Fn::Atan2 => "atan2",
    }
}

fn const_i64(v: i64) -> String {
    if v == i64::MIN {
        // the literal 9223372036854775808 has no signed type in C
        "(-9223372036854775807LL - 1)".to_string()
    } else {
        format!("{v}LL")
    }
}

/// One C statement per instruction. Every emission mirrors the exact
/// operation (and operand order) of the VM's `exec`/`vector_pass` arms —
/// see module docs for the parity rules.
fn emit_instr(ins: &Instr) -> Option<String> {
    Some(match ins {
        Instr::ConstF(d, v) => format!("f{d} = sl_db(0x{:016x}ULL); /* {v:?} */", v.to_bits()),
        Instr::ConstI(d, v) => format!("i{d} = {};", const_i64(*v)),
        Instr::MovF(d, s) => format!("f{d} = f{s};"),
        Instr::MovI(d, s) => format!("i{d} = i{s};"),
        Instr::IToF(d, s) => format!("f{d} = (double)i{s};"),
        Instr::FToI(d, s) => format!("i{d} = sl_f2i(f{s});"),
        Instr::AddF(d, a, b) => format!("f{d} = f{a} + f{b};"),
        Instr::SubF(d, a, b) => format!("f{d} = f{a} - f{b};"),
        Instr::MulF(d, a, b) => format!("f{d} = f{a} * f{b};"),
        Instr::DivF(d, a, b) => format!("f{d} = f{a} / f{b};"),
        Instr::ModF(d, a, b) => format!("f{d} = f{a} - f{b} * floor(f{a} / f{b});"),
        Instr::PowF(d, a, b) => format!("f{d} = pow(f{a}, f{b});"),
        Instr::NegF(d, s) => format!("f{d} = -f{s};"),
        Instr::AddI(d, a, b) => format!("i{d} = (sl_i64)((sl_u64)i{a} + (sl_u64)i{b});"),
        Instr::SubI(d, a, b) => format!("i{d} = (sl_i64)((sl_u64)i{a} - (sl_u64)i{b});"),
        Instr::MulI(d, a, b) => format!("i{d} = (sl_i64)((sl_u64)i{a} * (sl_u64)i{b});"),
        Instr::NegI(d, s) => format!("i{d} = (sl_i64)(0ULL - (sl_u64)i{s});"),
        Instr::AbsI(d, s) => {
            format!("i{d} = i{s} < 0 ? (sl_i64)(0ULL - (sl_u64)i{s}) : i{s};")
        }
        Instr::CmpF(c, d, a, b) => format!("i{d} = (sl_i64)(f{a} {} f{b});", cmp_op(*c)),
        Instr::CmpI(c, d, a, b) => format!("i{d} = (sl_i64)(i{a} {} i{b});", cmp_op(*c)),
        Instr::AndI(d, a, b) => format!("i{d} = (sl_i64)(i{a} != 0 && i{b} != 0);"),
        Instr::OrI(d, a, b) => format!("i{d} = (sl_i64)(i{a} != 0 || i{b} != 0);"),
        Instr::NotI(d, s) => format!("i{d} = (sl_i64)(i{s} == 0);"),
        Instr::Math1(m, d, s) => format!("f{d} = {}(f{s});", math1_fn(*m)),
        Instr::Math2(m, d, a, b) => format!("f{d} = {}(f{a}, f{b});", math2_fn(*m)),
        // the VM's exact inline expansions for the exponents its
        // vectorized path strength-reduces; __powidf2 order otherwise
        Instr::PowIC(d, a, e) => match *e {
            0 => format!("f{d} = 1.0;"),
            1 => format!("f{d} = f{a};"),
            2 => format!("f{d} = f{a} * f{a};"),
            3 => format!("f{d} = f{a} * (f{a} * f{a});"),
            4 => format!("{{ double t = f{a} * f{a}; f{d} = t * t; }}"),
            -1 => format!("f{d} = 1.0 / f{a};"),
            -2 => format!("f{d} = 1.0 / (f{a} * f{a});"),
            e => format!("f{d} = sl_powi(f{a}, {e}LL);"),
        },
        Instr::RemF(d, a, b) => format!("f{d} = fmod(f{a}, f{b});"),
        Instr::MinF(d, a, b) => format!("f{d} = fmin(f{a}, f{b});"),
        Instr::MaxF(d, a, b) => format!("f{d} = fmax(f{a}, f{b});"),
        Instr::MinI(d, a, b) => format!("i{d} = i{a} < i{b} ? i{a} : i{b};"),
        Instr::MaxI(d, a, b) => format!("i{d} = i{a} > i{b} ? i{a} : i{b};"),
        _ => return None,
    })
}

/// Emit the full translation unit for one monomorphization. Returns
/// `None` when any instruction falls outside the emitter's class.
fn emit_c(f: &CompiledFunc, symbol: &str, abi: Abi, out_regs: &[Reg]) -> Option<String> {
    let (in_ty, out_ty) = match abi {
        Abi::I64Ret => ("sl_i64", "sl_i64"),
        _ => ("double", "double"),
    };
    let mut src = String::with_capacity(2048 + 64 * f.instrs.len());
    src.push_str(C_PRELUDE);
    src.push_str(&format!(
        "void {symbol}(const {in_ty}* const* in, {out_ty}* const* out, size_t n) {{\n"
    ));
    src.push_str("    for (size_t lane = 0; lane < n; ++lane) {\n");
    // registers zero-initialized per lane, matching the VM's fallback
    // frame discipline (and the vectorized path's zeroed rows)
    for r in 0..f.reg_counts[0] {
        src.push_str(&format!("        double f{r} = 0.0;\n"));
    }
    for r in 0..f.reg_counts[1] {
        src.push_str(&format!("        sl_i64 i{r} = 0;\n"));
    }
    for (k, &(file, reg)) in f.params.iter().enumerate() {
        match (abi, file) {
            (Abi::I64Ret, RegFile::I) => {
                src.push_str(&format!("        i{reg} = in[{k}][lane];\n"))
            }
            (Abi::F64Ret | Abi::F64Multi, RegFile::F) => {
                src.push_str(&format!("        f{reg} = in[{k}][lane];\n"))
            }
            _ => return None,
        }
    }
    let instrs = effective_instrs(f);
    let n = instrs.len();
    for ins in &instrs[..n - 1] {
        src.push_str("        ");
        src.push_str(&emit_instr(ins)?);
        src.push('\n');
    }
    match (abi, &instrs[n - 1]) {
        (Abi::F64Ret, Instr::Ret(Some((RegFile::F, r)))) => {
            src.push_str(&format!("        out[0][lane] = f{r};\n"));
        }
        (Abi::F64Ret, Instr::Ret(Some((RegFile::I, r)))) => {
            // integer returns widen to f64, as in run_f64_chunk
            src.push_str(&format!("        out[0][lane] = (double)i{r};\n"));
        }
        (Abi::I64Ret, Instr::Ret(Some((RegFile::I, r)))) => {
            src.push_str(&format!("        out[0][lane] = i{r};\n"));
        }
        (Abi::F64Multi, Instr::Ret(_)) => {
            for (j, r) in out_regs.iter().enumerate() {
                src.push_str(&format!("        out[{j}][lane] = f{r};\n"));
            }
        }
        _ => return None,
    }
    src.push_str("    }\n}\n");
    Some(src)
}

// ---------------------------------------------------------------------------
// Parity probe
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Probe widths: every width 1–8 (the satellite parity matrix) plus one
/// chunk big enough to push the VM onto its vectorized path.
const PROBE_WIDTHS: &[usize] = &[1, 2, 3, 4, 5, 6, 7, 8, 256];

fn probe_f64_inputs(arity: usize, width: usize, seed: u64) -> Vec<Vec<f64>> {
    const FIXED: &[f64] = &[0.0, 1.0, -1.0, 0.5, -2.0, 3.25, 0.125, -0.75];
    let mut state = seed;
    (0..arity)
        .map(|k| {
            (0..width)
                .map(|lane| {
                    if lane < FIXED.len() && (lane + k) % 3 != 2 {
                        FIXED[(lane + k) % FIXED.len()]
                    } else {
                        let u = splitmix(&mut state);
                        let x = (u >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
                        (x - 0.5) * 8.0
                    }
                })
                .collect()
        })
        .collect()
}

fn probe_i64_inputs(arity: usize, width: usize, seed: u64) -> Vec<Vec<i64>> {
    const FIXED: &[i64] = &[0, 1, -1, 2, -3, 5, -8, 13];
    let mut state = seed;
    (0..arity)
        .map(|k| {
            (0..width)
                .map(|lane| {
                    if lane < FIXED.len() && (lane + k) % 3 != 2 {
                        FIXED[(lane + k) % FIXED.len()]
                    } else {
                        (splitmix(&mut state) as i64) % 1000
                    }
                })
                .collect()
        })
        .collect()
}

fn probe_f64(program: &Program, nf: NativeF64Fn, out_regs: &[Reg], seed: u64) -> bool {
    let arity = program.funcs[0].params.len();
    let vm = Vm::new(program);
    for &w in PROBE_WIDTHS {
        let rows = probe_f64_inputs(arity, w, seed ^ w as u64);
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        if out_regs.is_empty() {
            let mut vm_out = vec![0.0f64; w];
            if vm.run_f64_chunk(0, &refs, &mut vm_out).is_err() {
                return false;
            }
            let mut native_out = vec![0.0f64; w];
            nf.run(&refs, &mut [&mut native_out[..]], w);
            if vm_out
                .iter()
                .zip(&native_out)
                .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return false;
            }
        } else {
            let mut vm_rows = vec![vec![0.0f64; w]; out_regs.len()];
            {
                let mut vm_outs: Vec<&mut [f64]> =
                    vm_rows.iter_mut().map(|r| r.as_mut_slice()).collect();
                if vm
                    .run_f64_multi_chunk(0, &refs, out_regs, &mut vm_outs)
                    .is_err()
                {
                    return false;
                }
            }
            let mut native_rows = vec![vec![0.0f64; w]; out_regs.len()];
            {
                let mut native_outs: Vec<&mut [f64]> =
                    native_rows.iter_mut().map(|r| r.as_mut_slice()).collect();
                nf.run(&refs, &mut native_outs, w);
            }
            for (vr, nr) in vm_rows.iter().zip(&native_rows) {
                if vr.iter().zip(nr).any(|(a, b)| a.to_bits() != b.to_bits()) {
                    return false;
                }
            }
        }
    }
    true
}

fn probe_i64(program: &Program, nf: NativeI64Fn, seed: u64) -> bool {
    let arity = program.funcs[0].params.len();
    let vm = Vm::new(program);
    for &w in PROBE_WIDTHS {
        let rows = probe_i64_inputs(arity, w, seed ^ w as u64);
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut vm_out = vec![0i64; w];
        if vm.run_i64_chunk(0, &refs, &mut vm_out).is_err() {
            return false;
        }
        let mut native_out = vec![0i64; w];
        nf.run(&refs, &mut native_out, w);
        if vm_out != native_out {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Public tier entry points
// ---------------------------------------------------------------------------

fn refuse(key: Key) {
    REFUSED.fetch_add(1, Ordering::Relaxed);
    cache().lock().unwrap().insert(key, Entry::Refused);
}

/// Fetch (compiling on first use) the native f64 monomorphization of a
/// program. `out_regs: None` compiles the scalar-return ABI used by
/// `EvalKernel`; `Some(regs)` compiles the multi-output ABI used by fused
/// trace groups (`EvalKernelMulti`), dumping the listed F registers.
///
/// Returns `None` — and the caller stays on the VM — when the tier is
/// pinned off (`HPC_KERNEL_TIER=vm`), no C compiler exists, the body
/// falls outside the emitter's class, the compile fails, or the bitwise
/// parity probe fails. All but the first two are cached as permanent
/// refusals.
pub fn native_f64(program: &Program, out_regs: Option<&[Reg]>) -> Option<NativeF64Fn> {
    if vm_forced() || cmodule::system_cc().is_none() {
        return None;
    }
    if !native_compilable(program) {
        return None;
    }
    let f = &program.funcs[0];
    if f.params.iter().any(|&(file, _)| file != RegFile::F) {
        return None;
    }
    let (abi, regs) = match out_regs {
        None => (Abi::F64Ret, Vec::new()),
        Some(rs) => {
            if rs.is_empty() || rs.iter().any(|&r| r as usize >= f.reg_counts[0]) {
                return None;
            }
            (Abi::F64Multi, rs.to_vec())
        }
    };
    let hash = program_hash(program);
    let key = Key {
        program_hash: hash,
        abi: abi.tag(),
        out_regs: regs.clone(),
    };
    if let Some(entry) = cache().lock().unwrap().get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return match entry {
            Entry::F64(nf) => Some(*nf),
            _ => None,
        };
    }
    let symbol = mangle(&f.name, "f64", hash, &regs);
    let Some(c_src) = emit_c(f, &symbol, abi, &regs) else {
        refuse(key);
        return None;
    };
    let addr = match cmodule::compile_and_load(&c_src, &symbol) {
        Ok(a) => a,
        Err(_) => {
            refuse(key);
            return None;
        }
    };
    // SAFETY: the symbol was just emitted with exactly this signature.
    let raw: NativeF64 = unsafe { std::mem::transmute(addr) };
    let nf = NativeF64Fn {
        f: raw,
        n_in: f.params.len(),
        n_out: if regs.is_empty() { 1 } else { regs.len() },
    };
    if !probe_f64(program, nf, &regs, hash) {
        PROBE_FAILED.fetch_add(1, Ordering::Relaxed);
        refuse(key);
        return None;
    }
    COMPILED.fetch_add(1, Ordering::Relaxed);
    cache().lock().unwrap().insert(key, Entry::F64(nf));
    Some(nf)
}

/// Fetch (compiling on first use) the native i64 monomorphization: i64
/// rows in, one i64 row out. Bool kernels ride this ABI as 0/1. Same
/// refusal semantics as [`native_f64`].
pub fn native_i64(program: &Program) -> Option<NativeI64Fn> {
    if vm_forced() || cmodule::system_cc().is_none() {
        return None;
    }
    if !native_compilable(program) {
        return None;
    }
    let f = &program.funcs[0];
    if f.params.iter().any(|&(file, _)| file != RegFile::I) {
        return None;
    }
    if !matches!(
        effective_instrs(f).last(),
        Some(Instr::Ret(Some((RegFile::I, _))))
    ) {
        return None;
    }
    let hash = program_hash(program);
    let key = Key {
        program_hash: hash,
        abi: Abi::I64Ret.tag(),
        out_regs: Vec::new(),
    };
    if let Some(entry) = cache().lock().unwrap().get(&key) {
        CACHE_HITS.fetch_add(1, Ordering::Relaxed);
        return match entry {
            Entry::I64(nf) => Some(*nf),
            _ => None,
        };
    }
    let symbol = mangle(&f.name, "i64", hash, &[]);
    let Some(c_src) = emit_c(f, &symbol, Abi::I64Ret, &[]) else {
        refuse(key);
        return None;
    };
    let addr = match cmodule::compile_and_load(&c_src, &symbol) {
        Ok(a) => a,
        Err(_) => {
            refuse(key);
            return None;
        }
    };
    // SAFETY: the symbol was just emitted with exactly this signature.
    let raw: NativeI64 = unsafe { std::mem::transmute(addr) };
    let nf = NativeI64Fn {
        f: raw,
        n_in: f.params.len(),
    };
    if !probe_i64(program, nf, hash) {
        PROBE_FAILED.fetch_add(1, Ordering::Relaxed);
        refuse(key);
        return None;
    }
    COMPILED.fetch_add(1, Ordering::Relaxed);
    cache().lock().unwrap().insert(key, Entry::I64(nf));
    Some(nf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    // HPC_KERNEL_TIER is process-global; serialize every test that reads
    // or writes it so the env-flip test can't race the probe tests.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn f64_program(instrs: Vec<Instr>, arity: usize, n_f: usize, n_i: usize) -> Program {
        Program {
            funcs: vec![CompiledFunc {
                name: "probe".into(),
                params: (0..arity).map(|k| (RegFile::F, k as Reg)).collect(),
                param_types: vec![Type::Float; arity],
                ret: Type::Float,
                reg_counts: [n_f, n_i, 0, 0],
                instrs,
            }],
            externs: Vec::new(),
        }
    }

    #[test]
    fn straight_line_bodies_are_compilable() {
        let p = f64_program(
            vec![Instr::MulF(1, 0, 0), Instr::Ret(Some((RegFile::F, 1)))],
            1,
            2,
            0,
        );
        assert!(native_compilable(&p));
    }

    #[test]
    fn loops_and_arrays_are_refused() {
        let p = f64_program(
            vec![Instr::Jump(0), Instr::Ret(Some((RegFile::F, 0)))],
            1,
            1,
            0,
        );
        assert!(!native_compilable(&p));
        let q = Program {
            funcs: vec![CompiledFunc {
                name: "arr".into(),
                params: vec![(RegFile::AF, 0)],
                param_types: vec![Type::ArrF],
                ret: Type::ArrF,
                reg_counts: [0, 0, 1, 0],
                instrs: vec![Instr::Ret(Some((RegFile::AF, 0)))],
            }],
            externs: Vec::new(),
        };
        assert!(!native_compilable(&q));
    }

    #[test]
    fn mangling_is_c_safe_and_dtype_tagged() {
        let s = mangle("weird name!", "f64", 0xABCD, &[]);
        assert!(s.starts_with("weird_name_$f64$"));
        let m = mangle("stencil", "f64", 1, &[3, 5]);
        assert!(m.contains("$f64x2$"));
    }

    #[test]
    fn native_matches_vm_bitwise_on_a_nontrivial_body() {
        let _g = env_lock();
        if !native_available() {
            return; // bare machine: VM-only fallback
        }
        // f1 = x*x; f2 = sin(f1); f3 = f2 / x; i0 = (f3 < x); f4 = i0 -> f
        let p = f64_program(
            vec![
                Instr::MulF(1, 0, 0),
                Instr::Math1(MathFn::Sin, 2, 1),
                Instr::DivF(3, 2, 0),
                Instr::CmpF(Cmp::Lt, 0, 3, 0),
                Instr::PowIC(4, 3, 3),
                Instr::AddF(5, 4, 3),
                Instr::Ret(Some((RegFile::F, 5))),
            ],
            1,
            6,
            1,
        );
        let before = stats();
        let nf = native_f64(&p, None).expect("body compiles and passes the probe");
        assert_eq!(stats().compiled, before.compiled + 1);
        // the probe already checked widths 1..=8 and 256; spot-check again
        let xs: Vec<f64> = (0..37).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut native_out = vec![0.0; xs.len()];
        nf.run(&[&xs], &mut [&mut native_out[..]], xs.len());
        let vm = Vm::new(&p);
        let mut vm_out = vec![0.0; xs.len()];
        vm.run_f64_chunk(0, &[&xs], &mut vm_out).unwrap();
        for (a, b) in vm_out.iter().zip(&native_out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // second fetch is a cache hit, not a recompile
        let hits = stats().cache_hits;
        let _ = native_f64(&p, None).unwrap();
        assert_eq!(stats().cache_hits, hits + 1);
        assert_eq!(stats().compiled, before.compiled + 1);
    }

    #[test]
    fn i64_native_matches_vm() {
        let _g = env_lock();
        if !native_available() {
            return;
        }
        // wrapping mul + abs + min: i1 = x*x; i2 = |y - i1|; ret min(i2, x)
        let p = Program {
            funcs: vec![CompiledFunc {
                name: "imix".into(),
                params: vec![(RegFile::I, 0), (RegFile::I, 1)],
                param_types: vec![Type::Int; 2],
                ret: Type::Int,
                reg_counts: [0, 5, 0, 0],
                instrs: vec![
                    Instr::MulI(2, 0, 0),
                    Instr::SubI(3, 1, 2),
                    Instr::AbsI(3, 3),
                    Instr::MinI(4, 3, 0),
                    Instr::Ret(Some((RegFile::I, 4))),
                ],
            }],
            externs: Vec::new(),
        };
        let nf = native_i64(&p).expect("i64 body compiles");
        let xs: Vec<i64> = (-20..20).collect();
        let ys: Vec<i64> = (0..40).map(|i| i * 7 - 100).collect();
        let mut native_out = vec![0i64; xs.len()];
        nf.run(&[&xs, &ys], &mut native_out, xs.len());
        let vm = Vm::new(&p);
        let mut vm_out = vec![0i64; xs.len()];
        vm.run_i64_chunk(0, &[&xs, &ys], &mut vm_out).unwrap();
        assert_eq!(vm_out, native_out);
    }

    #[test]
    fn vm_forced_pins_the_tier_off() {
        let _g = env_lock();
        let p = f64_program(
            vec![Instr::MulF(1, 0, 0), Instr::Ret(Some((RegFile::F, 1)))],
            1,
            2,
            0,
        );
        std::env::set_var("HPC_KERNEL_TIER", "vm");
        assert!(native_f64(&p, None).is_none());
        assert!(!native_available());
        std::env::remove_var("HPC_KERNEL_TIER");
    }

    #[test]
    fn multi_output_abi_matches_vm_rows() {
        let _g = env_lock();
        if !native_available() {
            return;
        }
        // two outputs from one body: f1 = x + x, f2 = x * f1
        let p = f64_program(
            vec![
                Instr::AddF(1, 0, 0),
                Instr::MulF(2, 0, 1),
                Instr::Ret(Some((RegFile::F, 2))),
            ],
            1,
            3,
            0,
        );
        let nf = native_f64(&p, Some(&[1, 2])).expect("multi body compiles");
        let xs: Vec<f64> = (0..19).map(|i| i as f64 * 0.5 - 4.0).collect();
        let mut n1 = vec![0.0; xs.len()];
        let mut n2 = vec![0.0; xs.len()];
        nf.run(&[&xs], &mut [&mut n1[..], &mut n2[..]], xs.len());
        let vm = Vm::new(&p);
        let mut v1 = vec![0.0; xs.len()];
        let mut v2 = vec![0.0; xs.len()];
        {
            let mut outs: Vec<&mut [f64]> = vec![&mut v1[..], &mut v2[..]];
            vm.run_f64_multi_chunk(0, &[&xs], &[1, 2], &mut outs)
                .unwrap();
        }
        assert_eq!(
            v1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            n1.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            v2.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            n2.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }
}
