//! Header-driven foreign functions (§IV-C): "the argument types and return
//! types of the exposed functions are automatically discovered. One has
//! only to specify the header file location … and all functions defined in
//! the header file are immediately available for use."
//!
//! The reproduction parses C-style declarations (`double atan2(double,
//! double);`) to *discover signatures*, then dispatches into a registry of
//! "system libraries" implemented in Rust — the role the dynamic loader
//! plays for real Seamless. Calls are signature-checked and arguments are
//! converted per C conversion rules.
//!
//! ```
//! use seamless::{CModule, Value};
//! // the paper's §IV-C example
//! let libm = CModule::load_system("m").unwrap();
//! let v = libm.call("atan2", &[Value::Float(1.0), Value::Float(2.0)]).unwrap();
//! assert_eq!(v, Value::Float((1.0f64).atan2(2.0)));
//! ```

use std::collections::HashMap;

use crate::value::Value;
use crate::SeamlessError;

/// C types we model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CType {
    /// `double`
    Double,
    /// `float`
    Float,
    /// `int`
    Int,
    /// `long`
    Long,
    /// `void`
    Void,
}

impl CType {
    fn parse(s: &str) -> Option<CType> {
        Some(match s.trim() {
            "double" => CType::Double,
            "float" => CType::Float,
            "int" => CType::Int,
            "long" | "long int" | "long long" => CType::Long,
            "void" => CType::Void,
            _ => return None,
        })
    }
}

/// A discovered function signature.
#[derive(Debug, Clone, PartialEq)]
pub struct CSignature {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: CType,
    /// Parameter types.
    pub params: Vec<CType>,
}

/// Parse C-style declarations from header text. Handles comments,
/// multi-line declarations, parameter names, and `void` parameter lists.
pub fn parse_header(text: &str) -> Result<Vec<CSignature>, SeamlessError> {
    // strip // and /* */ comments
    let mut clean = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '/' {
            match chars.peek() {
                Some('/') => {
                    for c2 in chars.by_ref() {
                        if c2 == '\n' {
                            clean.push('\n');
                            break;
                        }
                    }
                    continue;
                }
                Some('*') => {
                    chars.next();
                    let mut prev = ' ';
                    for c2 in chars.by_ref() {
                        if prev == '*' && c2 == '/' {
                            break;
                        }
                        prev = c2;
                    }
                    clean.push(' ');
                    continue;
                }
                _ => {}
            }
        }
        clean.push(c);
    }
    let mut sigs = Vec::new();
    for decl in clean.split(';') {
        let decl = decl.trim();
        if decl.is_empty() || decl.starts_with('#') {
            continue;
        }
        let Some(open) = decl.find('(') else {
            continue; // not a function declaration (e.g. a typedef)
        };
        let Some(close) = decl.rfind(')') else {
            return Err(SeamlessError::Ffi(format!("unbalanced parens in {decl:?}")));
        };
        let head = decl[..open].trim();
        let params_text = &decl[open + 1..close];
        // head = "<ret type...> <name>"
        let Some(name_start) = head.rfind(|c: char| c.is_whitespace() || c == '*') else {
            continue;
        };
        let name = head[name_start + 1..].trim().to_string();
        let ret_text = head[..name_start + 1].replace("extern", "");
        let Some(ret) = CType::parse(&ret_text) else {
            return Err(SeamlessError::Ffi(format!(
                "unsupported return type {:?} for {name}",
                ret_text.trim()
            )));
        };
        let mut params = Vec::new();
        let pt = params_text.trim();
        if !pt.is_empty() && pt != "void" {
            for p in pt.split(',') {
                // drop the parameter name if present: "double x" → "double"
                let p = p.trim();
                let type_part = match p.rfind(|c: char| c.is_whitespace()) {
                    Some(i) if CType::parse(&p[..i]).is_some() => &p[..i],
                    _ => p,
                };
                let Some(t) = CType::parse(type_part) else {
                    return Err(SeamlessError::Ffi(format!(
                        "unsupported parameter type {p:?} in {name}"
                    )));
                };
                params.push(t);
            }
        }
        sigs.push(CSignature { name, ret, params });
    }
    Ok(sigs)
}

/// The native implementation behind a discovered symbol.
pub type NativeFn = fn(&[f64]) -> f64;

/// A loaded "library": discovered signatures bound to native symbols.
#[derive(Clone)]
pub struct CModule {
    name: String,
    sigs: HashMap<String, CSignature>,
    symbols: HashMap<String, NativeFn>,
}

/// The libm-like symbol table the registry serves for library `"m"`
/// (mirrors "the call to the cmath constructor will find the system's
/// built-in math library").
fn libm_symbols() -> HashMap<String, NativeFn> {
    let mut m: HashMap<String, NativeFn> = HashMap::new();
    m.insert("sin".into(), |a| a[0].sin());
    m.insert("cos".into(), |a| a[0].cos());
    m.insert("tan".into(), |a| a[0].tan());
    m.insert("asin".into(), |a| a[0].asin());
    m.insert("acos".into(), |a| a[0].acos());
    m.insert("atan".into(), |a| a[0].atan());
    m.insert("atan2".into(), |a| a[0].atan2(a[1]));
    m.insert("exp".into(), |a| a[0].exp());
    m.insert("log".into(), |a| a[0].ln());
    m.insert("log10".into(), |a| a[0].log10());
    m.insert("pow".into(), |a| a[0].powf(a[1]));
    m.insert("sqrt".into(), |a| a[0].sqrt());
    m.insert("cbrt".into(), |a| a[0].cbrt());
    m.insert("hypot".into(), |a| a[0].hypot(a[1]));
    m.insert("floor".into(), |a| a[0].floor());
    m.insert("ceil".into(), |a| a[0].ceil());
    m.insert("fabs".into(), |a| a[0].abs());
    m.insert("fmod".into(), |a| a[0] % a[1]);
    m.insert("sinh".into(), |a| a[0].sinh());
    m.insert("cosh".into(), |a| a[0].cosh());
    m.insert("tanh".into(), |a| a[0].tanh());
    m.insert("abs".into(), |a| a[0].abs());
    m.insert("labs".into(), |a| a[0].abs());
    m
}

/// The default math.h-like header text used by [`CModule::load_system`].
pub const MATH_H: &str = "
/* a math.h excerpt */
double sin(double x);
double cos(double x);
double tan(double x);
double asin(double x);
double acos(double x);
double atan(double x);
double atan2(double y, double x);
double exp(double x);
double log(double x);
double log10(double x);
double pow(double base, double exponent);
double sqrt(double x);
double cbrt(double x);
double hypot(double x, double y);
double floor(double x);
double ceil(double x);
double fabs(double x);
double fmod(double x, double y);
double sinh(double x);
double cosh(double x);
double tanh(double x);
int abs(int n);
long labs(long n);
";

impl CModule {
    /// Load a library from a header and an explicit symbol table.
    pub fn load(
        name: &str,
        header: &str,
        symbols: HashMap<String, NativeFn>,
    ) -> Result<CModule, SeamlessError> {
        let sigs = parse_header(header)?
            .into_iter()
            .map(|s| (s.name.clone(), s))
            .collect::<HashMap<_, _>>();
        Ok(CModule {
            name: name.to_string(),
            sigs,
            symbols,
        })
    }

    /// Load a system library by name (the `cmath('m')` flow). Only the
    /// math library exists in the registry.
    pub fn load_system(lib: &str) -> Result<CModule, SeamlessError> {
        match lib {
            "m" | "math" => Self::load("m", MATH_H, libm_symbols()),
            other => Err(SeamlessError::Ffi(format!(
                "library {other:?} not found in the registry"
            ))),
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All discovered signatures (sorted by name).
    pub fn signatures(&self) -> Vec<&CSignature> {
        let mut v: Vec<&CSignature> = self.sigs.values().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// The discovered signature of one function.
    pub fn signature(&self, name: &str) -> Option<&CSignature> {
        self.sigs.get(name)
    }

    /// The raw native symbol (used by the compiler to emit direct calls
    /// from pyish code into the library — §IV-A meets §IV-C).
    pub fn native(&self, name: &str) -> Option<NativeFn> {
        self.symbols.get(name).copied()
    }

    /// Call a foreign function with boxed values; arguments are checked
    /// and converted per the *discovered* signature.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value, SeamlessError> {
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| SeamlessError::Ffi(format!("{name} not declared in header")))?;
        if args.len() != sig.params.len() {
            return Err(SeamlessError::Ffi(format!(
                "{name} takes {} arguments, got {}",
                sig.params.len(),
                args.len()
            )));
        }
        let mut raw = Vec::with_capacity(args.len());
        for (v, t) in args.iter().zip(&sig.params) {
            let x = v
                .as_f64()
                .ok_or_else(|| SeamlessError::Ffi(format!("{name}: cannot pass {v:?} as {t:?}")))?;
            // C conversion: integral parameters truncate
            raw.push(match t {
                CType::Int | CType::Long => x.trunc(),
                _ => x,
            });
        }
        let f = self
            .symbols
            .get(name)
            .ok_or_else(|| SeamlessError::Ffi(format!("{name} declared but not in library")))?;
        let out = f(&raw);
        Ok(match sig.ret {
            CType::Double | CType::Float => Value::Float(out),
            CType::Int | CType::Long => Value::Int(out as i64),
            CType::Void => Value::Unit,
        })
    }
}

// ---------------------------------------------------------------------------
// Tempdir compile-and-load: the real dynamic-loader half of the CModule
// plane, used by the tiered kernel JIT (`codegen`). Where `CModule::load`
// serves a *registry* of Rust-implemented symbols, this path shells out to
// the system C compiler, builds a shared object in a per-process temp
// directory, and resolves the symbol with `dlopen`/`dlsym`.
// ---------------------------------------------------------------------------

/// Locate a working system C compiler, probing `$CC`, then `cc`, `gcc`,
/// `clang` with `--version`. The probe runs once per process.
pub fn system_cc() -> Option<&'static str> {
    use std::sync::OnceLock;
    static CC: OnceLock<Option<String>> = OnceLock::new();
    CC.get_or_init(|| {
        let mut candidates: Vec<String> = Vec::new();
        if let Ok(env_cc) = std::env::var("CC") {
            if !env_cc.trim().is_empty() {
                candidates.push(env_cc);
            }
        }
        for c in ["cc", "gcc", "clang"] {
            candidates.push(c.to_string());
        }
        candidates.into_iter().find(|cand| {
            std::process::Command::new(cand)
                .arg("--version")
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .status()
                .map(|s| s.success())
                .unwrap_or(false)
        })
    })
    .as_deref()
}

#[cfg(unix)]
mod dl {
    //! Minimal `dlopen`/`dlsym` bindings. These live in libc proper on
    //! every platform we build on (glibc ≥ 2.34 folded libdl in), so no
    //! crate dependency is needed.
    use std::os::raw::{c_char, c_int, c_void};
    extern "C" {
        pub fn dlopen(filename: *const c_char, flags: c_int) -> *mut c_void;
        pub fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
        pub fn dlerror() -> *mut c_char;
    }
    pub const RTLD_NOW: c_int = 2;
}

/// Compile `c_source` with the system C compiler into a shared object in
/// a per-process temp directory, `dlopen` it, and return the address of
/// `symbol`. The library handle is deliberately leaked so the returned
/// address stays valid for the life of the process (the JIT caches one
/// entry per monomorphization, so the leak is bounded by distinct
/// kernels).
///
/// Flags: `-O2 -fPIC -shared -ffp-contract=off -lm`. Contraction is
/// disabled because the native tier is gated on *bitwise* parity with the
/// VM — a fused multiply-add would round differently than the
/// interpreter's separate multiply and add.
#[cfg(unix)]
pub fn compile_and_load(c_source: &str, symbol: &str) -> Result<usize, SeamlessError> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    let cc = system_cc()
        .ok_or_else(|| SeamlessError::Ffi("no system C compiler (cc/gcc/clang)".into()))?;
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("seamless-native-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| SeamlessError::Ffi(format!("native tempdir: {e}")))?;
    let c_path = dir.join(format!("k{n}.c"));
    let so_path = dir.join(format!("k{n}.so"));
    let mut f = std::fs::File::create(&c_path)
        .map_err(|e| SeamlessError::Ffi(format!("write {}: {e}", c_path.display())))?;
    f.write_all(c_source.as_bytes())
        .map_err(|e| SeamlessError::Ffi(format!("write {}: {e}", c_path.display())))?;
    drop(f);
    let out = std::process::Command::new(cc)
        .arg("-O2")
        .arg("-fPIC")
        .arg("-shared")
        .arg("-ffp-contract=off")
        .arg("-o")
        .arg(&so_path)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .map_err(|e| SeamlessError::Ffi(format!("spawn {cc}: {e}")))?;
    if !out.status.success() {
        return Err(SeamlessError::Ffi(format!(
            "{cc} failed on generated kernel: {}",
            String::from_utf8_lossy(&out.stderr)
        )));
    }
    let so_c = std::ffi::CString::new(so_path.to_string_lossy().into_owned())
        .map_err(|_| SeamlessError::Ffi("NUL in shared object path".into()))?;
    let sym_c = std::ffi::CString::new(symbol)
        .map_err(|_| SeamlessError::Ffi("NUL in symbol name".into()))?;
    unsafe {
        let handle = dl::dlopen(so_c.as_ptr(), dl::RTLD_NOW);
        if handle.is_null() {
            let err = dl::dlerror();
            let msg = if err.is_null() {
                "unknown dlopen failure".to_string()
            } else {
                std::ffi::CStr::from_ptr(err).to_string_lossy().into_owned()
            };
            return Err(SeamlessError::Ffi(format!("dlopen: {msg}")));
        }
        let addr = dl::dlsym(handle, sym_c.as_ptr());
        if addr.is_null() {
            return Err(SeamlessError::Ffi(format!(
                "dlsym: {symbol} missing from compiled kernel"
            )));
        }
        // handle intentionally never dlclose()d — see doc comment
        Ok(addr as usize)
    }
}

/// Non-unix fallback: the native tier is unavailable; callers stay on the
/// VM.
#[cfg(not(unix))]
pub fn compile_and_load(_c_source: &str, _symbol: &str) -> Result<usize, SeamlessError> {
    Err(SeamlessError::Ffi(
        "native kernel loading requires a unix dynamic loader".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_atan2() {
        // "libm = cmath('m'); libm.atan2(1.0, 2.0)"
        let libm = CModule::load_system("m").unwrap();
        let v = libm
            .call("atan2", &[Value::Float(1.0), Value::Float(2.0)])
            .unwrap();
        assert_eq!(v, Value::Float(1.0f64.atan2(2.0)));
    }

    #[test]
    fn signatures_are_discovered_not_specified() {
        let libm = CModule::load_system("m").unwrap();
        let sig = libm.signature("pow").unwrap();
        assert_eq!(sig.params, vec![CType::Double, CType::Double]);
        assert_eq!(sig.ret, CType::Double);
        assert!(libm.signatures().len() >= 20);
    }

    #[test]
    fn arity_and_type_checking() {
        let libm = CModule::load_system("m").unwrap();
        assert!(libm.call("sin", &[]).is_err());
        assert!(libm
            .call("sin", &[Value::Float(1.0), Value::Float(2.0)])
            .is_err());
        assert!(libm.call("sin", &[Value::ArrF(vec![])]).is_err());
        assert!(libm.call("nosuchfn", &[Value::Float(1.0)]).is_err());
    }

    #[test]
    fn integral_conversion_rules() {
        let libm = CModule::load_system("m").unwrap();
        // int abs(int): float arg truncates like C
        let v = libm.call("abs", &[Value::Float(-3.7)]).unwrap();
        assert_eq!(v, Value::Int(3));
        // int arguments widen into double params
        let v2 = libm.call("sqrt", &[Value::Int(9)]).unwrap();
        assert_eq!(v2, Value::Float(3.0));
    }

    #[test]
    fn header_parser_handles_noise() {
        let h = "
// leading comment
double f(double); /* inline */ int g(int a, long b);
long h(void);
double multi(
    double x,
    double y);
";
        let sigs = parse_header(h).unwrap();
        assert_eq!(sigs.len(), 4);
        assert_eq!(sigs[0].name, "f");
        assert_eq!(sigs[1].params, vec![CType::Int, CType::Long]);
        assert_eq!(sigs[2].params, vec![]);
        assert_eq!(sigs[3].params, vec![CType::Double, CType::Double]);
    }

    #[test]
    fn custom_library_loads() {
        let mut syms: HashMap<String, NativeFn> = HashMap::new();
        syms.insert("double_it".into(), |a| a[0] * 2.0);
        let lib = CModule::load("mylib", "double double_it(double x);", syms).unwrap();
        assert_eq!(lib.name(), "mylib");
        let v = lib.call("double_it", &[Value::Float(21.0)]).unwrap();
        assert_eq!(v, Value::Float(42.0));
    }

    #[test]
    fn unknown_library_rejected() {
        assert!(CModule::load_system("nonexistent").is_err());
    }

    #[test]
    fn unsupported_types_rejected() {
        assert!(parse_header("char *strcpy(char *dst, char *src);").is_err());
    }

    #[cfg(unix)]
    #[test]
    fn compile_and_load_resolves_a_symbol() {
        if system_cc().is_none() {
            return; // bare machine: the VM-only fallback covers this
        }
        let addr = compile_and_load(
            "double add3$f64(double x) { return x + 3.0; }\n",
            "add3$f64",
        )
        .expect("trivial kernel compiles");
        let f: extern "C" fn(f64) -> f64 = unsafe { std::mem::transmute(addr) };
        assert_eq!(f(4.0), 7.0);
    }

    #[cfg(unix)]
    #[test]
    fn compile_errors_are_reported_not_fatal() {
        if system_cc().is_none() {
            return;
        }
        assert!(compile_and_load("this is not C", "nope").is_err());
    }
}
