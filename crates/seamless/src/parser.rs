//! Recursive-descent parser for pyish.

use crate::ast::{BinOp, Expr, FuncDef, Module, Stmt, TypeAnn, UnOp};
use crate::lexer::{tokenize, Kw, Op, Tok, Token};
use crate::SeamlessError;

/// Parse a module (a sequence of `def`s).
pub fn parse_module(src: &str) -> Result<Module, SeamlessError> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    loop {
        while p.eat(&Tok::Newline) {}
        if p.check(&Tok::Eof) {
            break;
        }
        functions.push(p.funcdef()?);
    }
    Ok(Module { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Tok) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.check(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), SeamlessError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(SeamlessError::Parse(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn name(&mut self, what: &str) -> Result<String, SeamlessError> {
        match self.bump() {
            Tok::Name(n) => Ok(n),
            other => Err(SeamlessError::Parse(
                self.line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn type_ann(&mut self) -> Result<TypeAnn, SeamlessError> {
        let n = self.name("type annotation")?;
        Ok(match n.as_str() {
            "int" => TypeAnn::Int,
            "float" => TypeAnn::Float,
            "bool" => TypeAnn::Bool,
            "list" | "arr" | "arrf" => TypeAnn::ArrF,
            "arri" => TypeAnn::ArrI,
            other => {
                return Err(SeamlessError::Parse(
                    self.line(),
                    format!("unknown type annotation {other}"),
                ))
            }
        })
    }

    fn funcdef(&mut self) -> Result<FuncDef, SeamlessError> {
        self.expect(&Tok::Kw(Kw::Def), "'def'")?;
        let name = self.name("function name")?;
        self.expect(&Tok::Op(Op::LParen), "'('")?;
        let mut params = Vec::new();
        if !self.check(&Tok::Op(Op::RParen)) {
            loop {
                let pname = self.name("parameter name")?;
                let ann = if self.eat(&Tok::Op(Op::Colon)) {
                    Some(self.type_ann()?)
                } else {
                    None
                };
                params.push((pname, ann));
                if !self.eat(&Tok::Op(Op::Comma)) {
                    break;
                }
            }
        }
        self.expect(&Tok::Op(Op::RParen), "')'")?;
        self.expect(&Tok::Op(Op::Colon), "':'")?;
        let body = self.block()?;
        Ok(FuncDef { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, SeamlessError> {
        self.expect(&Tok::Newline, "newline before block")?;
        self.expect(&Tok::Indent, "indented block")?;
        let mut stmts = Vec::new();
        while !self.check(&Tok::Dedent) && !self.check(&Tok::Eof) {
            stmts.push(self.stmt()?);
        }
        self.eat(&Tok::Dedent);
        if stmts.is_empty() {
            return Err(SeamlessError::Parse(self.line(), "empty block".into()));
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, SeamlessError> {
        match self.peek().clone() {
            Tok::Kw(Kw::If) => self.if_stmt(),
            Tok::Kw(Kw::While) => {
                self.bump();
                let cond = self.expr()?;
                self.expect(&Tok::Op(Op::Colon), "':'")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::Kw(Kw::For) => {
                self.bump();
                let var = self.name("loop variable")?;
                self.expect(&Tok::Kw(Kw::In), "'in'")?;
                let callee = self.name("'range'")?;
                if callee != "range" {
                    return Err(SeamlessError::Parse(
                        self.line(),
                        "for loops support only range(...)".into(),
                    ));
                }
                self.expect(&Tok::Op(Op::LParen), "'('")?;
                let first = self.expr()?;
                let (start, stop, step) = if self.eat(&Tok::Op(Op::Comma)) {
                    let second = self.expr()?;
                    if self.eat(&Tok::Op(Op::Comma)) {
                        let third = self.expr()?;
                        (first, second, third)
                    } else {
                        (first, second, Expr::Int(1))
                    }
                } else {
                    (Expr::Int(0), first, Expr::Int(1))
                };
                self.expect(&Tok::Op(Op::RParen), "')'")?;
                self.expect(&Tok::Op(Op::Colon), "':'")?;
                let body = self.block()?;
                Ok(Stmt::ForRange {
                    var,
                    start,
                    stop,
                    step,
                    body,
                })
            }
            Tok::Kw(Kw::Return) => {
                self.bump();
                let value = if self.check(&Tok::Newline) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&Tok::Newline, "newline after return")?;
                Ok(Stmt::Return(value))
            }
            Tok::Kw(Kw::Pass) => {
                self.bump();
                self.expect(&Tok::Newline, "newline after pass")?;
                Ok(Stmt::Pass)
            }
            Tok::Kw(Kw::Break) => {
                self.bump();
                self.expect(&Tok::Newline, "newline after break")?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.bump();
                self.expect(&Tok::Newline, "newline after continue")?;
                Ok(Stmt::Continue)
            }
            _ => self.simple_stmt(),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, SeamlessError> {
        // consumes 'if' or 'elif'
        self.bump();
        let cond = self.expr()?;
        self.expect(&Tok::Op(Op::Colon), "':'")?;
        let then = self.block()?;
        let orelse = if self.check(&Tok::Kw(Kw::Elif)) {
            vec![self.if_stmt()?]
        } else if self.eat(&Tok::Kw(Kw::Else)) {
            self.expect(&Tok::Op(Op::Colon), "':'")?;
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then, orelse })
    }

    fn simple_stmt(&mut self) -> Result<Stmt, SeamlessError> {
        // annotated assignment: NAME ':' type '=' expr
        if let (Tok::Name(n), Tok::Op(Op::Colon)) = (self.peek().clone(), self.peek2().clone()) {
            let save = self.pos;
            self.bump(); // name
            self.bump(); // colon
            match self.type_ann() {
                Ok(ann) => {
                    self.expect(&Tok::Op(Op::Assign), "'=' after annotation")?;
                    let value = self.expr()?;
                    self.expect(&Tok::Newline, "newline")?;
                    return Ok(Stmt::Assign {
                        name: n,
                        ann: Some(ann),
                        value,
                    });
                }
                Err(_) => {
                    self.pos = save;
                }
            }
        }
        let target = self.expr()?;
        let aug = |op: Op| -> Option<BinOp> {
            Some(match op {
                Op::PlusAssign => BinOp::Add,
                Op::MinusAssign => BinOp::Sub,
                Op::StarAssign => BinOp::Mul,
                Op::SlashAssign => BinOp::Div,
                _ => return None,
            })
        };
        match self.peek().clone() {
            Tok::Op(Op::Assign) => {
                self.bump();
                let value = self.expr()?;
                self.expect(&Tok::Newline, "newline")?;
                match target {
                    Expr::Name(name) => Ok(Stmt::Assign {
                        name,
                        ann: None,
                        value,
                    }),
                    Expr::Index(arr, idx) => match *arr {
                        Expr::Name(name) => Ok(Stmt::AssignIndex {
                            name,
                            index: *idx,
                            value,
                        }),
                        _ => Err(SeamlessError::Parse(
                            self.line(),
                            "can only assign to variables or var[index]".into(),
                        )),
                    },
                    _ => Err(SeamlessError::Parse(
                        self.line(),
                        "invalid assignment target".into(),
                    )),
                }
            }
            Tok::Op(op) if aug(op).is_some() => {
                self.bump();
                let bop = aug(op).unwrap();
                let value = self.expr()?;
                self.expect(&Tok::Newline, "newline")?;
                match target {
                    Expr::Name(name) => Ok(Stmt::AugAssign {
                        name,
                        op: bop,
                        value,
                    }),
                    Expr::Index(arr, idx) => match *arr {
                        Expr::Name(name) => Ok(Stmt::AugAssignIndex {
                            name,
                            index: *idx,
                            op: bop,
                            value,
                        }),
                        _ => Err(SeamlessError::Parse(
                            self.line(),
                            "can only assign to variables or var[index]".into(),
                        )),
                    },
                    _ => Err(SeamlessError::Parse(
                        self.line(),
                        "invalid assignment target".into(),
                    )),
                }
            }
            _ => {
                self.expect(&Tok::Newline, "newline")?;
                Ok(Stmt::ExprStmt(target))
            }
        }
    }

    // ---- expressions, precedence climbing ----

    fn expr(&mut self) -> Result<Expr, SeamlessError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SeamlessError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Kw(Kw::Or)) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, SeamlessError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Tok::Kw(Kw::And)) {
            let rhs = self.not_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, SeamlessError> {
        if self.eat(&Tok::Kw(Kw::Not)) {
            let e = self.not_expr()?;
            Ok(Expr::Un(UnOp::Not, Box::new(e)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, SeamlessError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Tok::Op(Op::Eq) => Some(BinOp::Eq),
            Tok::Op(Op::Ne) => Some(BinOp::Ne),
            Tok::Op(Op::Lt) => Some(BinOp::Lt),
            Tok::Op(Op::Le) => Some(BinOp::Le),
            Tok::Op(Op::Gt) => Some(BinOp::Gt),
            Tok::Op(Op::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, SeamlessError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Op(Op::Plus) => BinOp::Add,
                Tok::Op(Op::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, SeamlessError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Op(Op::Star) => BinOp::Mul,
                Tok::Op(Op::Slash) => BinOp::Div,
                Tok::Op(Op::SlashSlash) => BinOp::FloorDiv,
                Tok::Op(Op::Percent) => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, SeamlessError> {
        if self.eat(&Tok::Op(Op::Minus)) {
            let e = self.unary_expr()?;
            Ok(Expr::Un(UnOp::Neg, Box::new(e)))
        } else {
            self.power()
        }
    }

    fn power(&mut self) -> Result<Expr, SeamlessError> {
        let base = self.postfix()?;
        if self.eat(&Tok::Op(Op::StarStar)) {
            // right-associative; unary binds tighter on the right in
            // Python: 2 ** -1 is allowed
            let exp = self.unary_expr()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn postfix(&mut self) -> Result<Expr, SeamlessError> {
        let mut e = self.atom()?;
        loop {
            if self.eat(&Tok::Op(Op::LBracket)) {
                let idx = self.expr()?;
                self.expect(&Tok::Op(Op::RBracket), "']'")?;
                e = Expr::Index(Box::new(e), Box::new(idx));
            } else if self.check(&Tok::Op(Op::LParen)) {
                match e {
                    Expr::Name(name) => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.check(&Tok::Op(Op::RParen)) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Op(Op::Comma)) {
                                    break;
                                }
                            }
                        }
                        self.expect(&Tok::Op(Op::RParen), "')'")?;
                        e = Expr::Call { name, args };
                    }
                    _ => {
                        return Err(SeamlessError::Parse(
                            self.line(),
                            "only named functions can be called".into(),
                        ))
                    }
                }
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<Expr, SeamlessError> {
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Kw(Kw::True) => Ok(Expr::Bool(true)),
            Tok::Kw(Kw::False) => Ok(Expr::Bool(false)),
            Tok::Name(n) => Ok(Expr::Name(n)),
            Tok::Op(Op::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::Op(Op::RParen), "')'")?;
                Ok(e)
            }
            other => Err(SeamlessError::Parse(
                self.line(),
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_fn(src: &str) -> FuncDef {
        parse_module(src).unwrap().functions.pop().unwrap()
    }

    #[test]
    fn parses_the_papers_sum_example() {
        let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
        let f = parse_fn(src);
        assert_eq!(f.name, "sum");
        assert_eq!(f.params, vec![("it".to_string(), None)]);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[1], Stmt::ForRange { .. }));
    }

    #[test]
    fn operator_precedence() {
        let f = parse_fn("def f(x):\n    return 1 + x * 2 ** 3\n");
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        // 1 + (x * (2 ** 3))
        let Expr::Bin(BinOp::Add, _, rhs) = e else {
            panic!("not add at top: {e:?}")
        };
        let Expr::Bin(BinOp::Mul, _, pow) = rhs.as_ref() else {
            panic!("not mul: {rhs:?}")
        };
        assert!(matches!(pow.as_ref(), Expr::Bin(BinOp::Pow, _, _)));
    }

    #[test]
    fn comparison_and_bool_ops() {
        let f = parse_fn("def f(a, b):\n    return a < b and not b == 1 or True\n");
        let Stmt::Return(Some(e)) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Bin(BinOp::Or, _, _)));
    }

    #[test]
    fn if_elif_else_chain() {
        let src = "
def f(x):
    if x > 0:
        return 1
    elif x < 0:
        return -1
    else:
        return 0
";
        let f = parse_fn(src);
        let Stmt::If { orelse, .. } = &f.body[0] else {
            panic!()
        };
        assert_eq!(orelse.len(), 1);
        let Stmt::If { orelse: inner, .. } = &orelse[0] else {
            panic!("elif should nest")
        };
        assert_eq!(inner.len(), 1);
    }

    #[test]
    fn range_variants() {
        let f = parse_fn("def f(n):\n    for i in range(2, n, 3):\n        pass\n");
        let Stmt::ForRange {
            start, stop, step, ..
        } = &f.body[0]
        else {
            panic!()
        };
        assert_eq!(start, &Expr::Int(2));
        assert_eq!(stop, &Expr::Name("n".into()));
        assert_eq!(step, &Expr::Int(3));
    }

    #[test]
    fn augmented_and_indexed_assignment() {
        let src = "
def f(a, i):
    a[i] = 1.0
    a[i] += 2.0
    x = 0
    x *= 3
    return a[i]
";
        let f = parse_fn(src);
        assert!(matches!(f.body[0], Stmt::AssignIndex { .. }));
        assert!(matches!(
            f.body[1],
            Stmt::AugAssignIndex { op: BinOp::Add, .. }
        ));
        assert!(matches!(f.body[3], Stmt::AugAssign { op: BinOp::Mul, .. }));
    }

    #[test]
    fn annotations() {
        let f = parse_fn("def f(x: float, n: int, a: list):\n    y: float = x\n    return y\n");
        assert_eq!(f.params[0].1, Some(TypeAnn::Float));
        assert_eq!(f.params[1].1, Some(TypeAnn::Int));
        assert_eq!(f.params[2].1, Some(TypeAnn::ArrF));
        assert!(matches!(
            f.body[0],
            Stmt::Assign {
                ann: Some(TypeAnn::Float),
                ..
            }
        ));
    }

    #[test]
    fn multiple_functions() {
        let m = parse_module("def a():\n    return 1\n\ndef b():\n    return 2\n").unwrap();
        assert_eq!(m.functions.len(), 2);
        assert!(m.function("a").is_some());
        assert!(m.function("b").is_some());
        assert!(m.function("c").is_none());
    }

    #[test]
    fn errors_have_line_numbers() {
        let err = parse_module("def f(:\n    return 1\n").unwrap_err();
        assert!(matches!(err, SeamlessError::Parse(_, _)));
        // an error on a clean statement line reports that line
        let err2 = parse_module("def f():\n    return +\n").unwrap_err();
        assert!(matches!(err2, SeamlessError::Parse(2, _)), "{err2:?}");
    }

    #[test]
    fn nested_calls_and_indexing() {
        let f = parse_fn("def f(a, b):\n    return g(a[0], h(b))[1]\n");
        let Stmt::Return(Some(Expr::Index(call, _))) = &f.body[0] else {
            panic!()
        };
        assert!(matches!(call.as_ref(), Expr::Call { .. }));
    }
}
