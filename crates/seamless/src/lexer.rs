//! Tokenizer for pyish: indentation-sensitive, Python-style.

use crate::SeamlessError;

/// One token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind/payload.
    pub kind: Tok,
    /// Source line.
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier.
    Name(String),
    /// Keyword.
    Kw(Kw),
    /// Operator / punctuation.
    Op(Op),
    /// End of logical line.
    Newline,
    /// Indentation increased.
    Indent,
    /// Indentation decreased.
    Dedent,
    /// End of input.
    Eof,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    /// `def`
    Def,
    /// `return`
    Return,
    /// `if`
    If,
    /// `elif`
    Elif,
    /// `else`
    Else,
    /// `while`
    While,
    /// `for`
    For,
    /// `in`
    In,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `True`
    True,
    /// `False`
    False,
    /// `pass`
    Pass,
    /// `break`
    Break,
    /// `continue`
    Continue,
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `**`
    StarStar,
    /// `/`
    Slash,
    /// `//`
    SlashSlash,
    /// `%`
    Percent,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `/=`
    SlashAssign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "def" => Kw::Def,
        "return" => Kw::Return,
        "if" => Kw::If,
        "elif" => Kw::Elif,
        "else" => Kw::Else,
        "while" => Kw::While,
        "for" => Kw::For,
        "in" => Kw::In,
        "and" => Kw::And,
        "or" => Kw::Or,
        "not" => Kw::Not,
        "True" => Kw::True,
        "False" => Kw::False,
        "pass" => Kw::Pass,
        "break" => Kw::Break,
        "continue" => Kw::Continue,
        _ => return None,
    })
}

/// Tokenize a module. Tabs are not allowed in indentation; comments start
/// with `#`; blank lines are skipped; indentation must be consistent
/// (each level a multiple of the first indent seen, Python-style stack).
pub fn tokenize(src: &str) -> Result<Vec<Token>, SeamlessError> {
    let mut tokens = Vec::new();
    let mut indent_stack: Vec<usize> = vec![0];
    let mut paren_depth = 0usize;
    for (lineno, raw) in src.lines().enumerate() {
        let line_no = lineno + 1;
        // strip comments (no string literals in pyish, so this is safe)
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        };
        if line.trim().is_empty() {
            continue;
        }
        if line.contains('\t') {
            return Err(SeamlessError::Lex(
                line_no,
                "tabs are not allowed; use spaces".into(),
            ));
        }
        let indent = line.len() - line.trim_start_matches(' ').len();
        if paren_depth == 0 {
            let current = *indent_stack.last().unwrap();
            if indent > current {
                indent_stack.push(indent);
                tokens.push(Token {
                    kind: Tok::Indent,
                    line: line_no,
                });
            } else if indent < current {
                while *indent_stack.last().unwrap() > indent {
                    indent_stack.pop();
                    tokens.push(Token {
                        kind: Tok::Dedent,
                        line: line_no,
                    });
                }
                if *indent_stack.last().unwrap() != indent {
                    return Err(SeamlessError::Lex(
                        line_no,
                        format!("inconsistent dedent to column {indent}"),
                    ));
                }
            }
        }
        // tokenize the line content
        let bytes = line.as_bytes();
        let mut i = indent;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' => i += 1,
                '0'..='9' => {
                    let start = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let mut is_float = false;
                    if i < bytes.len() && bytes[i] == b'.' {
                        is_float = true;
                        i += 1;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                        is_float = true;
                        i += 1;
                        if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                            i += 1;
                        }
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                    let text = &line[start..i];
                    let kind = if is_float {
                        Tok::Float(text.parse().map_err(|_| {
                            SeamlessError::Lex(line_no, format!("bad float literal {text}"))
                        })?)
                    } else {
                        Tok::Int(text.parse().map_err(|_| {
                            SeamlessError::Lex(line_no, format!("bad int literal {text}"))
                        })?)
                    };
                    tokens.push(Token {
                        kind,
                        line: line_no,
                    });
                }
                'a'..='z' | 'A'..='Z' | '_' => {
                    let start = i;
                    while i < bytes.len()
                        && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                    {
                        i += 1;
                    }
                    let text = &line[start..i];
                    let kind = match keyword(text) {
                        Some(kw) => Tok::Kw(kw),
                        None => Tok::Name(text.to_string()),
                    };
                    tokens.push(Token {
                        kind,
                        line: line_no,
                    });
                }
                _ => {
                    let two = if i + 1 < bytes.len() {
                        &line[i..i + 2]
                    } else {
                        ""
                    };
                    let (op, adv) = match two {
                        "**" => (Op::StarStar, 2),
                        "//" => (Op::SlashSlash, 2),
                        "==" => (Op::Eq, 2),
                        "!=" => (Op::Ne, 2),
                        "<=" => (Op::Le, 2),
                        ">=" => (Op::Ge, 2),
                        "+=" => (Op::PlusAssign, 2),
                        "-=" => (Op::MinusAssign, 2),
                        "*=" => (Op::StarAssign, 2),
                        "/=" => (Op::SlashAssign, 2),
                        _ => match c {
                            '+' => (Op::Plus, 1),
                            '-' => (Op::Minus, 1),
                            '*' => (Op::Star, 1),
                            '/' => (Op::Slash, 1),
                            '%' => (Op::Percent, 1),
                            '(' => {
                                paren_depth += 1;
                                (Op::LParen, 1)
                            }
                            ')' => {
                                paren_depth = paren_depth.saturating_sub(1);
                                (Op::RParen, 1)
                            }
                            '[' => {
                                paren_depth += 1;
                                (Op::LBracket, 1)
                            }
                            ']' => {
                                paren_depth = paren_depth.saturating_sub(1);
                                (Op::RBracket, 1)
                            }
                            ',' => (Op::Comma, 1),
                            ':' => (Op::Colon, 1),
                            '=' => (Op::Assign, 1),
                            '<' => (Op::Lt, 1),
                            '>' => (Op::Gt, 1),
                            other => {
                                return Err(SeamlessError::Lex(
                                    line_no,
                                    format!("unexpected character {other:?}"),
                                ))
                            }
                        },
                    };
                    tokens.push(Token {
                        kind: Tok::Op(op),
                        line: line_no,
                    });
                    i += adv;
                }
            }
        }
        if paren_depth == 0 {
            tokens.push(Token {
                kind: Tok::Newline,
                line: line_no,
            });
        }
    }
    let last_line = src.lines().count();
    while indent_stack.len() > 1 {
        indent_stack.pop();
        tokens.push(Token {
            kind: Tok::Dedent,
            line: last_line,
        });
    }
    tokens.push(Token {
        kind: Tok::Eof,
        line: last_line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_expression_line() {
        let k = kinds("x = 1 + 2.5");
        assert_eq!(
            k,
            vec![
                Tok::Name("x".into()),
                Tok::Op(Op::Assign),
                Tok::Int(1),
                Tok::Op(Op::Plus),
                Tok::Float(2.5),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn indentation_generates_indent_dedent() {
        let src = "def f():\n    return 1\nx = 2";
        let k = kinds(src);
        assert!(k.contains(&Tok::Indent));
        assert!(k.contains(&Tok::Dedent));
        // dedent comes before the x
        let di = k.iter().position(|t| *t == Tok::Dedent).unwrap();
        let xi = k.iter().position(|t| *t == Tok::Name("x".into())).unwrap();
        assert!(di < xi);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let k = kinds("# header\n\nx = 1  # trailing\n");
        assert_eq!(k.len(), 5); // name, =, 1, newline, eof
    }

    #[test]
    fn two_char_operators() {
        let k = kinds("a == b != c <= d >= e ** f // g");
        assert!(k.contains(&Tok::Op(Op::Eq)));
        assert!(k.contains(&Tok::Op(Op::Ne)));
        assert!(k.contains(&Tok::Op(Op::Le)));
        assert!(k.contains(&Tok::Op(Op::Ge)));
        assert!(k.contains(&Tok::Op(Op::StarStar)));
        assert!(k.contains(&Tok::Op(Op::SlashSlash)));
    }

    #[test]
    fn keywords_and_names() {
        let k = kinds("for i in range(n):");
        assert_eq!(k[0], Tok::Kw(Kw::For));
        assert_eq!(k[1], Tok::Name("i".into()));
        assert_eq!(k[2], Tok::Kw(Kw::In));
        assert_eq!(k[3], Tok::Name("range".into()));
    }

    #[test]
    fn float_formats() {
        let k = kinds("a = 1e3 + 2.5e-2 + 10.");
        assert!(k.contains(&Tok::Float(1000.0)));
        assert!(k.contains(&Tok::Float(0.025)));
        assert!(k.contains(&Tok::Float(10.0)));
    }

    #[test]
    fn inconsistent_dedent_rejected() {
        let src = "def f():\n        x = 1\n    y = 2";
        assert!(matches!(tokenize(src), Err(SeamlessError::Lex(3, _))));
    }

    #[test]
    fn newline_suppressed_inside_parens() {
        let src = "x = f(1,\n      2)";
        let k = kinds(src);
        // only one newline (after the closing paren line)
        let n = k.iter().filter(|t| **t == Tok::Newline).count();
        assert_eq!(n, 1);
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(matches!(tokenize("x = $"), Err(SeamlessError::Lex(1, _))));
    }
}
