//! Type discovery (§IV-B: "use type discovery to type `res` as a floating
//! point variable and to type `i` as an integer type").
//!
//! Forward dataflow over the AST: parameter types come from annotations or
//! the JIT call site; assignments widen variable types along the numeric
//! ladder `Bool → Int → Float`; loops re-run until the environment is
//! stable.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, FuncDef, Module, Stmt, TypeAnn, UnOp};
use crate::SeamlessError;

/// Static types of pyish values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// Boolean.
    Bool,
    /// Float array.
    ArrF,
    /// Integer array.
    ArrI,
    /// No value.
    Unit,
}

impl Type {
    /// From a source annotation.
    pub fn from_ann(a: TypeAnn) -> Type {
        match a {
            TypeAnn::Int => Type::Int,
            TypeAnn::Float => Type::Float,
            TypeAnn::Bool => Type::Bool,
            TypeAnn::ArrF => Type::ArrF,
            TypeAnn::ArrI => Type::ArrI,
        }
    }

    /// Least upper bound on the numeric ladder.
    pub fn join(self, other: Type) -> Result<Type, SeamlessError> {
        use Type::*;
        if self == other {
            return Ok(self);
        }
        let rank = |t: Type| match t {
            Bool => Some(0),
            Int => Some(1),
            Float => Some(2),
            _ => None,
        };
        match (rank(self), rank(other)) {
            (Some(a), Some(b)) => Ok(if a >= b { self } else { other }),
            _ => Err(SeamlessError::Type(format!(
                "incompatible types {self:?} and {other:?}"
            ))),
        }
    }

    /// Whether the type is a number (or bool, which coerces).
    pub fn is_numeric(self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Bool)
    }
}

/// Result of inferring one function under concrete argument types.
#[derive(Debug, Clone)]
pub struct FuncTypes {
    /// Every variable's (widened) type, parameters included.
    pub vars: HashMap<String, Type>,
    /// The return type.
    pub ret: Type,
}

struct Inferencer<'m> {
    module: &'m Module,
    externs: Option<&'m crate::cmodule::CModule>,
    /// (function, arg types) → return type; `None` while in progress.
    in_progress: HashMap<(String, Vec<Type>), Option<Type>>,
    cache: HashMap<(String, Vec<Type>), FuncTypes>,
}

/// Infer types for `fname` called with `arg_types`. Checks the whole
/// reachable call graph.
pub fn infer_function(
    module: &Module,
    fname: &str,
    arg_types: &[Type],
) -> Result<FuncTypes, SeamlessError> {
    infer_function_with_externs(module, fname, arg_types, None)
}

/// As [`infer_function`], with a foreign library whose discovered
/// signatures type otherwise-unknown calls.
pub fn infer_function_with_externs(
    module: &Module,
    fname: &str,
    arg_types: &[Type],
    externs: Option<&crate::cmodule::CModule>,
) -> Result<FuncTypes, SeamlessError> {
    let mut inf = Inferencer {
        module,
        externs,
        in_progress: HashMap::new(),
        cache: HashMap::new(),
    };
    inf.infer(fname, arg_types)
}

/// Map a discovered C signature onto pyish types.
pub(crate) fn extern_types(sig: &crate::cmodule::CSignature) -> (Vec<Type>, Type) {
    use crate::cmodule::CType;
    let conv = |t: &CType| match t {
        CType::Double | CType::Float => Type::Float,
        CType::Int | CType::Long => Type::Int,
        CType::Void => Type::Unit,
    };
    (sig.params.iter().map(conv).collect(), conv(&sig.ret))
}

impl<'m> Inferencer<'m> {
    fn infer(&mut self, fname: &str, arg_types: &[Type]) -> Result<FuncTypes, SeamlessError> {
        let key = (fname.to_string(), arg_types.to_vec());
        if let Some(done) = self.cache.get(&key) {
            return Ok(done.clone());
        }
        let func = self
            .module
            .function(fname)
            .ok_or_else(|| SeamlessError::Type(format!("unknown function {fname}")))?;
        if func.params.len() != arg_types.len() {
            return Err(SeamlessError::Type(format!(
                "{fname} takes {} arguments, got {}",
                func.params.len(),
                arg_types.len()
            )));
        }
        self.in_progress.insert(key.clone(), None);
        let mut env: HashMap<String, Type> = HashMap::new();
        for ((pname, ann), &ty) in func.params.iter().zip(arg_types) {
            if let Some(a) = ann {
                let want = Type::from_ann(*a);
                // allow widening Int arg into Float annotation
                let got = ty.join(want)?;
                if got != want {
                    return Err(SeamlessError::Type(format!(
                        "parameter {pname} annotated {want:?} but called with {ty:?}"
                    )));
                }
                env.insert(pname.clone(), want);
            } else {
                env.insert(pname.clone(), ty);
            }
        }
        // Fixpoint over the body: assignments may widen (e.g. an Int
        // accumulator becomes Float inside a loop).
        let mut ret: Option<Type> = None;
        for round in 0..10 {
            let before = env.clone();
            let ret_before = ret;
            self.infer_block(func, &func.body, &mut env, &mut ret, &key)?;
            if env == before && ret == ret_before {
                break;
            }
            if round == 9 {
                return Err(SeamlessError::Type(format!(
                    "type inference for {fname} did not stabilize"
                )));
            }
        }
        let result = FuncTypes {
            vars: env,
            ret: ret.unwrap_or(Type::Unit),
        };
        self.in_progress.remove(&key);
        self.cache.insert(key, result.clone());
        Ok(result)
    }

    fn infer_block(
        &mut self,
        func: &FuncDef,
        block: &[Stmt],
        env: &mut HashMap<String, Type>,
        ret: &mut Option<Type>,
        key: &(String, Vec<Type>),
    ) -> Result<(), SeamlessError> {
        for stmt in block {
            self.infer_stmt(func, stmt, env, ret, key)?;
        }
        Ok(())
    }

    fn assign(env: &mut HashMap<String, Type>, name: &str, t: Type) -> Result<(), SeamlessError> {
        match env.get(name) {
            None => {
                env.insert(name.to_string(), t);
            }
            Some(&old) => {
                let joined = old.join(t).map_err(|_| {
                    SeamlessError::Type(format!(
                        "variable {name} changes type from {old:?} to {t:?}"
                    ))
                })?;
                env.insert(name.to_string(), joined);
            }
        }
        Ok(())
    }

    fn infer_stmt(
        &mut self,
        func: &FuncDef,
        stmt: &Stmt,
        env: &mut HashMap<String, Type>,
        ret: &mut Option<Type>,
        key: &(String, Vec<Type>),
    ) -> Result<(), SeamlessError> {
        match stmt {
            Stmt::Assign { name, ann, value } => {
                let mut t = self.infer_expr(value, env, key)?;
                if let Some(a) = ann {
                    let want = Type::from_ann(*a);
                    t = t.join(want)?;
                    if t != want {
                        return Err(SeamlessError::Type(format!(
                            "annotation on {name} is {want:?} but value is {t:?}"
                        )));
                    }
                }
                Self::assign(env, name, t)
            }
            Stmt::AugAssign { name, op, value } => {
                let cur = *env.get(name).ok_or_else(|| {
                    SeamlessError::Type(format!("augmented assignment to undefined {name}"))
                })?;
                let v = self.infer_expr(value, env, key)?;
                let t = binop_type(*op, cur, v)?;
                Self::assign(env, name, t)
            }
            Stmt::AssignIndex { name, index, value }
            | Stmt::AugAssignIndex {
                name, index, value, ..
            } => {
                let arr = *env.get(name).ok_or_else(|| {
                    SeamlessError::Type(format!("indexing undefined variable {name}"))
                })?;
                let it = self.infer_expr(index, env, key)?;
                if !matches!(it, Type::Int | Type::Bool) {
                    return Err(SeamlessError::Type(format!(
                        "array index must be an integer, found {it:?}"
                    )));
                }
                let vt = self.infer_expr(value, env, key)?;
                match arr {
                    Type::ArrF => {
                        if !vt.is_numeric() {
                            return Err(SeamlessError::Type(format!(
                                "cannot store {vt:?} in a float array"
                            )));
                        }
                    }
                    Type::ArrI => {
                        if !matches!(vt, Type::Int | Type::Bool) {
                            return Err(SeamlessError::Type(format!(
                                "cannot store {vt:?} in an int array"
                            )));
                        }
                    }
                    other => {
                        return Err(SeamlessError::Type(format!(
                            "cannot index-assign into {other:?}"
                        )))
                    }
                }
                Ok(())
            }
            Stmt::If { cond, then, orelse } => {
                let _ = self.infer_expr(cond, env, key)?;
                self.infer_block(func, then, env, ret, key)?;
                self.infer_block(func, orelse, env, ret, key)
            }
            Stmt::While { cond, body } => {
                let _ = self.infer_expr(cond, env, key)?;
                self.infer_block(func, body, env, ret, key)
            }
            Stmt::ForRange {
                var,
                start,
                stop,
                step,
                body,
            } => {
                for e in [start, stop, step] {
                    let t = self.infer_expr(e, env, key)?;
                    if !matches!(t, Type::Int | Type::Bool) {
                        return Err(SeamlessError::Type(format!(
                            "range() arguments must be integers, found {t:?}"
                        )));
                    }
                }
                Self::assign(env, var, Type::Int)?;
                self.infer_block(func, body, env, ret, key)
            }
            Stmt::Return(value) => {
                let t = match value {
                    None => Type::Unit,
                    Some(e) => self.infer_expr(e, env, key)?,
                };
                *ret = Some(match ret {
                    None => t,
                    Some(r) => r.join(t)?,
                });
                // expose partial return type to recursive calls
                self.in_progress.insert(key.clone(), *ret);
                Ok(())
            }
            Stmt::ExprStmt(e) => {
                let _ = self.infer_expr(e, env, key)?;
                Ok(())
            }
            Stmt::Pass | Stmt::Break | Stmt::Continue => Ok(()),
        }
    }

    #[allow(clippy::only_used_in_recursion)] // `key` names the signature being inferred
    fn infer_expr(
        &mut self,
        e: &Expr,
        env: &HashMap<String, Type>,
        key: &(String, Vec<Type>),
    ) -> Result<Type, SeamlessError> {
        match e {
            Expr::Int(_) => Ok(Type::Int),
            Expr::Float(_) => Ok(Type::Float),
            Expr::Bool(_) => Ok(Type::Bool),
            Expr::Name(n) => env
                .get(n)
                .copied()
                .ok_or_else(|| SeamlessError::Type(format!("undefined variable {n}"))),
            Expr::Bin(op, a, b) => {
                let ta = self.infer_expr(a, env, key)?;
                let tb = self.infer_expr(b, env, key)?;
                binop_type(*op, ta, tb)
            }
            Expr::Un(op, a) => {
                let t = self.infer_expr(a, env, key)?;
                match op {
                    UnOp::Neg => {
                        if !t.is_numeric() {
                            return Err(SeamlessError::Type(format!("cannot negate {t:?}")));
                        }
                        Ok(if t == Type::Float {
                            Type::Float
                        } else {
                            Type::Int
                        })
                    }
                    UnOp::Not => Ok(Type::Bool),
                }
            }
            Expr::Index(a, i) => {
                let ta = self.infer_expr(a, env, key)?;
                let ti = self.infer_expr(i, env, key)?;
                if !matches!(ti, Type::Int | Type::Bool) {
                    return Err(SeamlessError::Type(format!(
                        "array index must be an integer, found {ti:?}"
                    )));
                }
                match ta {
                    Type::ArrF => Ok(Type::Float),
                    Type::ArrI => Ok(Type::Int),
                    other => Err(SeamlessError::Type(format!("cannot index {other:?}"))),
                }
            }
            Expr::Call { name, args } => {
                let arg_types: Vec<Type> = args
                    .iter()
                    .map(|a| self.infer_expr(a, env, key))
                    .collect::<Result<_, _>>()?;
                if let Some(t) = builtin_type(name, &arg_types)? {
                    return Ok(t);
                }
                // foreign function through a loaded CModule
                if self.module.function(name).is_none() {
                    if let Some(lib) = self.externs {
                        if let Some(sig) = lib.signature(name) {
                            let (params, ret) = extern_types(sig);
                            if params.len() != arg_types.len() {
                                return Err(SeamlessError::Type(format!(
                                    "extern {name} takes {} arguments, got {}",
                                    params.len(),
                                    arg_types.len()
                                )));
                            }
                            for (want, got) in params.iter().zip(&arg_types) {
                                if !got.is_numeric() || !want.is_numeric() {
                                    return Err(SeamlessError::Type(format!(
                                        "extern {name}: cannot pass {got:?} as {want:?}"
                                    )));
                                }
                            }
                            return Ok(ret);
                        }
                    }
                }
                // user function — possibly recursive
                let callee_key = (name.clone(), arg_types.clone());
                if let Some(partial) = self.in_progress.get(&callee_key) {
                    return partial.ok_or_else(|| {
                        SeamlessError::Type(format!(
                            "recursive call to {name} before any base-case return"
                        ))
                    });
                }
                Ok(self.infer(name, &arg_types)?.ret)
            }
        }
    }
}

pub(crate) fn binop_type(op: BinOp, a: Type, b: Type) -> Result<Type, SeamlessError> {
    if op.is_comparison() {
        if a.is_numeric() && b.is_numeric() {
            return Ok(Type::Bool);
        }
        return Err(SeamlessError::Type(format!(
            "cannot compare {a:?} and {b:?}"
        )));
    }
    match op {
        BinOp::And | BinOp::Or => Ok(Type::Bool),
        BinOp::Div => {
            numeric(op, a, b)?;
            Ok(Type::Float)
        }
        BinOp::Pow => {
            numeric(op, a, b)?;
            // int ** int stays int (the compiler guards negative
            // exponents at runtime); anything else is float
            if matches!(a, Type::Int | Type::Bool) && matches!(b, Type::Int | Type::Bool) {
                Ok(Type::Int)
            } else {
                Ok(Type::Float)
            }
        }
        BinOp::FloorDiv => {
            numeric(op, a, b)?;
            if a == Type::Float || b == Type::Float {
                Ok(Type::Float)
            } else {
                Ok(Type::Int)
            }
        }
        _ => {
            numeric(op, a, b)?;
            if a == Type::Float || b == Type::Float {
                Ok(Type::Float)
            } else {
                Ok(Type::Int)
            }
        }
    }
}

fn numeric(op: BinOp, a: Type, b: Type) -> Result<(), SeamlessError> {
    if a.is_numeric() && b.is_numeric() {
        Ok(())
    } else {
        Err(SeamlessError::Type(format!(
            "operator {op:?} needs numbers, found {a:?} and {b:?}"
        )))
    }
}

/// Builtin signature table. Returns `Ok(None)` for non-builtins.
pub fn builtin_type(name: &str, args: &[Type]) -> Result<Option<Type>, SeamlessError> {
    let t = match (name, args) {
        ("len", [Type::ArrF | Type::ArrI]) => Type::Int,
        ("len", _) => return bad(name, args),
        ("sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "floor" | "ceil", [a])
            if a.is_numeric() =>
        {
            Type::Float
        }
        ("sqrt" | "sin" | "cos" | "tan" | "exp" | "log" | "floor" | "ceil", _) => {
            return bad(name, args)
        }
        ("hypot" | "atan2", [a, b]) if a.is_numeric() && b.is_numeric() => Type::Float,
        ("hypot" | "atan2", _) => return bad(name, args),
        ("abs", [Type::Float]) => Type::Float,
        ("abs", [Type::Int | Type::Bool]) => Type::Int,
        ("abs", _) => return bad(name, args),
        ("min" | "max", [a, b]) if a.is_numeric() && b.is_numeric() => a.join(*b)?,
        ("min" | "max", _) => return bad(name, args),
        ("float", [a]) if a.is_numeric() => Type::Float,
        ("float", _) => return bad(name, args),
        ("int", [a]) if a.is_numeric() => Type::Int,
        ("int", _) => return bad(name, args),
        ("zeros", [Type::Int]) => Type::ArrF,
        ("zeros", _) => return bad(name, args),
        ("izeros", [Type::Int]) => Type::ArrI,
        ("izeros", _) => return bad(name, args),
        _ => return Ok(None),
    };
    Ok(Some(t))
}

fn bad(name: &str, args: &[Type]) -> Result<Option<Type>, SeamlessError> {
    Err(SeamlessError::Type(format!(
        "builtin {name} cannot take arguments {args:?}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    fn infer(src: &str, f: &str, args: &[Type]) -> Result<FuncTypes, SeamlessError> {
        let m = parse_module(src).unwrap();
        infer_function(&m, f, args)
    }

    #[test]
    fn sum_example_types() {
        let src = "
def sum(it):
    res = 0.0
    for i in range(len(it)):
        res = res + it[i]
    return res
";
        let t = infer(src, "sum", &[Type::ArrF]).unwrap();
        assert_eq!(t.ret, Type::Float);
        assert_eq!(t.vars["res"], Type::Float);
        assert_eq!(t.vars["i"], Type::Int);
        assert_eq!(t.vars["it"], Type::ArrF);
    }

    #[test]
    fn int_accumulator_widens_in_loop() {
        let src = "
def f(a):
    acc = 0
    for i in range(len(a)):
        acc = acc + a[i]
    return acc
";
        // summing floats into an int accumulator widens acc to float
        let t = infer(src, "f", &[Type::ArrF]).unwrap();
        assert_eq!(t.vars["acc"], Type::Float);
        assert_eq!(t.ret, Type::Float);
        // with an int array it stays integer
        let t = infer(src, "f", &[Type::ArrI]).unwrap();
        assert_eq!(t.vars["acc"], Type::Int);
        assert_eq!(t.ret, Type::Int);
    }

    #[test]
    fn annotations_are_respected_and_checked() {
        let src = "def f(x: float):\n    return x * 2\n";
        let t = infer(src, "f", &[Type::Int]).unwrap(); // int widens into float
        assert_eq!(t.ret, Type::Float);
        let src2 = "def f(x: int):\n    return x\n";
        assert!(infer(src2, "f", &[Type::Float]).is_err());
    }

    #[test]
    fn division_is_always_float() {
        let src = "def f(a: int, b: int):\n    return a / b\n";
        assert_eq!(
            infer(src, "f", &[Type::Int, Type::Int]).unwrap().ret,
            Type::Float
        );
        let src2 = "def f(a: int, b: int):\n    return a // b\n";
        assert_eq!(
            infer(src2, "f", &[Type::Int, Type::Int]).unwrap().ret,
            Type::Int
        );
    }

    #[test]
    fn recursion_types_via_base_case() {
        let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
";
        let t = infer(src, "fib", &[Type::Int]).unwrap();
        assert_eq!(t.ret, Type::Int);
    }

    #[test]
    fn cross_function_inference() {
        let src = "
def helper(x):
    return x * 0.5

def main(a):
    return helper(a[0])
";
        let t = infer(src, "main", &[Type::ArrF]).unwrap();
        assert_eq!(t.ret, Type::Float);
    }

    #[test]
    fn errors_undefined_and_incompatible() {
        assert!(infer("def f():\n    return y\n", "f", &[]).is_err());
        // array reassigned as number
        let src = "def f(a):\n    a = 1\n    return a\n";
        assert!(infer(src, "f", &[Type::ArrF]).is_err());
        // indexing a scalar
        assert!(infer("def f(x):\n    return x[0]\n", "f", &[Type::Int]).is_err());
        // float index
        assert!(infer("def f(a):\n    return a[0.5]\n", "f", &[Type::ArrF]).is_err());
    }

    #[test]
    fn builtins_type_correctly() {
        let src = "def f(a):\n    return sqrt(len(a)) + float(3) + min(1.0, 2)\n";
        let t = infer(src, "f", &[Type::ArrI]).unwrap();
        assert_eq!(t.ret, Type::Float);
        let src2 = "def g(n):\n    b = zeros(n)\n    b[0] = 1.5\n    return b[0]\n";
        let t2 = infer(src2, "g", &[Type::Int]).unwrap();
        assert_eq!(t2.vars["b"], Type::ArrF);
        assert_eq!(t2.ret, Type::Float);
    }

    #[test]
    fn unit_return_for_procedures() {
        let src = "def f(a):\n    a[0] = 1.0\n";
        let t = infer(src, "f", &[Type::ArrF]).unwrap();
        assert_eq!(t.ret, Type::Unit);
    }
}
