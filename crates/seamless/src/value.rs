//! Runtime values. The boxed [`Value`] enum is what the *interpreter*
//! manipulates for every single operation — exactly the overhead the JIT
//! removes.

/// A dynamically typed runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Float array (value semantics: mutated arrays are handed back to
    /// the caller in [`crate::export::CallOutput::args`]).
    ArrF(Vec<f64>),
    /// Integer array.
    ArrI(Vec<i64>),
    /// No value (functions without `return`).
    Unit,
}

impl Value {
    /// Numeric widening to f64 (bools as 0/1).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Truthiness (Python rules for our types).
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Float(v) => *v != 0.0,
            Value::Bool(b) => *b,
            Value::ArrF(a) => !a.is_empty(),
            Value::ArrI(a) => !a.is_empty(),
            Value::Unit => false,
        }
    }

    /// The value's [`crate::Type`].
    pub fn type_of(&self) -> crate::Type {
        match self {
            Value::Int(_) => crate::Type::Int,
            Value::Float(_) => crate::Type::Float,
            Value::Bool(_) => crate::Type::Bool,
            Value::ArrF(_) => crate::Type::ArrF,
            Value::ArrI(_) => crate::Type::ArrI,
            Value::Unit => crate::Type::Unit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_and_truthiness() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), Some(2));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::ArrF(vec![]).as_f64(), None);
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Float(0.0).truthy());
        assert!(!Value::ArrI(vec![]).truthy());
        assert!(Value::ArrF(vec![0.0]).truthy());
        assert!(!Value::Unit.truthy());
    }

    #[test]
    fn type_of_matches() {
        assert_eq!(Value::Int(1).type_of(), crate::Type::Int);
        assert_eq!(Value::ArrF(vec![]).type_of(), crate::Type::ArrF);
        assert_eq!(Value::Unit.type_of(), crate::Type::Unit);
    }
}
