//! Abstract syntax tree for pyish.

/// A parsed module: a sequence of function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Functions in definition order.
    pub functions: Vec<FuncDef>,
}

impl Module {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FuncDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// One `def`.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Parameters with optional type annotations
    /// (`def f(x: float, n: int)`).
    pub params: Vec<(String, Option<TypeAnn>)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// Source-level type annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeAnn {
    /// `int`
    Int,
    /// `float`
    Float,
    /// `bool`
    Bool,
    /// `list` / `arr` of floats
    ArrF,
    /// integer array
    ArrI,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `name = expr` (with optional annotation `name: float = expr`).
    Assign {
        /// Target variable.
        name: String,
        /// Optional annotation.
        ann: Option<TypeAnn>,
        /// Right-hand side.
        value: Expr,
    },
    /// `a[i] = expr`.
    AssignIndex {
        /// Array variable.
        name: String,
        /// Index expression.
        index: Expr,
        /// Right-hand side.
        value: Expr,
    },
    /// Augmented assignment `name op= expr` (desugared by the parser into
    /// `name = name op expr`, kept for fidelity of round-trips).
    AugAssign {
        /// Target variable.
        name: String,
        /// Operation.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `a[i] op= expr`.
    AugAssignIndex {
        /// Array variable.
        name: String,
        /// Index expression.
        index: Expr,
        /// Operation.
        op: BinOp,
        /// Right-hand side.
        value: Expr,
    },
    /// `if` / `elif` / `else` chain (elifs nested in `orelse`).
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Vec<Stmt>,
        /// Else branch (possibly another `If`).
        orelse: Vec<Stmt>,
    },
    /// `while cond:`.
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `for var in range(start, stop, step):`.
    ForRange {
        /// Loop variable.
        var: String,
        /// Start (defaults to 0).
        start: Expr,
        /// Stop (exclusive).
        stop: Expr,
        /// Step (defaults to 1; must be a positive constant for the VM).
        step: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `return expr` / bare `return`.
    Return(Option<Expr>),
    /// Expression statement (evaluated for effect).
    ExprStmt(Expr),
    /// `pass`.
    Pass,
    /// `break`.
    Break,
    /// `continue`.
    Continue,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (true division: always float)
    Div,
    /// `//` (floor division)
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (non-short-circuit over our pure expressions)
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Whether the result is boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `not`
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Name(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Call: builtins (`len`, `sqrt`, …) or user functions.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Indexing `a[i]`.
    Index(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Fold constant subexpressions (the optimizer's first pass: constant
    /// folding, plus `x ** small-int` strength reduction happens in the
    /// compiler).
    pub fn fold(self) -> Expr {
        match self {
            Expr::Bin(op, a, b) => {
                let a = a.fold();
                let b = b.fold();
                if let (Some(x), Some(y)) = (a.const_f64(), b.const_f64()) {
                    let both_int = matches!(a, Expr::Int(_) | Expr::Bool(_))
                        && matches!(b, Expr::Int(_) | Expr::Bool(_));
                    if let Some(folded) = fold_const(op, x, y, both_int) {
                        return folded;
                    }
                }
                Expr::Bin(op, Box::new(a), Box::new(b))
            }
            Expr::Un(op, e) => {
                let e = e.fold();
                match (op, &e) {
                    (UnOp::Neg, Expr::Int(v)) => Expr::Int(-v),
                    (UnOp::Neg, Expr::Float(v)) => Expr::Float(-v),
                    (UnOp::Not, Expr::Bool(b)) => Expr::Bool(!b),
                    _ => Expr::Un(op, Box::new(e)),
                }
            }
            Expr::Call { name, args } => Expr::Call {
                name,
                args: args.into_iter().map(Expr::fold).collect(),
            },
            Expr::Index(a, i) => Expr::Index(Box::new(a.fold()), Box::new(i.fold())),
            other => other,
        }
    }

    fn const_f64(&self) -> Option<f64> {
        match self {
            Expr::Int(v) => Some(*v as f64),
            Expr::Float(v) => Some(*v),
            Expr::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }
}

fn fold_const(op: BinOp, x: f64, y: f64, both_int: bool) -> Option<Expr> {
    let num = |v: f64| {
        if both_int && v.fract() == 0.0 && v.abs() < 9e15 {
            Expr::Int(v as i64)
        } else {
            Expr::Float(v)
        }
    };
    Some(match op {
        BinOp::Add => num(x + y),
        BinOp::Sub => num(x - y),
        BinOp::Mul => num(x * y),
        BinOp::Div => Expr::Float(x / y),
        BinOp::FloorDiv => num((x / y).floor()),
        BinOp::Mod => num(x.rem_euclid(y)),
        BinOp::Pow => {
            let v = x.powf(y);
            if both_int && y >= 0.0 {
                num(v)
            } else {
                Expr::Float(v)
            }
        }
        BinOp::Eq => Expr::Bool(x == y),
        BinOp::Ne => Expr::Bool(x != y),
        BinOp::Lt => Expr::Bool(x < y),
        BinOp::Le => Expr::Bool(x <= y),
        BinOp::Gt => Expr::Bool(x > y),
        BinOp::Ge => Expr::Bool(x >= y),
        BinOp::And => Expr::Bool(x != 0.0 && y != 0.0),
        BinOp::Or => Expr::Bool(x != 0.0 || y != 0.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_arithmetic() {
        // 2 + 3 * 4 → 14 (ints stay int)
        let e = Expr::Bin(
            BinOp::Add,
            Box::new(Expr::Int(2)),
            Box::new(Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Int(3)),
                Box::new(Expr::Int(4)),
            )),
        );
        assert_eq!(e.fold(), Expr::Int(14));
        // division is float
        let d = Expr::Bin(BinOp::Div, Box::new(Expr::Int(1)), Box::new(Expr::Int(2)));
        assert_eq!(d.fold(), Expr::Float(0.5));
    }

    #[test]
    fn folding_stops_at_names() {
        let e = Expr::Bin(
            BinOp::Mul,
            Box::new(Expr::Name("x".into())),
            Box::new(Expr::Bin(
                BinOp::Add,
                Box::new(Expr::Int(1)),
                Box::new(Expr::Int(1)),
            )),
        );
        assert_eq!(
            e.fold(),
            Expr::Bin(
                BinOp::Mul,
                Box::new(Expr::Name("x".into())),
                Box::new(Expr::Int(2))
            )
        );
    }

    #[test]
    fn comparisons_fold_to_bool() {
        let e = Expr::Bin(BinOp::Lt, Box::new(Expr::Int(1)), Box::new(Expr::Int(2)));
        assert_eq!(e.fold(), Expr::Bool(true));
        let n = Expr::Un(UnOp::Not, Box::new(Expr::Bool(true)));
        assert_eq!(n.fold(), Expr::Bool(false));
    }

    #[test]
    fn unary_neg_folds() {
        let e = Expr::Un(UnOp::Neg, Box::new(Expr::Float(2.5)));
        assert_eq!(e.fold(), Expr::Float(-2.5));
    }
}
