//! Wire codecs for compiled bytecode, so a [`Program`] can ship to ODIN
//! workers once at registration time (the kernel plane, DESIGN §10).
//!
//! Programs that reference foreign functions are **not** encodable:
//! [`ExternDecl`](crate::bytecode::ExternDecl) holds a native fn pointer
//! with no meaning in another address space. The registration path
//! rejects such programs before they reach this codec; encoding one
//! anyway is a caller bug and panics.

use comm::wire::{Cursor, Wire};
use comm::CommError;

use crate::bytecode::{Cmp, CompiledFunc, Instr, Math2Fn, MathFn, Program, Reg, RegFile};
use crate::types::Type;

macro_rules! wire_tag_enum {
    ($t:ty, $($tag:literal => $v:path),* $(,)?) => {
        impl Wire for $t {
            fn encode(&self, buf: &mut Vec<u8>) {
                let tag: u8 = match self {
                    $($v => $tag,)*
                };
                buf.push(tag);
            }
            fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
                match u8::decode(cur)? {
                    $($tag => Ok($v),)*
                    b => Err(CommError::Decode(format!(
                        concat!("invalid ", stringify!($t), " tag {}"),
                        b
                    ))),
                }
            }
        }
    };
}

wire_tag_enum!(RegFile, 0 => RegFile::F, 1 => RegFile::I, 2 => RegFile::AF, 3 => RegFile::AI);
wire_tag_enum!(Cmp, 0 => Cmp::Eq, 1 => Cmp::Ne, 2 => Cmp::Lt, 3 => Cmp::Le, 4 => Cmp::Gt, 5 => Cmp::Ge);
wire_tag_enum!(
    MathFn,
    0 => MathFn::Sqrt, 1 => MathFn::Sin, 2 => MathFn::Cos, 3 => MathFn::Tan,
    4 => MathFn::Exp, 5 => MathFn::Log, 6 => MathFn::Abs, 7 => MathFn::Floor,
    8 => MathFn::Ceil,
);
wire_tag_enum!(Math2Fn, 0 => Math2Fn::Hypot, 1 => Math2Fn::Atan2);
wire_tag_enum!(
    Type,
    0 => Type::Int, 1 => Type::Float, 2 => Type::Bool,
    3 => Type::ArrF, 4 => Type::ArrI, 5 => Type::Unit,
);

impl Wire for Instr {
    fn encode(&self, buf: &mut Vec<u8>) {
        macro_rules! put {
            ($tag:literal $(, $f:expr)*) => {{
                buf.push($tag);
                $($f.encode(buf);)*
            }};
        }
        match self {
            Instr::ConstF(d, v) => put!(0, d, v),
            Instr::ConstI(d, v) => put!(1, d, v),
            Instr::MovF(d, s) => put!(2, d, s),
            Instr::MovI(d, s) => put!(3, d, s),
            Instr::MovArrF(d, s) => put!(4, d, s),
            Instr::MovArrI(d, s) => put!(5, d, s),
            Instr::IToF(d, s) => put!(6, d, s),
            Instr::FToI(d, s) => put!(7, d, s),
            Instr::AddF(d, a, b) => put!(8, d, a, b),
            Instr::SubF(d, a, b) => put!(9, d, a, b),
            Instr::MulF(d, a, b) => put!(10, d, a, b),
            Instr::DivF(d, a, b) => put!(11, d, a, b),
            Instr::ModF(d, a, b) => put!(12, d, a, b),
            Instr::PowF(d, a, b) => put!(13, d, a, b),
            Instr::NegF(d, s) => put!(14, d, s),
            Instr::AddI(d, a, b) => put!(15, d, a, b),
            Instr::SubI(d, a, b) => put!(16, d, a, b),
            Instr::MulI(d, a, b) => put!(17, d, a, b),
            Instr::FloorDivI(d, a, b) => put!(18, d, a, b),
            Instr::ModI(d, a, b) => put!(19, d, a, b),
            Instr::PowI(d, a, b) => put!(20, d, a, b),
            Instr::NegI(d, s) => put!(21, d, s),
            Instr::CmpF(c, d, a, b) => put!(22, c, d, a, b),
            Instr::CmpI(c, d, a, b) => put!(23, c, d, a, b),
            Instr::AndI(d, a, b) => put!(24, d, a, b),
            Instr::OrI(d, a, b) => put!(25, d, a, b),
            Instr::NotI(d, s) => put!(26, d, s),
            Instr::Jump(t) => put!(27, t),
            Instr::JumpIfFalse(c, t) => put!(28, c, t),
            Instr::LenF(d, a) => put!(29, d, a),
            Instr::LenI(d, a) => put!(30, d, a),
            Instr::LoadF(d, a, i) => put!(31, d, a, i),
            Instr::LoadI(d, a, i) => put!(32, d, a, i),
            Instr::StoreF(a, i, s) => put!(33, a, i, s),
            Instr::StoreI(a, i, s) => put!(34, a, i, s),
            Instr::NewArrF(d, n) => put!(35, d, n),
            Instr::NewArrI(d, n) => put!(36, d, n),
            Instr::Math1(f, d, s) => put!(37, f, d, s),
            Instr::Math2(f, d, a, b) => put!(38, f, d, a, b),
            Instr::PowIC(d, a, e) => put!(39, d, a, e),
            Instr::RemF(d, a, b) => put!(40, d, a, b),
            Instr::AbsI(d, s) => put!(41, d, s),
            Instr::MinF(d, a, b) => put!(42, d, a, b),
            Instr::MaxF(d, a, b) => put!(43, d, a, b),
            Instr::MinI(d, a, b) => put!(44, d, a, b),
            Instr::MaxI(d, a, b) => put!(45, d, a, b),
            Instr::Call { func, dst, args } => put!(46, func, dst, args),
            Instr::Ret(r) => put!(47, r),
            Instr::ErrIfFalse(c, msg) => put!(48, c, msg),
            Instr::CallExtern { .. } => {
                panic!("CallExtern is not wire-encodable (native fn pointer)")
            }
        }
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        let tag = u8::decode(cur)?;
        macro_rules! get {
            ($v:path; $($t:ty),*) => {
                Ok($v($(<$t>::decode(cur)?),*))
            };
        }
        match tag {
            0 => get!(Instr::ConstF; Reg, f64),
            1 => get!(Instr::ConstI; Reg, i64),
            2 => get!(Instr::MovF; Reg, Reg),
            3 => get!(Instr::MovI; Reg, Reg),
            4 => get!(Instr::MovArrF; Reg, Reg),
            5 => get!(Instr::MovArrI; Reg, Reg),
            6 => get!(Instr::IToF; Reg, Reg),
            7 => get!(Instr::FToI; Reg, Reg),
            8 => get!(Instr::AddF; Reg, Reg, Reg),
            9 => get!(Instr::SubF; Reg, Reg, Reg),
            10 => get!(Instr::MulF; Reg, Reg, Reg),
            11 => get!(Instr::DivF; Reg, Reg, Reg),
            12 => get!(Instr::ModF; Reg, Reg, Reg),
            13 => get!(Instr::PowF; Reg, Reg, Reg),
            14 => get!(Instr::NegF; Reg, Reg),
            15 => get!(Instr::AddI; Reg, Reg, Reg),
            16 => get!(Instr::SubI; Reg, Reg, Reg),
            17 => get!(Instr::MulI; Reg, Reg, Reg),
            18 => get!(Instr::FloorDivI; Reg, Reg, Reg),
            19 => get!(Instr::ModI; Reg, Reg, Reg),
            20 => get!(Instr::PowI; Reg, Reg, Reg),
            21 => get!(Instr::NegI; Reg, Reg),
            22 => get!(Instr::CmpF; Cmp, Reg, Reg, Reg),
            23 => get!(Instr::CmpI; Cmp, Reg, Reg, Reg),
            24 => get!(Instr::AndI; Reg, Reg, Reg),
            25 => get!(Instr::OrI; Reg, Reg, Reg),
            26 => get!(Instr::NotI; Reg, Reg),
            27 => get!(Instr::Jump; usize),
            28 => get!(Instr::JumpIfFalse; Reg, usize),
            29 => get!(Instr::LenF; Reg, Reg),
            30 => get!(Instr::LenI; Reg, Reg),
            31 => get!(Instr::LoadF; Reg, Reg, Reg),
            32 => get!(Instr::LoadI; Reg, Reg, Reg),
            33 => get!(Instr::StoreF; Reg, Reg, Reg),
            34 => get!(Instr::StoreI; Reg, Reg, Reg),
            35 => get!(Instr::NewArrF; Reg, Reg),
            36 => get!(Instr::NewArrI; Reg, Reg),
            37 => get!(Instr::Math1; MathFn, Reg, Reg),
            38 => get!(Instr::Math2; Math2Fn, Reg, Reg, Reg),
            39 => get!(Instr::PowIC; Reg, Reg, i32),
            40 => get!(Instr::RemF; Reg, Reg, Reg),
            41 => get!(Instr::AbsI; Reg, Reg),
            42 => get!(Instr::MinF; Reg, Reg, Reg),
            43 => get!(Instr::MaxF; Reg, Reg, Reg),
            44 => get!(Instr::MinI; Reg, Reg, Reg),
            45 => get!(Instr::MaxI; Reg, Reg, Reg),
            46 => Ok(Instr::Call {
                func: usize::decode(cur)?,
                dst: Option::<(RegFile, Reg)>::decode(cur)?,
                args: Vec::<(RegFile, Reg)>::decode(cur)?,
            }),
            47 => Ok(Instr::Ret(Option::<(RegFile, Reg)>::decode(cur)?)),
            48 => Ok(Instr::ErrIfFalse(Reg::decode(cur)?, String::decode(cur)?)),
            b => Err(CommError::Decode(format!("invalid Instr tag {b}"))),
        }
    }
}

impl Wire for CompiledFunc {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.name.encode(buf);
        self.params.encode(buf);
        self.param_types.encode(buf);
        self.ret.encode(buf);
        for c in self.reg_counts {
            c.encode(buf);
        }
        self.instrs.encode(buf);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        let name = String::decode(cur)?;
        let params = Vec::<(RegFile, Reg)>::decode(cur)?;
        let param_types = Vec::<Type>::decode(cur)?;
        let ret = Type::decode(cur)?;
        let mut reg_counts = [0usize; 4];
        for c in &mut reg_counts {
            *c = usize::decode(cur)?;
        }
        let instrs = Vec::<Instr>::decode(cur)?;
        Ok(CompiledFunc {
            name,
            params,
            param_types,
            ret,
            reg_counts,
            instrs,
        })
    }
}

impl Wire for Program {
    fn encode(&self, buf: &mut Vec<u8>) {
        debug_assert!(
            self.externs.is_empty(),
            "programs with externs cannot ship over the wire"
        );
        self.funcs.encode(buf);
    }

    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(Program {
            funcs: Vec::<CompiledFunc>::decode(cur)?,
            externs: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use comm::wire::{decode_from_slice, encode_to_vec};

    use crate::compile::compile_program;
    use crate::parser::parse_module;
    use crate::types::Type;
    use crate::value::Value;
    use crate::vm::Vm;

    #[test]
    fn compiled_program_roundtrips_bitwise() {
        let src = "
def k(x, y):
    t = sqrt(x * x + y * y)
    if t > 1.0:
        return t % 3.0
    return floor(t) + x ** 2
";
        let m = parse_module(src).unwrap();
        let p = compile_program(&m, "k", &[Type::Float, Type::Float]).unwrap();
        let bytes = encode_to_vec(&p);
        let q: crate::bytecode::Program = decode_from_slice(&bytes).unwrap();
        assert_eq!(p, q);
        // and the decoded program still runs identically
        let a = Vm::new(&p)
            .call(vec![Value::Float(1.25), Value::Float(-0.5)])
            .unwrap();
        let b = Vm::new(&q)
            .call(vec![Value::Float(1.25), Value::Float(-0.5)])
            .unwrap();
        assert_eq!(a.ret, b.ret);
    }

    #[test]
    fn recursive_program_roundtrips() {
        let src = "
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)
";
        let m = parse_module(src).unwrap();
        let p = compile_program(&m, "fib", &[Type::Int]).unwrap();
        let bytes = encode_to_vec(&p);
        let q: crate::bytecode::Program = decode_from_slice(&bytes).unwrap();
        assert_eq!(p, q);
    }
}
