//! Job specifications, outcomes, and the ticket handle tenants hold.
//!
//! Every job class is a **pure function of its spec and the pool size it
//! runs on**: array and kernel jobs fill their inputs from a seeded,
//! global-index-keyed generator (worker-count invariant by the E3/E20
//! determinism contracts), and solve jobs run CG whose dot-product
//! reduction order is fixed for a given worker count. That purity is what
//! lets the plane absorb a mid-job worker kill: a retry — resumed from a
//! CG checkpoint or re-run from the spec — produces results **bitwise
//! identical** to a fault-free run at the same pool size.

use std::sync::mpsc;
use std::time::Duration;

/// What a tenant asks the plane to compute. Sizes are element counts;
/// seeds make every job reproducible (and its result verifiable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSpec {
    /// Seeded elementwise pipeline over a block-distributed array
    /// (`y = x·x + x` on `x = random(seed)`), gathered to the master.
    Array {
        /// Fill seed for the input array.
        seed: u64,
        /// Elements.
        n: usize,
    },
    /// Seeded input mapped through a Seamless-JIT kernel, gathered.
    Kernel {
        /// Fill seed for the input array.
        seed: u64,
        /// Elements.
        n: usize,
    },
    /// CG solve of a seeded SPD tridiagonal system on the worker pool,
    /// checkpointed every few iterations so a mid-solve worker kill
    /// resumes instead of restarting (see DESIGN §13).
    Solve {
        /// Seeds the right-hand side.
        seed: u64,
        /// System dimension.
        n: usize,
    },
}

impl JobSpec {
    /// Element count — the unit the bench's goodput metric sums.
    pub fn size(&self) -> usize {
        match *self {
            JobSpec::Array { n, .. } | JobSpec::Kernel { n, .. } | JobSpec::Solve { n, .. } => n,
        }
    }

    /// Short class label for metrics and spans.
    pub fn class(&self) -> &'static str {
        match self {
            JobSpec::Array { .. } => "array",
            JobSpec::Kernel { .. } => "kernel",
            JobSpec::Solve { .. } => "solve",
        }
    }
}

/// Scheduling priority. Under sustained overload the plane sheds the
/// **lowest** priority queued work first; within a tenant, higher
/// priority dispatches first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first.
    Low,
    /// Default.
    Normal,
    /// Dispatched ahead of the rest, shed last.
    High,
}

/// Number of priority classes (queue lanes per tenant).
pub(crate) const N_PRIORITIES: usize = 3;

impl Priority {
    pub(crate) fn lane(self) -> usize {
        self as usize
    }
}

/// One submission: what to run, how urgent, and its deadline budget
/// (the deadline is stamped `now + budget` at admission).
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// The computation.
    pub spec: JobSpec,
    /// Scheduling priority.
    pub priority: Priority,
    /// Wall-clock budget from admission to completion; the plane hard
    /// cancels the job when it expires.
    pub budget: Duration,
}

/// Where a deadline caught up with a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpiredAt {
    /// Still in its tenant queue — never dispatched.
    Queued,
    /// Popped by a pool driver after the deadline had already passed.
    Dispatch,
    /// Mid-execution (checked between retries and at solve checkpoint
    /// boundaries) — the hard cancel.
    Running,
}

/// Terminal state of an admitted job. Every admitted job resolves to
/// exactly one of these — shed and expired work is counted and reported,
/// never silently dropped.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed {
        /// Gathered result (bitwise reproducible from the spec and
        /// `workers`).
        data: Vec<f64>,
        /// Pool size the job ran on (solve results depend on it).
        workers: usize,
        /// Execution attempts (1 = no retry).
        attempts: u32,
        /// Pool respawn + replay cycles absorbed along the way.
        recoveries: u32,
        /// Time from admission to first dispatch.
        queue_wait: Duration,
        /// Time from first dispatch to completion.
        service: Duration,
    },
    /// Dropped by the overload shedder while queued (lowest priority,
    /// newest first).
    Shed {
        /// Priority it was shed at.
        priority: Priority,
        /// How long it had been queued.
        queued_for: Duration,
    },
    /// The deadline budget ran out.
    Expired {
        /// Stage the deadline was detected at.
        at: ExpiredAt,
        /// Age of the job when cancelled.
        after: Duration,
    },
    /// The plane gave up: retry budget exhausted, a non-retryable
    /// error, or shutdown with the job still unresolved. Under the
    /// chaos gate (kill + straggler + overload) this variant must not
    /// occur — see EXPERIMENTS E23.
    Failed {
        /// Attempts made before giving up (0 = never dispatched).
        attempts: u32,
        /// Diagnostic.
        error: String,
    },
}

impl JobOutcome {
    /// Completed data, if any.
    pub fn data(&self) -> Option<&[f64]> {
        match self {
            JobOutcome::Completed { data, .. } => Some(data),
            _ => None,
        }
    }

    /// Label used for metrics.
    pub fn label(&self) -> &'static str {
        match self {
            JobOutcome::Completed { .. } => "completed",
            JobOutcome::Shed { .. } => "shed",
            JobOutcome::Expired { .. } => "expired",
            JobOutcome::Failed { .. } => "failed",
        }
    }
}

/// Handle to one admitted job. The outcome arrives exactly once.
#[derive(Debug)]
pub struct JobTicket {
    /// Admission sequence number (monotonic per plane).
    pub id: u64,
    pub(crate) rx: mpsc::Receiver<JobOutcome>,
}

impl JobTicket {
    /// Block until the job resolves. If the plane is torn down without
    /// resolving the ticket (a bug — admitted work must always resolve),
    /// this reports it as a [`JobOutcome::Failed`] rather than hanging.
    pub fn wait(self) -> JobOutcome {
        self.rx.recv().unwrap_or(JobOutcome::Failed {
            attempts: 0,
            error: "serving plane dropped the job without resolving it".into(),
        })
    }

    /// Non-blocking poll; `None` while the job is still in flight.
    pub fn try_wait(&self) -> Option<JobOutcome> {
        self.rx.try_recv().ok()
    }

    /// Bounded wait; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobOutcome> {
        self.rx.recv_timeout(timeout).ok()
    }
}
