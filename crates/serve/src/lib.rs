//! # serve — the multi-tenant serving plane (DESIGN §13, experiment E23)
//!
//! Everything below this crate answers *one* request at a time: an
//! [`OdinContext`](odin::OdinContext) is a single-tenant master driving
//! one worker pool. This crate turns that into a **served** system:
//! tenants open [`Session`]s against a shared [`ServePlane`], submit
//! solve/array/kernel [`JobRequest`]s into bounded per-tenant queues,
//! and a fair-share scheduler multiplexes them onto a small set of
//! shared, elastically-sized ODIN worker pools.
//!
//! The robustness contract, end to end:
//!
//! - **Admission control** — per-tenant quotas refuse work synchronously
//!   with typed [`ServeError`]s instead of queueing unboundedly.
//! - **Backpressure** — every stage is bounded (tenant lanes by quota,
//!   pool inboxes by [`ServeConfig::pool_inbox_cap`]); a slow pool
//!   propagates pressure back to the submitting tenant.
//! - **Deadlines** — each job carries a budget; expiry hard-cancels it
//!   whether queued, at dispatch, or mid-solve (chunk boundaries), and
//!   the ticket says which ([`ExpiredAt`]).
//! - **Shedding** — sustained overload drops the lowest-priority newest
//!   queued work, counted in [`ServeStats::shed`] and resolved on the
//!   ticket — never silently.
//! - **Fault absorption** — a killed or straggling worker mid-job is
//!   caught on the pool driver, the pool recovers, and the job retries
//!   with exponential backoff — solves resume from their newest common
//!   CG checkpoint. Completed results are **bitwise identical** to a
//!   fault-free run at the same pool size ([`reference_result`]).
//! - **Reconciliation** — [`ServeStats::reconciles`]: every admitted job
//!   resolves exactly once; nothing is dropped off the books.

mod error;
mod job;
mod plane;
mod pool;
mod stats;

pub use error::ServeError;
pub use job::{ExpiredAt, JobOutcome, JobRequest, JobSpec, JobTicket, Priority};
pub use plane::{ElasticPolicy, ServeConfig, ServePlane, Session, TenantQuota};
pub use pool::reference_result;
pub use stats::ServeStats;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            n_pools: 1,
            workers_per_pool: 2,
            tenants: vec![("t0".into(), TenantQuota::default())],
            ..ServeConfig::default()
        }
    }

    #[test]
    fn submit_and_complete_all_job_classes() {
        let plane = ServePlane::new(quick_cfg());
        let s = plane.session("t0").expect("registered tenant");
        let specs = [
            JobSpec::Array { seed: 7, n: 64 },
            JobSpec::Kernel { seed: 8, n: 48 },
            JobSpec::Solve { seed: 9, n: 40 },
        ];
        let tickets: Vec<_> = specs
            .iter()
            .map(|spec| {
                s.submit(JobRequest {
                    spec: spec.clone(),
                    priority: Priority::Normal,
                    budget: Duration::from_secs(30),
                })
                .expect("admitted")
            })
            .collect();
        for (ticket, spec) in tickets.into_iter().zip(&specs) {
            match ticket.wait() {
                JobOutcome::Completed { data, workers, .. } => {
                    assert_eq!(workers, 2);
                    let want = reference_result(spec, workers);
                    assert_eq!(data, want, "served result must match the clean oracle");
                }
                other => panic!("expected completion, got {other:?}"),
            }
        }
        let stats = plane.shutdown();
        assert_eq!(stats.completed, 3);
        assert!(stats.reconciles(), "{stats:?}");
    }

    #[test]
    fn unknown_tenant_and_zero_budget_are_typed_errors() {
        let plane = ServePlane::new(quick_cfg());
        assert!(matches!(
            plane.session("ghost"),
            Err(ServeError::UnknownTenant { .. })
        ));
        let s = plane.session("t0").unwrap();
        assert_eq!(
            s.submit(JobRequest {
                spec: JobSpec::Array { seed: 1, n: 8 },
                priority: Priority::Normal,
                budget: Duration::ZERO,
            })
            .unwrap_err(),
            ServeError::ZeroBudget
        );
    }

    #[test]
    fn closed_plane_refuses_submissions() {
        let plane = ServePlane::new(quick_cfg());
        let stats = {
            let s = plane.session("t0").unwrap();
            let t = s
                .submit(JobRequest {
                    spec: JobSpec::Array { seed: 2, n: 16 },
                    priority: Priority::Normal,
                    budget: Duration::from_secs(10),
                })
                .unwrap();
            let _ = t.wait();
            plane.stats()
        };
        assert_eq!(stats.admitted, 1);
        let final_stats = plane.shutdown();
        assert!(final_stats.reconciles());
    }
}
