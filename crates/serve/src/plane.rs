//! The serving plane: sessions, admission control, fair-share
//! scheduling, shedding, and drain/shutdown orchestration.
//!
//! Topology (one [`ServePlane`]):
//!
//! ```text
//! Session::submit ──admission──▶ per-tenant bounded queues (3 lanes)
//!                                      │ fair-share scheduler thread
//!                                      ▼
//!                        per-pool Bounded inboxes (cap ~ a few jobs)
//!                                      │ one driver thread per pool
//!                                      ▼
//!                        OdinContext worker pools (elastic size)
//! ```
//!
//! Backpressure propagates **end to end** through bounded stages: a slow
//! pool fills its inbox, the scheduler stops draining tenant queues,
//! tenant queues hit their quotas, and admission refuses with a typed
//! [`ServeError`] — no stage grows without bound. Under sustained
//! overload the scheduler additionally sheds the lowest-priority, newest
//! queued work (counted, resolved on the ticket — never silently
//! dropped).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use comm::Bounded;
use odin::OdinConfig;

use crate::error::ServeError;
use crate::job::{ExpiredAt, JobOutcome, JobRequest, JobSpec, JobTicket, Priority, N_PRIORITIES};
use crate::pool::{driver_loop, PoolCtl};
use crate::stats::ServeStats;

/// Per-tenant resource limits and scheduling weight.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Fair-share weight: a tenant with weight 2 receives twice the
    /// dispatch slots of a weight-1 tenant when both have backlog.
    pub weight: f64,
    /// Bounded queue depth; submissions beyond it are refused with
    /// [`ServeError::QuotaExceeded`].
    pub max_queued: usize,
    /// Jobs the tenant may have executing at once across all pools.
    pub max_inflight: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            weight: 1.0,
            max_queued: 64,
            max_inflight: 8,
        }
    }
}

/// Elastic pool sizing policy, evaluated by the scheduler from observed
/// load. Resizes apply **between** jobs (a pool driver finishes its
/// current job first), so completed results stay pure functions of
/// (spec, pool size).
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    /// Floor for any pool.
    pub min_workers: usize,
    /// Ceiling for any pool.
    pub max_workers: usize,
    /// Grow one pool when queued + inbox backlog exceeds this.
    pub grow_backlog: usize,
    /// Shrink one pool after this many consecutive idle scheduler ticks.
    pub shrink_idle_ticks: u32,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            min_workers: 1,
            max_workers: 8,
            grow_backlog: 8,
            shrink_idle_ticks: 200,
        }
    }
}

/// Configuration for one [`ServePlane`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Independent ODIN worker pools (one driver thread each).
    pub n_pools: usize,
    /// Initial workers per pool.
    pub workers_per_pool: usize,
    /// Template for each pool's ODIN master (`n_workers` is overridden
    /// per pool). Set `stall_timeout`/`reply_timeout` whenever the fault
    /// plan can kill a worker, exactly as for a bare [`odin::OdinContext`].
    pub odin: OdinConfig,
    /// Registered tenants: `(name, quota)`.
    pub tenants: Vec<(String, TenantQuota)>,
    /// Capacity of each pool's dispatch inbox. Small on purpose: the
    /// inbox is a staging slot, not a queue — depth lives in the tenant
    /// queues where quotas and shedding can see it.
    pub pool_inbox_cap: usize,
    /// Global queued-job bound; beyond it the shedder drops the
    /// lowest-priority newest queued work until back under.
    pub max_queued_total: usize,
    /// Execution attempts per job before giving up.
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Elastic sizing; `None` pins pools at `workers_per_pool`.
    pub elastic: Option<ElasticPolicy>,
    /// Iterations per CG chunk — the deadline-check (hard cancel)
    /// granularity for solve jobs.
    pub solve_chunk_iters: usize,
    /// CG checkpoint cadence within a chunk (the retry resume grid).
    pub solve_checkpoint_every: usize,
    /// Total CG iteration budget; exceeding it is a permanent failure.
    pub solve_max_iter: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_pools: 1,
            workers_per_pool: 2,
            odin: OdinConfig::default(),
            tenants: Vec::new(),
            pool_inbox_cap: 4,
            max_queued_total: 128,
            max_attempts: 4,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(50),
            elastic: None,
            solve_chunk_iters: 64,
            solve_checkpoint_every: 8,
            solve_max_iter: 1000,
        }
    }
}

/// One admitted job moving through the plane.
pub(crate) struct QueuedJob {
    pub id: u64,
    pub tenant: usize,
    pub spec: JobSpec,
    pub priority: Priority,
    pub submitted: Instant,
    pub deadline: Instant,
    pub tx: mpsc::Sender<JobOutcome>,
}

struct TenantState {
    quota: TenantQuota,
    /// One FIFO lane per priority, indexed by [`Priority::lane`].
    lanes: [VecDeque<QueuedJob>; N_PRIORITIES],
    queued: usize,
    inflight: usize,
    /// Stride-scheduling virtual time: advanced by `1/weight` per
    /// dispatch; the eligible tenant with the smallest pass goes next.
    pass: f64,
}

pub(crate) struct SchedState {
    tenants: Vec<TenantState>,
}

impl SchedState {
    fn queued_total(&self) -> usize {
        self.tenants.iter().map(|t| t.queued).sum()
    }

    fn inflight_total(&self) -> usize {
        self.tenants.iter().map(|t| t.inflight).sum()
    }
}

/// State shared by sessions, the scheduler, and the pool drivers.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub tenant_names: Vec<String>,
    pub sched: Mutex<SchedState>,
    /// Paired with `sched`: new work, freed inflight slots, shutdown.
    pub work_cv: Condvar,
    pub stats: Mutex<ServeStats>,
    pub next_id: AtomicU64,
    pub outstanding: AtomicU64,
    pub drain_lock: Mutex<()>,
    pub drain_cv: Condvar,
    /// Admission refuses new work.
    pub closed: AtomicBool,
    /// Drivers/scheduler resolve remaining work as failed and exit.
    pub stopping: AtomicBool,
    pub inboxes: Vec<Arc<Bounded<QueuedJob>>>,
}

impl Shared {
    pub(crate) fn lock_sched(&self) -> MutexGuard<'_, SchedState> {
        self.sched.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn lock_stats(&self) -> MutexGuard<'_, ServeStats> {
        self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Release one inflight slot for `tenant` and wake the scheduler.
    pub(crate) fn release_inflight(&self, tenant: usize) {
        let mut s = self.lock_sched();
        s.tenants[tenant].inflight = s.tenants[tenant].inflight.saturating_sub(1);
        drop(s);
        self.work_cv.notify_all();
    }
}

/// Mirror a per-tenant counter into the metrics registry.
fn obs_tenant_counter(name: &str, tenant: &str) {
    if obs::enabled() {
        obs::global()
            .counter(&obs::registry::key(name, &[("tenant", tenant)]))
            .inc();
    }
}

/// Deliver the outcome for `job` and account for it exactly once. The
/// ledger is the invariant the chaos gate checks: every admitted job
/// increments exactly one terminal counter.
pub(crate) fn resolve(shared: &Shared, job: &QueuedJob, outcome: JobOutcome) {
    let tenant = &shared.tenant_names[job.tenant];
    {
        let mut st = shared.lock_stats();
        match &outcome {
            JobOutcome::Completed { .. } => st.completed += 1,
            JobOutcome::Shed { .. } => st.shed += 1,
            JobOutcome::Expired {
                at: ExpiredAt::Queued,
                ..
            } => st.expired_queued += 1,
            JobOutcome::Expired { .. } => st.expired_running += 1,
            JobOutcome::Failed { .. } => st.failed += 1,
        }
    }
    if obs::enabled() {
        obs_tenant_counter(&format!("serve.{}", outcome.label()), tenant);
        if let JobOutcome::Completed {
            queue_wait,
            service,
            ..
        } = &outcome
        {
            let total_ms = (*queue_wait + *service).as_secs_f64() * 1e3;
            obs::global()
                .histogram(&obs::registry::key(
                    "serve.latency_ms",
                    &[("tenant", tenant)],
                ))
                .record(total_ms.round() as u64);
        }
    }
    // A dropped ticket is fine; the accounting above already happened.
    let _ = job.tx.send(outcome);
    shared.outstanding.fetch_sub(1, Ordering::SeqCst);
    let _g = shared.drain_lock.lock().unwrap_or_else(|p| p.into_inner());
    shared.drain_cv.notify_all();
}

/// The multi-tenant serving plane. Construct with [`ServePlane::new`],
/// open per-tenant [`Session`]s, submit [`JobRequest`]s, and read the
/// ledger with [`ServePlane::stats`].
pub struct ServePlane {
    shared: Arc<Shared>,
    scheduler: Option<JoinHandle<()>>,
    drivers: Vec<JoinHandle<()>>,
    joined: bool,
}

/// A tenant's handle for submitting work.
pub struct Session<'p> {
    plane: &'p ServePlane,
    tenant: usize,
}

impl ServePlane {
    /// Spawn the scheduler and one driver thread (owning one ODIN worker
    /// pool) per configured pool.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.n_pools >= 1, "a plane needs at least one pool");
        assert!(cfg.workers_per_pool >= 1, "a pool needs a worker");
        assert!(cfg.pool_inbox_cap >= 1, "inboxes need capacity");
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|(n, _)| n.clone()).collect();
        let tenants = cfg
            .tenants
            .iter()
            .map(|(_, q)| TenantState {
                quota: q.clone(),
                lanes: std::array::from_fn(|_| VecDeque::new()),
                queued: 0,
                inflight: 0,
                pass: 0.0,
            })
            .collect();
        let inboxes: Vec<Arc<Bounded<QueuedJob>>> = (0..cfg.n_pools)
            .map(|_| Arc::new(Bounded::new(cfg.pool_inbox_cap)))
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            tenant_names,
            sched: Mutex::new(SchedState { tenants }),
            work_cv: Condvar::new(),
            stats: Mutex::new(ServeStats::default()),
            next_id: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            drain_lock: Mutex::new(()),
            drain_cv: Condvar::new(),
            closed: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            inboxes,
        });
        let mut drivers = Vec::with_capacity(shared.cfg.n_pools);
        let mut ctls = Vec::with_capacity(shared.cfg.n_pools);
        for pool in 0..shared.cfg.n_pools {
            let (ctl_tx, ctl_rx) = mpsc::channel();
            ctls.push(ctl_tx);
            let sh = Arc::clone(&shared);
            let inbox = Arc::clone(&shared.inboxes[pool]);
            drivers.push(
                std::thread::Builder::new()
                    .name(format!("serve-pool-{pool}"))
                    .spawn(move || driver_loop(sh, pool, inbox, ctl_rx))
                    .expect("spawn pool driver"),
            );
        }
        let sh = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("serve-sched".into())
            .spawn(move || scheduler_loop(sh, ctls))
            .expect("spawn scheduler");
        ServePlane {
            shared,
            scheduler: Some(scheduler),
            drivers,
            joined: false,
        }
    }

    /// Open a session for a registered tenant.
    pub fn session(&self, tenant: &str) -> Result<Session<'_>, ServeError> {
        match self.shared.tenant_names.iter().position(|n| n == tenant) {
            Some(idx) => Ok(Session {
                plane: self,
                tenant: idx,
            }),
            None => Err(ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            }),
        }
    }

    /// Ledger snapshot.
    pub fn stats(&self) -> ServeStats {
        *self.shared.lock_stats()
    }

    /// Jobs admitted but not yet resolved.
    pub fn outstanding(&self) -> u64 {
        self.shared.outstanding.load(Ordering::SeqCst)
    }

    /// Block until every admitted job has resolved.
    pub fn drain(&self) {
        let mut g = self
            .shared
            .drain_lock
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        while self.shared.outstanding.load(Ordering::SeqCst) > 0 {
            g = self
                .shared
                .drain_cv
                .wait_timeout(g, Duration::from_millis(5))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }

    /// Close admission, drain every admitted job, stop all threads, and
    /// return the final ledger.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.drain();
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        if self.joined {
            return;
        }
        self.joined = true;
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for inbox in &self.shared.inboxes {
            inbox.close();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        for h in self.drivers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServePlane {
    fn drop(&mut self) {
        // Un-drained teardown still resolves every admitted job (as
        // failed, counted) before the threads exit.
        self.stop_and_join();
    }
}

impl Session<'_> {
    /// The tenant this session belongs to.
    pub fn tenant(&self) -> &str {
        &self.plane.shared.tenant_names[self.tenant]
    }

    /// Submit a job. Returns a ticket on admission or a typed refusal —
    /// the synchronous backpressure signal.
    pub fn submit(&self, req: JobRequest) -> Result<JobTicket, ServeError> {
        let shared = &self.plane.shared;
        shared.lock_stats().submitted += 1;
        if req.budget.is_zero() {
            return Err(ServeError::ZeroBudget);
        }
        let tenant_name = self.tenant();
        if shared.closed.load(Ordering::SeqCst) {
            shared.lock_stats().rejected_closed += 1;
            return Err(ServeError::Closed);
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let id = shared.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut s = shared.lock_sched();
            let t = &mut s.tenants[self.tenant];
            if t.queued >= t.quota.max_queued {
                let queued = t.queued;
                let cap = t.quota.max_queued;
                drop(s);
                shared.lock_stats().rejected_quota += 1;
                obs_tenant_counter("serve.rejected", tenant_name);
                return Err(ServeError::QuotaExceeded {
                    tenant: tenant_name.to_string(),
                    queued,
                    cap,
                });
            }
            t.lanes[req.priority.lane()].push_back(QueuedJob {
                id,
                tenant: self.tenant,
                spec: req.spec,
                priority: req.priority,
                submitted: now,
                deadline: now + req.budget,
                tx,
            });
            t.queued += 1;
        }
        shared.outstanding.fetch_add(1, Ordering::SeqCst);
        shared.lock_stats().admitted += 1;
        obs_tenant_counter("serve.admitted", tenant_name);
        shared.work_cv.notify_all();
        Ok(JobTicket { id, rx })
    }
}

// ---- scheduler -------------------------------------------------------------

/// One scheduler pass under the lock: expire, shed, dispatch. Returns
/// jobs to resolve outside the lock plus the load snapshot the elastic
/// policy needs.
fn sched_tick(
    shared: &Shared,
    s: &mut SchedState,
    resolved: &mut Vec<(QueuedJob, JobOutcome)>,
) -> (usize, usize) {
    let now = Instant::now();
    // 1. Expire queued jobs whose deadline has passed.
    for t in s.tenants.iter_mut() {
        for lane in t.lanes.iter_mut() {
            let mut i = 0;
            while i < lane.len() {
                if lane[i].deadline <= now {
                    let job = lane.remove(i).expect("indexed job");
                    t.queued -= 1;
                    let after = now.duration_since(job.submitted);
                    resolved.push((
                        job,
                        JobOutcome::Expired {
                            at: ExpiredAt::Queued,
                            after,
                        },
                    ));
                } else {
                    i += 1;
                }
            }
        }
    }
    // 2. Shed overload: lowest priority first, newest first within it.
    while s.queued_total() > shared.cfg.max_queued_total {
        let mut victim: Option<(usize, usize)> = None; // (tenant, lane)
        'lanes: for lane_idx in 0..N_PRIORITIES {
            let mut newest: Option<(usize, u64)> = None;
            for (ti, t) in s.tenants.iter().enumerate() {
                if let Some(back) = t.lanes[lane_idx].back() {
                    if newest.is_none_or(|(_, id)| back.id > id) {
                        newest = Some((ti, back.id));
                    }
                }
            }
            if let Some((ti, _)) = newest {
                victim = Some((ti, lane_idx));
                break 'lanes;
            }
        }
        let Some((ti, lane_idx)) = victim else { break };
        let t = &mut s.tenants[ti];
        let job = t.lanes[lane_idx].pop_back().expect("victim exists");
        t.queued -= 1;
        let queued_for = now.duration_since(job.submitted);
        let priority = job.priority;
        resolved.push((
            job,
            JobOutcome::Shed {
                priority,
                queued_for,
            },
        ));
    }
    // 3. Fair-share dispatch into pool inboxes until backpressure.
    while let Some(ti) = s
        .tenants
        .iter()
        .enumerate()
        .filter(|(_, t)| t.queued > 0 && t.inflight < t.quota.max_inflight)
        .min_by(|(_, a), (_, b)| a.pass.total_cmp(&b.pass))
        .map(|(ti, _)| ti)
    {
        let t = &mut s.tenants[ti];
        let lane_idx = (0..N_PRIORITIES)
            .rev()
            .find(|&l| !t.lanes[l].is_empty())
            .expect("tenant has queued work");
        let job = t.lanes[lane_idx].pop_front().expect("lane non-empty");
        t.queued -= 1;
        if job.deadline <= now {
            let after = now.duration_since(job.submitted);
            resolved.push((
                job,
                JobOutcome::Expired {
                    at: ExpiredAt::Queued,
                    after,
                },
            ));
            continue;
        }
        // Least-loaded inbox; on backpressure put the job back and stop.
        let pi = (0..shared.inboxes.len())
            .min_by_key(|&p| shared.inboxes[p].len())
            .expect("at least one pool");
        match shared.inboxes[pi].try_push(job) {
            Ok(()) => {
                t.inflight += 1;
                t.pass += 1.0 / t.quota.weight.max(1e-9);
            }
            Err(err) => {
                let job = err.into_inner();
                t.lanes[lane_idx].push_front(job);
                t.queued += 1;
                shared.lock_stats().dispatch_backpressure += 1;
                break;
            }
        }
    }
    (s.queued_total(), s.inflight_total())
}

fn scheduler_loop(shared: Arc<Shared>, ctls: Vec<mpsc::Sender<PoolCtl>>) {
    let pol = shared.cfg.elastic.clone();
    let mut targets = vec![shared.cfg.workers_per_pool; shared.cfg.n_pools];
    let mut idle_ticks = 0u32;
    let mut cooldown = 0u32;
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            // Final sweep: everything still queued resolves, counted.
            let mut leftovers = Vec::new();
            {
                let mut s = shared.lock_sched();
                for t in s.tenants.iter_mut() {
                    for lane in t.lanes.iter_mut() {
                        while let Some(job) = lane.pop_front() {
                            t.queued -= 1;
                            leftovers.push(job);
                        }
                    }
                }
            }
            for job in leftovers {
                resolve(
                    &shared,
                    &job,
                    JobOutcome::Failed {
                        attempts: 0,
                        error: "serving plane shut down before the job ran".into(),
                    },
                );
            }
            return;
        }
        let mut resolved = Vec::new();
        let (queued, inflight) = {
            let mut s = shared.lock_sched();
            sched_tick(&shared, &mut s, &mut resolved)
        };
        for (job, outcome) in resolved {
            resolve(&shared, &job, outcome);
        }
        if let Some(pol) = &pol {
            let backlog = queued + shared.inboxes.iter().map(|q| q.len()).sum::<usize>();
            cooldown = cooldown.saturating_sub(1);
            if backlog > pol.grow_backlog && cooldown == 0 {
                if let Some(p) = (0..targets.len())
                    .filter(|&p| targets[p] < pol.max_workers)
                    .min_by_key(|&p| targets[p])
                {
                    targets[p] += 1;
                    let _ = ctls[p].send(PoolCtl::Resize(targets[p]));
                    cooldown = 8;
                }
                idle_ticks = 0;
            } else if backlog == 0 && inflight == 0 {
                idle_ticks += 1;
                if idle_ticks >= pol.shrink_idle_ticks {
                    idle_ticks = 0;
                    if let Some(p) = (0..targets.len())
                        .filter(|&p| targets[p] > pol.min_workers)
                        .max_by_key(|&p| targets[p])
                    {
                        targets[p] -= 1;
                        let _ = ctls[p].send(PoolCtl::Resize(targets[p]));
                    }
                }
            } else {
                idle_ticks = 0;
            }
        }
        let g = shared.lock_sched();
        let _ = shared
            .work_cv
            .wait_timeout(g, Duration::from_millis(1))
            .unwrap_or_else(|p| p.into_inner());
    }
}
