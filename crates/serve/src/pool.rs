//! Pool drivers: one thread per ODIN worker pool, executing dispatched
//! jobs with retry + backoff, deadline hard-cancel, and fault absorption.
//!
//! The driver owns its [`OdinContext`] (the master is deliberately
//! single-threaded), so every fault a pool can throw — a killed worker
//! panicking a collective, a straggler tripping the reply timeout —
//! surfaces on this thread, where `catch_unwind` + `health_check` +
//! `recover` turn it into a counted retry instead of a failed tenant job.
//! Solve jobs additionally resume from their newest common CG checkpoint,
//! so absorbed kills cost iterations-since-checkpoint, not a restart, and
//! the completed result stays **bitwise identical** to a fault-free run
//! at the same pool size (the E16 restart-identity contract).

use std::cmp::Reverse;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use comm::{Bounded, PopError};
use dlinalg::{CsrMatrix, DistVector};
use odin::{DType, Dist, OdinCheckpoint, OdinContext};
use solvers::{
    cg_checkpointed, CgCheckpointing, CheckpointStore, IdentityPrecond, KrylovConfig, SolveStatus,
};

use crate::job::{ExpiredAt, JobOutcome, JobSpec};
use crate::plane::{resolve, QueuedJob, ServeConfig, Shared};

/// Scheduler → driver control messages.
pub(crate) enum PoolCtl {
    /// Retarget the pool to this many workers (applied between jobs via
    /// [`OdinContext::resize`] with an empty checkpoint — serve jobs keep
    /// no cross-job array state).
    Resize(usize),
}

/// The Seamless kernel every [`JobSpec::Kernel`] job maps (compiled once
/// per pool lifetime, replayed across recoveries by the kernel registry).
const KERNEL_SRC: &str = "def serve_poly(v):\n    return v * v + 1.0\n";

fn set_pool_gauge(pool: usize, workers: usize) {
    if obs::enabled() {
        obs::global()
            .gauge(&obs::registry::key(
                "serve.pool_workers",
                &[("pool", &pool.to_string())],
            ))
            .set(workers as f64);
    }
}

/// Main loop of one pool driver thread.
pub(crate) fn driver_loop(
    shared: Arc<Shared>,
    pool: usize,
    inbox: Arc<Bounded<QueuedJob>>,
    ctl: mpsc::Receiver<PoolCtl>,
) {
    let mut odin_cfg = shared.cfg.odin;
    odin_cfg.n_workers = shared.cfg.workers_per_pool;
    let mut ctx = OdinContext::new(odin_cfg);
    set_pool_gauge(pool, ctx.n_workers());
    loop {
        // Apply pending resizes between jobs: the driver holds no arrays
        // across jobs, so an empty checkpoint fully describes live state.
        while let Ok(PoolCtl::Resize(n)) = ctl.try_recv() {
            if n != ctx.n_workers() && n > 0 {
                ctx.resize(n, &OdinCheckpoint::empty());
                shared.lock_stats().resizes += 1;
                set_pool_gauge(pool, n);
            }
        }
        // Priority overtaking at the pool edge: take the highest-priority
        // (oldest within it) staged job, falling back to a short blocking
        // pop so control messages are still polled regularly.
        let job = match inbox.take_max_by_key(|j| (j.priority, Reverse(j.id))) {
            Some(j) => j,
            None => match inbox.pop_timeout(Duration::from_millis(2)) {
                Ok(j) => j,
                Err(PopError::Closed) => break,
                Err(_) => continue,
            },
        };
        if shared.stopping.load(Ordering::SeqCst) {
            let tenant = job.tenant;
            resolve(
                &shared,
                &job,
                JobOutcome::Failed {
                    attempts: 0,
                    error: "serving plane shut down before the job ran".into(),
                },
            );
            shared.release_inflight(tenant);
            continue;
        }
        run_job(&shared, &ctx, job);
    }
}

fn run_job(shared: &Shared, ctx: &OdinContext, job: QueuedJob) {
    let tenant = job.tenant;
    let t0 = Instant::now();
    let queue_wait = t0.duration_since(job.submitted);
    let outcome = if t0 >= job.deadline {
        JobOutcome::Expired {
            at: ExpiredAt::Dispatch,
            after: queue_wait,
        }
    } else {
        let timer = obs::enabled().then(|| obs::span::span_start(obs::span::wall_now_s()));
        let outcome = execute(shared, ctx, &job, queue_wait);
        if let Some(t) = timer {
            t.finish(
                "serve",
                format!("job.{}", job.spec.class()),
                obs::span::wall_now_s(),
                &[("n", job.spec.size() as f64)],
            );
        }
        outcome
    };
    resolve(shared, &job, outcome);
    shared.release_inflight(tenant);
}

/// Why one execution attempt did not produce a result.
enum AttemptFail {
    /// Deadline passed at a hard-cancel point.
    Expired,
    /// Retrying cannot help (compile error, iteration budget).
    Permanent(String),
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker pool panic".to_string()
    }
}

/// Retry loop around [`attempt_once`]: absorb crashes with
/// `health_check` + `recover`, back off exponentially, and hard-cancel
/// at the deadline. The per-job [`CheckpointStore`] survives attempts,
/// so a solve retry resumes rather than restarts.
fn execute(
    shared: &Shared,
    ctx: &OdinContext,
    job: &QueuedJob,
    queue_wait: Duration,
) -> JobOutcome {
    let cfg = &shared.cfg;
    let t0 = Instant::now();
    let store: CheckpointStore<f64> = CheckpointStore::new();
    let mut attempts = 0u32;
    let mut recoveries = 0u32;
    loop {
        attempts += 1;
        shared.lock_stats().attempts += 1;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            attempt_once(ctx, &job.spec, &store, job.deadline, cfg)
        }));
        let crash = match result {
            Ok(Ok(data)) => {
                return JobOutcome::Completed {
                    data,
                    workers: ctx.n_workers(),
                    attempts,
                    recoveries,
                    queue_wait,
                    service: t0.elapsed(),
                }
            }
            Ok(Err(AttemptFail::Expired)) => {
                return JobOutcome::Expired {
                    at: ExpiredAt::Running,
                    after: job.submitted.elapsed(),
                }
            }
            Ok(Err(AttemptFail::Permanent(error))) => {
                return JobOutcome::Failed { attempts, error }
            }
            // A pool fault (worker killed or timed out mid-collective)
            // unwinds out of the attempt as a panic — the transient case.
            Err(p) => panic_text(p),
        };
        // Transient fault: heal the pool if it needs it, then retry.
        if ctx.health_check().is_err() {
            let report = ctx.recover(&OdinCheckpoint::empty());
            recoveries += 1;
            shared.lock_stats().recoveries += 1;
            if obs::enabled() {
                obs::global().counter("serve.recoveries").inc();
            }
            debug_assert_eq!(report.respawned, ctx.n_workers());
        }
        if attempts >= cfg.max_attempts {
            return JobOutcome::Failed {
                attempts,
                error: format!("retries exhausted after {attempts} attempts: {crash}"),
            };
        }
        let now = Instant::now();
        if now >= job.deadline {
            return JobOutcome::Expired {
                at: ExpiredAt::Running,
                after: job.submitted.elapsed(),
            };
        }
        let exp = cfg
            .backoff_base
            .saturating_mul(1u32 << (attempts - 1).min(16));
        let backoff = exp.min(cfg.backoff_max).min(job.deadline - now);
        std::thread::sleep(backoff);
        shared.lock_stats().retries += 1;
    }
}

/// One fault-free execution path for a spec. Panics (worker death mid
/// collective) unwind to [`execute`]'s `catch_unwind`.
fn attempt_once(
    ctx: &OdinContext,
    spec: &JobSpec,
    store: &CheckpointStore<f64>,
    deadline: Instant,
    cfg: &ServeConfig,
) -> Result<Vec<f64>, AttemptFail> {
    match *spec {
        JobSpec::Array { seed, n } => {
            // y = x·x + x on seeded x — deterministic per (seed, n)
            // regardless of worker count (global-index-keyed fill).
            let x = ctx.random_dist(&[n], seed, Dist::Block);
            let y = &x * &x;
            let z = &y + &x;
            Ok(z.to_vec())
        }
        JobSpec::Kernel { seed, n } => {
            let k = ctx
                .compile_kernel(KERNEL_SRC, "serve_poly")
                .map_err(|e| AttemptFail::Permanent(format!("kernel compile failed: {e}")))?;
            let x = ctx.random_dist(&[n], seed, Dist::Block);
            Ok(k.map(&[&x]).to_vec())
        }
        JobSpec::Solve { seed, n } => solve_attempt(ctx, seed, n, store, deadline, cfg),
    }
}

/// Chunked, checkpointed CG on the worker pool. Runs
/// `solve_chunk_iters` at a time so the deadline gets a hard-cancel
/// point between chunks; each chunk resumes from the newest common
/// checkpoint (also the retry resume point after a mid-solve kill).
fn solve_attempt(
    ctx: &OdinContext,
    seed: u64,
    n: usize,
    store: &CheckpointStore<f64>,
    deadline: Instant,
    cfg: &ServeConfig,
) -> Result<Vec<f64>, AttemptFail> {
    let x_arr = ctx.zeros(&[n], DType::F64);
    let shift = (seed % 997) as f64 * 1e-3;
    let every = cfg.solve_checkpoint_every;
    let chunk = cfg.solve_chunk_iters.max(1);
    let mut hi = chunk.min(cfg.solve_max_iter.max(1));
    loop {
        let resume = Arc::new(store.resume_point(ctx.n_workers()));
        let status: Arc<Mutex<Option<SolveStatus>>> = Arc::new(Mutex::new(None));
        let status2 = Arc::clone(&status);
        let resume2 = Arc::clone(&resume);
        let store2 = store.clone();
        ctx.run_spmd(&[&x_arr], move |scope, args| {
            let x_id = args[0];
            let xv0 = scope.as_dist_vector(x_id);
            let map = xv0.map().clone();
            // Seeded SPD tridiagonal system: strictly diagonally
            // dominant, so CG converges for every seed.
            let a = CsrMatrix::from_row_fn(scope.comm, map.clone(), map, move |g| {
                let mut row = Vec::with_capacity(3);
                if g > 0 {
                    row.push((g - 1, -1.0));
                }
                row.push((g, 2.5 + (g % 3) as f64 * 0.25));
                if g + 1 < n {
                    row.push((g + 1, -1.0));
                }
                row
            });
            let b = DistVector::from_fn(a.domain_map().clone(), move |g| {
                ((g as f64) * 0.3 + shift).cos()
            });
            let mut xv = DistVector::zeros(a.domain_map().clone());
            let rank = scope.rank();
            let store3 = store2.clone();
            let sink = move |c| store3.record(rank, c);
            let kcfg = KrylovConfig {
                max_iter: hi,
                ..KrylovConfig::default()
            };
            let ckp = CgCheckpointing {
                every,
                sink: Some(&sink),
                resume: resume2.as_ref().as_ref().map(|v| &v[rank]),
            };
            let st = cg_checkpointed(scope.comm, &a, &b, &mut xv, &IdentityPrecond, &kcfg, &ckp);
            scope.store_dist_vector(x_id, &xv);
            if rank == 0 {
                *status2.lock().unwrap_or_else(|p| p.into_inner()) = Some(st);
            }
        });
        let st = status
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
            .expect("worker 0 reports solve status");
        if st.converged {
            return Ok(x_arr.to_vec());
        }
        if hi >= cfg.solve_max_iter {
            return Err(AttemptFail::Permanent(format!(
                "CG did not converge within {} iterations",
                cfg.solve_max_iter
            )));
        }
        if Instant::now() >= deadline {
            // Hard cancel at the chunk boundary.
            return Err(AttemptFail::Expired);
        }
        hi = (hi + chunk).min(cfg.solve_max_iter);
    }
}

/// The fault-free oracle: what a job's [`JobOutcome::Completed`] data
/// must equal, bitwise, when run at `workers` workers — computed on a
/// fresh clean pool. Tests and the E23 bench compare chaos-run results
/// against this.
pub fn reference_result(spec: &JobSpec, workers: usize) -> Vec<f64> {
    let ctx = OdinContext::with_workers(workers);
    let store = CheckpointStore::new();
    let cfg = ServeConfig::default();
    let deadline = Instant::now() + Duration::from_secs(3600);
    attempt_once(&ctx, spec, &store, deadline, &cfg)
        .unwrap_or_else(|_| panic!("reference run must succeed for {spec:?}"))
}
