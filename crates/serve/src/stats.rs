//! Plane-wide accounting. Every admitted job resolves into exactly one
//! of the terminal counters, so admitted equals the sum of completed,
//! shed, expired, and failed once the plane is drained — the
//! reconciliation the E23 chaos gate asserts.

/// Monotonic counters for one [`crate::ServePlane`] lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submissions seen (admitted + refused).
    pub submitted: u64,
    /// Jobs accepted into a tenant queue.
    pub admitted: u64,
    /// Submissions refused because the tenant queue was at quota.
    pub rejected_quota: u64,
    /// Submissions refused because the plane was closing.
    pub rejected_closed: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Queued jobs dropped by the overload shedder (lowest priority,
    /// newest first — counted here, reported on the ticket).
    pub shed: u64,
    /// Jobs whose deadline expired while still queued.
    pub expired_queued: u64,
    /// Jobs whose deadline expired at dispatch or mid-execution.
    pub expired_running: u64,
    /// Jobs the plane gave up on (retry budget, non-retryable error, or
    /// shutdown). Must stay 0 under the E23 chaos gate.
    pub failed: u64,
    /// Execution attempts across all jobs.
    pub attempts: u64,
    /// Attempts beyond each job's first (backoff-retried faults).
    pub retries: u64,
    /// Pool respawn + replay cycles absorbed (worker kills).
    pub recoveries: u64,
    /// Elastic pool resizes applied.
    pub resizes: u64,
    /// Dispatch rounds that stalled because every pool inbox was full —
    /// the backpressure signal propagating from pools to queues.
    pub dispatch_backpressure: u64,
}

impl ServeStats {
    /// Terminal resolutions so far.
    pub fn resolved(&self) -> u64 {
        self.completed + self.shed + self.expired_queued + self.expired_running + self.failed
    }

    /// Does the ledger reconcile? True iff every admitted job has
    /// resolved — nothing in flight, nothing silently dropped.
    pub fn reconciles(&self) -> bool {
        self.admitted == self.resolved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_reconciliation() {
        let mut s = ServeStats {
            admitted: 10,
            completed: 6,
            shed: 2,
            expired_queued: 1,
            ..Default::default()
        };
        assert!(!s.reconciles());
        s.expired_running = 1;
        assert!(s.reconciles());
        assert_eq!(s.resolved(), 10);
    }
}
