//! Typed admission errors.
//!
//! Admission control answers **synchronously**: a submission is either
//! admitted (the caller holds a [`crate::JobTicket`]) or refused with one
//! of these errors. Refusals are the backpressure signal at the plane's
//! edge — a full tenant queue propagates here instead of growing an
//! unbounded mailbox in the middle of the stack.

/// Why a submission was refused at the admission edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The tenant's bounded queue is at its quota. Backpressure, not
    /// failure: resubmit later or at a higher priority.
    QuotaExceeded {
        /// Tenant whose quota refused the job.
        tenant: String,
        /// Jobs currently queued for the tenant.
        queued: usize,
        /// The tenant's `max_queued` quota.
        cap: usize,
    },
    /// The deadline budget is zero — the job could never complete.
    ZeroBudget,
    /// No tenant with this name was registered in the plane's config.
    UnknownTenant {
        /// The name that failed to resolve.
        tenant: String,
    },
    /// The plane is shutting down; no further work is accepted.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QuotaExceeded {
                tenant,
                queued,
                cap,
            } => write!(
                f,
                "tenant `{tenant}` queue is full ({queued}/{cap} queued); backpressure — retry later"
            ),
            ServeError::ZeroBudget => write!(f, "deadline budget must be nonzero"),
            ServeError::UnknownTenant { tenant } => {
                write!(f, "no tenant named `{tenant}` is registered")
            }
            ServeError::Closed => write!(f, "serving plane is closed to new work"),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_backpressure_signal() {
        let e = ServeError::QuotaExceeded {
            tenant: "acme".into(),
            queued: 8,
            cap: 8,
        };
        assert_eq!(
            e.to_string(),
            "tenant `acme` queue is full (8/8 queued); backpressure — retry later"
        );
        assert_eq!(
            ServeError::Closed.to_string(),
            "serving plane is closed to new work"
        );
    }
}
