//! # odin — Optimized Distributed NumPy, in Rust
//!
//! Reproduction of the paper's ODIN system (§III): a distributed
//! N-dimensional array with two modes of interaction —
//!
//! * **global mode**: whole-array expressions issued from the master
//!   process ("the ODIN Process", Fig. 1), which sends *small control
//!   messages* to persistent workers that own the array segments;
//! * **local mode**: user functions registered on every worker and run
//!   against the local segment, with direct worker-to-worker
//!   communication through the [`comm`] substrate.
//!
//! Features implemented from the paper's survey of use cases:
//! distributed creation routines with block / cyclic / block-cyclic
//! distributions (§III-A), global ufuncs with automatic communication-
//! strategy selection for non-conformable operands (§III-B, §III-D),
//! local functions (§III-C), distributed slicing with automatic halo
//! exchange for finite differences (§III-G), distributed file IO
//! (§III-H), structured/tabular data with map-reduce (§III-I), lazy
//! expressions with loop fusion (§III listed optimizations), and a
//! bridge to the Trilinos-analog solver stack (§III-E).

pub mod array;
pub mod buffer;
pub mod context;
pub mod error;
pub mod io;
pub mod kernel;
pub mod lazy;
pub mod local;
pub mod mapreduce;
pub mod ops_ext;
pub mod program;
pub mod protocol;
pub mod reduce;
pub mod slicing;
pub mod table;

pub use array::{binary_strategy, set_binary_strategy, BinaryStrategy, DistArray};
pub use buffer::{Buffer, DType};
pub use context::{
    ContextStats, LocalFn, OdinCheckpoint, OdinConfig, OdinContext, Pending, WorkerScope,
};
pub use error::{OdinError, RecoveryReport};
pub use io::remove_saved;
pub use kernel::{Kernel, KernelSpec, Tier};
pub use lazy::Expr;
pub use program::{PExpr, Program, ProgramRun, ProgramStats, Traced, TracedScalar};
pub use protocol::{ArrayMeta, BinOp, Dist, KernelOut, ReduceKind, ReplyMsg, UnaryOp};
pub use slicing::SliceSpec;
pub use table::{DistTable, FieldType, FieldValue, Record, Schema, TableSeg};
