//! Distributed structured (tabular) data (§III-I): record arrays built on
//! a schema of typed fields, block-distributed over the workers — "the
//! fundamental components for parallel Map-Reduce style computations".

use std::sync::Arc;

use comm::{CommError, Cursor, Wire};

use crate::context::OdinContext;

/// Field types supported in records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldType {
    /// 64-bit integer.
    I64,
    /// 64-bit float.
    F64,
    /// UTF-8 string.
    Str,
}

/// One field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Integer value.
    I64(i64),
    /// Float value.
    F64(f64),
    /// String value.
    Str(String),
}

impl FieldValue {
    /// The value's type.
    pub fn field_type(&self) -> FieldType {
        match self {
            FieldValue::I64(_) => FieldType::I64,
            FieldValue::F64(_) => FieldType::F64,
            FieldValue::Str(_) => FieldType::Str,
        }
    }

    /// As f64 (strings are NaN).
    pub fn as_f64(&self) -> f64 {
        match self {
            FieldValue::I64(v) => *v as f64,
            FieldValue::F64(v) => *v,
            FieldValue::Str(_) => f64::NAN,
        }
    }

    /// As &str (panics for numerics).
    pub fn as_str(&self) -> &str {
        match self {
            FieldValue::Str(s) => s,
            other => panic!("expected string field, found {other:?}"),
        }
    }
}

/// A record: one value per schema field.
#[derive(Debug, Clone, PartialEq)]
pub struct Record(pub Vec<FieldValue>);

/// Named, typed columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// `(name, type)` per column.
    pub fields: Vec<(String, FieldType)>,
}

impl Schema {
    /// Build from name/type pairs.
    pub fn new(fields: &[(&str, FieldType)]) -> Self {
        Schema {
            fields: fields.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Column index of `name`.
    pub fn index_of(&self, name: &str) -> usize {
        self.fields
            .iter()
            .position(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("no column named {name}"))
    }

    /// Check a record against the schema.
    pub fn validate(&self, rec: &Record) {
        assert_eq!(rec.0.len(), self.fields.len(), "record arity mismatch");
        for (v, (name, t)) in rec.0.iter().zip(self.fields.iter()) {
            assert_eq!(v.field_type(), *t, "column {name} type mismatch");
        }
    }
}

/// One worker's segment of a distributed table.
#[derive(Debug, Clone)]
pub struct TableSeg {
    /// Shared schema.
    pub schema: Schema,
    /// Local records.
    pub rows: Vec<Record>,
}

/// Master-side handle to a distributed table.
pub struct DistTable<'c> {
    ctx: &'c OdinContext,
    id: u64,
    schema: Schema,
}

impl Drop for DistTable<'_> {
    fn drop(&mut self) {
        let id = self.id;
        self.ctx.run_spmd(&[], move |scope, _| {
            scope.remove_table(id);
        });
    }
}

impl<'c> DistTable<'c> {
    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The owning context.
    pub fn context(&self) -> &'c OdinContext {
        self.ctx
    }

    /// Worker-slot id (for custom local functions).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Total number of records. Collective.
    pub fn len(&self) -> usize {
        let id = self.id;
        self.ctx.run_spmd_reply(&[], move |scope, _| {
            let n = scope.table(id).rows.len();
            let total = scope.comm.allreduce(&n, comm::ReduceOp::sum());
            if scope.rank() == 0 {
                scope.reply(comm::encode_to_vec(&total));
            }
        })
    }

    /// Whether the table has no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transform every record (schema-preserving transforms pass the same
    /// schema; otherwise supply the new one).
    pub fn map(
        &self,
        new_schema: Schema,
        f: impl Fn(&Record) -> Record + Send + Sync + 'static,
    ) -> DistTable<'c> {
        let out = self.ctx.alloc_id();
        let src = self.id;
        let schema2 = new_schema.clone();
        self.ctx.run_spmd(&[], move |scope, _| {
            let rows: Vec<Record> = scope.table(src).rows.iter().map(&f).collect();
            for r in &rows {
                schema2.validate(r);
            }
            scope.insert_table(
                out,
                TableSeg {
                    schema: schema2.clone(),
                    rows,
                },
            );
        });
        DistTable {
            ctx: self.ctx,
            id: out,
            schema: new_schema,
        }
    }

    /// Keep records matching the predicate.
    pub fn filter(&self, pred: impl Fn(&Record) -> bool + Send + Sync + 'static) -> DistTable<'c> {
        let out = self.ctx.alloc_id();
        let src = self.id;
        self.ctx.run_spmd(&[], move |scope, _| {
            let seg = scope.table(src);
            let rows: Vec<Record> = seg.rows.iter().filter(|r| pred(r)).cloned().collect();
            let schema = seg.schema.clone();
            scope.insert_table(out, TableSeg { schema, rows });
        });
        DistTable {
            ctx: self.ctx,
            id: out,
            schema: self.schema.clone(),
        }
    }

    /// Gather every record to the master, in worker order.
    pub fn collect(&self) -> Vec<Record> {
        let id = self.id;
        self.ctx.send_collect(id)
    }
}

impl OdinContext {
    /// Scatter records into a block-distributed table.
    pub fn table_from_records(&self, schema: Schema, records: Vec<Record>) -> DistTable<'_> {
        for r in &records {
            schema.validate(r);
        }
        let id = self.alloc_id();
        let shared = Arc::new(records);
        let schema2 = schema.clone();
        self.run_spmd(&[], move |scope, _| {
            let p = scope.n_workers();
            let r = scope.rank();
            let n = shared.len();
            let per = n / p;
            let rem = n % p;
            let start = r * per + r.min(rem);
            let count = per + usize::from(r < rem);
            let rows = shared[start..start + count].to_vec();
            scope.insert_table(
                id,
                TableSeg {
                    schema: schema2.clone(),
                    rows,
                },
            );
        });
        DistTable {
            ctx: self,
            id,
            schema,
        }
    }

    /// Run an SPMD closure and decode worker 0's single reply.
    pub(crate) fn run_spmd_reply<T: Wire>(
        &self,
        arrays: &[&crate::array::DistArray<'_>],
        f: impl Fn(&mut crate::context::WorkerScope<'_>, &[u64]) + Send + Sync + 'static,
    ) -> T {
        let wrapped: crate::context::LocalFn = Arc::new(move |scope, args, _| {
            f(scope, args);
        });
        let fid = self.register_local(wrapped);
        let ids: Vec<u64> = arrays.iter().map(|a| a.id()).collect();
        self.call_local(fid, &ids, &[]);
        let bytes = self.collect_single_reply();
        comm::decode_from_slice(&bytes).expect("bad spmd reply")
    }

    pub(crate) fn send_collect(&self, table_id: u64) -> Vec<Record> {
        let wrapped: crate::context::LocalFn = Arc::new(move |scope, _, _| {
            let payload = comm::encode_to_vec(&scope.table(table_id).rows);
            scope.reply(payload);
        });
        let fid = self.register_local(wrapped);
        self.call_local(fid, &[], &[]);
        let replies = self.collect_replies_pub();
        let mut out = Vec::new();
        for bytes in replies {
            let rows: Vec<Record> = comm::decode_from_slice(&bytes).expect("bad collect payload");
            out.extend(rows);
        }
        out
    }

    pub(crate) fn collect_replies_pub(&self) -> Vec<Vec<u8>> {
        self.collect_replies()
    }
}

// ---- Wire impls ------------------------------------------------------------

impl Wire for FieldValue {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            FieldValue::I64(v) => {
                buf.push(0);
                v.encode(buf);
            }
            FieldValue::F64(v) => {
                buf.push(1);
                v.encode(buf);
            }
            FieldValue::Str(s) => {
                buf.push(2);
                s.encode(buf);
            }
        }
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        match u8::decode(cur)? {
            0 => Ok(FieldValue::I64(i64::decode(cur)?)),
            1 => Ok(FieldValue::F64(f64::decode(cur)?)),
            2 => Ok(FieldValue::Str(String::decode(cur)?)),
            b => Err(CommError::Decode(format!("bad field byte {b}"))),
        }
    }
}

impl Wire for Record {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn decode(cur: &mut Cursor<'_>) -> Result<Self, CommError> {
        Ok(Record(Vec::decode(cur)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_schema() -> Schema {
        Schema::new(&[
            ("name", FieldType::Str),
            ("age", FieldType::I64),
            ("score", FieldType::F64),
        ])
    }

    fn people() -> Vec<Record> {
        vec![
            Record(vec![
                FieldValue::Str("ada".into()),
                FieldValue::I64(36),
                FieldValue::F64(9.5),
            ]),
            Record(vec![
                FieldValue::Str("grace".into()),
                FieldValue::I64(45),
                FieldValue::F64(8.0),
            ]),
            Record(vec![
                FieldValue::Str("alan".into()),
                FieldValue::I64(41),
                FieldValue::F64(7.5),
            ]),
            Record(vec![
                FieldValue::Str("edsger".into()),
                FieldValue::I64(39),
                FieldValue::F64(6.0),
            ]),
            Record(vec![
                FieldValue::Str("barbara".into()),
                FieldValue::I64(28),
                FieldValue::F64(9.9),
            ]),
        ]
    }

    #[test]
    fn scatter_len_collect_roundtrip() {
        let ctx = OdinContext::with_workers(3);
        let t = ctx.table_from_records(people_schema(), people());
        assert_eq!(t.len(), 5);
        let got = t.collect();
        assert_eq!(got, people()); // block scatter preserves order
    }

    #[test]
    fn filter_selects_matching_records() {
        let ctx = OdinContext::with_workers(2);
        let t = ctx.table_from_records(people_schema(), people());
        let idx = t.schema().index_of("age");
        let over40 = t.filter(move |r| matches!(r.0[idx], FieldValue::I64(a) if a > 40));
        assert_eq!(over40.len(), 2);
        let names: Vec<String> = over40
            .collect()
            .into_iter()
            .map(|r| r.0[0].as_str().to_string())
            .collect();
        assert_eq!(names, vec!["grace", "alan"]);
    }

    #[test]
    fn map_changes_schema() {
        let ctx = OdinContext::with_workers(2);
        let t = ctx.table_from_records(people_schema(), people());
        let out_schema = Schema::new(&[("name", FieldType::Str), ("age2", FieldType::I64)]);
        let doubled = t.map(out_schema, |r| {
            let age = match r.0[1] {
                FieldValue::I64(a) => a,
                _ => unreachable!(),
            };
            Record(vec![r.0[0].clone(), FieldValue::I64(age * 2)])
        });
        let rows = doubled.collect();
        assert_eq!(rows[0].0[1], FieldValue::I64(72));
        assert_eq!(doubled.schema().fields.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn schema_validation_rejects_bad_records() {
        let ctx = OdinContext::with_workers(1);
        let _ = ctx.table_from_records(people_schema(), vec![Record(vec![FieldValue::I64(1)])]);
    }

    #[test]
    fn record_wire_roundtrip() {
        let r = Record(vec![
            FieldValue::Str("héllo".into()),
            FieldValue::I64(-42),
            FieldValue::F64(1.25),
        ]);
        let bytes = comm::encode_to_vec(&r);
        let back: Record = comm::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, r);
    }
}
