//! The ODIN process (master) and its persistent worker pool (paper Fig. 1).
//!
//! The master owns array *handles* and broadcasts small control commands;
//! workers own the array *segments*, execute commands in order, and
//! communicate directly with each other over a [`comm`] communicator —
//! never through the master — for redistributions, slicing, reductions and
//! local-mode functions. Control messages can be *batched*
//! ([`OdinContext::begin_batch`]) "for the frequent case when
//! communication latency is significant" (§III-B).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};

use comm::{Comm, Cursor, Universe, UniverseConfig, Wire};
use dlinalg::DistVector;

use crate::error::{OdinError, RecoveryReport};

use crate::buffer::{
    apply_binary, apply_binary_scalar, apply_unary, binary_result_dtype, binop_f64,
    unary_result_dtype, Buffer, DType,
};
use crate::protocol::{
    ArrayMeta, BinOp, Cmd, Dist, Fill, FusedOp, KernelOut, ReduceKind, ReplyMsg, UnaryOp,
};
use crate::slicing::{redistribute_worker, slice_worker};

/// Signature of a registered local-mode function (the `@odin.local`
/// decorator analog): it runs on every worker with direct access to the
/// worker's scope and the call's array/scalar arguments.
pub type LocalFn = Arc<dyn Fn(&mut WorkerScope<'_>, &[u64], &[f64]) + Send + Sync>;

enum ToWorker {
    /// One or more concatenated Wire-encoded commands. `flow` is the
    /// control-plane flow id of the dispatch (`obs::flow`, 0 when tracing
    /// is off) — the worker's execution span consumes it, which is what
    /// draws master→worker arrows in the trace.
    Bytes { bytes: Vec<u8>, flow: u64 },
    /// Broadcast a local-mode function object (the paper's decorator
    /// "broadcasts the resulting function object to all worker nodes").
    Register { id: u64, f: LocalFn },
}

/// Configuration of an ODIN context.
#[derive(Debug, Clone, Copy)]
pub struct OdinConfig {
    /// Number of workers.
    pub n_workers: usize,
    /// Cost model for the worker communicator.
    pub model: comm::NetworkModel,
    /// Collective algorithm for worker collectives.
    pub algo: comm::CollectiveAlgo,
    /// Seeded fault schedule injected into the worker communicator (E18).
    pub fault: comm::FaultPlan,
    /// Delivery mode of worker↔worker messages; [`comm::Delivery::Reliable`]
    /// heals injected drop/dup/corrupt faults transparently.
    pub delivery: comm::Delivery,
    /// Deadline for worker-side blocking communication, so a worker whose
    /// peer was killed errors out instead of deadlocking. Set this
    /// whenever the fault plan can kill a rank.
    pub stall_timeout: Option<Duration>,
    /// How long the master waits on a reply from a *live but silent*
    /// worker before declaring it dead. A worker whose channels closed is
    /// detected within milliseconds regardless of this setting.
    pub reply_timeout: Option<Duration>,
    /// Payload-size cutoff (encoded bytes) above which worker↔worker and
    /// worker→master payloads move as zero-copy regions instead of wire
    /// bytes. Forwarded to the worker communicator; `usize::MAX` forces
    /// every payload onto the encode path.
    pub zerocopy_threshold: usize,
    /// Forwarded to the worker communicator: stamp zero-copy regions
    /// with an FNV digest of their wire encoding and verify it at typed
    /// receives (see [`comm::UniverseConfig::region_integrity`]). Off by
    /// default.
    pub region_integrity: bool,
}

impl Default for OdinConfig {
    fn default() -> Self {
        OdinConfig {
            n_workers: 4,
            model: comm::NetworkModel::default(),
            algo: comm::CollectiveAlgo::default(),
            fault: comm::FaultPlan::none(),
            delivery: comm::Delivery::Raw,
            stall_timeout: None,
            reply_timeout: None,
            zerocopy_threshold: comm::DEFAULT_ZEROCOPY_THRESHOLD,
            region_integrity: false,
        }
    }
}

impl OdinConfig {
    /// Set the worker count.
    #[must_use]
    pub fn with_n_workers(mut self, n: usize) -> Self {
        self.n_workers = n;
        self
    }

    /// Set the network cost model.
    #[must_use]
    pub fn with_model(mut self, model: comm::NetworkModel) -> Self {
        self.model = model;
        self
    }

    /// Set the collective algorithm family.
    #[must_use]
    pub fn with_algo(mut self, algo: comm::CollectiveAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Set the injected fault schedule.
    #[must_use]
    pub fn with_fault(mut self, fault: comm::FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Set the delivery mode of worker↔worker messages.
    #[must_use]
    pub fn with_delivery(mut self, delivery: comm::Delivery) -> Self {
        self.delivery = delivery;
        self
    }

    /// Set the worker-side blocking-communication deadline.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Set how long the master waits on a silent worker's reply.
    #[must_use]
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = Some(timeout);
        self
    }

    /// Set the zero-copy payload threshold (encoded bytes).
    #[must_use]
    pub fn with_zerocopy_threshold(mut self, bytes: usize) -> Self {
        self.zerocopy_threshold = bytes;
        self
    }

    /// Enable the FNV integrity check on worker zero-copy regions.
    #[must_use]
    pub fn with_region_integrity(mut self, on: bool) -> Self {
        self.region_integrity = on;
        self
    }
}

/// Master-side instrumentation (the paper's §III-J bottleneck
/// instrumentation goal): control vs data traffic, separately.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContextStats {
    /// Control commands issued (each broadcast counts once per worker).
    pub ctrl_msgs: u64,
    /// Total control bytes.
    pub ctrl_bytes: u64,
    /// Data-carrying messages (SetData / Fetch replies).
    pub data_msgs: u64,
    /// Total data bytes.
    pub data_bytes: u64,
    /// Physical channel sends (batching reduces this, not ctrl_msgs).
    pub channel_sends: u64,
}

impl ContextStats {
    /// Mean control-command size in bytes.
    pub fn mean_ctrl_bytes(&self) -> f64 {
        if self.ctrl_msgs == 0 {
            0.0
        } else {
            self.ctrl_bytes as f64 / self.ctrl_msgs as f64
        }
    }
}

/// Demultiplexer for worker replies. Workers execute commands in FIFO
/// order, so the `k`-th reply to arrive from a worker always answers the
/// `k`-th reply-bearing command the master sent it — a *ticket*. Replies
/// that arrive before their ticket is claimed are buffered; tickets whose
/// [`Pending`] was dropped are discarded on arrival so the stream never
/// desynchronizes.
#[derive(Default)]
struct ReplyEngine {
    /// Tickets issued per worker (reply-bearing commands dispatched).
    issued: Vec<u64>,
    /// Replies consumed from the channel per worker.
    arrived: Vec<u64>,
    /// Arrived but not yet claimed, keyed by `(worker, ticket)`.
    buffered: HashMap<(usize, u64), ReplyMsg>,
    /// Tickets whose `Pending` was dropped before the reply arrived.
    abandoned: HashSet<(usize, u64)>,
}

/// Decoder applied to the raw replies when a [`Pending`] is waited.
type Decode<T> = Box<dyn FnOnce(Vec<ReplyMsg>) -> T>;

/// A reply future: the handle returned by pipelined dispatch. Dropping it
/// abandons the reply (the engine discards it on arrival); [`Pending::wait`]
/// first flushes any open command batch, so waiting inside a batch can
/// never deadlock.
#[must_use = "dropping a Pending abandons its reply; call wait() (or hold it to overlap master-side work with the workers)"]
pub struct Pending<'c, T> {
    ctx: &'c OdinContext,
    tickets: Vec<(usize, u64)>,
    seq: u64,
    span_name: &'static str,
    decode: Option<Decode<T>>,
}

impl<'c, T> Pending<'c, T> {
    /// Dispatch sequence number of the command this reply answers.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Whether every reply has already arrived (non-blocking).
    pub fn ready(&mut self) -> bool {
        self.ctx.tickets_ready(&self.tickets)
    }

    /// Block until every reply arrives and decode the result. Flushes any
    /// open command batch first. Panics with the [`OdinError`] diagnostic
    /// if a worker dies; use [`Self::try_wait`] for a typed error.
    pub fn wait(mut self) -> T {
        let tickets = std::mem::take(&mut self.tickets);
        let replies = self.ctx.await_tickets(&tickets, self.seq, self.span_name);
        (self.decode.take().expect("pending waited twice"))(replies)
    }

    /// Fallible [`Self::wait`]: a dead or silent worker yields
    /// [`OdinError::WorkerDead`] in bounded time instead of a panic or a
    /// hang.
    pub fn try_wait(mut self) -> Result<T, OdinError> {
        let tickets = std::mem::take(&mut self.tickets);
        let replies = self
            .ctx
            .try_await_tickets(&tickets, self.seq, self.span_name)?;
        Ok((self.decode.take().expect("pending waited twice"))(replies))
    }

    /// Post-process the decoded reply once it arrives.
    pub fn map<U>(mut self, f: impl FnOnce(T) -> U + 'static) -> Pending<'c, U>
    where
        T: 'static,
    {
        let tickets = std::mem::take(&mut self.tickets);
        let decode = self.decode.take().expect("pending waited twice");
        Pending {
            ctx: self.ctx,
            tickets,
            seq: self.seq,
            span_name: self.span_name,
            decode: Some(Box::new(move |replies| f(decode(replies)))),
        }
    }
}

impl<T> Drop for Pending<'_, T> {
    fn drop(&mut self) {
        self.ctx.abandon_tickets(&self.tickets);
    }
}

/// Interval at which a blocked reply wait probes worker liveness.
const PROBE_TICK: Duration = Duration::from_millis(20);

/// A master-side snapshot of selected arrays: id, metadata and the full
/// gathered data, taken with [`OdinContext::checkpoint`] and replayed by
/// [`OdinContext::recover`] after a worker death.
pub struct OdinCheckpoint {
    arrays: Vec<(u64, ArrayMeta, Buffer)>,
}

impl OdinCheckpoint {
    /// A checkpoint covering no arrays. [`OdinContext::recover`] with an
    /// empty checkpoint still respawns the pool and replays the local-fn
    /// and kernel registries — the right input when every live array is
    /// reconstructible from its job spec (the serving plane's case).
    pub fn empty() -> Self {
        OdinCheckpoint { arrays: Vec::new() }
    }

    /// Ids covered by this checkpoint.
    pub fn array_ids(&self) -> Vec<u64> {
        self.arrays.iter().map(|&(id, ..)| id).collect()
    }
}

impl Default for OdinCheckpoint {
    fn default() -> Self {
        Self::empty()
    }
}

/// The ODIN master process.
pub struct OdinContext {
    n_workers: usize,
    config: OdinConfig,
    to_workers: RefCell<Vec<Sender<ToWorker>>>,
    from_workers: RefCell<Receiver<(usize, ReplyMsg)>>,
    pool: RefCell<Option<comm::universe::Detached<()>>>,
    /// Workers whose command channel was found closed (thread exited).
    dead: RefCell<Vec<bool>>,
    /// Arrays whose segments died with a respawned pool (no checkpoint).
    lost: RefCell<HashSet<u64>>,
    /// Registered local functions, kept so a respawned pool can be
    /// re-seeded with them.
    local_fns: RefCell<Vec<(u64, LocalFn)>>,
    /// Registered kernel bytecode, kept so a respawned pool can be
    /// re-registered with it (same ids, same programs).
    kernels: RefCell<Vec<(u64, seamless::bytecode::Program)>>,
    /// Structural kernel cache: encoded program bytes → registered id, so
    /// re-evaluating the same expression registers nothing twice.
    kernel_cache: RefCell<HashMap<Vec<u8>, u64>>,
    next_id: Cell<u64>,
    next_fn: Cell<u64>,
    next_kernel: Cell<u64>,
    pub(crate) metas: RefCell<HashMap<u64, ArrayMeta>>,
    stats: RefCell<ContextStats>,
    batch: RefCell<Option<Vec<Vec<u8>>>>,
    engine: RefCell<ReplyEngine>,
    /// Monotonic dispatch counter (every command gets a sequence number).
    cmd_seq: Cell<u64>,
    /// Sequence number of the last command touching each array.
    array_seq: RefCell<HashMap<u64, u64>>,
    /// Highest sequence number proven complete per worker (a claimed
    /// reply proves everything up to its command executed, FIFO).
    worker_done_seq: RefCell<Vec<u64>>,
}

/// Spawn a fresh worker pool under `fault` (recovery respawns with the
/// plan cleared so the same kill does not fire again).
#[allow(clippy::type_complexity)]
fn spawn_pool(
    config: &OdinConfig,
    fault: comm::FaultPlan,
) -> (
    Vec<Sender<ToWorker>>,
    Receiver<(usize, ReplyMsg)>,
    comm::universe::Detached<()>,
) {
    let (reply_tx, reply_rx) = channel::<(usize, ReplyMsg)>();
    let mut to_workers = Vec::with_capacity(config.n_workers);
    type WorkerSeed = (Receiver<ToWorker>, Sender<(usize, ReplyMsg)>);
    let mut seeds: Vec<Option<WorkerSeed>> = Vec::with_capacity(config.n_workers);
    for _ in 0..config.n_workers {
        let (tx, rx) = channel::<ToWorker>();
        to_workers.push(tx);
        seeds.push(Some((rx, reply_tx.clone())));
    }
    let ucfg = UniverseConfig {
        model: config.model,
        algo: config.algo,
        stall_timeout: config.stall_timeout,
        fault,
        delivery: config.delivery,
        zerocopy_threshold: config.zerocopy_threshold,
        region_integrity: config.region_integrity,
    };
    let pool = Universe::spawn(
        ucfg,
        config.n_workers,
        move |rank| seeds[rank].take().expect("seed used once"),
        |comm, (rx, reply)| worker_main(comm, rx, reply),
    );
    (to_workers, reply_rx, pool)
}

impl OdinContext {
    /// Spawn the worker pool.
    pub fn new(config: OdinConfig) -> Self {
        assert!(config.n_workers > 0);
        let (to_workers, reply_rx, pool) = spawn_pool(&config, config.fault);
        OdinContext {
            n_workers: config.n_workers,
            config,
            to_workers: RefCell::new(to_workers),
            from_workers: RefCell::new(reply_rx),
            pool: RefCell::new(Some(pool)),
            dead: RefCell::new(vec![false; config.n_workers]),
            lost: RefCell::new(HashSet::new()),
            local_fns: RefCell::new(Vec::new()),
            kernels: RefCell::new(Vec::new()),
            kernel_cache: RefCell::new(HashMap::new()),
            next_id: Cell::new(1),
            next_fn: Cell::new(1),
            next_kernel: Cell::new(1),
            metas: RefCell::new(HashMap::new()),
            stats: RefCell::new(ContextStats::default()),
            batch: RefCell::new(None),
            engine: RefCell::new(ReplyEngine {
                issued: vec![0; config.n_workers],
                arrived: vec![0; config.n_workers],
                ..Default::default()
            }),
            cmd_seq: Cell::new(0),
            array_seq: RefCell::new(HashMap::new()),
            worker_done_seq: RefCell::new(vec![0; config.n_workers]),
        }
    }

    /// Convenience constructor with `n` workers and defaults otherwise.
    pub fn with_workers(n: usize) -> Self {
        Self::new(OdinConfig {
            n_workers: n,
            ..Default::default()
        })
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Counters snapshot.
    pub fn stats(&self) -> ContextStats {
        *self.stats.borrow()
    }

    /// Reset counters (benchmarks call this between phases).
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = ContextStats::default();
    }

    /// Fresh array id.
    pub(crate) fn alloc_id(&self) -> u64 {
        let id = self.next_id.get();
        self.next_id.set(id + 1);
        id
    }

    pub(crate) fn meta_of(&self, id: u64) -> ArrayMeta {
        if self.lost.borrow().contains(&id) {
            panic!(
                "array {id} was lost when the worker pool was respawned \
                 without a checkpoint covering it"
            );
        }
        self.metas
            .borrow()
            .get(&id)
            .unwrap_or_else(|| panic!("unknown array id {id}"))
            .clone()
    }

    pub(crate) fn record_meta(&self, id: u64, meta: ArrayMeta) {
        self.metas.borrow_mut().insert(id, meta);
    }

    pub(crate) fn forget_meta(&self, id: u64) {
        self.metas.borrow_mut().remove(&id);
    }

    /// The master thread is not a simulated rank, so its spans use wall
    /// time on both axes; §III-J control-vs-data traffic lands in the
    /// registry under `odin.ctrl_*` / `odin.data_*`.
    #[cold]
    fn obs_ctrl(&self, cmd_bytes: usize, batched: bool, timer: obs::span::SpanTimer, flow: u64) {
        timer.finish_meta(
            "odin",
            if batched {
                "dispatch(batched)"
            } else {
                "dispatch"
            },
            obs::span::wall_now_s(),
            &[
                ("cmd_bytes", cmd_bytes as f64),
                ("workers", self.n_workers as f64),
            ],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Other,
                flow_out: flow,
                flow_in: 0,
            },
        );
        let g = obs::global();
        g.counter("odin.ctrl_msgs").add(self.n_workers as u64);
        g.counter("odin.ctrl_bytes")
            .add((cmd_bytes * self.n_workers) as u64);
        g.histogram("odin.ctrl_cmd_bytes").record(cmd_bytes as u64);
        g.gauge("odin.mean_ctrl_bytes")
            .set(self.stats.borrow().mean_ctrl_bytes());
    }

    #[cold]
    fn obs_data(
        &self,
        name: &'static str,
        msgs: u64,
        bytes: u64,
        timer: obs::span::SpanTimer,
        flow: u64,
    ) {
        timer.finish_meta(
            "odin",
            name,
            obs::span::wall_now_s(),
            &[("msgs", msgs as f64), ("bytes", bytes as f64)],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Other,
                flow_out: flow,
                flow_in: 0,
            },
        );
        let g = obs::global();
        g.counter("odin.data_msgs").add(msgs);
        g.counter("odin.data_bytes").add(bytes);
    }

    fn obs_timer(&self) -> Option<obs::span::SpanTimer> {
        if obs::enabled() {
            Some(obs::span::span_start(obs::span::wall_now_s()))
        } else {
            None
        }
    }

    /// Control-plane flow id for one dispatch: allocated only while
    /// tracing (the timer is the "enabled" witness). Every worker copy of
    /// the dispatch carries the same id — the graph then draws one
    /// master→worker edge per consuming worker.
    fn ctrl_flow(timer: &Option<obs::span::SpanTimer>) -> u64 {
        if timer.is_some() {
            obs::flow::next_ctrl()
        } else {
            obs::flow::NONE
        }
    }

    /// Begin buffering control commands; nothing is sent until
    /// [`Self::flush_batch`]. Models the paper's latency-amortizing
    /// message buffering.
    pub fn begin_batch(&self) {
        let mut b = self.batch.borrow_mut();
        assert!(b.is_none(), "batch already open");
        *b = Some((0..self.n_workers).map(|_| Vec::new()).collect());
    }

    /// Best-effort send to one worker. A closed channel means the worker
    /// thread exited (killed, panicked, or shut down); instead of
    /// panicking, the death is recorded and surfaces as a typed
    /// [`OdinError::WorkerDead`] at the next reply wait or
    /// [`Self::health_check`].
    fn worker_send(&self, worker: usize, msg: ToWorker) {
        if self.to_workers.borrow()[worker].send(msg).is_err() {
            self.dead.borrow_mut()[worker] = true;
        }
    }

    /// Liveness probe: an empty command block is a no-op on a live worker
    /// but fails to send if its thread has exited.
    fn probe_worker(&self, worker: usize) {
        self.worker_send(
            worker,
            ToWorker::Bytes {
                bytes: Vec::new(),
                flow: 0,
            },
        );
    }

    /// Send all buffered commands, one channel message per worker.
    pub fn flush_batch(&self) {
        let timer = self.obs_timer();
        let flow = Self::ctrl_flow(&timer);
        let bufs = self.batch.borrow_mut().take().expect("no open batch");
        let mut sends = 0u64;
        let mut flushed_bytes = 0u64;
        for (w, bytes) in bufs.into_iter().enumerate() {
            if !bytes.is_empty() {
                {
                    let mut st = self.stats.borrow_mut();
                    st.channel_sends += 1;
                }
                sends += 1;
                flushed_bytes += bytes.len() as u64;
                self.worker_send(w, ToWorker::Bytes { bytes, flow });
            }
        }
        if let Some(t) = timer {
            t.finish_meta(
                "odin",
                "flush_batch",
                obs::span::wall_now_s(),
                &[("sends", sends as f64), ("bytes", flushed_bytes as f64)],
                obs::span::SpanMeta {
                    kind: obs::span::SpanKind::Other,
                    flow_out: flow,
                    flow_in: 0,
                },
            );
        }
    }

    /// Record a command's dispatch: bump the sequence counter and stamp
    /// every array it touches, so independent commands can be told apart
    /// while both are in flight.
    fn note_dispatch(&self, cmd: &Cmd) {
        let seq = self.cmd_seq.get() + 1;
        self.cmd_seq.set(seq);
        let mut touched = self.array_seq.borrow_mut();
        let mut touch = |id: u64| {
            touched.insert(id, seq);
        };
        match cmd {
            Cmd::Create { id, .. } | Cmd::SetData { id, .. } => touch(*id),
            Cmd::Free { id } => {
                touched.remove(id);
            }
            Cmd::Unary { out, a, .. }
            | Cmd::BinaryScalar { out, a, .. }
            | Cmd::AsType { out, a, .. }
            | Cmd::Redistribute { out, a, .. }
            | Cmd::Slice { out, a, .. }
            | Cmd::CumSum { out, a } => {
                touch(*out);
                touch(*a);
            }
            Cmd::Binary { out, a, b, .. }
            | Cmd::Concat { out, a, b }
            | Cmd::MatMul { out, a, b } => {
                touch(*out);
                touch(*a);
                touch(*b);
            }
            Cmd::Select { out, cond, a, b } => {
                touch(*out);
                touch(*cond);
                touch(*a);
                touch(*b);
            }
            Cmd::EvalFused {
                out,
                template,
                program,
            } => {
                touch(*out);
                touch(*template);
                for op in program {
                    if let FusedOp::PushArray(id) = op {
                        touch(*id);
                    }
                }
            }
            Cmd::Reduce { a, out, axis, .. } => {
                touch(*a);
                if axis.is_some() {
                    touch(*out);
                }
            }
            Cmd::ArgReduce { a, .. } | Cmd::Fetch { a } => touch(*a),
            Cmd::CallLocal { arrays, .. } => {
                for &id in arrays {
                    touch(id);
                }
            }
            Cmd::EvalKernel {
                out,
                template,
                inputs,
                reduce,
                ..
            } => {
                if reduce.is_none() {
                    touch(*out);
                }
                touch(*template);
                for &id in inputs {
                    touch(id);
                }
            }
            Cmd::EvalKernelMulti {
                template,
                inputs,
                outs,
                ..
            } => {
                touch(*template);
                for &id in inputs {
                    touch(id);
                }
                for o in outs {
                    if let KernelOut::Array { id, .. } = o {
                        touch(*id);
                    }
                }
            }
            Cmd::Ping | Cmd::Shutdown | Cmd::RegisterKernel { .. } => {}
        }
    }

    /// Broadcast a control command to every worker.
    pub(crate) fn send_cmd(&self, cmd: &Cmd) {
        self.note_dispatch(cmd);
        let timer = self.obs_timer();
        let mut bytes = comm::encode_to_vec(cmd);
        let n_bytes = bytes.len();
        {
            let mut st = self.stats.borrow_mut();
            st.ctrl_msgs += self.n_workers as u64;
            st.ctrl_bytes += (n_bytes * self.n_workers) as u64;
        }
        let mut batch = self.batch.borrow_mut();
        if let Some(bufs) = batch.as_mut() {
            for buf in bufs.iter_mut() {
                buf.extend_from_slice(&bytes);
            }
            drop(batch);
            if let Some(t) = timer {
                // Batched: nothing sent yet; the flush span owns the flow.
                self.obs_ctrl(n_bytes, true, t, 0);
            }
            return;
        }
        drop(batch);
        let flow = Self::ctrl_flow(&timer);
        self.stats.borrow_mut().channel_sends += self.n_workers as u64;
        // The last worker takes ownership of the encoded command; only
        // the first n−1 sends pay for a copy.
        for w in 0..self.n_workers {
            let payload = if w + 1 == self.n_workers {
                std::mem::take(&mut bytes)
            } else {
                bytes.clone()
            };
            self.worker_send(
                w,
                ToWorker::Bytes {
                    bytes: payload,
                    flow,
                },
            );
        }
        if let Some(t) = timer {
            self.obs_ctrl(n_bytes, false, t, flow);
        }
    }

    /// Send a worker-specific (data-carrying) command. Data commands
    /// cannot ride in a batch, so an open batch is flushed first to keep
    /// command order intact.
    pub(crate) fn send_cmd_to(&self, worker: usize, cmd: &Cmd) {
        self.flush_open_batch();
        self.note_dispatch(cmd);
        let timer = self.obs_timer();
        let bytes = comm::encode_to_vec(cmd);
        let n = bytes.len() as u64;
        {
            let mut st = self.stats.borrow_mut();
            st.data_msgs += 1;
            st.data_bytes += n;
            st.channel_sends += 1;
        }
        let flow = Self::ctrl_flow(&timer);
        self.worker_send(worker, ToWorker::Bytes { bytes, flow });
        if let Some(t) = timer {
            self.obs_data("send_data", 1, n, t, flow);
        }
    }

    /// Register a local-mode function on every worker; returns its id.
    /// The function is remembered so a respawned pool is re-seeded with it.
    pub fn register_local(&self, f: LocalFn) -> u64 {
        let id = self.next_fn.get();
        self.next_fn.set(id + 1);
        for w in 0..self.n_workers {
            self.worker_send(
                w,
                ToWorker::Register {
                    id,
                    f: Arc::clone(&f),
                },
            );
        }
        self.local_fns.borrow_mut().push((id, f));
        id
    }

    /// Invoke a registered local function on every worker (global-mode
    /// view of a local function, §III-C).
    pub fn call_local(&self, fn_id: u64, arrays: &[u64], scalars: &[f64]) {
        self.send_cmd(&Cmd::CallLocal {
            fn_id,
            arrays: arrays.to_vec(),
            scalars: scalars.to_vec(),
        });
    }

    /// Ship compiled Seamless bytecode to every worker and return the
    /// kernel id [`Cmd::EvalKernel`] invokes reference. Bitwise-identical
    /// programs are deduplicated through a structural cache, so each
    /// distinct kernel's code crosses the channel exactly once per pool;
    /// the program is also remembered for re-registration after
    /// [`Self::recover`] respawns the pool.
    pub(crate) fn register_kernel_program(&self, program: seamless::bytecode::Program) -> u64 {
        assert!(
            program.externs.is_empty(),
            "kernels with foreign functions cannot ship to workers \
             (native fn pointers have no wire encoding)"
        );
        let key = comm::encode_to_vec(&program);
        if let Some(&id) = self.kernel_cache.borrow().get(&key) {
            if obs::enabled() {
                obs::global().counter("odin.kernel.cache_hit").add(1);
            }
            return id;
        }
        let id = self.next_kernel.get();
        self.next_kernel.set(id + 1);
        self.send_cmd(&Cmd::RegisterKernel {
            id,
            program: program.clone(),
        });
        if obs::enabled() {
            let g = obs::global();
            g.counter("odin.kernel.cache_miss").add(1);
            g.counter("odin.kernel.registered").add(1);
        }
        self.kernels.borrow_mut().push((id, program));
        self.kernel_cache.borrow_mut().insert(key, id);
        id
    }

    // ---- pipelined reply engine -------------------------------------------

    /// Flush the open batch if there is one (every reply-wait path calls
    /// this, so waiting on a reply issued inside a batch cannot deadlock).
    pub(crate) fn flush_open_batch(&self) {
        if self.batch.borrow().is_some() {
            self.flush_batch();
        }
    }

    /// Reserve the next reply ticket from `worker`.
    fn issue_ticket(&self, worker: usize) -> (usize, u64) {
        let mut eng = self.engine.borrow_mut();
        let t = eng.issued[worker];
        eng.issued[worker] += 1;
        (worker, t)
    }

    /// Account one reply pulled off the channel and assign its ticket.
    /// Returns `None` when the ticket was abandoned (reply discarded).
    fn admit_arrival(&self, rank: usize, msg: ReplyMsg) -> Option<((usize, u64), ReplyMsg)> {
        {
            let mut st = self.stats.borrow_mut();
            st.data_msgs += 1;
            // Encoded-equivalent size either way, so byte accounting does
            // not depend on which payload arm the reply took.
            st.data_bytes += msg.wire_len() as u64;
        }
        let mut eng = self.engine.borrow_mut();
        let t = eng.arrived[rank];
        eng.arrived[rank] += 1;
        let key = (rank, t);
        if eng.abandoned.remove(&key) {
            return None;
        }
        Some((key, msg))
    }

    /// Block until the reply for `want` arrives, buffering any replies
    /// that belong to other in-flight tickets. Bounded: a worker whose
    /// thread exited is detected by the liveness probe within
    /// [`PROBE_TICK`], and a live-but-silent worker trips
    /// [`OdinConfig::reply_timeout`] when one is set — either way the
    /// wait ends with a typed [`OdinError`], never a hang.
    fn try_claim_ticket(&self, want: (usize, u64)) -> Result<ReplyMsg, OdinError> {
        if let Some(msg) = self.engine.borrow_mut().buffered.remove(&want) {
            return Ok(msg);
        }
        let t0 = Instant::now();
        loop {
            let tick = match self.config.reply_timeout {
                Some(limit) => match limit.checked_sub(t0.elapsed()) {
                    None | Some(Duration::ZERO) => {
                        return Err(OdinError::WorkerDead {
                            worker: want.0,
                            waited: t0.elapsed(),
                        })
                    }
                    Some(left) => left.min(PROBE_TICK),
                },
                None => PROBE_TICK,
            };
            let received = self.from_workers.borrow().recv_timeout(tick);
            match received {
                Ok((rank, msg)) => {
                    if let Some((key, msg)) = self.admit_arrival(rank, msg) {
                        if key == want {
                            return Ok(msg);
                        }
                        self.engine.borrow_mut().buffered.insert(key, msg);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.probe_worker(want.0);
                    if self.dead.borrow()[want.0] {
                        // Drain stragglers in case the worker replied just
                        // before dying, then give up with a diagnostic.
                        self.poll_arrivals();
                        if let Some(msg) = self.engine.borrow_mut().buffered.remove(&want) {
                            return Ok(msg);
                        }
                        return Err(OdinError::WorkerDead {
                            worker: want.0,
                            waited: t0.elapsed(),
                        });
                    }
                }
                Err(RecvTimeoutError::Disconnected) => return Err(OdinError::PoolDown),
            }
        }
    }

    /// Pull every already-arrived reply into the buffer (non-blocking).
    fn poll_arrivals(&self) {
        loop {
            let received = self.from_workers.borrow().try_recv();
            match received {
                Ok((rank, msg)) => {
                    if let Some((key, msg)) = self.admit_arrival(rank, msg) {
                        self.engine.borrow_mut().buffered.insert(key, msg);
                    }
                }
                Err(_) => break,
            }
        }
    }

    fn tickets_ready(&self, tickets: &[(usize, u64)]) -> bool {
        self.poll_arrivals();
        let eng = self.engine.borrow();
        tickets.iter().all(|k| eng.buffered.contains_key(k))
    }

    /// Forget tickets whose `Pending` was dropped: discard buffered
    /// replies now, mark the rest for discard on arrival.
    fn abandon_tickets(&self, tickets: &[(usize, u64)]) {
        if tickets.is_empty() {
            return;
        }
        let mut eng = self.engine.borrow_mut();
        for &key in tickets {
            if eng.buffered.remove(&key).is_none() {
                eng.abandoned.insert(key);
            }
        }
    }

    /// Claim `tickets` in order and mark dispatch `seq` complete on the
    /// workers that answered. Panics with the [`OdinError`] diagnostic on
    /// worker death; fallible callers use [`Self::try_await_tickets`].
    fn await_tickets(
        &self,
        tickets: &[(usize, u64)],
        seq: u64,
        name: &'static str,
    ) -> Vec<ReplyMsg> {
        self.try_await_tickets(tickets, seq, name)
            .unwrap_or_else(|e| panic!("odin reply wait failed: {e}"))
    }

    /// Fallible [`Self::await_tickets`]: returns a typed error instead of
    /// panicking when a worker dies or times out.
    fn try_await_tickets(
        &self,
        tickets: &[(usize, u64)],
        seq: u64,
        name: &'static str,
    ) -> Result<Vec<ReplyMsg>, OdinError> {
        self.flush_open_batch();
        let timer = self.obs_timer();
        let mut out = Vec::with_capacity(tickets.len());
        let mut reply_bytes = 0u64;
        for (i, &key) in tickets.iter().enumerate() {
            match self.try_claim_ticket(key) {
                Ok(msg) => {
                    reply_bytes += msg.wire_len() as u64;
                    out.push(msg);
                }
                Err(e) => {
                    // Abandon the unclaimed remainder so late replies from
                    // surviving workers are discarded, not leaked.
                    self.abandon_tickets(&tickets[i..]);
                    return Err(e);
                }
            }
        }
        {
            let mut done = self.worker_done_seq.borrow_mut();
            for &(w, _) in tickets {
                if done[w] < seq {
                    done[w] = seq;
                }
            }
        }
        if let Some(t) = timer {
            self.obs_data(name, tickets.len() as u64, reply_bytes, t, 0);
        }
        Ok(out)
    }

    /// Reply future for one reply from every worker (worker order).
    pub(crate) fn pending_all(&self, span_name: &'static str) -> Pending<'_, Vec<ReplyMsg>> {
        let tickets = (0..self.n_workers).map(|w| self.issue_ticket(w)).collect();
        Pending {
            ctx: self,
            tickets,
            seq: self.cmd_seq.get(),
            span_name,
            decode: Some(Box::new(|replies| replies)),
        }
    }

    /// Reply future for a single worker-0 reply, raw bytes.
    pub(crate) fn pending_single_raw(&self, span_name: &'static str) -> Pending<'_, Vec<u8>> {
        let tickets = vec![self.issue_ticket(0)];
        Pending {
            ctx: self,
            tickets,
            seq: self.cmd_seq.get(),
            span_name,
            decode: Some(Box::new(|mut replies| {
                replies.pop().expect("single reply present").into_bytes()
            })),
        }
    }

    /// Reply future for a single worker-0 reply decoded as `T`.
    pub(crate) fn pending_single<T: Wire>(&self, span_name: &'static str) -> Pending<'_, T> {
        let tickets = vec![self.issue_ticket(0)];
        Pending {
            ctx: self,
            tickets,
            seq: self.cmd_seq.get(),
            span_name,
            decode: Some(Box::new(|mut replies| {
                let bytes = replies.pop().expect("single reply present").into_bytes();
                comm::decode_from_slice(&bytes).expect("bad reply encoding")
            })),
        }
    }

    /// Broadcast a command and return a future for one reply per worker —
    /// the pipelined dispatch primitive: the master keeps issuing commands
    /// while replies are still in flight.
    pub(crate) fn dispatch_all(&self, cmd: &Cmd) -> Pending<'_, Vec<ReplyMsg>> {
        self.send_cmd(cmd);
        self.pending_all("collect_replies")
    }

    /// Broadcast a command whose protocol says only worker 0 replies and
    /// return a typed future for that reply.
    pub(crate) fn dispatch_single<T: Wire>(&self, cmd: &Cmd) -> Pending<'_, T> {
        self.send_cmd(cmd);
        self.pending_single("collect_single_reply")
    }

    /// Highest dispatch sequence number issued so far.
    pub fn dispatch_seq(&self) -> u64 {
        self.cmd_seq.get()
    }

    /// Highest sequence number proven complete on **every** worker.
    pub fn completed_seq(&self) -> u64 {
        self.worker_done_seq
            .borrow()
            .iter()
            .copied()
            .min()
            .unwrap_or(0)
    }

    /// Whether a command touching array `id` may still be in flight.
    pub fn array_in_flight(&self, id: u64) -> bool {
        self.array_seq
            .borrow()
            .get(&id)
            .is_some_and(|&s| s > self.completed_seq())
    }

    /// Replies reserved by in-flight futures but not yet consumed.
    pub fn outstanding_replies(&self) -> u64 {
        let eng = self.engine.borrow();
        let issued: u64 = eng.issued.iter().sum();
        let arrived: u64 = eng.arrived.iter().sum();
        issued - arrived
    }

    /// Receive one reply from each worker, returned in worker order,
    /// collapsed to encoded bytes (reduction-style replies are always on
    /// the `Bytes` arm, so the collapse is free).
    pub(crate) fn collect_replies(&self) -> Vec<Vec<u8>> {
        self.pending_all("collect_replies")
            .wait()
            .into_iter()
            .map(ReplyMsg::into_bytes)
            .collect()
    }

    /// Drain `n` replies (used when several reply-bearing commands were
    /// batched). Broadcast commands produce one reply per worker, so `n`
    /// must be a multiple of the worker count.
    pub fn drain_replies(&self, n: usize) {
        assert!(
            n.is_multiple_of(self.n_workers),
            "drain_replies needs one reply per worker per command"
        );
        let per = n / self.n_workers;
        let tickets: Vec<(usize, u64)> = (0..self.n_workers)
            .flat_map(|w| std::iter::repeat_n(w, per))
            .map(|w| self.issue_ticket(w))
            .collect();
        let _ = self.await_tickets(&tickets, self.cmd_seq.get(), "drain_replies");
    }

    /// Receive a single reply (commands where only worker 0 replies).
    pub(crate) fn collect_single_reply(&self) -> Vec<u8> {
        self.pending_single_raw("collect_single_reply").wait()
    }

    /// Synchronize: all queued commands (batched or not) have completed
    /// when this returns.
    pub fn barrier(&self) {
        self.flush_open_batch();
        self.send_cmd(&Cmd::Ping);
        let _ = self.pending_all("barrier").wait();
    }

    /// Total modeled virtual time is only available at shutdown (the pool
    /// owns the clocks); this issues a Ping so the wall-clock of pending
    /// work is at least observable.
    pub fn sync(&self) {
        self.barrier();
    }

    /// Fallible [`Self::barrier`]: a dead worker surfaces as
    /// [`OdinError::WorkerDead`] in bounded time instead of a panic.
    pub fn try_barrier(&self) -> Result<(), OdinError> {
        self.flush_open_batch();
        self.send_cmd(&Cmd::Ping);
        self.pending_all("barrier").try_wait().map(|_| ())
    }

    /// Heartbeat: probe every worker's command channel and round-trip a
    /// Ping. Returns the first dead worker as [`OdinError::WorkerDead`] —
    /// always in bounded time, never a hang.
    pub fn health_check(&self) -> Result<(), OdinError> {
        for w in 0..self.n_workers {
            self.probe_worker(w);
        }
        if let Some(w) = self.dead.borrow().iter().position(|&d| d) {
            return Err(OdinError::WorkerDead {
                worker: w,
                waited: Duration::ZERO,
            });
        }
        self.try_barrier()
    }

    /// Workers the master has found dead so far (diagnostics).
    pub fn dead_workers(&self) -> Vec<usize> {
        self.dead
            .borrow()
            .iter()
            .enumerate()
            .filter_map(|(w, &d)| d.then_some(w))
            .collect()
    }

    /// Snapshot the listed arrays to the master: full gathered data plus
    /// metadata, enough for [`Self::recover`] to replay every segment onto
    /// a fresh pool after a worker death.
    pub fn checkpoint(&self, arrays: &[&crate::array::DistArray<'_>]) -> OdinCheckpoint {
        let snap = arrays
            .iter()
            .map(|a| {
                let (_, data) = a.fetch();
                (a.id(), a.meta(), data)
            })
            .collect();
        OdinCheckpoint { arrays: snap }
    }

    /// Respawn the worker pool after a failure and replay every segment
    /// recorded in `ck` under its original array id. The new pool runs
    /// with the fault plan *cleared* so the same injected kill cannot fire
    /// again. Live arrays not covered by the checkpoint are marked lost:
    /// the report lists them and any later use panics with a diagnostic
    /// naming the respawn. Replies that were in flight at recovery time
    /// are discarded.
    pub fn recover(&self, ck: &OdinCheckpoint) -> RecoveryReport {
        // Fresh channels and threads first: swapping the senders in drops
        // the old ones, so surviving old workers see a closed channel and
        // exit their command loop.
        let (to_workers, reply_rx, pool) = spawn_pool(&self.config, comm::FaultPlan::none());
        let old_pool = self.pool.borrow_mut().replace(pool);
        *self.to_workers.borrow_mut() = to_workers;
        *self.from_workers.borrow_mut() = reply_rx;
        self.dead.borrow_mut().fill(false);
        if let Some(old) = old_pool {
            if self.config.stall_timeout.is_some() {
                // Worker-side waits are bounded, so the join is too.
                let _ = old.join_quiet();
            } else {
                // A survivor may be blocked forever in a collective with
                // the killed peer; don't let teardown inherit the hang.
                old.abandon();
            }
        }
        // Outstanding tickets can never be answered by the new pool:
        // consider them consumed so fresh replies get fresh tickets.
        {
            let mut eng = self.engine.borrow_mut();
            let issued = eng.issued.clone();
            eng.arrived = issued;
            eng.buffered.clear();
            eng.abandoned.clear();
        }
        self.worker_done_seq.borrow_mut().fill(self.cmd_seq.get());
        // Re-seed the pool: local functions and kernel bytecode first,
        // then checkpointed segments.
        for (id, f) in self.local_fns.borrow().iter() {
            for w in 0..self.n_workers {
                self.worker_send(
                    w,
                    ToWorker::Register {
                        id: *id,
                        f: Arc::clone(f),
                    },
                );
            }
        }
        for (id, program) in self.kernels.borrow().iter() {
            self.send_cmd(&Cmd::RegisterKernel {
                id: *id,
                program: program.clone(),
            });
        }
        let mut restored = Vec::with_capacity(ck.arrays.len());
        for (id, meta, data) in &ck.arrays {
            let slab = meta.slab();
            for w in 0..self.n_workers {
                let map = meta.axis_map(self.n_workers, w);
                let seg = data
                    .gather_indices(map.my_gids().iter().flat_map(|&g| g * slab..(g + 1) * slab));
                self.send_cmd_to(
                    w,
                    &Cmd::SetData {
                        id: *id,
                        meta: meta.clone(),
                        data: seg,
                    },
                );
            }
            self.record_meta(*id, meta.clone());
            self.lost.borrow_mut().remove(id);
            restored.push(*id);
        }
        // Everything else that was live lost its segments with the pool.
        let lost: Vec<u64> = {
            let metas = self.metas.borrow();
            let mut ids: Vec<u64> = metas
                .keys()
                .copied()
                .filter(|id| !restored.contains(id))
                .collect();
            ids.sort_unstable();
            ids
        };
        self.lost.borrow_mut().extend(lost.iter().copied());
        RecoveryReport {
            respawned: self.n_workers,
            restored,
            lost,
        }
    }

    /// Resize the worker pool to `n_workers` and replay the checkpoint onto
    /// it — the elastic-pool hook the serving plane uses to grow or shrink
    /// capacity between jobs. Taking `&mut self` guarantees no `DistArray`
    /// borrows (or pending replies) are live across the resize, so every
    /// surviving array must come back through `ck`; anything else is
    /// reported lost exactly as in [`Self::recover`]. Checkpoint replay
    /// re-slices each array with the *new* worker count, so any size works.
    pub fn resize(&mut self, n_workers: usize, ck: &OdinCheckpoint) -> RecoveryReport {
        assert!(n_workers > 0, "a pool needs at least one worker");
        self.n_workers = n_workers;
        self.config.n_workers = n_workers;
        // Re-dimension the per-worker books before recover() `.fill()`s
        // them; stale entries from the old size would misindex.
        *self.dead.borrow_mut() = vec![false; n_workers];
        {
            let mut eng = self.engine.borrow_mut();
            eng.issued = vec![0; n_workers];
            eng.arrived = vec![0; n_workers];
            eng.buffered.clear();
            eng.abandoned.clear();
        }
        *self.worker_done_seq.borrow_mut() = vec![0; n_workers];
        self.recover(ck)
    }
}

impl Drop for OdinContext {
    fn drop(&mut self) {
        // Best-effort shutdown; workers may already be gone in panic paths.
        let mut bytes = comm::encode_to_vec(&Cmd::Shutdown);
        for w in 0..self.n_workers {
            let payload = if w + 1 == self.n_workers {
                std::mem::take(&mut bytes)
            } else {
                bytes.clone()
            };
            self.worker_send(
                w,
                ToWorker::Bytes {
                    bytes: payload,
                    flow: 0,
                },
            );
        }
        if let Some(pool) = self.pool.borrow_mut().take() {
            let faulty = self.config.fault.is_active() || self.dead.borrow().iter().any(|&d| d);
            if faulty && self.config.stall_timeout.is_none() {
                // A killed worker's peers may be blocked forever in a
                // collective; without a bounded worker-side wait the only
                // hang-free teardown is to detach them.
                pool.abandon();
            } else {
                // Swallow worker panics (killed or crashed workers) —
                // teardown must not re-panic.
                let _ = pool.join_quiet();
            }
        }
    }
}

// ---- Worker side -----------------------------------------------------------

/// What a local-mode function sees on each worker: the worker
/// communicator (for direct worker↔worker communication), the segment
/// store, and the structured-table store (§III-I).
pub struct WorkerScope<'a> {
    /// The worker communicator.
    pub comm: &'a Comm,
    arrays: &'a mut HashMap<u64, (ArrayMeta, Buffer)>,
    tables: &'a mut HashMap<u64, crate::table::TableSeg>,
    reply: &'a Sender<(usize, ReplyMsg)>,
}

impl<'a> WorkerScope<'a> {
    /// This worker's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.comm.size()
    }

    /// Metadata of an array.
    pub fn meta(&self, id: u64) -> &ArrayMeta {
        &self.arrays.get(&id).expect("unknown array on worker").0
    }

    /// This worker's segment of an array.
    pub fn local(&self, id: u64) -> &Buffer {
        &self.arrays.get(&id).expect("unknown array on worker").1
    }

    /// Mutable segment access.
    pub fn local_mut(&mut self, id: u64) -> &mut Buffer {
        &mut self.arrays.get_mut(&id).expect("unknown array on worker").1
    }

    /// The [`dmap::DistMap`] of an array's distributed axis.
    pub fn axis_map(&self, id: u64) -> dmap::DistMap {
        let meta = self.meta(id);
        meta.axis_map(self.n_workers(), self.rank())
    }

    /// Insert (or replace) an array segment.
    pub fn insert(&mut self, id: u64, meta: ArrayMeta, data: Buffer) {
        debug_assert_eq!(
            data.len(),
            meta.local_len(self.n_workers(), self.rank()),
            "segment length must match the meta"
        );
        self.arrays.insert(id, (meta, data));
    }

    /// View a 1-D block-distributed f64 array as a [`DistVector`] — the
    /// ODIN↔Trilinos bridge (§III-E). Panics if not conformable with a
    /// block vector layout (redistribute first).
    pub fn as_dist_vector(&self, id: u64) -> DistVector<f64> {
        let meta = self.meta(id);
        assert_eq!(meta.ndim(), 1, "bridge requires a 1-D array");
        assert_eq!(meta.dist, Dist::Block, "bridge requires block distribution");
        assert_eq!(meta.dtype, DType::F64, "bridge requires f64");
        let map = self.axis_map(id);
        DistVector::from_local(map, self.local(id).as_f64().to_vec())
    }

    /// Store a [`DistVector`] back as the segment of array `id`.
    pub fn store_dist_vector(&mut self, id: u64, v: &DistVector<f64>) {
        let meta = ArrayMeta {
            shape: vec![v.n_global()],
            axis: 0,
            dist: Dist::Block,
            dtype: DType::F64,
        };
        self.insert(id, meta, Buffer::F64(v.local().to_vec()));
    }

    /// Send a reply payload to the master (used by reduction-style local
    /// functions; usually only worker 0 should reply). Best-effort: a
    /// master mid-teardown (its reply channel closed) is not an error the
    /// worker can act on, so the payload is silently discarded and the
    /// worker exits at its next command-channel receive.
    pub fn reply(&self, bytes: Vec<u8>) {
        let _ = self.reply.send((self.rank(), ReplyMsg::Bytes(bytes)));
    }

    /// This worker's segment of a distributed table.
    pub fn table(&self, id: u64) -> &crate::table::TableSeg {
        self.tables.get(&id).expect("unknown table on worker")
    }

    /// Mutable table segment access.
    pub fn table_mut(&mut self, id: u64) -> &mut crate::table::TableSeg {
        self.tables.get_mut(&id).expect("unknown table on worker")
    }

    /// Insert (or replace) a table segment.
    pub fn insert_table(&mut self, id: u64, seg: crate::table::TableSeg) {
        self.tables.insert(id, seg);
    }

    /// Drop a table segment.
    pub fn remove_table(&mut self, id: u64) {
        self.tables.remove(&id);
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform [0,1) from (seed, global element index) — worker-count
/// invariant by construction.
pub(crate) fn seeded_uniform(seed: u64, gidx: u64) -> f64 {
    let bits = splitmix64(seed ^ splitmix64(gidx));
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

fn fill_buffer(meta: &ArrayMeta, fill: &Fill, n_workers: usize, rank: usize) -> Buffer {
    let map = meta.axis_map(n_workers, rank);
    let slab = meta.slab();
    let n_local = map.my_count() * slab;
    match fill {
        Fill::Zeros => Buffer::zeros(meta.dtype, n_local),
        Fill::Full(v) => match meta.dtype {
            DType::F64 => Buffer::F64(vec![*v; n_local]),
            DType::I64 => Buffer::I64(vec![*v as i64; n_local]),
            DType::Bool => Buffer::Bool(vec![*v != 0.0; n_local]),
        },
        Fill::Arange { start, step } => {
            let vals = local_global_indices(&map, slab).map(|g| start + step * g as f64);
            match meta.dtype {
                DType::F64 => Buffer::F64(vals.collect()),
                DType::I64 => Buffer::I64(vals.map(|v| v as i64).collect()),
                DType::Bool => Buffer::Bool(vals.map(|v| v != 0.0).collect()),
            }
        }
        Fill::Linspace { start, stop } => {
            let n = meta.n_global();
            let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
            let step = (stop - start) / denom;
            let s = *start;
            Buffer::F64(
                local_global_indices(&map, slab)
                    .map(|g| s + step * g as f64)
                    .collect(),
            )
        }
        Fill::Random { seed } => {
            let s = *seed;
            Buffer::F64(
                local_global_indices(&map, slab)
                    .map(|g| seeded_uniform(s, g as u64))
                    .collect(),
            )
        }
    }
}

/// Iterator of global flat indices for this worker's segment, in local
/// storage order (rows along the distributed axis are contiguous).
fn local_global_indices(map: &dmap::DistMap, slab: usize) -> impl Iterator<Item = usize> + '_ {
    (0..map.my_count()).flat_map(move |l| {
        let g = map.local_to_global(l);
        (0..slab).map(move |k| g * slab + k)
    })
}

fn eval_fused_dtype(program: &[FusedOp], metas: &HashMap<u64, (ArrayMeta, Buffer)>) -> DType {
    let mut stack: Vec<DType> = Vec::new();
    for op in program {
        match op {
            FusedOp::PushArray(id) => stack.push(metas[id].0.dtype),
            FusedOp::PushScalar(v) => stack.push(if v.fract() == 0.0 {
                DType::I64
            } else {
                DType::F64
            }),
            FusedOp::Unary(u) => {
                let a = stack.pop().expect("fused stack underflow");
                stack.push(unary_result_dtype(*u, a));
            }
            FusedOp::Binary(b) => {
                let rhs = stack.pop().expect("fused stack underflow");
                let lhs = stack.pop().expect("fused stack underflow");
                stack.push(binary_result_dtype(*b, lhs, rhs));
            }
        }
    }
    assert_eq!(stack.len(), 1, "fused program must leave one value");
    stack[0]
}

/// Apply a unary op to a whole chunk (one monomorphic tight loop per op).
fn fused_unary_chunk(op: UnaryOp, buf: &mut [f64]) {
    use UnaryOp::*;
    match op {
        Neg => buf.iter_mut().for_each(|x| *x = -*x),
        Abs => buf.iter_mut().for_each(|x| *x = x.abs()),
        Not => buf
            .iter_mut()
            .for_each(|x| *x = f64::from(u8::from(*x == 0.0))),
        Sin => buf.iter_mut().for_each(|x| *x = x.sin()),
        Cos => buf.iter_mut().for_each(|x| *x = x.cos()),
        Tan => buf.iter_mut().for_each(|x| *x = x.tan()),
        Exp => buf.iter_mut().for_each(|x| *x = x.exp()),
        Log => buf.iter_mut().for_each(|x| *x = x.ln()),
        Sqrt => buf.iter_mut().for_each(|x| *x = x.sqrt()),
        Floor => buf.iter_mut().for_each(|x| *x = x.floor()),
        Ceil => buf.iter_mut().for_each(|x| *x = x.ceil()),
    }
}

/// Apply a binary op elementwise into the left chunk.
fn fused_binary_chunk(op: BinOp, lhs: &mut [f64], rhs: &[f64]) {
    use BinOp::*;
    macro_rules! zip {
        ($f:expr) => {
            lhs.iter_mut().zip(rhs.iter()).for_each(|(x, y)| {
                #[allow(clippy::redundant_closure_call)]
                {
                    *x = ($f)(*x, *y);
                }
            })
        };
    }
    match op {
        Add => zip!(|x: f64, y: f64| x + y),
        Sub => zip!(|x: f64, y: f64| x - y),
        Mul => zip!(|x: f64, y: f64| x * y),
        Div => zip!(|x: f64, y: f64| x / y),
        Pow => {
            // constant small integer exponents (the common `x ** 2`) get
            // strength-reduced to multiplies, like NumPy does
            let uniform = !rhs.is_empty() && rhs.iter().all(|&v| v == rhs[0]);
            if uniform && rhs[0].fract() == 0.0 && rhs[0].abs() <= 8.0 {
                let e = rhs[0] as i32;
                lhs.iter_mut().for_each(|x| *x = x.powi(e));
            } else {
                zip!(|x: f64, y: f64| x.powf(y))
            }
        }
        Mod => zip!(|x: f64, y: f64| x % y),
        Max => zip!(|x: f64, y: f64| x.max(y)),
        Min => zip!(|x: f64, y: f64| x.min(y)),
        Hypot => zip!(|x: f64, y: f64| x.hypot(y)),
        Atan2 => zip!(|x: f64, y: f64| x.atan2(y)),
        _ => zip!(|x: f64, y: f64| eval_fused_binary(op, x, y)),
    }
}

#[allow(dead_code)]
fn eval_fused_unary(op: UnaryOp, x: f64) -> f64 {
    use UnaryOp::*;
    match op {
        Neg => -x,
        Abs => x.abs(),
        Not => f64::from(u8::from(x == 0.0)),
        Sin => x.sin(),
        Cos => x.cos(),
        Tan => x.tan(),
        Exp => x.exp(),
        Log => x.ln(),
        Sqrt => x.sqrt(),
        Floor => x.floor(),
        Ceil => x.ceil(),
    }
}

fn eval_fused_binary(op: BinOp, x: f64, y: f64) -> f64 {
    use BinOp::*;
    match op {
        Eq => f64::from(u8::from(x == y)),
        Ne => f64::from(u8::from(x != y)),
        Lt => f64::from(u8::from(x < y)),
        Le => f64::from(u8::from(x <= y)),
        Gt => f64::from(u8::from(x > y)),
        Ge => f64::from(u8::from(x >= y)),
        And => f64::from(u8::from(x != 0.0 && y != 0.0)),
        Or => f64::from(u8::from(x != 0.0 || y != 0.0)),
        _ => binop_f64(op, x, y),
    }
}

/// Scratch buffers one worker reuses across commands, so steady-state
/// command execution stops reallocating them per command.
#[derive(Default)]
struct WorkerScratch {
    /// Recycled chunk-length `f64` buffers for `Cmd::EvalFused`.
    fused_pool: Vec<Vec<f64>>,
    /// Operand stack for `Cmd::EvalFused` (empty between commands).
    fused_stack: Vec<Vec<f64>>,
}

fn worker_main(comm: &mut Comm, rx: Receiver<ToWorker>, reply: Sender<(usize, ReplyMsg)>) {
    let mut arrays: HashMap<u64, (ArrayMeta, Buffer)> = HashMap::new();
    let mut tables: HashMap<u64, crate::table::TableSeg> = HashMap::new();
    let mut fns: HashMap<u64, LocalFn> = HashMap::new();
    let mut kernels: HashMap<u64, seamless::bytecode::Program> = HashMap::new();
    let mut scratch = WorkerScratch::default();
    'outer: loop {
        // Idle-wait with a periodic reliability pump: a worker parked
        // here can still owe retransmits for the final sends of its last
        // collective (a peer may be blocked on one of them), and nothing
        // else on this rank would ever resend. See `Comm::pump`.
        let msg = loop {
            match rx.recv_timeout(std::time::Duration::from_millis(10)) {
                Ok(m) => break m,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => comm.pump(),
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break 'outer,
            }
        };
        match msg {
            ToWorker::Register { id, f } => {
                fns.insert(id, f);
            }
            ToWorker::Bytes { bytes, flow } => {
                // Execution span consuming the dispatch's control flow:
                // cross-clock-domain, so it annotates the trace (arrow
                // from the master) without entering the critical path.
                let timer = if flow != 0 && obs::enabled() {
                    Some(obs::span::span_start(comm.virtual_time()))
                } else {
                    None
                };
                let n_bytes = bytes.len();
                let mut cur = Cursor::new(&bytes);
                while cur.remaining() > 0 {
                    let cmd = Cmd::decode(&mut cur).expect("bad command encoding");
                    // Fault-injection hook: a killed worker stops executing
                    // and exits, dropping its channels so the master's
                    // liveness probe discovers the death.
                    if comm.fault_tick().is_err() {
                        break 'outer;
                    }
                    if !exec_cmd(
                        comm,
                        &reply,
                        &mut arrays,
                        &mut tables,
                        &fns,
                        &mut kernels,
                        &mut scratch,
                        cmd,
                    ) {
                        break 'outer;
                    }
                }
                if let Some(t) = timer {
                    t.finish_meta(
                        "odin",
                        "exec",
                        comm.virtual_time(),
                        &[("cmd_bytes", n_bytes as f64)],
                        obs::span::SpanMeta {
                            kind: obs::span::SpanKind::Other,
                            flow_out: 0,
                            flow_in: flow,
                        },
                    );
                }
            }
        }
    }
}

/// Execute one command; returns false on shutdown.
#[allow(clippy::too_many_arguments)]
fn exec_cmd(
    comm: &Comm,
    reply: &Sender<(usize, ReplyMsg)>,
    arrays: &mut HashMap<u64, (ArrayMeta, Buffer)>,
    tables: &mut HashMap<u64, crate::table::TableSeg>,
    fns: &HashMap<u64, LocalFn>,
    kernels: &mut HashMap<u64, seamless::bytecode::Program>,
    scratch: &mut WorkerScratch,
    cmd: Cmd,
) -> bool {
    let p = comm.size();
    let rank = comm.rank();
    match cmd {
        Cmd::Create { id, meta, fill } => {
            let data = fill_buffer(&meta, &fill, p, rank);
            comm.advance_compute(data.len() as f64);
            arrays.insert(id, (meta, data));
        }
        Cmd::SetData { id, meta, data } => {
            assert_eq!(data.len(), meta.local_len(p, rank), "bad segment length");
            arrays.insert(id, (meta, data));
        }
        Cmd::Unary { out, a, op } => {
            let (meta, buf) = &arrays[&a];
            let result = apply_unary(op, buf);
            comm.advance_compute(buf.len() as f64);
            let out_meta = ArrayMeta {
                dtype: result.dtype(),
                ..meta.clone()
            };
            arrays.insert(out, (out_meta, result));
        }
        Cmd::Binary { out, a, b, op } => {
            let (ma, ba) = &arrays[&a];
            let (mb, bb) = &arrays[&b];
            assert!(
                ma.conformable(mb),
                "binary ufunc on non-conformable arrays (master should have redistributed)"
            );
            let result = apply_binary(op, ba, bb);
            comm.advance_compute(ba.len() as f64);
            let out_meta = ArrayMeta {
                dtype: result.dtype(),
                ..ma.clone()
            };
            arrays.insert(out, (out_meta, result));
        }
        Cmd::BinaryScalar {
            out,
            a,
            scalar,
            op,
            scalar_left,
        } => {
            let (meta, buf) = &arrays[&a];
            let result = apply_binary_scalar(op, buf, scalar, scalar_left);
            comm.advance_compute(buf.len() as f64);
            let out_meta = ArrayMeta {
                dtype: result.dtype(),
                ..meta.clone()
            };
            arrays.insert(out, (out_meta, result));
        }
        Cmd::AsType { out, a, dtype } => {
            let (meta, buf) = &arrays[&a];
            let result = buf.astype(dtype);
            let out_meta = ArrayMeta {
                dtype,
                ..meta.clone()
            };
            arrays.insert(out, (out_meta, result));
        }
        Cmd::Redistribute { out, a, dist, axis } => {
            assert_eq!(axis, 0, "arrays are distributed along axis 0");
            let (meta, buf) = &arrays[&a];
            let (out_meta, out_buf) = redistribute_worker(comm, meta, buf, dist);
            arrays.insert(out, (out_meta, out_buf));
        }
        Cmd::Slice { out, a, specs } => {
            let (meta, buf) = &arrays[&a];
            let (out_meta, out_buf) = slice_worker(comm, meta, buf, &specs);
            arrays.insert(out, (out_meta, out_buf));
        }
        Cmd::EvalFused {
            out,
            template,
            program,
        } => {
            let out_dtype = eval_fused_dtype(&program, arrays);
            let t_meta = arrays[&template].0.clone();
            let n = arrays[&template].1.len();
            // Fused evaluation in cache-sized chunks: intermediates live
            // in a small stack of CHUNK-length buffers (L1/L2 resident),
            // never in n-length temporaries — the loop-fusion win — while
            // each opcode still runs as a tight vectorizable loop.
            const CHUNK: usize = 4096;
            let mut values = Vec::with_capacity(n);
            // Stack and recycling pool persist in the worker scratch, so
            // repeated fused evaluations reuse the same chunk buffers.
            let stack = &mut scratch.fused_stack;
            let pool = &mut scratch.fused_pool;
            let mut start = 0usize;
            while start < n || (n == 0 && start == 0) {
                let end = (start + CHUNK).min(n);
                let len = end - start;
                for op in &program {
                    match op {
                        FusedOp::PushArray(id) => {
                            let (m, b) = &arrays[id];
                            debug_assert!(m.conformable(&t_meta), "fused input not conformable");
                            let mut buf = pool.pop().unwrap_or_default();
                            buf.clear();
                            match b {
                                Buffer::F64(v) => buf.extend_from_slice(&v[start..end]),
                                _ => buf.extend((start..end).map(|i| b.get_f64(i))),
                            }
                            stack.push(buf);
                        }
                        FusedOp::PushScalar(v) => {
                            let mut buf = pool.pop().unwrap_or_default();
                            buf.clear();
                            buf.resize(len, *v);
                            stack.push(buf);
                        }
                        FusedOp::Unary(u) => {
                            let top = stack.last_mut().expect("fused stack underflow");
                            fused_unary_chunk(*u, top);
                        }
                        FusedOp::Binary(b) => {
                            let rhs = stack.pop().expect("fused stack underflow");
                            let lhs = stack.last_mut().expect("fused stack underflow");
                            fused_binary_chunk(*b, lhs, &rhs);
                            pool.push(rhs);
                        }
                    }
                }
                let result = stack.pop().expect("fused program must leave one value");
                assert!(stack.is_empty(), "fused program left extra stack entries");
                values.extend_from_slice(&result);
                pool.push(result);
                if n == 0 {
                    break;
                }
                start = end;
            }
            comm.advance_compute((n * program.len()) as f64);
            let result = Buffer::F64(values).astype(out_dtype);
            let out_meta = ArrayMeta {
                dtype: out_dtype,
                ..t_meta
            };
            arrays.insert(out, (out_meta, result));
        }
        Cmd::Reduce { a, kind, axis, out } => {
            exec_reduce(comm, reply, arrays, a, kind, axis, out);
        }
        Cmd::Fetch { a } => {
            let (meta, buf) = &arrays[&a];
            let map = meta.axis_map(p, rank);
            let gids = map.my_gids();
            // Segments at or above the zero-copy threshold move as typed
            // regions (the Buffer clone is unavoidable here — the worker
            // keeps its segment — but the encode/decode round-trip is
            // not). Small segments take the classic wire path.
            let msg_size = gids.wire_size() + buf.wire_size();
            let msg = if msg_size >= comm.zerocopy_threshold() {
                ReplyMsg::Segment {
                    gids,
                    data: buf.clone(),
                }
            } else {
                // Field-by-field tuple encoding, wire-compatible with
                // `encode_to_vec(&(gids, buffer))` but without cloning
                // the whole segment first.
                let mut payload = Vec::new();
                gids.encode(&mut payload);
                buf.encode(&mut payload);
                ReplyMsg::Bytes(payload)
            };
            let _ = reply.send((rank, msg));
        }
        Cmd::CallLocal {
            fn_id,
            arrays: arg_arrays,
            scalars,
        } => {
            let f = Arc::clone(fns.get(&fn_id).expect("unknown local function"));
            let mut scope = WorkerScope {
                comm,
                arrays,
                tables,
                reply,
            };
            f(&mut scope, &arg_arrays, &scalars);
        }
        Cmd::Free { id } => {
            arrays.remove(&id);
        }
        Cmd::Ping => {
            let _ = reply.send((rank, ReplyMsg::Bytes(Vec::new())));
        }
        Cmd::Shutdown => return false,
        Cmd::Select { out, cond, a, b } => {
            let (mc, bc) = &arrays[&cond];
            let (ma, ba) = &arrays[&a];
            let (mb, bb) = &arrays[&b];
            assert!(
                mc.conformable(ma) && ma.conformable(mb),
                "select operands must be conformable"
            );
            let n = bc.len();
            let out_dtype = ba.dtype().promote(bb.dtype());
            let values = Buffer::F64(
                (0..n)
                    .map(|i| {
                        if bc.get_f64(i) != 0.0 {
                            ba.get_f64(i)
                        } else {
                            bb.get_f64(i)
                        }
                    })
                    .collect(),
            )
            .astype(out_dtype);
            comm.advance_compute(n as f64);
            let out_meta = ArrayMeta {
                dtype: out_dtype,
                ..ma.clone()
            };
            arrays.insert(out, (out_meta, values));
        }
        Cmd::CumSum { out, a } => {
            let (meta, buf) = &arrays[&a];
            assert_eq!(meta.ndim(), 1, "cumsum supports 1-D arrays");
            assert_eq!(
                meta.dist,
                Dist::Block,
                "cumsum needs contiguous segments (master redistributes first)"
            );
            // local prefix, then shift by the exscan of local totals —
            // the classic distributed scan.
            let n = buf.len();
            let mut local = Vec::with_capacity(n);
            let mut acc = 0.0f64;
            for i in 0..n {
                acc += buf.get_f64(i);
                local.push(acc);
            }
            comm.advance_compute(n as f64);
            let offset = comm.exscan(&acc, 0.0, |x: &f64, y: &f64| x + y);
            for v in &mut local {
                *v += offset;
            }
            let out_dtype = match meta.dtype {
                DType::Bool => DType::I64,
                d => d,
            };
            let out_meta = ArrayMeta {
                dtype: out_dtype,
                ..meta.clone()
            };
            let data = Buffer::F64(local).astype(out_dtype);
            arrays.insert(out, (out_meta, data));
        }
        Cmd::ArgReduce { a, is_max } => {
            let (meta, buf) = &arrays[&a];
            let map = meta.axis_map(p, rank);
            let slab = meta.slab();
            let mut best: Option<(f64, usize)> = None;
            for i in 0..buf.len() {
                let v = buf.get_f64(i);
                let better = match best {
                    None => true,
                    Some((bv, _)) => {
                        if is_max {
                            v > bv
                        } else {
                            v < bv
                        }
                    }
                };
                if better {
                    let gid = map.local_to_global(i / slab.max(1)) * slab.max(1) + i % slab.max(1);
                    best = Some((v, gid));
                }
            }
            comm.advance_compute(buf.len() as f64);
            // combine keeping the smallest global index on ties
            let sentinel = if is_max {
                (f64::NEG_INFINITY, usize::MAX)
            } else {
                (f64::INFINITY, usize::MAX)
            };
            let mine = best.unwrap_or(sentinel);
            let winner = comm.allreduce(&mine, |x: &(f64, usize), y: &(f64, usize)| {
                let x_wins = if is_max {
                    x.0 > y.0 || (x.0 == y.0 && x.1 <= y.1)
                } else {
                    x.0 < y.0 || (x.0 == y.0 && x.1 <= y.1)
                };
                if x_wins {
                    *x
                } else {
                    *y
                }
            });
            if rank == 0 {
                let _ = reply.send((rank, ReplyMsg::Bytes(comm::encode_to_vec(&winner))));
            }
        }
        Cmd::Concat { out, a, b } => {
            let (ma, _) = &arrays[&a];
            let (mb, _) = &arrays[&b];
            assert_eq!(ma.ndim(), 1, "concat supports 1-D arrays");
            assert_eq!(mb.ndim(), 1, "concat supports 1-D arrays");
            let n1 = ma.shape[0];
            let n2 = mb.shape[0];
            let out_dtype = arrays[&a].1.dtype().promote(arrays[&b].1.dtype());
            let out_meta = ArrayMeta {
                shape: vec![n1 + n2],
                axis: 0,
                dist: Dist::Block,
                dtype: out_dtype,
            };
            let out_map = out_meta.axis_map(p, rank);
            // route each local element of a and b to its owner in out
            let mut per_peer_idx: Vec<Vec<usize>> = (0..p).map(|_| Vec::new()).collect();
            let mut per_peer_val: Vec<Vec<f64>> = (0..p).map(|_| Vec::new()).collect();
            for (src, base) in [(a, 0usize), (b, n1)] {
                let (m, buf) = &arrays[&src];
                let map = m.axis_map(p, rank);
                for l in 0..buf.len() {
                    let g = map.local_to_global(l) + base;
                    let owner = out_map.owner_of(g).expect("structured map");
                    per_peer_idx[owner].push(g);
                    per_peer_val[owner].push(buf.get_f64(l));
                }
            }
            let outgoing: Vec<Vec<(Vec<usize>, Vec<f64>)>> = per_peer_idx
                .into_iter()
                .zip(per_peer_val)
                .map(|(i, v)| {
                    if i.is_empty() {
                        Vec::new()
                    } else {
                        vec![(i, v)]
                    }
                })
                .collect();
            let incoming = comm.alltoallv(outgoing);
            let mut values = vec![0.0f64; out_map.my_count()];
            for (idx, vals) in incoming.into_iter().flatten() {
                for (g, v) in idx.into_iter().zip(vals) {
                    values[out_map.global_to_local(g).expect("routed wrong")] = v;
                }
            }
            let data = Buffer::F64(values).astype(out_dtype);
            arrays.insert(out, (out_meta, data));
        }
        Cmd::MatMul { out, a, b } => {
            let (ma, ba) = &arrays[&a];
            let (mb, bb) = &arrays[&b];
            assert_eq!(ma.ndim(), 2, "matmul takes 2-D arrays");
            assert_eq!(mb.ndim(), 2, "matmul takes 2-D arrays");
            let (m, ka) = (ma.shape[0], ma.shape[1]);
            let (kb, ncols) = (mb.shape[0], mb.shape[1]);
            assert_eq!(ka, kb, "matmul inner dimensions must agree");
            // allgather B: each worker contributes (row gids, flat rows)
            let b_map = mb.axis_map(p, rank);
            let my_b: Vec<f64> = (0..bb.len()).map(|i| bb.get_f64(i)).collect();
            let pieces: Vec<(Vec<usize>, Vec<f64>)> = comm.allgather(&(b_map.my_gids(), my_b));
            let mut bfull = vec![0.0f64; kb * ncols];
            for (gids, vals) in pieces {
                for (l, g) in gids.into_iter().enumerate() {
                    bfull[g * ncols..(g + 1) * ncols]
                        .copy_from_slice(&vals[l * ncols..(l + 1) * ncols]);
                }
            }
            // local GEMM over my block rows of A (ikj order)
            let a_map = ma.axis_map(p, rank);
            let rows = a_map.my_count();
            let mut c = vec![0.0f64; rows * ncols];
            for i in 0..rows {
                for kk in 0..ka {
                    let aik = ba.get_f64(i * ka + kk);
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bfull[kk * ncols..(kk + 1) * ncols];
                    let crow = &mut c[i * ncols..(i + 1) * ncols];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
            comm.advance_compute(2.0 * (rows * ka * ncols) as f64);
            let out_meta = ArrayMeta {
                shape: vec![m, ncols],
                axis: 0,
                dist: ma.dist,
                dtype: DType::F64,
            };
            assert_eq!(
                out_meta.local_len(p, rank),
                c.len(),
                "matmul requires A's row distribution to be block-compatible"
            );
            arrays.insert(out, (out_meta, Buffer::F64(c)));
        }
        Cmd::RegisterKernel { id, program } => {
            kernels.insert(id, program);
        }
        Cmd::EvalKernel {
            out,
            kernel,
            template,
            inputs,
            out_dtype,
            reduce,
            dtype,
            native,
        } => match dtype {
            DType::F64 => exec_kernel(
                comm, reply, arrays, kernels, scratch, out, kernel, template, &inputs, out_dtype,
                reduce, native,
            ),
            DType::I64 | DType::Bool => exec_kernel_int(
                comm, reply, arrays, kernels, out, kernel, template, &inputs, out_dtype, reduce,
                native,
            ),
        },
        Cmd::EvalKernelMulti {
            kernel,
            template,
            inputs,
            scalars,
            outs,
            dtype,
            native,
        } => {
            exec_kernel_multi(
                comm,
                reply,
                arrays,
                kernels,
                scratch,
                kernel,
                template,
                &inputs,
                &scalars,
                &outs,
                native && dtype == DType::F64,
            );
        }
    }
    true
}

/// Run a registered Seamless kernel element-wise over this worker's
/// segment, optionally folding the results straight into a scalar
/// reduction (one fused map+reduce pass, no materialized output array).
///
/// The map path mirrors `Cmd::EvalFused` (CHUNK-sized staging through the
/// recycled scratch pool, compute in f64, final `astype`); the reduce tail
/// mirrors `exec_reduce` with `axis: None` exactly — sequential
/// element-order local fold, then one `allreduce`, then a rank-0 reply —
/// so fused reductions are bitwise-identical to `map(...)` + `Reduce`.
///
/// With `native` set, the probed C monomorphization (DESIGN §15) replaces
/// the chunked VM pass — one compiled call over the whole segment. The
/// probe gate makes the tiers bitwise-interchangeable, and the modeled
/// compute advance is tier-independent, so chaos/critical-path results do
/// not depend on which tier ran.
#[allow(clippy::too_many_arguments)]
fn exec_kernel(
    comm: &Comm,
    reply: &Sender<(usize, ReplyMsg)>,
    arrays: &mut HashMap<u64, (ArrayMeta, Buffer)>,
    kernels: &HashMap<u64, seamless::bytecode::Program>,
    scratch: &mut WorkerScratch,
    out: u64,
    kernel: u64,
    template: u64,
    inputs: &[u64],
    out_dtype: DType,
    reduce: Option<ReduceKind>,
    native: bool,
) {
    let program = kernels.get(&kernel).expect("unknown kernel");
    let n_instrs = program.funcs.first().map_or(0, |f| f.instrs.len());
    let vm = seamless::vm::Vm::new(program);
    let t_meta = arrays[&template].0.clone();
    let n = arrays[&template].1.len();
    const CHUNK: usize = 4096;
    // Kernel-VM event span: covers the chunked VM run plus its modeled
    // compute advance, closing *before* the collective reduce tail so no
    // comm spans nest inside it (the critical-path walk treats Kernel
    // spans as atomic clock advances).
    let kernel_timer = if obs::enabled() {
        Some(obs::span::span_start(comm.virtual_time()))
    } else {
        None
    };
    let mut values = if reduce.is_none() {
        Vec::with_capacity(n)
    } else {
        Vec::new()
    };
    let mut acc = reduce.map(reduce_identity);
    // Native tier: the probed C monomorphization runs the whole segment
    // in one call (no chunking — the compiled loop *is* the chunk loop).
    // The cache was warmed master-side at build(), so this lookup never
    // compiles on a worker; a cold cache (e.g. a replayed command after
    // recover) compiles once and probes before use.
    let native_fn = if native {
        seamless::codegen::native_f64(program, None)
    } else {
        None
    };
    if let Some(nf) = native_fn {
        // Inputs stage as full-length rows: F64 segments borrow in place,
        // other dtypes widen into recycled scratch buffers.
        let mut staged: Vec<Option<Vec<f64>>> = Vec::with_capacity(inputs.len());
        for &id in inputs {
            let (m, b) = &arrays[&id];
            debug_assert!(m.conformable(&t_meta), "kernel input not conformable");
            staged.push(match b {
                Buffer::F64(_) => None,
                _ => {
                    let mut buf = scratch.fused_pool.pop().unwrap_or_default();
                    buf.clear();
                    buf.extend((0..n).map(|i| b.get_f64(i)));
                    Some(buf)
                }
            });
        }
        let refs: Vec<&[f64]> = inputs
            .iter()
            .zip(&staged)
            .map(|(&id, s)| match s {
                Some(buf) => &buf[..],
                None => match &arrays[&id].1 {
                    Buffer::F64(v) => &v[..n],
                    _ => unreachable!("non-F64 inputs are staged"),
                },
            })
            .collect();
        match acc {
            None => {
                values.resize(n, 0.0);
                nf.run(&refs, &mut [&mut values[..]], n);
            }
            Some(ref mut a) => {
                // Fold the native row in the same sequential element order
                // as the chunked VM tail, so reductions stay bitwise equal.
                let mut row = scratch.fused_pool.pop().unwrap_or_default();
                row.clear();
                row.resize(n, 0.0);
                nf.run(&refs, &mut [&mut row[..]], n);
                let kind = reduce.expect("acc implies reduce");
                for &v in &row[..n] {
                    *a = reduce_combine(kind, *a, reduce_element(kind, v));
                }
                scratch.fused_pool.push(row);
            }
        }
        for s in staged.into_iter().flatten() {
            scratch.fused_pool.push(s);
        }
        if obs::enabled() {
            obs::global().counter("odin.kernel.native_invokes").add(1);
        }
    } else {
        let mut out_chunk = scratch.fused_pool.pop().unwrap_or_default();
        out_chunk.clear();
        out_chunk.resize(CHUNK.min(n.max(1)), 0.0);
        // Non-F64 inputs are staged into recycled chunk buffers; F64 inputs
        // are borrowed directly from the segment, no copy.
        let mut staged: Vec<Option<Vec<f64>>> = Vec::with_capacity(inputs.len());
        for &id in inputs {
            let (m, b) = &arrays[&id];
            debug_assert!(m.conformable(&t_meta), "kernel input not conformable");
            staged.push(match b {
                Buffer::F64(_) => None,
                _ => {
                    let mut buf = scratch.fused_pool.pop().unwrap_or_default();
                    buf.clear();
                    Some(buf)
                }
            });
        }
        let mut start = 0usize;
        while start < n {
            let end = (start + CHUNK).min(n);
            let len = end - start;
            for (k, &id) in inputs.iter().enumerate() {
                if let Some(buf) = &mut staged[k] {
                    let b = &arrays[&id].1;
                    buf.clear();
                    buf.extend((start..end).map(|i| b.get_f64(i)));
                }
            }
            let refs: Vec<&[f64]> = inputs
                .iter()
                .zip(&staged)
                .map(|(&id, s)| match s {
                    Some(buf) => &buf[..],
                    None => match &arrays[&id].1 {
                        Buffer::F64(v) => &v[start..end],
                        _ => unreachable!("non-F64 inputs are staged"),
                    },
                })
                .collect();
            vm.run_f64_chunk(0, &refs, &mut out_chunk[..len])
                .expect("kernel failed on a worker segment");
            match acc {
                None => values.extend_from_slice(&out_chunk[..len]),
                Some(ref mut a) => {
                    let kind = reduce.expect("acc implies reduce");
                    for &v in &out_chunk[..len] {
                        *a = reduce_combine(kind, *a, reduce_element(kind, v));
                    }
                }
            }
            start = end;
        }
        for s in staged.into_iter().flatten() {
            scratch.fused_pool.push(s);
        }
        scratch.fused_pool.push(out_chunk);
    }
    // The modeled compute advance is tier-independent: chaos schedules and
    // critical-path attributions must not depend on which tier executed.
    comm.advance_compute((n * n_instrs.max(1)) as f64);
    if let Some(t) = kernel_timer {
        t.finish_meta(
            "odin",
            "kernel",
            comm.virtual_time(),
            &[("n", n as f64), ("instrs", n_instrs as f64)],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Kernel,
                flow_out: 0,
                flow_in: 0,
            },
        );
    }
    match acc {
        None => {
            let result = Buffer::F64(values).astype(out_dtype);
            let out_meta = ArrayMeta {
                dtype: out_dtype,
                ..t_meta
            };
            arrays.insert(out, (out_meta, result));
        }
        Some(local) => {
            // Collective: must run on every rank even with an empty segment.
            let kind = reduce.expect("acc implies reduce");
            let total = comm.allreduce(&local, |x: &f64, y: &f64| reduce_combine(kind, *x, *y));
            if comm.rank() == 0 {
                let _ = reply.send((comm.rank(), ReplyMsg::Bytes(comm::encode_to_vec(&total))));
            }
        }
    }
}

/// Integer-plane twin of [`exec_kernel`]: runs an I64- or Bool-dtype
/// kernel monomorphization over this worker's segment without ever
/// round-tripping through f64 compute. Inputs stage as full-length i64
/// rows (`I64` segments borrow in place, bools widen to 0/1, floats
/// truncate like `astype`), the body runs either through the probed
/// native tier ([`seamless::codegen::native_i64`]) or one full-length
/// [`seamless::vm::Vm::run_i64_chunk`] pass, and reductions fold the i64
/// row widened per-element to f64 so collective tails share
/// `reduce_combine` with the float plane.
#[allow(clippy::too_many_arguments)]
fn exec_kernel_int(
    comm: &Comm,
    reply: &Sender<(usize, ReplyMsg)>,
    arrays: &mut HashMap<u64, (ArrayMeta, Buffer)>,
    kernels: &HashMap<u64, seamless::bytecode::Program>,
    out: u64,
    kernel: u64,
    template: u64,
    inputs: &[u64],
    out_dtype: DType,
    reduce: Option<ReduceKind>,
    native: bool,
) {
    let program = kernels.get(&kernel).expect("unknown kernel");
    let n_instrs = program.funcs.first().map_or(0, |f| f.instrs.len());
    let t_meta = arrays[&template].0.clone();
    let n = arrays[&template].1.len();
    let kernel_timer = if obs::enabled() {
        Some(obs::span::span_start(comm.virtual_time()))
    } else {
        None
    };
    // Stage inputs as full-length i64 rows; I64 segments borrow in place.
    let mut staged: Vec<Option<Vec<i64>>> = Vec::with_capacity(inputs.len());
    for &id in inputs {
        let (m, b) = &arrays[&id];
        debug_assert!(m.conformable(&t_meta), "kernel input not conformable");
        staged.push(match b {
            Buffer::I64(_) => None,
            _ => Some((0..n).map(|i| b.get_i64(i)).collect()),
        });
    }
    let refs: Vec<&[i64]> = inputs
        .iter()
        .zip(&staged)
        .map(|(&id, s)| match s {
            Some(buf) => &buf[..],
            None => match &arrays[&id].1 {
                Buffer::I64(v) => &v[..n],
                _ => unreachable!("non-I64 inputs are staged"),
            },
        })
        .collect();
    let mut values: Vec<i64> = vec![0; n];
    let native_fn = if native {
        seamless::codegen::native_i64(program)
    } else {
        None
    };
    if let Some(nf) = native_fn {
        nf.run(&refs, &mut values, n);
        if obs::enabled() {
            obs::global().counter("odin.kernel.native_invokes").add(1);
        }
    } else if n > 0 {
        let vm = seamless::vm::Vm::new(program);
        vm.run_i64_chunk(0, &refs, &mut values)
            .expect("integer kernel failed on a worker segment");
    }
    // Tier-independent modeled compute advance, same formula as the f64
    // plane so dtype choice never perturbs chaos/critical-path timing.
    comm.advance_compute((n * n_instrs.max(1)) as f64);
    if let Some(t) = kernel_timer {
        t.finish_meta(
            "odin",
            "kernel",
            comm.virtual_time(),
            &[("n", n as f64), ("instrs", n_instrs as f64)],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Kernel,
                flow_out: 0,
                flow_in: 0,
            },
        );
    }
    match reduce {
        None => {
            let result = if out_dtype == DType::Bool {
                Buffer::Bool(values.iter().map(|&v| v != 0).collect())
            } else {
                Buffer::I64(values).astype(out_dtype)
            };
            let out_meta = ArrayMeta {
                dtype: out_dtype,
                ..t_meta
            };
            arrays.insert(out, (out_meta, result));
        }
        Some(kind) => {
            // Fold widened per-element to f64 so the collective tail is
            // shared with the float plane (Sum/Prod/Min/Max/CountNonzero
            // all round-trip exactly for the magnitudes tests exercise).
            let mut local = reduce_identity(kind);
            for &v in &values {
                local = reduce_combine(kind, local, reduce_element(kind, v as f64));
            }
            let total = comm.allreduce(&local, |x: &f64, y: &f64| reduce_combine(kind, *x, *y));
            if comm.rank() == 0 {
                let _ = reply.send((comm.rank(), ReplyMsg::Bytes(comm::encode_to_vec(&total))));
            }
        }
    }
}

/// Run a fused multi-statement kernel over this worker's segment and
/// harvest several register rows in one pass: each [`KernelOut::Array`]
/// materializes like [`exec_kernel`]'s map path (raw f64 rows collected
/// per chunk, one final `astype`), each [`KernelOut::Reduce`] folds its
/// row exactly like the fused reduce tail (sequential element-order local
/// fold, one `allreduce` per reduction in `outs` order, rank-0 reply with
/// the scalar vector). Scalar parameters arrive as resolved f64 values
/// and are staged as constant chunk rows, so the bytecode sees them as
/// ordinary float inputs.
#[allow(clippy::too_many_arguments)]
fn exec_kernel_multi(
    comm: &Comm,
    reply: &Sender<(usize, ReplyMsg)>,
    arrays: &mut HashMap<u64, (ArrayMeta, Buffer)>,
    kernels: &HashMap<u64, seamless::bytecode::Program>,
    scratch: &mut WorkerScratch,
    kernel: u64,
    template: u64,
    inputs: &[u64],
    scalars: &[f64],
    outs: &[KernelOut],
    native: bool,
) {
    let program = kernels.get(&kernel).expect("unknown kernel");
    let n_instrs = program.funcs.first().map_or(0, |f| f.instrs.len());
    let t_meta = arrays[&template].0.clone();
    let n = arrays[&template].1.len();
    const CHUNK: usize = 4096;
    let kernel_timer = if obs::enabled() {
        Some(obs::span::span_start(comm.virtual_time()))
    } else {
        None
    };
    let out_regs: Vec<seamless::bytecode::Reg> = outs
        .iter()
        .map(|o| match o {
            KernelOut::Array { reg, .. } | KernelOut::Reduce { reg, .. } => *reg,
        })
        .collect();
    // Per-output state: raw f64 collectors for arrays, fold accumulators
    // for reductions (identical start values to the single-out path).
    let mut values: Vec<Vec<f64>> = outs
        .iter()
        .map(|o| match o {
            KernelOut::Array { .. } => Vec::with_capacity(n),
            KernelOut::Reduce { .. } => Vec::new(),
        })
        .collect();
    let mut accs: Vec<f64> = outs
        .iter()
        .map(|o| match o {
            KernelOut::Reduce { kind, .. } => reduce_identity(*kind),
            KernelOut::Array { .. } => 0.0,
        })
        .collect();
    // Native tier: the probed multi-output monomorphization (out_regs are
    // part of the cache key and the mangled symbol) runs the whole
    // segment in one call, writing every harvested register row at once.
    let native_fn = if native {
        seamless::codegen::native_f64(program, Some(&out_regs))
    } else {
        None
    };
    if let Some(nf) = native_fn {
        // Full-length staging: F64 segments borrow, others widen, scalar
        // parameters become full constant rows.
        let mut staged: Vec<Option<Vec<f64>>> = Vec::with_capacity(inputs.len());
        for &id in inputs {
            let (m, b) = &arrays[&id];
            debug_assert!(m.conformable(&t_meta), "kernel input not conformable");
            staged.push(match b {
                Buffer::F64(_) => None,
                _ => {
                    let mut buf = scratch.fused_pool.pop().unwrap_or_default();
                    buf.clear();
                    buf.extend((0..n).map(|i| b.get_f64(i)));
                    Some(buf)
                }
            });
        }
        let scalar_rows: Vec<Vec<f64>> = scalars
            .iter()
            .map(|&v| {
                let mut row = scratch.fused_pool.pop().unwrap_or_default();
                row.clear();
                row.resize(n, v);
                row
            })
            .collect();
        let mut refs: Vec<&[f64]> = inputs
            .iter()
            .zip(&staged)
            .map(|(&id, s)| match s {
                Some(buf) => &buf[..],
                None => match &arrays[&id].1 {
                    Buffer::F64(v) => &v[..n],
                    _ => unreachable!("non-F64 inputs are staged"),
                },
            })
            .collect();
        refs.extend(scalar_rows.iter().map(|r| &r[..]));
        let mut out_full: Vec<Vec<f64>> = (0..outs.len())
            .map(|_| {
                let mut row = scratch.fused_pool.pop().unwrap_or_default();
                row.clear();
                row.resize(n, 0.0);
                row
            })
            .collect();
        {
            let mut row_refs: Vec<&mut [f64]> = out_full.iter_mut().map(|r| &mut r[..]).collect();
            nf.run(&refs, &mut row_refs, n);
        }
        for (slot, o) in outs.iter().enumerate() {
            match o {
                KernelOut::Array { .. } => {
                    // Move the native row straight into the result slot —
                    // no chunk copy on the native tier.
                    values[slot] = std::mem::take(&mut out_full[slot]);
                }
                KernelOut::Reduce { kind, .. } => {
                    let a = &mut accs[slot];
                    for &v in &out_full[slot][..n] {
                        *a = reduce_combine(*kind, *a, reduce_element(*kind, v));
                    }
                }
            }
        }
        for s in staged.into_iter().flatten() {
            scratch.fused_pool.push(s);
        }
        for row in scalar_rows {
            scratch.fused_pool.push(row);
        }
        for row in out_full {
            scratch.fused_pool.push(row);
        }
        if obs::enabled() {
            obs::global().counter("odin.kernel.native_invokes").add(1);
        }
    } else {
        let vm = seamless::vm::Vm::new(program);
        let mut out_rows: Vec<Vec<f64>> = (0..outs.len())
            .map(|_| {
                let mut row = scratch.fused_pool.pop().unwrap_or_default();
                row.clear();
                row.resize(CHUNK.min(n.max(1)), 0.0);
                row
            })
            .collect();
        // Non-F64 inputs are staged into recycled chunk buffers; F64 inputs
        // are borrowed directly from the segment. Scalar parameters become
        // constant rows, filled once.
        let mut staged: Vec<Option<Vec<f64>>> = Vec::with_capacity(inputs.len());
        for &id in inputs {
            let (m, b) = &arrays[&id];
            debug_assert!(m.conformable(&t_meta), "kernel input not conformable");
            staged.push(match b {
                Buffer::F64(_) => None,
                _ => {
                    let mut buf = scratch.fused_pool.pop().unwrap_or_default();
                    buf.clear();
                    Some(buf)
                }
            });
        }
        let scalar_rows: Vec<Vec<f64>> = scalars
            .iter()
            .map(|&v| {
                let mut row = scratch.fused_pool.pop().unwrap_or_default();
                row.clear();
                row.resize(CHUNK.min(n.max(1)), v);
                row
            })
            .collect();
        let mut start = 0usize;
        while start < n {
            let end = (start + CHUNK).min(n);
            let len = end - start;
            for (k, &id) in inputs.iter().enumerate() {
                if let Some(buf) = &mut staged[k] {
                    let b = &arrays[&id].1;
                    buf.clear();
                    buf.extend((start..end).map(|i| b.get_f64(i)));
                }
            }
            let mut refs: Vec<&[f64]> = inputs
                .iter()
                .zip(&staged)
                .map(|(&id, s)| match s {
                    Some(buf) => &buf[..],
                    None => match &arrays[&id].1 {
                        Buffer::F64(v) => &v[start..end],
                        _ => unreachable!("non-F64 inputs are staged"),
                    },
                })
                .collect();
            refs.extend(scalar_rows.iter().map(|r| &r[..len]));
            {
                let mut row_refs: Vec<&mut [f64]> =
                    out_rows.iter_mut().map(|r| &mut r[..len]).collect();
                vm.run_f64_multi_chunk(0, &refs, &out_regs, &mut row_refs)
                    .expect("fused kernel failed on a worker segment");
            }
            for (slot, o) in outs.iter().enumerate() {
                match o {
                    KernelOut::Array { .. } => {
                        values[slot].extend_from_slice(&out_rows[slot][..len]);
                    }
                    KernelOut::Reduce { kind, .. } => {
                        let a = &mut accs[slot];
                        for &v in &out_rows[slot][..len] {
                            *a = reduce_combine(*kind, *a, reduce_element(*kind, v));
                        }
                    }
                }
            }
            start = end;
        }
        for s in staged.into_iter().flatten() {
            scratch.fused_pool.push(s);
        }
        for row in scalar_rows {
            scratch.fused_pool.push(row);
        }
        for row in out_rows {
            scratch.fused_pool.push(row);
        }
    }
    comm.advance_compute((n * n_instrs.max(1)) as f64);
    if let Some(t) = kernel_timer {
        t.finish_meta(
            "odin",
            "kernel",
            comm.virtual_time(),
            &[("n", n as f64), ("instrs", n_instrs as f64)],
            obs::span::SpanMeta {
                kind: obs::span::SpanKind::Kernel,
                flow_out: 0,
                flow_in: 0,
            },
        );
    }
    let mut totals: Vec<f64> = Vec::new();
    for (slot, o) in outs.iter().enumerate() {
        match o {
            KernelOut::Array { id, dtype, .. } => {
                let raw = std::mem::take(&mut values[slot]);
                let result = Buffer::F64(raw).astype(*dtype);
                let out_meta = ArrayMeta {
                    dtype: *dtype,
                    ..t_meta.clone()
                };
                arrays.insert(*id, (out_meta, result));
            }
            KernelOut::Reduce { kind, .. } => {
                // Collective: runs on every rank even with an empty segment,
                // one allreduce per reduction, in declaration order.
                let total = comm.allreduce(&accs[slot], |x: &f64, y: &f64| {
                    reduce_combine(*kind, *x, *y)
                });
                totals.push(total);
            }
        }
    }
    if !totals.is_empty() && comm.rank() == 0 {
        let _ = reply.send((comm.rank(), ReplyMsg::Bytes(comm::encode_to_vec(&totals))));
    }
}

fn reduce_identity(kind: ReduceKind) -> f64 {
    match kind {
        ReduceKind::Sum | ReduceKind::CountNonzero => 0.0,
        ReduceKind::Prod => 1.0,
        ReduceKind::Min => f64::INFINITY,
        ReduceKind::Max => f64::NEG_INFINITY,
    }
}

fn reduce_combine(kind: ReduceKind, a: f64, b: f64) -> f64 {
    match kind {
        ReduceKind::Sum | ReduceKind::CountNonzero => a + b,
        ReduceKind::Prod => a * b,
        ReduceKind::Min => a.min(b),
        ReduceKind::Max => a.max(b),
    }
}

fn reduce_element(kind: ReduceKind, x: f64) -> f64 {
    match kind {
        ReduceKind::CountNonzero => f64::from(u8::from(x != 0.0)),
        _ => x,
    }
}

fn exec_reduce(
    comm: &Comm,
    reply: &Sender<(usize, ReplyMsg)>,
    arrays: &mut HashMap<u64, (ArrayMeta, Buffer)>,
    a: u64,
    kind: ReduceKind,
    axis: Option<usize>,
    out: u64,
) {
    let p = comm.size();
    let rank = comm.rank();
    let (meta, buf) = arrays[&a].clone();
    match axis {
        None => {
            let mut acc = reduce_identity(kind);
            for i in 0..buf.len() {
                acc = reduce_combine(kind, acc, reduce_element(kind, buf.get_f64(i)));
            }
            comm.advance_compute(buf.len() as f64);
            let total = comm.allreduce(&acc, |x: &f64, y: &f64| reduce_combine(kind, *x, *y));
            if rank == 0 {
                let _ = reply.send((rank, ReplyMsg::Bytes(comm::encode_to_vec(&total))));
            }
        }
        Some(0) => {
            assert!(meta.ndim() >= 2, "axis-0 reduce needs ndim ≥ 2");
            let slab = meta.slab();
            let map = meta.axis_map(p, rank);
            let mut partial = vec![reduce_identity(kind); slab];
            for l in 0..map.my_count() {
                for (k, pk) in partial.iter_mut().enumerate() {
                    let x = reduce_element(kind, buf.get_f64(l * slab + k));
                    *pk = reduce_combine(kind, *pk, x);
                }
            }
            comm.advance_compute(buf.len() as f64);
            let full = comm.allreduce(&partial, |x: &Vec<f64>, y: &Vec<f64>| {
                x.iter()
                    .zip(y.iter())
                    .map(|(u, v)| reduce_combine(kind, *u, *v))
                    .collect()
            });
            // Output: shape without axis 0, block-distributed along the
            // (new) axis 0. Each worker keeps its block of the slab.
            let out_shape: Vec<usize> = meta.shape[1..].to_vec();
            let out_meta = ArrayMeta {
                shape: out_shape,
                axis: 0,
                dist: Dist::Block,
                dtype: reduce_output_dtype(kind, meta.dtype),
            };
            let out_map = out_meta.axis_map(p, rank);
            let out_slab = out_meta.slab();
            let mut mine = Vec::with_capacity(out_map.my_count() * out_slab);
            for l in 0..out_map.my_count() {
                let g = out_map.local_to_global(l);
                for k in 0..out_slab {
                    mine.push(full[g * out_slab + k]);
                }
            }
            let data = Buffer::F64(mine).astype(out_meta.dtype);
            arrays.insert(out, (out_meta, data));
        }
        Some(ax) => {
            assert!(ax < meta.ndim(), "reduce axis out of range");
            let map = meta.axis_map(p, rank);
            let dims = &meta.shape[1..];
            // strides within the slab
            let mut strides = vec![1usize; dims.len()];
            for i in (0..dims.len().saturating_sub(1)).rev() {
                strides[i] = strides[i + 1] * dims[i + 1];
            }
            let red_d = ax - 1; // index into slab dims
            let out_dims: Vec<usize> = dims
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != red_d)
                .map(|(_, &d)| d)
                .collect();
            let out_slab: usize = out_dims.iter().product();
            // row-major strides of the reduced (output) slab
            let mut out_strides = vec![1usize; out_dims.len()];
            for i in (0..out_dims.len().saturating_sub(1)).rev() {
                out_strides[i] = out_strides[i + 1] * out_dims[i + 1];
            }
            // source-dim index of each output dim
            let src_dims: Vec<usize> = (0..dims.len()).filter(|&d| d != red_d).collect();
            // base offset (reduced dim = 0) of each output slab position
            let base_offsets: Vec<usize> = (0..out_slab)
                .map(|o| {
                    src_dims
                        .iter()
                        .enumerate()
                        .map(|(i, &sd)| ((o / out_strides[i]) % out_dims[i]) * strides[sd])
                        .sum()
                })
                .collect();
            let slab = meta.slab();
            let red_len = dims[red_d];
            let red_stride = strides[red_d];
            let mut values = Vec::with_capacity(map.my_count() * out_slab);
            for l in 0..map.my_count() {
                let row = l * slab;
                for &base in base_offsets.iter().take(out_slab) {
                    let mut acc = reduce_identity(kind);
                    for r in 0..red_len {
                        let x = reduce_element(kind, buf.get_f64(row + base + r * red_stride));
                        acc = reduce_combine(kind, acc, x);
                    }
                    values.push(acc);
                }
            }
            comm.advance_compute(buf.len() as f64);
            let mut out_shape = vec![meta.shape[0]];
            out_shape.extend(out_dims);
            let out_meta = ArrayMeta {
                shape: out_shape,
                axis: 0,
                dist: meta.dist,
                dtype: reduce_output_dtype(kind, meta.dtype),
            };
            let data = Buffer::F64(values).astype(out_meta.dtype);
            arrays.insert(out, (out_meta, data));
        }
    }
}

fn reduce_output_dtype(kind: ReduceKind, input: DType) -> DType {
    match kind {
        ReduceKind::CountNonzero => DType::I64,
        _ => match input {
            DType::Bool => DType::I64,
            d => d,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_uniform_is_deterministic_and_in_range() {
        for g in 0..1000u64 {
            let v = seeded_uniform(42, g);
            assert!((0.0..1.0).contains(&v));
            assert_eq!(v, seeded_uniform(42, g));
        }
        // different seeds decorrelate
        assert_ne!(seeded_uniform(1, 0), seeded_uniform(2, 0));
    }

    #[test]
    fn context_starts_and_stops() {
        let ctx = OdinContext::with_workers(3);
        ctx.barrier();
        assert_eq!(ctx.n_workers(), 3);
        drop(ctx); // clean shutdown must not hang
    }

    #[test]
    fn batching_reduces_channel_sends() {
        let ctx = OdinContext::with_workers(2);
        ctx.reset_stats();
        ctx.begin_batch();
        for _ in 0..10 {
            ctx.send_cmd(&Cmd::Ping);
        }
        ctx.flush_batch();
        let st = ctx.stats();
        assert_eq!(st.ctrl_msgs, 20); // 10 commands × 2 workers
        assert_eq!(st.channel_sends, 2); // but only one physical send each
                                         // drain the 20 ping replies (they interleave across workers)
        ctx.drain_replies(20);
    }

    #[test]
    fn pipelined_dispatch_overlaps_independent_commands() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.full(&[10], 2.0, crate::protocol::Dist::Block);
        let y = ctx.linspace(1.0, 10.0, 10);
        // dispatch two reductions without waiting for either
        let px = x.sum_async();
        let py = y.sum_async();
        assert!(
            px.seq() < py.seq(),
            "independent commands get distinct seqs"
        );
        assert_eq!(ctx.outstanding_replies(), 2, "both replies in flight");
        // claim out of dispatch order: the engine buffers the early reply
        assert!((py.wait() - 55.0).abs() < 1e-9);
        assert!((px.wait() - 20.0).abs() < 1e-9);
        assert_eq!(ctx.outstanding_replies(), 0);
    }

    #[test]
    fn pending_ready_polls_without_blocking() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.ones(&[9], crate::buffer::DType::F64);
        let mut p = x.sum_async();
        while !p.ready() {
            std::thread::yield_now();
        }
        assert!((p.wait() - 9.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_inside_open_batch_flushes_instead_of_deadlocking() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.ones(&[8], crate::buffer::DType::F64);
        ctx.begin_batch();
        // sum() buffers Cmd::Reduce into the batch; wait() must flush it
        assert!((x.sum() - 8.0).abs() < 1e-12);
        // the batch was consumed: opening a fresh one must not panic
        ctx.begin_batch();
        ctx.flush_batch();
    }

    #[test]
    fn barrier_flushes_open_batch() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.ones(&[6], crate::buffer::DType::F64);
        ctx.begin_batch();
        let y = &x + 1.0;
        ctx.barrier(); // must flush the buffered Binary command first
        assert_eq!(y.to_vec(), vec![2.0; 6]);
    }

    #[test]
    fn data_command_flushes_open_batch_preserving_order() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.ones(&[4], crate::buffer::DType::F64);
        ctx.begin_batch();
        let doubled = &x * 2.0; // batched
        let v = ctx.from_vec(&[9.0, 9.0], crate::protocol::Dist::Block); // data cmd
        ctx.flush_open_batch(); // already flushed by from_vec; must be a no-op path
        assert_eq!(doubled.to_vec(), vec![2.0; 4]);
        assert_eq!(v.to_vec(), vec![9.0, 9.0]);
    }

    #[test]
    fn dropped_pending_reply_is_discarded_not_misdelivered() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.full(&[4], 3.0, crate::protocol::Dist::Block);
        let y = ctx.full(&[4], 5.0, crate::protocol::Dist::Block);
        let abandoned = x.sum_async();
        drop(abandoned);
        // the abandoned reply (12.0) must not be delivered to this wait
        assert!((y.sum() - 20.0).abs() < 1e-12);
        ctx.barrier();
        assert_eq!(ctx.outstanding_replies(), 0);
    }

    #[test]
    fn array_sequence_tracking_clears_after_barrier() {
        let ctx = OdinContext::with_workers(2);
        let x = ctx.ones(&[6], crate::buffer::DType::F64);
        let y = &x + 1.0; // in flight: no reply claimed yet
        assert!(ctx.array_in_flight(y.id()));
        assert!(ctx.dispatch_seq() > ctx.completed_seq());
        ctx.barrier(); // proves everything up to the Ping executed
        assert!(!ctx.array_in_flight(y.id()));
        assert_eq!(ctx.dispatch_seq(), ctx.completed_seq());
    }

    fn chaos_config(n_workers: usize, kill_rank: usize, kill_after_ops: u64) -> OdinConfig {
        OdinConfig {
            n_workers,
            fault: comm::FaultPlan {
                kill_rank: Some(kill_rank),
                kill_after_ops,
                ..comm::FaultPlan::none()
            },
            stall_timeout: Some(Duration::from_secs(10)),
            reply_timeout: Some(Duration::from_secs(10)),
            ..Default::default()
        }
    }

    #[test]
    fn killed_worker_surfaces_typed_error_in_bounded_time() {
        // Worker 1 dies at its second command (the Ping below), after
        // replying to nothing — the master must get a typed error, fast.
        let ctx = OdinContext::new(chaos_config(3, 1, 2));
        let _x = ctx.zeros(&[6], crate::buffer::DType::F64); // command 1
        let t0 = Instant::now();
        let err = ctx.try_barrier().unwrap_err(); // command 2: kills worker 1
        match err {
            OdinError::WorkerDead { worker, .. } => assert_eq!(worker, 1),
            other => panic!("expected WorkerDead, got {other}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "death detection must be bounded"
        );
        // the heartbeat agrees, without issuing new replies
        assert!(ctx.health_check().is_err());
        assert_eq!(ctx.dead_workers(), vec![1]);
    }

    #[test]
    fn recover_respawns_pool_and_replays_checkpointed_segments() {
        let ctx = OdinContext::new(chaos_config(2, 0, 4));
        let x = ctx.linspace(1.0, 8.0, 8); // command 1
        let orphan = ctx.ones(&[4], crate::buffer::DType::F64); // command 2
        let ck = ctx.checkpoint(&[&x]); // command 3 (Fetch)
        let err = ctx.try_barrier().unwrap_err(); // command 4: kills worker 0
        assert!(matches!(err, OdinError::WorkerDead { worker: 0, .. }));
        let report = ctx.recover(&ck);
        assert_eq!(report.respawned, 2);
        assert_eq!(report.restored, vec![x.id()]);
        assert_eq!(report.lost, vec![orphan.id()]);
        // the checkpointed array replays bit-for-bit on the fresh pool
        assert_eq!(
            x.to_vec(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            "replayed segments must match the checkpoint"
        );
        assert!(ctx.health_check().is_ok());
        // using the lost array is a diagnosable error, not a hang
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| orphan.to_vec()));
        let msg = *r.unwrap_err().downcast::<String>().expect("string panic");
        assert!(msg.contains("lost"), "diagnostic names the loss: {msg}");
    }

    #[test]
    fn resize_replays_checkpoint_at_new_worker_count() {
        // Grow 2 -> 4, then shrink 4 -> 3: checkpoint replay re-slices at
        // whatever size the pool lands on, bit-for-bit.
        let mut ctx = OdinContext::with_workers(2);
        let want: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let (id, ck) = {
            let x = ctx.linspace(1.0, 8.0, 8);
            (x.id(), ctx.checkpoint(&[&x]))
        }; // handle dropped: no borrows live across the &mut resize
        let report = ctx.resize(4, &ck);
        assert_eq!(report.respawned, 4);
        assert_eq!(report.restored, vec![id]);
        assert!(report.lost.is_empty());
        assert_eq!(ctx.n_workers(), 4);
        {
            let x = crate::array::DistArray::from_id(&ctx, id);
            assert_eq!(x.to_vec(), want, "resized pool must replay bitwise");
            // the resized pool is fully live: new work still runs on it
            let y = &x + &x;
            assert_eq!(y.to_vec()[7], 16.0);
            std::mem::forget(x); // keep id alive for the next resize
        }
        let report = ctx.resize(3, &ck);
        assert_eq!(report.respawned, 3);
        let x = crate::array::DistArray::from_id(&ctx, id);
        assert_eq!(x.to_vec(), want);
        assert!(ctx.health_check().is_ok());
        std::mem::forget(x);
    }

    #[test]
    fn fused_dtype_inference() {
        let mut arrays = HashMap::new();
        let meta_f = ArrayMeta {
            shape: vec![4],
            axis: 0,
            dist: Dist::Block,
            dtype: DType::F64,
        };
        let meta_i = ArrayMeta {
            dtype: DType::I64,
            ..meta_f.clone()
        };
        arrays.insert(1u64, (meta_f, Buffer::F64(vec![])));
        arrays.insert(2u64, (meta_i, Buffer::I64(vec![])));
        // i + i stays integer
        let p = vec![
            FusedOp::PushArray(2),
            FusedOp::PushArray(2),
            FusedOp::Binary(BinOp::Add),
        ];
        assert_eq!(eval_fused_dtype(&p, &arrays), DType::I64);
        // sqrt promotes
        let p2 = vec![FusedOp::PushArray(2), FusedOp::Unary(UnaryOp::Sqrt)];
        assert_eq!(eval_fused_dtype(&p2, &arrays), DType::F64);
        // comparison is bool
        let p3 = vec![
            FusedOp::PushArray(1),
            FusedOp::PushScalar(0.5),
            FusedOp::Binary(BinOp::Gt),
        ];
        assert_eq!(eval_fused_dtype(&p3, &arrays), DType::Bool);
    }
}
