//! User-facing JIT kernel plane: compile a Seamless (pyish) scalar
//! function once, ship its bytecode to every worker once, and map it
//! over distributed arrays with tens-of-bytes control messages per
//! invoke.
//!
//! This is the paper's Seamless↔ODIN integration (§IV/§V): the kernel
//! author writes element-wise code in the Python-like source language,
//! ODIN compiles it on the master and registers it with the pool
//! ([`Cmd::RegisterKernel`]); every [`Kernel::map`] /
//! [`Kernel::map_reduce`] afterwards sends only array ids
//! ([`Cmd::EvalKernel`]) and runs the unboxed VM fast path
//! (`Vm::run_f64_chunk`) over each worker's segment.
//!
//! ```
//! use odin::context::OdinContext;
//!
//! let ctx = OdinContext::with_workers(3);
//! let k = ctx
//!     .compile_kernel("def wave(x, t):\n    return sin(x) * exp(-t)\n", "wave")
//!     .unwrap();
//! let x = ctx.linspace(0.0, 1.0, 16);
//! let t = ctx.full(&[16], 0.5, odin::protocol::Dist::Block);
//! let y = k.map(&[&x, &t]);
//! assert_eq!(y.len(), 16);
//! ```

use crate::array::DistArray;
use crate::buffer::DType;
use crate::context::OdinContext;
use crate::protocol::{ArrayMeta, Cmd, ReduceKind};
use seamless::bytecode::RegFile;
use seamless::{SeamlessError, Type};

/// A Seamless function compiled to bytecode and registered on every
/// worker of an [`OdinContext`] pool.
///
/// Obtained from [`OdinContext::compile_kernel`] (pyish source) or
/// implicitly by [`crate::lazy::Expr::eval`] (lowered expressions —
/// both share the registration cache). The kernel's code shipped to the
/// workers exactly once; each `map`/`map_reduce` invoke is a small
/// fixed-size control message.
pub struct Kernel<'c> {
    ctx: &'c OdinContext,
    id: u64,
    name: String,
    arity: usize,
    ret: DType,
}

impl OdinContext {
    /// Compile a Seamless (pyish) function to bytecode and register it
    /// with every worker. `fname` names the entry function inside `src`;
    /// all of its parameters are compiled as scalar floats (the kernel
    /// runs element-wise over array segments).
    ///
    /// Fails with a typed [`SeamlessError`] when the source does not
    /// parse or type-check, when the entry function is missing, or when
    /// it is not a scalar→scalar function (array parameters or an array
    /// return cannot run element-wise).
    pub fn compile_kernel(&self, src: &str, fname: &str) -> Result<Kernel<'_>, SeamlessError> {
        let timer = if obs::enabled() {
            Some(obs::span::span_start(obs::span::wall_now_s()))
        } else {
            None
        };
        let module = seamless::parser::parse_module(src)?;
        let def = module.function(fname).ok_or_else(|| {
            SeamlessError::Type(format!("no function named `{fname}` in kernel source"))
        })?;
        let arity = def.params.len();
        let program =
            seamless::compile::compile_program(&module, fname, &vec![Type::Float; arity])?;
        let entry = &program.funcs[0];
        if entry.params.iter().any(|(file, _)| *file != RegFile::F) {
            return Err(SeamlessError::Type(format!(
                "kernel `{fname}` must take scalar parameters only"
            )));
        }
        let ret = match entry.ret {
            Type::Float => DType::F64,
            Type::Int => DType::I64,
            Type::Bool => DType::Bool,
            ref t => {
                return Err(SeamlessError::Type(format!(
                    "kernel `{fname}` must return a scalar, not {t:?}"
                )))
            }
        };
        let n_instrs: usize = program.funcs.iter().map(|f| f.instrs.len()).sum();
        let id = self.register_kernel_program(program);
        if let Some(timer) = timer {
            timer.finish(
                "odin",
                "compile_kernel",
                obs::span::wall_now_s(),
                &[("arity", arity as f64), ("instrs", n_instrs as f64)],
            );
        }
        Ok(Kernel {
            ctx: self,
            id,
            name: fname.to_string(),
            arity,
            ret,
        })
    }
}

impl<'c> Kernel<'c> {
    /// The pool-wide kernel id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The entry function's source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of array arguments `map` expects.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Align `args` to the first argument's distribution (redistributing
    /// non-conformable ones) and return the bound input ids plus the
    /// temporaries that must outlive the dispatch.
    fn bind(&self, args: &[&DistArray<'c>]) -> (ArrayMeta, Vec<u64>, Vec<DistArray<'c>>) {
        assert_eq!(
            args.len(),
            self.arity,
            "kernel `{}` takes {} arrays, got {}",
            self.name,
            self.arity,
            args.len()
        );
        let t_meta = args[0].meta();
        let mut inputs = Vec::with_capacity(args.len());
        let mut temps = Vec::new();
        for a in args {
            let m = a.meta();
            assert_eq!(m.shape, t_meta.shape, "kernel arguments must share a shape");
            if m.conformable(&t_meta) {
                inputs.push(a.id());
            } else {
                let moved = a.redistribute(t_meta.dist);
                inputs.push(moved.id());
                temps.push(moved);
            }
        }
        (t_meta, inputs, temps)
    }

    /// Apply the kernel element-wise: `out[i] = f(args[0][i], …)` over
    /// every worker's segment, one small control message total.
    pub fn map(&self, args: &[&DistArray<'c>]) -> DistArray<'c> {
        let (t_meta, inputs, temps) = self.bind(args);
        let ctx = self.ctx;
        let out = ctx.alloc_id();
        ctx.send_cmd(&Cmd::EvalKernel {
            out,
            kernel: self.id,
            template: inputs[0],
            inputs,
            out_dtype: self.ret,
            reduce: None,
        });
        let out_meta = ArrayMeta {
            dtype: self.ret,
            ..t_meta
        };
        ctx.record_meta(out, out_meta);
        drop(temps);
        DistArray::from_id(ctx, out)
    }

    /// Apply the kernel and fold the results to a scalar in the same
    /// pass — the mapped array is never materialized. Bitwise-identical
    /// to `map(args)` followed by the matching whole-array reduction.
    pub fn map_reduce(&self, args: &[&DistArray<'c>], kind: ReduceKind) -> f64 {
        let (_t_meta, inputs, temps) = self.bind(args);
        let pending = self.ctx.dispatch_single::<f64>(&Cmd::EvalKernel {
            out: 0,
            kernel: self.id,
            template: inputs[0],
            inputs,
            out_dtype: DType::F64,
            reduce: Some(kind),
        });
        let v = pending.wait();
        drop(temps);
        v
    }
}

#[cfg(test)]
mod tests {
    use crate::context::OdinContext;
    use crate::protocol::{Dist, ReduceKind};

    #[test]
    fn kernel_maps_over_segments() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def f(x, y):\n    return hypot(x, y)\n", "f")
            .unwrap();
        assert_eq!(k.arity(), 2);
        let x = ctx.linspace(0.0, 2.0, 21);
        let y = ctx.linspace(1.0, 3.0, 21);
        let r = k.map(&[&x, &y]);
        let xs = x.to_vec();
        let ys = y.to_vec();
        let rs = r.to_vec();
        for i in 0..xs.len() {
            assert_eq!(rs[i].to_bits(), xs[i].hypot(ys[i]).to_bits());
        }
    }

    #[test]
    fn kernel_with_branches_and_locals() {
        let ctx = OdinContext::with_workers(2);
        let src = "def clip(x, lo, hi):\n    if x < lo:\n        return lo\n    if x > hi:\n        return hi\n    return x\n";
        let k = ctx.compile_kernel(src, "clip").unwrap();
        let x = ctx.linspace(-2.0, 2.0, 17);
        let lo = ctx.full(&[17], -1.0, Dist::Block);
        let hi = ctx.full(&[17], 1.0, Dist::Block);
        let r = k.map(&[&x, &lo, &hi]).to_vec();
        for (i, v) in x.to_vec().into_iter().enumerate() {
            assert_eq!(r[i], v.clamp(-1.0, 1.0));
        }
    }

    #[test]
    fn kernel_registers_once_and_invokes_are_small() {
        let ctx = OdinContext::with_workers(2);
        let k = ctx
            .compile_kernel("def sq(x):\n    return x * x\n", "sq")
            .unwrap();
        let x = ctx.linspace(0.0, 1.0, 32);
        let _warm = k.map(&[&x]);
        ctx.reset_stats();
        let per_worker = 10;
        // hold results so Free commands don't pollute the stats window
        let results: Vec<_> = (0..per_worker).map(|_| k.map(&[&x])).collect();
        let s = ctx.stats();
        drop(results);
        // registration happened before reset: each invoke is one
        // broadcast control message, well under 100 bytes
        assert_eq!(s.ctrl_msgs, per_worker * 2);
        assert!(
            s.ctrl_bytes < s.ctrl_msgs * 100,
            "mean invoke size {} B",
            s.ctrl_bytes / s.ctrl_msgs.max(1)
        );
    }

    #[test]
    fn map_reduce_matches_map_then_reduce_bitwise() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def g(x):\n    return exp(-x) * sin(x)\n", "g")
            .unwrap();
        let x = ctx.linspace(0.0, 3.0, 101);
        let fused = k.map_reduce(&[&x], ReduceKind::Sum);
        let two_pass = k.map(&[&x]).sum();
        assert_eq!(fused.to_bits(), two_pass.to_bits());
    }

    #[test]
    fn kernel_aligns_non_conformable_arguments() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def add(x, y):\n    return x + y\n", "add")
            .unwrap();
        let x = ctx.arange_f64(0.0, 1.0, 12, Dist::Block);
        let y = ctx.arange_f64(0.0, 1.0, 12, Dist::Cyclic);
        let r = k.map(&[&x, &y]);
        let expect: Vec<f64> = (0..12).map(|g| 2.0 * g as f64).collect();
        assert_eq!(r.to_vec(), expect);
    }

    #[test]
    fn bad_kernels_fail_with_typed_errors() {
        let ctx = OdinContext::with_workers(1);
        assert!(ctx
            .compile_kernel("def f(x):\n    return x\n", "g")
            .is_err());
        assert!(ctx.compile_kernel("def f(x:\n", "f").is_err());
        // array return is rejected
        assert!(ctx
            .compile_kernel("def f(n):\n    return zeros(int(n))\n", "f")
            .is_err());
    }

    #[test]
    fn integer_kernels_produce_integer_arrays() {
        let ctx = OdinContext::with_workers(2);
        let k = ctx
            .compile_kernel("def f(x):\n    return int(x) * 2 + 1\n", "f")
            .unwrap();
        let x = ctx.arange(6);
        let r = k.map(&[&x]);
        assert_eq!(r.dtype(), crate::buffer::DType::I64);
        assert_eq!(r.to_vec_i64(), vec![1, 3, 5, 7, 9, 11]);
    }
}
