//! User-facing JIT kernel plane: compile a Seamless (pyish) scalar
//! function once, ship its bytecode to every worker once, and map it
//! over distributed arrays with tens-of-bytes control messages per
//! invoke.
//!
//! This is the paper's Seamless↔ODIN integration (§IV/§V): the kernel
//! author writes element-wise code in the Python-like source language,
//! ODIN compiles it on the master and registers it with the pool
//! ([`Cmd::RegisterKernel`]); every [`Kernel::map`] /
//! [`Kernel::map_reduce`] afterwards sends only array ids
//! ([`Cmd::EvalKernel`]).
//!
//! Kernels are built through the dtype-generic [`KernelSpec`] builder:
//! [`OdinContext::kernel`] names the source and entry function,
//! [`KernelSpec::dtype`] picks the compute monomorphization (f64 by
//! default; `I64`/`Bool` compile the parameters into the integer
//! register file), and [`KernelSpec::tier`] picks the execution tier —
//! the bytecode VM, or the native C-compiled chunk function that
//! `seamless::codegen` arms after a bitwise-parity probe (DESIGN §15).
//! [`OdinContext::compile_kernel`] remains as the f64/auto shorthand.
//!
//! ```
//! use odin::context::OdinContext;
//! use odin::kernel::Tier;
//!
//! let ctx = OdinContext::with_workers(3);
//! let k = ctx
//!     .kernel("def wave(x, t):\n    return sin(x) * exp(-t)\n", "wave")
//!     .dtype(odin::DType::F64)
//!     .tier(Tier::Auto)
//!     .build()
//!     .unwrap();
//! let x = ctx.linspace(0.0, 1.0, 16);
//! let t = ctx.full(&[16], 0.5, odin::protocol::Dist::Block);
//! let y = k.map(&[&x, &t]);
//! assert_eq!(y.len(), 16);
//! ```

use crate::array::DistArray;
use crate::buffer::DType;
use crate::context::OdinContext;
use crate::protocol::{ArrayMeta, Cmd, ReduceKind};
use seamless::bytecode::RegFile;
use seamless::{SeamlessError, Type};

/// Which execution tier a kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Always interpret the bytecode on the VM chunk path.
    Vm,
    /// Ask for the C-compiled native chunk function. The native symbol is
    /// only dispatched after it passes the bitwise-parity probe; bodies
    /// the emitter cannot compile (loops, arrays) or machines without a
    /// C compiler fall back to the VM — correctness never depends on the
    /// tier.
    Native,
    /// Let the runtime decide (today: same arming attempt as `Native`).
    /// This is the default.
    Auto,
}

/// Builder for a dtype-generic kernel: source + entry name, then
/// [`KernelSpec::dtype`] / [`KernelSpec::tier`], then
/// [`KernelSpec::build`].
pub struct KernelSpec<'c> {
    ctx: &'c OdinContext,
    src: String,
    fname: String,
    dtype: DType,
    tier: Tier,
}

/// A Seamless function compiled to bytecode and registered on every
/// worker of an [`OdinContext`] pool.
///
/// Obtained from the [`KernelSpec`] builder ([`OdinContext::kernel`]),
/// from the f64 shorthand [`OdinContext::compile_kernel`], or implicitly
/// by [`crate::lazy::Expr::eval`] (lowered expressions — all share the
/// registration cache). The kernel's code shipped to the workers exactly
/// once; each `map`/`map_reduce` invoke is a small fixed-size control
/// message.
pub struct Kernel<'c> {
    ctx: &'c OdinContext,
    id: u64,
    name: String,
    arity: usize,
    ret: DType,
    /// Compute dtype: the monomorphization workers execute.
    dtype: DType,
    /// Resolved tier after the arming attempt (never `Auto`).
    tier: Tier,
}

impl OdinContext {
    /// Start building a kernel from pyish source. `fname` names the entry
    /// function inside `src`. Defaults: `DType::F64` compute,
    /// [`Tier::Auto`].
    pub fn kernel(&self, src: &str, fname: &str) -> KernelSpec<'_> {
        KernelSpec {
            ctx: self,
            src: src.to_string(),
            fname: fname.to_string(),
            dtype: DType::F64,
            tier: Tier::Auto,
        }
    }

    /// Compile a Seamless (pyish) function to bytecode and register it
    /// with every worker — the f64/auto shorthand for
    /// `self.kernel(src, fname).build()`.
    ///
    /// Fails with a typed [`SeamlessError`] when the source does not
    /// parse or type-check, when the entry function is missing, or when
    /// it is not a scalar→scalar function (array parameters or an array
    /// return cannot run element-wise).
    pub fn compile_kernel(&self, src: &str, fname: &str) -> Result<Kernel<'_>, SeamlessError> {
        self.kernel(src, fname).build()
    }
}

impl<'c> KernelSpec<'c> {
    /// Compute dtype of the monomorphization: `F64` (default) compiles
    /// scalar-float parameters and stages f64 rows; `I64` and `Bool`
    /// compile integer/bool parameters and stage i64 rows (bools as
    /// 0/1), so integer kernels never round-trip through floats.
    pub fn dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// Execution tier request (default [`Tier::Auto`]).
    pub fn tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Parse, type-check, and compile the entry function for the chosen
    /// dtype, register the bytecode with every worker, and (unless
    /// [`Tier::Vm`] was requested) try to arm the native tier — compile
    /// the C monomorphization and run the bitwise-parity probe. The
    /// returned kernel's [`Kernel::tier`] reports what actually armed.
    pub fn build(self) -> Result<Kernel<'c>, SeamlessError> {
        let KernelSpec {
            ctx,
            src,
            fname,
            dtype,
            tier,
        } = self;
        let timer = if obs::enabled() {
            Some(obs::span::span_start(obs::span::wall_now_s()))
        } else {
            None
        };
        let module = seamless::parser::parse_module(&src)?;
        let def = module.function(&fname).ok_or_else(|| {
            SeamlessError::Type(format!("no function named `{fname}` in kernel source"))
        })?;
        let arity = def.params.len();
        let param_type = match dtype {
            DType::F64 => Type::Float,
            DType::I64 => Type::Int,
            DType::Bool => Type::Bool,
        };
        let program =
            seamless::compile::compile_program(&module, &fname, &vec![param_type; arity])?;
        let entry = &program.funcs[0];
        let want_file = match dtype {
            DType::F64 => RegFile::F,
            DType::I64 | DType::Bool => RegFile::I,
        };
        if entry.params.iter().any(|(file, _)| *file != want_file) {
            return Err(SeamlessError::Type(format!(
                "kernel `{fname}` must take scalar parameters only"
            )));
        }
        let ret = match (dtype, &entry.ret) {
            (_, Type::Float) if dtype != DType::F64 => {
                return Err(SeamlessError::Type(format!(
                    "kernel `{fname}` returns a float but was compiled for {dtype:?} \
                     compute — build it with .dtype(DType::F64)"
                )))
            }
            (_, Type::Float) => DType::F64,
            (_, Type::Int) => DType::I64,
            (_, Type::Bool) => DType::Bool,
            (_, t) => {
                return Err(SeamlessError::Type(format!(
                    "kernel `{fname}` must return a scalar, not {t:?}"
                )))
            }
        };
        // Arm the native tier before the program moves into the registry.
        // Master and workers are threads of one process, so this warm
        // populates the same codegen cache the workers will hit.
        let native = match tier {
            Tier::Vm => false,
            Tier::Native | Tier::Auto => {
                let armed = match dtype {
                    DType::F64 => seamless::codegen::native_f64(&program, None).is_some(),
                    DType::I64 | DType::Bool => seamless::codegen::native_i64(&program).is_some(),
                };
                if obs::enabled() {
                    let key = if armed {
                        "odin.kernel.native_armed"
                    } else {
                        "odin.kernel.native_refused"
                    };
                    obs::global().counter(key).add(1);
                }
                armed
            }
        };
        let n_instrs: usize = program.funcs.iter().map(|f| f.instrs.len()).sum();
        let id = ctx.register_kernel_program(program);
        if let Some(timer) = timer {
            timer.finish(
                "odin",
                "compile_kernel",
                obs::span::wall_now_s(),
                &[
                    ("arity", arity as f64),
                    ("instrs", n_instrs as f64),
                    ("native", f64::from(u8::from(native))),
                ],
            );
        }
        Ok(Kernel {
            ctx,
            id,
            name: fname,
            arity,
            ret,
            dtype,
            tier: if native { Tier::Native } else { Tier::Vm },
        })
    }
}

impl<'c> Kernel<'c> {
    /// The pool-wide kernel id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The entry function's source name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of array arguments `map` expects.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Compute dtype this kernel was monomorphized for.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The tier that actually armed: [`Tier::Native`] iff the C
    /// monomorphization compiled and passed the bitwise-parity probe,
    /// otherwise [`Tier::Vm`]. Never [`Tier::Auto`].
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Align `args` to the first argument's distribution (redistributing
    /// non-conformable ones) and return the bound input ids plus the
    /// temporaries that must outlive the dispatch.
    fn bind(&self, args: &[&DistArray<'c>]) -> (ArrayMeta, Vec<u64>, Vec<DistArray<'c>>) {
        assert_eq!(
            args.len(),
            self.arity,
            "kernel `{}` takes {} arrays, got {}",
            self.name,
            self.arity,
            args.len()
        );
        let t_meta = args[0].meta();
        let mut inputs = Vec::with_capacity(args.len());
        let mut temps = Vec::new();
        for a in args {
            let m = a.meta();
            assert_eq!(m.shape, t_meta.shape, "kernel arguments must share a shape");
            if m.conformable(&t_meta) {
                inputs.push(a.id());
            } else {
                let moved = a.redistribute(t_meta.dist);
                inputs.push(moved.id());
                temps.push(moved);
            }
        }
        (t_meta, inputs, temps)
    }

    /// Apply the kernel element-wise: `out[i] = f(args[0][i], …)` over
    /// every worker's segment, one small control message total.
    pub fn map(&self, args: &[&DistArray<'c>]) -> DistArray<'c> {
        let (t_meta, inputs, temps) = self.bind(args);
        let ctx = self.ctx;
        let out = ctx.alloc_id();
        ctx.send_cmd(&Cmd::EvalKernel {
            out,
            kernel: self.id,
            template: inputs[0],
            inputs,
            out_dtype: self.ret,
            reduce: None,
            dtype: self.dtype,
            native: self.tier == Tier::Native,
        });
        let out_meta = ArrayMeta {
            dtype: self.ret,
            ..t_meta
        };
        ctx.record_meta(out, out_meta);
        drop(temps);
        DistArray::from_id(ctx, out)
    }

    /// Apply the kernel and fold the results to a scalar in the same
    /// pass — the mapped array is never materialized. Bitwise-identical
    /// to `map(args)` followed by the matching whole-array reduction.
    pub fn map_reduce(&self, args: &[&DistArray<'c>], kind: ReduceKind) -> f64 {
        let (_t_meta, inputs, temps) = self.bind(args);
        let pending = self.ctx.dispatch_single::<f64>(&Cmd::EvalKernel {
            out: 0,
            kernel: self.id,
            template: inputs[0],
            inputs,
            out_dtype: DType::F64,
            reduce: Some(kind),
            dtype: self.dtype,
            native: self.tier == Tier::Native,
        });
        let v = pending.wait();
        drop(temps);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::Tier;
    use crate::buffer::DType;
    use crate::context::OdinContext;
    use crate::protocol::{Dist, ReduceKind};

    #[test]
    fn kernel_maps_over_segments() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def f(x, y):\n    return hypot(x, y)\n", "f")
            .unwrap();
        assert_eq!(k.arity(), 2);
        assert_eq!(k.dtype(), DType::F64);
        let x = ctx.linspace(0.0, 2.0, 21);
        let y = ctx.linspace(1.0, 3.0, 21);
        let r = k.map(&[&x, &y]);
        let xs = x.to_vec();
        let ys = y.to_vec();
        let rs = r.to_vec();
        for i in 0..xs.len() {
            assert_eq!(rs[i].to_bits(), xs[i].hypot(ys[i]).to_bits());
        }
    }

    #[test]
    fn kernel_with_branches_and_locals() {
        let ctx = OdinContext::with_workers(2);
        let src = "def clip(x, lo, hi):\n    if x < lo:\n        return lo\n    if x > hi:\n        return hi\n    return x\n";
        let k = ctx.compile_kernel(src, "clip").unwrap();
        // a branchy body is outside the native emitter's class
        assert_eq!(k.tier(), Tier::Vm);
        let x = ctx.linspace(-2.0, 2.0, 17);
        let lo = ctx.full(&[17], -1.0, Dist::Block);
        let hi = ctx.full(&[17], 1.0, Dist::Block);
        let r = k.map(&[&x, &lo, &hi]).to_vec();
        for (i, v) in x.to_vec().into_iter().enumerate() {
            assert_eq!(r[i], v.clamp(-1.0, 1.0));
        }
    }

    #[test]
    fn kernel_registers_once_and_invokes_are_small() {
        let ctx = OdinContext::with_workers(2);
        let k = ctx
            .compile_kernel("def sq(x):\n    return x * x\n", "sq")
            .unwrap();
        let x = ctx.linspace(0.0, 1.0, 32);
        let _warm = k.map(&[&x]);
        ctx.reset_stats();
        let per_worker = 10;
        // hold results so Free commands don't pollute the stats window
        let results: Vec<_> = (0..per_worker).map(|_| k.map(&[&x])).collect();
        let s = ctx.stats();
        drop(results);
        // registration happened before reset: each invoke is one
        // broadcast control message, well under 100 bytes
        assert_eq!(s.ctrl_msgs, per_worker * 2);
        assert!(
            s.ctrl_bytes < s.ctrl_msgs * 100,
            "mean invoke size {} B",
            s.ctrl_bytes / s.ctrl_msgs.max(1)
        );
    }

    #[test]
    fn map_reduce_matches_map_then_reduce_bitwise() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def g(x):\n    return exp(-x) * sin(x)\n", "g")
            .unwrap();
        let x = ctx.linspace(0.0, 3.0, 101);
        let fused = k.map_reduce(&[&x], ReduceKind::Sum);
        let two_pass = k.map(&[&x]).sum();
        assert_eq!(fused.to_bits(), two_pass.to_bits());
    }

    #[test]
    fn kernel_aligns_non_conformable_arguments() {
        let ctx = OdinContext::with_workers(3);
        let k = ctx
            .compile_kernel("def add(x, y):\n    return x + y\n", "add")
            .unwrap();
        let x = ctx.arange_f64(0.0, 1.0, 12, Dist::Block);
        let y = ctx.arange_f64(0.0, 1.0, 12, Dist::Cyclic);
        let r = k.map(&[&x, &y]);
        let expect: Vec<f64> = (0..12).map(|g| 2.0 * g as f64).collect();
        assert_eq!(r.to_vec(), expect);
    }

    #[test]
    fn bad_kernels_fail_with_typed_errors() {
        let ctx = OdinContext::with_workers(1);
        assert!(ctx
            .compile_kernel("def f(x):\n    return x\n", "g")
            .is_err());
        assert!(ctx.compile_kernel("def f(x:\n", "f").is_err());
        // array return is rejected
        assert!(ctx
            .compile_kernel("def f(n):\n    return zeros(int(n))\n", "f")
            .is_err());
        // float-returning body cannot be monomorphized for i64 compute
        assert!(ctx
            .kernel("def f(x):\n    return x * 0.5\n", "f")
            .dtype(DType::I64)
            .build()
            .is_err());
    }

    #[test]
    fn integer_kernels_produce_integer_arrays() {
        let ctx = OdinContext::with_workers(2);
        let k = ctx
            .compile_kernel("def f(x):\n    return int(x) * 2 + 1\n", "f")
            .unwrap();
        let x = ctx.arange(6);
        let r = k.map(&[&x]);
        assert_eq!(r.dtype(), crate::buffer::DType::I64);
        assert_eq!(r.to_vec_i64(), vec![1, 3, 5, 7, 9, 11]);
    }

    #[test]
    fn i64_monomorphization_computes_in_integers() {
        let ctx = OdinContext::with_workers(2);
        // for i64 compute, x stays an integer register end to end —
        // (x * x + 1) over i64 inputs, no float round-trip
        let k = ctx
            .kernel("def f(x):\n    return x * x + 1\n", "f")
            .dtype(DType::I64)
            .build()
            .unwrap();
        assert_eq!(k.dtype(), DType::I64);
        let x = ctx.arange(7);
        let r = k.map(&[&x]);
        assert_eq!(r.dtype(), DType::I64);
        assert_eq!(r.to_vec_i64(), vec![1, 2, 5, 10, 17, 26, 37]);
    }

    #[test]
    fn vm_tier_request_is_honored() {
        let ctx = OdinContext::with_workers(2);
        let k = ctx
            .kernel("def f(x):\n    return x + 1.0\n", "f")
            .tier(Tier::Vm)
            .build()
            .unwrap();
        assert_eq!(k.tier(), Tier::Vm);
        let x = ctx.linspace(0.0, 1.0, 9);
        let r = k.map(&[&x]).to_vec();
        for (i, v) in x.to_vec().into_iter().enumerate() {
            assert_eq!(r[i].to_bits(), (v + 1.0).to_bits());
        }
    }
}
