//! Map-reduce over distributed tables (§III-I): "distributed structured
//! arrays provide the fundamental components for parallel Map-Reduce
//! style computations".
//!
//! The map phase runs on each worker's records; emitted `(key, value)`
//! pairs are *shuffled* directly between workers (alltoallv keyed by a
//! hash of the key — the master never sees the data), then reduced
//! locally and gathered.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::context::LocalFn;
use crate::table::{DistTable, Record};

fn key_home(key: &str, p: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % p
}

impl<'c> DistTable<'c> {
    /// Full map-reduce: `map_fn` emits `(key, value)` pairs per record;
    /// pairs are shuffled to the key's home worker and folded with
    /// `reduce_fn` (which must be associative and commutative). The final
    /// key/value map is gathered to the master, sorted by key.
    pub fn map_reduce(
        &self,
        map_fn: impl Fn(&Record) -> Vec<(String, f64)> + Send + Sync + 'static,
        reduce_fn: impl Fn(f64, f64) -> f64 + Send + Sync + 'static,
    ) -> Vec<(String, f64)> {
        let table_id = self.id();
        let f: LocalFn = Arc::new(move |scope, _args, _scalars| {
            let p = scope.n_workers();
            // map + local pre-combine (the classic "combiner" optimization)
            let mut combined: HashMap<String, f64> = HashMap::new();
            for rec in &scope.table(table_id).rows {
                for (k, v) in map_fn(rec) {
                    combined
                        .entry(k)
                        .and_modify(|acc| *acc = reduce_fn(*acc, v))
                        .or_insert(v);
                }
            }
            // shuffle by key home
            let mut outgoing: Vec<Vec<(String, f64)>> = (0..p).map(|_| Vec::new()).collect();
            for (k, v) in combined {
                outgoing[key_home(&k, p)].push((k, v));
            }
            let incoming = scope.comm.alltoallv(outgoing);
            let mut reduced: HashMap<String, f64> = HashMap::new();
            for batch in incoming {
                for (k, v) in batch {
                    reduced
                        .entry(k)
                        .and_modify(|acc| *acc = reduce_fn(*acc, v))
                        .or_insert(v);
                }
            }
            // every worker replies with its share
            let mut pairs: Vec<(String, f64)> = reduced.into_iter().collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            scope.reply(comm::encode_to_vec(&pairs));
        });
        let ctx = self.context();
        let fid = ctx.register_local(f);
        ctx.call_local(fid, &[], &[]);
        let replies = ctx.collect_replies_pub();
        let mut out: Vec<(String, f64)> = Vec::new();
        for bytes in replies {
            let pairs: Vec<(String, f64)> =
                comm::decode_from_slice(&bytes).expect("bad shuffle reply");
            out.extend(pairs);
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Group-by aggregation: sums `value_col` per distinct value of
    /// `key_col` — the SQL `GROUP BY` shape on top of map-reduce.
    pub fn group_by_sum(&self, key_col: &str, value_col: &str) -> Vec<(String, f64)> {
        let ki = self.schema().index_of(key_col);
        let vi = self.schema().index_of(value_col);
        self.map_reduce(
            move |rec| {
                vec![(
                    match &rec.0[ki] {
                        crate::table::FieldValue::Str(s) => s.clone(),
                        other => format!("{other:?}"),
                    },
                    rec.0[vi].as_f64(),
                )]
            },
            |a, b| a + b,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::context::OdinContext;
    use crate::table::{FieldType, FieldValue, Record, Schema};

    fn word_records(text: &str) -> (Schema, Vec<Record>) {
        let schema = Schema::new(&[("line", FieldType::Str)]);
        let records = text
            .lines()
            .map(|l| Record(vec![FieldValue::Str(l.to_string())]))
            .collect();
        (schema, records)
    }

    #[test]
    fn word_count() {
        let text = "the quick brown fox\nthe lazy dog\nthe quick dog";
        let ctx = OdinContext::with_workers(3);
        let (schema, records) = word_records(text);
        let t = ctx.table_from_records(schema, records);
        let counts = t.map_reduce(
            |rec| {
                rec.0[0]
                    .as_str()
                    .split_whitespace()
                    .map(|w| (w.to_string(), 1.0))
                    .collect()
            },
            |a, b| a + b,
        );
        let get = |k: &str| {
            counts
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| *v)
                .unwrap_or(0.0)
        };
        assert_eq!(get("the"), 3.0);
        assert_eq!(get("quick"), 2.0);
        assert_eq!(get("dog"), 2.0);
        assert_eq!(get("fox"), 1.0);
        assert_eq!(counts.len(), 6);
        // output is sorted by key
        let keys: Vec<&str> = counts.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn word_count_is_worker_count_invariant() {
        let text = "a b a c b a\nb c a";
        let run = |w: usize| {
            let ctx = OdinContext::with_workers(w);
            let (schema, records) = word_records(text);
            let t = ctx.table_from_records(schema, records);
            t.map_reduce(
                |rec| {
                    rec.0[0]
                        .as_str()
                        .split_whitespace()
                        .map(|w| (w.to_string(), 1.0))
                        .collect()
                },
                |a, b| a + b,
            )
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn group_by_sum_aggregates() {
        let ctx = OdinContext::with_workers(2);
        let schema = Schema::new(&[("city", FieldType::Str), ("sales", FieldType::F64)]);
        let records = vec![
            Record(vec![FieldValue::Str("nyc".into()), FieldValue::F64(10.0)]),
            Record(vec![FieldValue::Str("sf".into()), FieldValue::F64(5.0)]),
            Record(vec![FieldValue::Str("nyc".into()), FieldValue::F64(7.5)]),
            Record(vec![FieldValue::Str("austin".into()), FieldValue::F64(3.0)]),
            Record(vec![FieldValue::Str("sf".into()), FieldValue::F64(1.5)]),
        ];
        let t = ctx.table_from_records(schema, records);
        let sums = t.group_by_sum("city", "sales");
        assert_eq!(
            sums,
            vec![
                ("austin".to_string(), 3.0),
                ("nyc".to_string(), 17.5),
                ("sf".to_string(), 6.5),
            ]
        );
    }

    #[test]
    fn max_reduction_instead_of_sum() {
        let ctx = OdinContext::with_workers(3);
        let schema = Schema::new(&[("k", FieldType::Str), ("v", FieldType::F64)]);
        let records: Vec<Record> = (0..20)
            .map(|i| {
                Record(vec![
                    FieldValue::Str(if i % 2 == 0 { "even" } else { "odd" }.into()),
                    FieldValue::F64(i as f64),
                ])
            })
            .collect();
        let t = ctx.table_from_records(schema, records);
        let maxes = t.map_reduce(
            |rec| vec![(rec.0[0].as_str().to_string(), rec.0[1].as_f64())],
            f64::max,
        );
        assert_eq!(
            maxes,
            vec![("even".to_string(), 18.0), ("odd".to_string(), 19.0)]
        );
    }
}
