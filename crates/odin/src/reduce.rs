//! Global reductions: full-array scalars and per-axis reductions.
//!
//! Full reductions are computed by the workers with a direct
//! worker-to-worker allreduce — the master only receives the final scalar
//! from worker 0, so it never becomes a bottleneck (paper Fig. 1 caption).

use crate::array::DistArray;
use crate::context::Pending;
use crate::protocol::{Cmd, ReduceKind};

impl<'c> DistArray<'c> {
    /// Dispatch a full reduction and return a reply future — the master
    /// can keep issuing commands (on this or other arrays) while the
    /// workers compute and the scalar is in flight.
    pub fn reduce_scalar_async(&self, kind: ReduceKind) -> Pending<'c, f64> {
        self.ctx().dispatch_single(&Cmd::Reduce {
            a: self.id(),
            kind,
            axis: None,
            out: 0,
        })
    }

    fn reduce_scalar(&self, kind: ReduceKind) -> f64 {
        self.reduce_scalar_async(kind).wait()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.reduce_scalar(ReduceKind::Sum)
    }

    /// Pipelined [`Self::sum`]: returns a future instead of blocking.
    pub fn sum_async(&self) -> Pending<'c, f64> {
        self.reduce_scalar_async(ReduceKind::Sum)
    }

    /// Product of all elements.
    pub fn prod(&self) -> f64 {
        self.reduce_scalar(ReduceKind::Prod)
    }

    /// Minimum element.
    pub fn min(&self) -> f64 {
        self.reduce_scalar(ReduceKind::Min)
    }

    /// Maximum element.
    pub fn max(&self) -> f64 {
        self.reduce_scalar(ReduceKind::Max)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }

    /// Number of nonzero (true) elements.
    pub fn count_nonzero(&self) -> u64 {
        self.reduce_scalar(ReduceKind::CountNonzero) as u64
    }

    /// Reduce along `axis`, producing an array with that axis removed.
    pub fn reduce_axis(&self, kind: ReduceKind, axis: usize) -> DistArray<'c> {
        let meta = self.meta();
        assert!(axis < meta.ndim(), "axis out of range");
        assert!(
            meta.ndim() >= 2,
            "axis reduction needs ndim ≥ 2; use the scalar reductions for 1-D"
        );
        let out = self.ctx().alloc_id();
        self.ctx().send_cmd(&Cmd::Reduce {
            a: self.id(),
            kind,
            axis: Some(axis),
            out,
        });
        // mirror the worker-side output meta computation
        let mut shape = meta.shape.clone();
        shape.remove(axis);
        let dtype = match kind {
            ReduceKind::CountNonzero => crate::buffer::DType::I64,
            _ => match meta.dtype {
                crate::buffer::DType::Bool => crate::buffer::DType::I64,
                d => d,
            },
        };
        let out_meta = crate::protocol::ArrayMeta {
            shape,
            axis: 0,
            dist: if axis == 0 {
                crate::protocol::Dist::Block
            } else {
                meta.dist
            },
            dtype,
        };
        self.ctx().record_meta(out, out_meta);
        DistArray::from_id(self.ctx(), out)
    }

    /// Sum along an axis.
    pub fn sum_axis(&self, axis: usize) -> DistArray<'c> {
        self.reduce_axis(ReduceKind::Sum, axis)
    }

    /// Maximum along an axis.
    pub fn max_axis(&self, axis: usize) -> DistArray<'c> {
        self.reduce_axis(ReduceKind::Max, axis)
    }
}

#[cfg(test)]
mod tests {
    use crate::buffer::DType;
    use crate::context::OdinContext;
    use crate::protocol::Dist;

    #[test]
    fn scalar_reductions_match_serial() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(1.0, 10.0, 10);
        assert!((x.sum() - 55.0).abs() < 1e-9);
        assert_eq!(x.min(), 1.0);
        assert_eq!(x.max(), 10.0);
        assert!((x.mean() - 5.5).abs() < 1e-9);
        let y = ctx.arange(5); // 0,1,2,3,4
        assert_eq!(y.count_nonzero(), 4);
        let z = ctx.full(&[4], 2.0, Dist::Block);
        assert!((z.prod() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn reductions_worker_count_invariant_for_integers() {
        let s = |w| {
            let ctx = OdinContext::with_workers(w);
            let v = ctx.arange(100).sum();
            v
        };
        assert_eq!(s(1), s(4));
        assert_eq!(s(1), 4950.0);
    }

    #[test]
    fn axis0_reduction_of_2d() {
        let ctx = OdinContext::with_workers(2);
        // 4×3 array of ones → column sums = 4
        let a = ctx.ones(&[4, 3], DType::F64);
        let cols = a.sum_axis(0);
        assert_eq!(cols.shape(), vec![3]);
        assert_eq!(cols.to_vec(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn axis1_reduction_of_2d() {
        let ctx = OdinContext::with_workers(3);
        let b = ctx.random(&[5, 4], 7);
        let rows = b.sum_axis(1);
        assert_eq!(rows.shape(), vec![5]);
        let full = b.to_vec();
        let expect: Vec<f64> = (0..5)
            .map(|r| (0..4).map(|c| full[r * 4 + c]).sum())
            .collect();
        let got = rows.to_vec();
        for (g, e) in got.iter().zip(expect.iter()) {
            assert!((g - e).abs() < 1e-12, "{g} vs {e}");
        }
    }

    #[test]
    fn axis_reduction_3d_middle_axis() {
        let ctx = OdinContext::with_workers(2);
        let a = ctx.random(&[3, 4, 2], 11);
        let m = a.max_axis(1);
        assert_eq!(m.shape(), vec![3, 2]);
        let full = a.to_vec();
        let got = m.to_vec();
        for i in 0..3 {
            for k in 0..2 {
                let expect = (0..4)
                    .map(|j| full[i * 8 + j * 2 + k])
                    .fold(f64::NEG_INFINITY, f64::max);
                let g = got[i * 2 + k];
                assert!((g - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn boolean_count_after_comparison() {
        let ctx = OdinContext::with_workers(3);
        let x = ctx.linspace(0.0, 1.0, 101);
        let mask = x.binary_scalar(0.5, crate::protocol::BinOp::Gt, false);
        assert_eq!(mask.count_nonzero(), 50);
    }
}
